#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only, no network).

Scans the given markdown files/directories for inline links and images
(``[text](target)``) and reference definitions (``[label]: target``) and
verifies that every *relative* target resolves:

* plain paths must exist relative to the linking file;
* ``path#anchor`` targets must exist AND contain a heading whose GitHub
  slug matches the anchor;
* ``#anchor`` targets must match a heading in the linking file itself.

External schemes (http/https/mailto) are deliberately not fetched — CI
must not depend on the network — but obviously malformed ones (empty
target) still fail. Exit code 0 when every link resolves, 1 otherwise,
with one ``file:line`` diagnostic per broken link.

Usage: check_markdown_links.py README.md docs/
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
FENCE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set:
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if not match:
                continue
            slug = github_slug(match.group(1))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def markdown_files(args):
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield arg


def iter_links(path):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Strip inline code spans so `[x](y)` examples are not links.
            stripped = re.sub(r"`[^`]*`", "", line)
            for match in INLINE_LINK.finditer(stripped):
                yield lineno, match.group(1)
            match = REF_DEF.match(stripped)
            if match:
                yield lineno, match.group(1)


def check_file(path, slug_cache):
    errors = []
    base = os.path.dirname(path) or "."

    def slugs_of(target_path):
        target_path = os.path.realpath(target_path)
        if target_path not in slug_cache:
            slug_cache[target_path] = heading_slugs(target_path)
        return slug_cache[target_path]

    for lineno, target in iter_links(path):
        if not target:
            errors.append((path, lineno, "empty link target"))
            continue
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # external scheme; not checked offline
        anchor = None
        if "#" in target:
            target, anchor = target.split("#", 1)
        if target:
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append((path, lineno, f"missing file: {target}"))
                continue
            if anchor is not None:
                if not resolved.endswith(".md"):
                    continue  # anchors into non-markdown are not checkable
                if anchor not in slugs_of(resolved):
                    errors.append(
                        (path, lineno, f"missing anchor: {target}#{anchor}"))
        elif anchor is not None:
            if anchor not in slugs_of(path):
                errors.append((path, lineno, f"missing anchor: #{anchor}"))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    slug_cache = {}
    checked = 0
    for path in markdown_files(argv[1:]):
        checked += 1
        errors.extend(check_file(path, slug_cache))
    for path, lineno, message in errors:
        print(f"{path}:{lineno}: {message}")
    print(f"checked {checked} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
