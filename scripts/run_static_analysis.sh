#!/usr/bin/env bash
# Runs the full static-analysis gate locally (docs/STATIC_ANALYSIS.md):
#
#   1. clang build with -Wthread-safety -Werror  (lock-annotation check)
#   2. clang-tidy over compile_commands.json     (.clang-tidy config)
#   3. python3 scripts/kvec_lint.py              (project-specific lint)
#
# Mirrors the CI `lint` job (.github/workflows/ci.yml). Tools that are not
# installed are SKIPPED with a notice, not failed — the container image
# ships GCC only; clang/clang-tidy run in CI regardless. Exit status is
# non-zero iff a check that DID run failed.
#
# Usage: scripts/run_static_analysis.sh [build-dir]   (default: build-clang)
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-clang}"
failures=0
skipped=0

note() { printf '== %s\n' "$*"; }

if command -v clang++ >/dev/null 2>&1; then
  note "clang build with -Wthread-safety -Werror -> ${BUILD_DIR}/"
  if cmake -B "${BUILD_DIR}" -S . \
        -DCMAKE_C_COMPILER=clang \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DKVEC_BUILD_BENCHMARKS=OFF \
        -DKVEC_BUILD_EXAMPLES=OFF \
        -DCMAKE_CXX_FLAGS="-Werror" \
      && cmake --build "${BUILD_DIR}" -j; then
    note "thread-safety build: OK"
  else
    note "thread-safety build: FAILED"
    failures=$((failures + 1))
  fi
else
  note "clang++ not found; skipping the -Wthread-safety build (CI runs it)"
  skipped=$((skipped + 1))
fi

if command -v clang-tidy >/dev/null 2>&1 \
    && [ -f "${BUILD_DIR}/compile_commands.json" ]; then
  note "clang-tidy over ${BUILD_DIR}/compile_commands.json"
  if git ls-files 'src/*.cc' 'apps/*.cc' \
      | xargs clang-tidy -p "${BUILD_DIR}" --warnings-as-errors='*'; then
    note "clang-tidy: OK"
  else
    note "clang-tidy: FAILED"
    failures=$((failures + 1))
  fi
else
  note "clang-tidy (or ${BUILD_DIR}/compile_commands.json) not found;" \
       "skipping (CI runs it)"
  skipped=$((skipped + 1))
fi

note "project lint: scripts/kvec_lint.py src/ tests/ apps/ bench/"
if python3 scripts/kvec_lint.py src/ tests/ apps/ bench/; then
  note "kvec_lint: OK"
else
  note "kvec_lint: FAILED"
  failures=$((failures + 1))
fi

note "done: ${failures} failure(s), ${skipped} check(s) skipped"
exit "$((failures > 0 ? 1 : 0))"
