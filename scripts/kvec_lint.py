#!/usr/bin/env python3
"""Project lint for repo-specific invariants (stdlib only, no network).

Enforces the rules no off-the-shelf tool knows about this codebase
(documented with rationale in docs/STATIC_ANALYSIS.md):

* ``fault-point-doc``   — every ``KVEC_FAULT_POINT("name")`` used in code
                          appears in docs/SERVING.md's fault-point list.
* ``naked-new``         — no ``new``/``delete`` expressions outside the
                          ``tensor`` allocation layer (smart pointers or
                          containers everywhere else).
* ``banned-call``       — no ``std::rand`` / ``time(nullptr)`` (seeded
                          determinism is a repro invariant; use util/rng.h)
                          and no ``std::regex`` (heavy, locale-dependent).
* ``pragma-once``       — every header uses ``#pragma once``.
* ``iostream-outside-cli`` — no ``std::cout``/``std::cerr`` outside the
                          CLI layer (the library reports through return
                          values and util/check.h).
* ``raw-syscall``       — no naked socket syscalls (``socket``, ``bind``,
                          ``connect``, ``send``/``recv`` families, ...)
                          outside ``src/net/``; everything else talks to
                          the network through net/socket.h, which owns
                          deadlines, fault points, and EINTR handling.
* ``test-wiring``       — every ``*.cc`` directly inside a ``tests/``
                          directory is named ``*_test.cc`` so the CMake
                          glob builds it and wires it into ctest (anything
                          else would silently never run).
* ``include-path``      — quoted includes of project headers use the
                          canonical src/-relative spelling (no ``../``,
                          no ``src/`` prefix) and resolve to a real file.
* ``pool-discipline``   — per-key serving state allocates through
                          util/arena.h (ShardPool / ScratchArena): no raw
                          ``std::pmr`` resource primitives outside that
                          wrapper, and no ``malloc``/``free`` family
                          anywhere (a malloc'd block can never move into a
                          compaction pool).
* ``section-id``        — checkpoint-container section ids live in ONE
                          registry (src/util/serialize.h): outside
                          serialize.{h,cc} no new ``kCheckpointSection*``
                          constant may be defined and no integer literal
                          may be used as a section id (constructing a
                          ``CheckpointSection`` or calling
                          ``Checkpoint::Find``) — two subsystems colliding
                          on an id silently corrupt each other's restores.

Suppressions (a reason is mandatory):

    do_thing();  // kvec-lint: allow(naked-new) reason why this is fine
    // kvec-lint: allow-next(naked-new) reason why the next line is fine

Directories named ``lint_fixtures`` are skipped when walking (they hold
deliberate violations for tests/lint_test.cc) but are scanned when passed
explicitly on the command line.

Usage: kvec_lint.py src/ tests/ apps/ [bench/ ...]
Exit code 0 when clean, 1 when any rule fires, 2 on usage errors.
"""

import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
SKIP_DIR_NAMES = {"lint_fixtures", "build", ".git"}
# Third-party headers legitimately included with quotes by tests/benchmarks.
THIRD_PARTY_INCLUDE_PREFIXES = ("gtest/", "gmock/", "benchmark/")
FAULT_POINT_DOC = os.path.join("docs", "SERVING.md")

RULES = (
    "fault-point-doc",
    "naked-new",
    "banned-call",
    "pragma-once",
    "iostream-outside-cli",
    "raw-syscall",
    "test-wiring",
    "include-path",
    "pool-discipline",
    "section-id",
)

ALLOW = re.compile(r"//\s*kvec-lint:\s*allow(-next)?\(([a-z-]+)\)\s*(\S.*)?$")
FAULT_POINT = re.compile(r'KVEC_FAULT_POINT\("([^"]+)"\)')
NEW_EXPR = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:<]|\[)")
DELETE_EXPR = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(?:\[\s*\]\s*)?[A-Za-z_:(*]")
BANNED = (
    (re.compile(r"\bstd::rand\b"), "std::rand (use util/rng.h)"),
    (re.compile(r"\btime\(\s*nullptr\s*\)|\btime\(\s*NULL\s*\)"),
     "time(nullptr) (wall-clock seeds break reproducibility)"),
    (re.compile(r"\bstd::regex\b|#include\s*<regex>"),
     "std::regex (heavy, locale-dependent; hand-roll the parse)"),
)
IOSTREAM = re.compile(r"\bstd::(cout|cerr)\b")
# Socket syscalls, bare or ::-qualified. The lookbehind rejects member
# calls (.connect / ->connect), qualified names (std::bind, Socket's own
# CamelCase methods never match the lowercase list), and identifiers that
# merely end in a syscall name.
RAW_SYSCALL = re.compile(
    r"(?<![\w.>:])(?:::\s*)?"
    r"(socket|bind|listen|accept4?|connect|sendto|sendmsg|send|"
    r"recvfrom|recvmsg|recv|setsockopt|getsockopt|getsockname|"
    r"shutdown|poll)\s*\(")
INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
# Raw pmr building blocks (the pool wrappers in util/arena.* are the one
# sanctioned place to touch them) and the C allocation family.
PMR_PRIMITIVE = re.compile(
    r"\b(?:std::pmr::)?(unsynchronized_pool_resource|"
    r"synchronized_pool_resource|monotonic_buffer_resource|"
    r"new_delete_resource|pool_options)\b")
MALLOC_FAMILY = re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?"
                           r"(malloc|calloc|realloc|free)\s*\(")
# A new registry constant outside the registry ("=" but not "=="), or an
# integer literal where a section id belongs: brace-constructing a
# CheckpointSection (directly or via sections.push_back/emplace_back) or
# looking one up with Checkpoint::Find.
SECTION_ID_CONST = re.compile(r"\bkCheckpointSection\w+\s*=(?!=)")
SECTION_ID_LITERAL = re.compile(
    r"(?:\bCheckpointSection\s*(?:\w+\s*)?\{|"
    r"sections\.(?:push_back|emplace_back)\(\s*\{|"
    r"\bFind\(\s*)[-+]?\d")


def path_components(path):
    return os.path.normpath(path).split(os.sep)


def strip_comments(line):
    """Removes // and single-line /* */ comments (string-literal naive —
    good enough for this codebase, which keeps code out of strings)."""
    line = re.sub(r"/\*.*?\*/", "", line)
    return line.split("//", 1)[0]


class File:
    def __init__(self, path):
        self.path = path
        with open(path, encoding="utf-8", errors="replace") as handle:
            self.raw_lines = handle.read().splitlines()
        # allowed[lineno] = {rule, ...} collected before comment stripping.
        self.allowed = {}
        self.allow_errors = []
        for lineno, line in enumerate(self.raw_lines, start=1):
            match = ALLOW.search(line)
            if not match:
                if "kvec-lint:" in line:
                    self.allow_errors.append(
                        (lineno, "malformed kvec-lint directive"))
                continue
            is_next, rule, reason = match.groups()
            if rule not in RULES:
                self.allow_errors.append(
                    (lineno, f"allow() names unknown rule '{rule}'"))
                continue
            if not reason:
                self.allow_errors.append(
                    (lineno, f"allow({rule}) is missing a reason"))
                continue
            target = lineno + 1 if is_next else lineno
            self.allowed.setdefault(target, set()).add(rule)
        self.code_lines = [
            (n, strip_comments(line))
            for n, line in enumerate(self.raw_lines, start=1)
        ]

    def is_allowed(self, lineno, rule):
        return rule in self.allowed.get(lineno, set())


def walk_files(args):
    seen = []
    for arg in args:
        if os.path.isfile(arg):
            if arg.endswith(CXX_EXTENSIONS):
                seen.append(arg)
            continue
        if not os.path.isdir(arg):
            print(f"kvec_lint: no such file or directory: {arg}")
            sys.exit(2)
        for root, dirs, names in os.walk(arg):
            # Prune skip-dirs unless the user pointed the walk at one.
            dirs[:] = sorted(
                d for d in dirs
                if d not in SKIP_DIR_NAMES and not d.startswith("build"))
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    seen.append(os.path.join(root, name))
    return seen


def find_repo_root(start):
    """Nearest ancestor holding src/ AND CMakeLists.txt (falls back to cwd).
    Both markers are required so a fixture tree with a src/ subdirectory is
    never mistaken for the repo root."""
    probe = os.path.abspath(start)
    while True:
        if (os.path.isdir(os.path.join(probe, "src"))
                and os.path.exists(os.path.join(probe, "CMakeLists.txt"))):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.getcwd()
        probe = parent


def documented_fault_points(repo_root):
    doc = os.path.join(repo_root, FAULT_POINT_DOC)
    if not os.path.exists(doc):
        return None
    with open(doc, encoding="utf-8") as handle:
        return set(re.findall(r"`([a-z0-9_.]+)`", handle.read()))


def lint_file(file, repo_root, fault_doc, errors):
    comps = path_components(file.path)
    in_tensor = "tensor" in comps
    in_cli = "cli" in comps
    in_src = "src" in comps
    in_net = "net" in comps and in_src
    in_arena = (in_src and "util" in comps
                and os.path.basename(file.path).startswith("arena."))
    in_serialize = (in_src and "util" in comps
                    and os.path.basename(file.path).startswith("serialize."))
    file_dir = os.path.dirname(file.path)

    def report(lineno, rule, message):
        if not file.is_allowed(lineno, rule):
            errors.append((file.path, lineno, rule, message))

    for lineno, message in file.allow_errors:
        errors.append((file.path, lineno, "bad-allow", message))

    if file.path.endswith((".h", ".hpp")):
        if not any("#pragma once" in line for line in file.raw_lines):
            report(1, "pragma-once", "header is missing #pragma once")

    if (file.path.endswith((".cc", ".cpp"))
            and os.path.basename(file_dir) == "tests"
            and not file.path.endswith("_test.cc")):
        report(1, "test-wiring",
               "a .cc in tests/ must be named *_test.cc or the CMake glob "
               "never builds it (and ctest never runs it)")

    for lineno, line in file.code_lines:
        for point in FAULT_POINT.findall(line):
            if fault_doc is not None and point not in fault_doc:
                report(lineno, "fault-point-doc",
                       f'fault point "{point}" is not documented in '
                       f"{FAULT_POINT_DOC}")

        if not in_tensor and (NEW_EXPR.search(line)
                              or DELETE_EXPR.search(line)):
            report(lineno, "naked-new",
                   "naked new/delete outside the tensor allocation layer "
                   "(use std::make_unique / containers)")

        for pattern, what in BANNED:
            if pattern.search(line):
                report(lineno, "banned-call", f"banned: {what}")

        if not in_net:
            syscall = RAW_SYSCALL.search(line)
            if syscall:
                report(lineno, "raw-syscall",
                       f"naked socket syscall '{syscall.group(1)}' outside "
                       "src/net/ (go through net/socket.h, which owns "
                       "deadlines, fault points, and EINTR handling)")

        if not in_arena:
            primitive = PMR_PRIMITIVE.search(line)
            if primitive:
                report(lineno, "pool-discipline",
                       f"raw pmr primitive '{primitive.group(1)}' outside "
                       "src/util/arena.* (per-key state goes through "
                       "ShardPool / ScratchArena so compaction can account "
                       "for and rebuild it)")
        malloc_call = MALLOC_FAMILY.search(line)
        if malloc_call:
            report(lineno, "pool-discipline",
                   f"C allocation call '{malloc_call.group(1)}' (a malloc'd "
                   "block is invisible to the pool accounting; use "
                   "containers over ShardPool / ScratchArena)")

        if not in_serialize:
            if SECTION_ID_CONST.search(line):
                report(lineno, "section-id",
                       "checkpoint section-id constants are defined only in "
                       "the registry in src/util/serialize.h (a duplicate "
                       "definition can silently collide with another "
                       "subsystem's id)")
            elif SECTION_ID_LITERAL.search(line):
                report(lineno, "section-id",
                       "raw integer used as a checkpoint section id; use "
                       "the named kCheckpointSection* constants from "
                       "src/util/serialize.h")

        if in_src and not in_cli and IOSTREAM.search(line):
            report(lineno, "iostream-outside-cli",
                   "std::cout/std::cerr outside src/cli/ (library code "
                   "reports through return values / util/check.h)")

        match = INCLUDE.match(line)
        if match:
            target = match.group(1)
            if target.startswith(("../", "./")) or "/../" in target:
                report(lineno, "include-path",
                       f'include "{target}" must use the canonical '
                       "src/-relative path, not a relative traversal")
            elif target.startswith("src/"):
                report(lineno, "include-path",
                       f'include "{target}" must drop the src/ prefix '
                       "(the include root already is src/)")
            elif not target.startswith(THIRD_PARTY_INCLUDE_PREFIXES):
                in_srctree = os.path.exists(
                    os.path.join(repo_root, "src", target))
                in_samedir = os.path.exists(os.path.join(file_dir, target))
                if not in_srctree and not in_samedir:
                    report(lineno, "include-path",
                           f'include "{target}" resolves neither under src/ '
                           "nor next to the including file")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    files = walk_files(argv[1:])
    if not files:
        print("kvec_lint: no C++ files found under the given paths")
        return 2
    repo_root = find_repo_root(files[0])
    fault_doc = documented_fault_points(repo_root)
    if fault_doc is None:
        print(f"kvec_lint: warning: {FAULT_POINT_DOC} not found; "
              "fault-point-doc rule skipped")
    errors = []
    for path in files:
        lint_file(File(path), repo_root, fault_doc, errors)
    for path, lineno, rule, message in errors:
        print(f"{path}:{lineno}: [{rule}] {message}")
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} violation(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
