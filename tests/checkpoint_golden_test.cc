// Format-compatibility pin for the serving checkpoint container.
//
// A v1 StreamServer checkpoint produced by a fixed generator (tiny
// untrained model, deterministic 120-item stream) is committed under
// tests/data/. This test loads it, asserts the decoded frame and the
// leading payload fields, and restores it into a compatibly-shaped
// server. If either the container layout or the StreamServer section
// layout changes, this test fails — the fix is to bump
// kCheckpointFormatVersion deliberately (and add a new golden), never to
// regenerate this file in place.
//
// Regenerating (only when adding a NEW version's golden):
//   KVEC_REGEN_GOLDEN=tests/data/stream_server_v1.ckpt ./checkpoint_golden_test
// then update the pinned constants below from the printed values.
//
// PR 10 adds the version-2 delta golden: a two-shard chain (base +
// delta.1) produced by the same tiny recipe, pinning the delta container
// frame, the manifest layout, and chain restore. Regenerating it:
//   KVEC_REGEN_GOLDEN_V2=tests/data/stream_server_v2_base.ckpt \
//       ./checkpoint_golden_test
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "util/serialize.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

#ifndef KVEC_TEST_DATA_DIR
#define KVEC_TEST_DATA_DIR "tests/data"
#endif

constexpr char kGoldenFile[] = "/stream_server_v1.ckpt";

// The generator's fixed recipe — must never change, or the committed bytes
// stop matching it.
KvecModel MakeGoldenModel() {
  DatasetSpec spec;
  spec.name = "golden";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.value_correlation_window = 16;
  config.correlation.max_value_correlations = 4;
  return KvecModel(config);
}

StreamServerConfig GoldenServerConfig() {
  StreamServerConfig config;
  config.max_window_items = 64;
  config.idle_timeout = 40;
  config.idle_check_interval = 8;
  config.max_open_keys = 12;
  return config;
}

void FeedGoldenStream(StreamServer* server) {
  for (int i = 0; i < 120; ++i) {
    Item item;
    item.key = i % 23;
    item.value = {i % 3};
    item.time = i;
    server->Observe(item);
  }
}

TEST(CheckpointGoldenTest, RegenerateGolden) {
  const char* out_path = std::getenv("KVEC_REGEN_GOLDEN");
  if (out_path == nullptr) {
    GTEST_SKIP() << "set KVEC_REGEN_GOLDEN=<path> to write a fresh golden";
  }
  KvecModel model = MakeGoldenModel();
  StreamServer server(model, GoldenServerConfig());
  FeedGoldenStream(&server);
  ASSERT_TRUE(server.SaveCheckpoint(out_path));
  const StreamServerStats& stats = server.stats();
  std::printf(
      "golden written to %s\n  open_keys=%d items=%lld classified=%lld "
      "halts=%lld idle=%lld capacity=%lld rotation=%lld windows=%d\n",
      out_path, server.open_keys(),
      static_cast<long long>(stats.items_processed),
      static_cast<long long>(stats.sequences_classified),
      static_cast<long long>(stats.policy_halts),
      static_cast<long long>(stats.idle_timeouts),
      static_cast<long long>(stats.capacity_evictions),
      static_cast<long long>(stats.rotation_classifications),
      stats.windows_started);
}

TEST(CheckpointGoldenTest, FrameDecodesAtVersion1) {
  Checkpoint checkpoint;
  ASSERT_TRUE(
      CheckpointLoad(std::string(KVEC_TEST_DATA_DIR) + kGoldenFile,
                     &checkpoint))
      << "committed golden missing or unreadable";
  EXPECT_EQ(checkpoint.version, 1);
  ASSERT_EQ(checkpoint.sections.size(), 1u);
  EXPECT_EQ(checkpoint.sections[0].id, kCheckpointSectionStreamServer);
}

TEST(CheckpointGoldenTest, PayloadFieldsDecodeAsWritten) {
  Checkpoint checkpoint;
  ASSERT_TRUE(CheckpointLoad(
      std::string(KVEC_TEST_DATA_DIR) + kGoldenFile, &checkpoint));
  const CheckpointSection* section =
      checkpoint.Find(kCheckpointSectionStreamServer);
  ASSERT_NE(section, nullptr);

  // Leading fields of the v1 StreamServer payload, in layout order. A
  // layout change (reordered fields, new field without a version bump)
  // breaks these reads.
  BinaryReader reader(section->payload);
  EXPECT_EQ(reader.ReadInt32(), 64);   // max_window_items
  EXPECT_EQ(reader.ReadInt32(), 40);   // idle_timeout
  EXPECT_EQ(reader.ReadInt32(), 8);    // idle_check_interval
  EXPECT_EQ(reader.ReadInt32(), 12);   // max_open_keys
  EXPECT_EQ(reader.ReadInt64(), 120);  // stream position
  EXPECT_EQ(reader.ReadInt32(), 56);   // window_items (120 items, 1 rotation)
  EXPECT_EQ(reader.ReadInt64(), 120);  // stats.items_processed
  ASSERT_TRUE(reader.ok());
}

TEST(CheckpointGoldenTest, RestoresIntoCompatibleServer) {
  KvecModel model = MakeGoldenModel();
  StreamServer server(model, GoldenServerConfig());
  ASSERT_TRUE(server.LoadCheckpoint(std::string(KVEC_TEST_DATA_DIR) +
                                    kGoldenFile));
  // Pinned from generation time (see RegenerateGolden's printout).
  const StreamServerStats& stats = server.stats();
  EXPECT_EQ(server.open_keys(), 10);
  EXPECT_EQ(stats.items_processed, 120);
  EXPECT_EQ(stats.sequences_classified, 36);
  EXPECT_EQ(stats.policy_halts, 24);
  EXPECT_EQ(stats.idle_timeouts, 0);
  EXPECT_EQ(stats.capacity_evictions, 4);
  EXPECT_EQ(stats.rotation_classifications, 8);
  EXPECT_EQ(stats.flush_classifications, 0);
  EXPECT_EQ(stats.windows_started, 2);
  EXPECT_EQ(stats.policy_halts + stats.idle_timeouts +
                stats.capacity_evictions + stats.rotation_classifications +
                stats.flush_classifications,
            stats.sequences_classified);
}

TEST(CheckpointGoldenTest, UnknownSectionsAreSkipped) {
  Checkpoint checkpoint;
  ASSERT_TRUE(CheckpointLoad(
      std::string(KVEC_TEST_DATA_DIR) + kGoldenFile, &checkpoint));
  // A future writer may append sections this reader has never heard of;
  // they must not break restore.
  // kvec-lint: allow-next(section-id) deliberately unknown future id
  checkpoint.sections.push_back({999, std::string("future payload")});
  KvecModel model = MakeGoldenModel();
  StreamServer server(model, GoldenServerConfig());
  ASSERT_TRUE(server.RestoreCheckpoint(CheckpointEncode(checkpoint)));
  EXPECT_EQ(server.stats().items_processed, 120);
}

// ---- Version-2 delta golden (PR 10) --------------------------------------

constexpr char kDeltaGoldenBase[] = "/stream_server_v2_base.ckpt";

ShardedStreamServerConfig GoldenShardedConfig() {
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.shard = GoldenServerConfig();
  return config;
}

// Same item recipe as the v1 stream, extended: the base is cut at item
// 120 (the v1 golden's cut) and delta 1 carries items 120..179.
void FeedGoldenRange(ShardedStreamServer* server, int from, int to) {
  for (int i = from; i < to; ++i) {
    Item item;
    item.key = i % 23;
    item.value = {i % 3};
    item.time = i;
    server->Observe(item);
  }
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(CheckpointGoldenTest, RegenerateDeltaGolden) {
  const char* out_base = std::getenv("KVEC_REGEN_GOLDEN_V2");
  if (out_base == nullptr) {
    GTEST_SKIP() << "set KVEC_REGEN_GOLDEN_V2=<base path> to write a fresh "
                    "delta golden (base + .delta.1)";
  }
  KvecModel model = MakeGoldenModel();
  ShardedStreamServer server(model, GoldenShardedConfig());
  ShardedStreamServer::IncrementalCheckpointState state;
  FeedGoldenRange(&server, 0, 120);
  ASSERT_TRUE(server.CheckpointIncremental(out_base, 0, &state));
  FeedGoldenRange(&server, 120, 180);
  ASSERT_TRUE(server.CheckpointIncremental(out_base, 0, &state));
  const StreamServerStats stats = server.stats();
  std::printf(
      "delta golden written to %s{,.delta.1}\n  open_keys=%d items=%lld "
      "classified=%lld windows=%d\n",
      out_base, server.open_keys(),
      static_cast<long long>(stats.items_processed),
      static_cast<long long>(stats.sequences_classified),
      stats.windows_started);
}

TEST(CheckpointGoldenTest, DeltaFrameDecodesAtVersion2) {
  const std::string base_path =
      std::string(KVEC_TEST_DATA_DIR) + kDeltaGoldenBase;
  const std::string delta_path = ShardedStreamServer::DeltaPath(base_path, 1);

  Checkpoint delta;
  ASSERT_TRUE(CheckpointLoad(delta_path, &delta))
      << "committed delta golden missing or unreadable";
  EXPECT_EQ(delta.version, kCheckpointDeltaFormatVersion);
  ASSERT_EQ(delta.sections.size(), 3u);
  EXPECT_EQ(delta.sections[0].id, kCheckpointSectionDeltaManifest);
  EXPECT_EQ(delta.sections[1].id, kCheckpointSectionShardDelta);
  EXPECT_EQ(delta.sections[2].id, kCheckpointSectionShardDelta);

  // Manifest layout: base fingerprint, previous-link fingerprint (the base
  // again for link 1), sequence number, shard count.
  BinaryReader reader(delta.sections[0].payload);
  const uint64_t stored_base = static_cast<uint64_t>(reader.ReadInt64());
  const uint64_t stored_prev = static_cast<uint64_t>(reader.ReadInt64());
  EXPECT_EQ(reader.ReadInt64(), 1);  // seq
  EXPECT_EQ(reader.ReadInt32(), 2);  // num_shards
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(stored_base, CheckpointFingerprint(SlurpFile(base_path)));
  EXPECT_EQ(stored_prev, stored_base);
}

TEST(CheckpointGoldenTest, DeltaChainRestoresIntoCompatibleServer) {
  const std::string base_path =
      std::string(KVEC_TEST_DATA_DIR) + kDeltaGoldenBase;
  KvecModel model = MakeGoldenModel();
  ShardedStreamServer restored(model, GoldenShardedConfig());
  ASSERT_TRUE(restored.RestoreFromCheckpointChain(base_path));

  // The committed chain must reconstruct exactly the state a fresh server
  // reaches by serving the generator's 180 items directly.
  ShardedStreamServer replayed(model, GoldenShardedConfig());
  FeedGoldenRange(&replayed, 0, 180);
  EXPECT_EQ(restored.EncodeCheckpoint(), replayed.EncodeCheckpoint());
  EXPECT_EQ(restored.stats().items_processed, 180);
}

}  // namespace
}  // namespace kvec
