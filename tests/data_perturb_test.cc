#include "data/perturb.h"

#include <algorithm>
#include <map>
#include <set>

#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

TangledSequence SampleEpisode(uint64_t seed = 11, int concurrency = 3) {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  config.concurrency = concurrency;
  config.avg_flow_length = 15.0;
  config.min_flow_length = 6;
  TrafficGenerator generator(config);
  Rng rng(seed);
  return generator.GenerateEpisode(rng);
}

int NumValueFields(const TangledSequence& episode) {
  return episode.items.empty()
             ? 0
             : static_cast<int>(episode.items.front().value.size());
}

// ---- DropItems ----

TEST(DropItemsTest, ZeroProbabilityIsIdentity) {
  TangledSequence episode = SampleEpisode();
  Rng rng(1);
  TangledSequence out = DropItems(episode, 0.0, rng);
  EXPECT_EQ(out.items.size(), episode.items.size());
}

TEST(DropItemsTest, DropsRoughlyTheRequestedFraction) {
  TangledSequence episode = SampleEpisode(12, 4);
  Rng rng(2);
  TangledSequence out = DropItems(episode, 0.5, rng);
  const double kept =
      static_cast<double>(out.items.size()) / episode.items.size();
  EXPECT_GT(kept, 0.3);
  EXPECT_LT(kept, 0.7);
}

TEST(DropItemsTest, EveryKeySurvives) {
  TangledSequence episode = SampleEpisode(13, 5);
  Rng rng(3);
  TangledSequence out = DropItems(episode, 0.95, rng);
  std::set<int> keys;
  for (const Item& item : out.items) keys.insert(item.key);
  for (const auto& [key, label] : episode.labels) {
    EXPECT_TRUE(keys.count(key)) << "key " << key << " lost all items";
  }
  out.Validate(NumValueFields(out));
}

TEST(DropItemsTest, PreservesRelativeOrder) {
  TangledSequence episode = SampleEpisode(14);
  Rng rng(4);
  TangledSequence out = DropItems(episode, 0.3, rng);
  for (size_t i = 1; i < out.items.size(); ++i) {
    EXPECT_LE(out.items[i - 1].time, out.items[i].time);
  }
}

// ---- CorruptValues ----

TEST(CorruptValuesTest, OnlyTargetFieldChanges) {
  TangledSequence episode = SampleEpisode(15);
  Rng rng(5);
  TangledSequence out = CorruptValues(episode, /*field=*/0,
                                      /*vocab_size=*/8, /*noise_prob=*/1.0,
                                      rng);
  ASSERT_EQ(out.items.size(), episode.items.size());
  for (size_t i = 0; i < out.items.size(); ++i) {
    for (size_t f = 1; f < out.items[i].value.size(); ++f) {
      EXPECT_EQ(out.items[i].value[f], episode.items[i].value[f]);
    }
    EXPECT_GE(out.items[i].value[0], 0);
    EXPECT_LT(out.items[i].value[0], 8);
  }
}

TEST(CorruptValuesTest, ZeroProbabilityIsIdentity) {
  TangledSequence episode = SampleEpisode(16);
  Rng rng(6);
  TangledSequence out = CorruptValues(episode, 0, 8, 0.0, rng);
  for (size_t i = 0; i < out.items.size(); ++i) {
    EXPECT_EQ(out.items[i].value, episode.items[i].value);
  }
}

// ---- TruncateSequences ----

TEST(TruncateSequencesTest, CapsEveryKeyLength) {
  TangledSequence episode = SampleEpisode(17, 4);
  TangledSequence out = TruncateSequences(episode, 5);
  std::map<int, int> lengths;
  for (const Item& item : out.items) ++lengths[item.key];
  for (const auto& [key, length] : lengths) {
    EXPECT_LE(length, 5);
    EXPECT_GE(length, 1);
  }
}

TEST(TruncateSequencesTest, LargeCapIsIdentity) {
  TangledSequence episode = SampleEpisode(18);
  TangledSequence out = TruncateSequences(episode, 1 << 20);
  EXPECT_EQ(out.items.size(), episode.items.size());
}

TEST(TruncateSequencesTest, ClampsTrueHaltPositions) {
  TangledSequence episode = SampleEpisode(19);
  // Pretend the halt position of every key is at its full length.
  std::map<int, int> lengths;
  for (const Item& item : episode.items) ++lengths[item.key];
  for (const auto& [key, length] : lengths) {
    episode.true_halt_positions[key] = length;
  }
  TangledSequence out = TruncateSequences(episode, 3);
  for (const auto& [key, position] : out.true_halt_positions) {
    EXPECT_LE(position, 3);
    EXPECT_GE(position, 1);
  }
}

// ---- JitterOrder ----

TEST(JitterOrderTest, ZeroDisplacementIsIdentity) {
  TangledSequence episode = SampleEpisode(20);
  Rng rng(7);
  TangledSequence out = JitterOrder(episode, 0, rng);
  for (size_t i = 0; i < out.items.size(); ++i) {
    EXPECT_EQ(out.items[i].key, episode.items[i].key);
    EXPECT_EQ(out.items[i].value, episode.items[i].value);
  }
}

TEST(JitterOrderTest, PreservesMultisetOfItems) {
  TangledSequence episode = SampleEpisode(21);
  Rng rng(8);
  TangledSequence out = JitterOrder(episode, 4, rng);
  ASSERT_EQ(out.items.size(), episode.items.size());
  auto signature = [](const TangledSequence& e) {
    std::multiset<std::pair<int, int>> s;
    for (const Item& item : e.items) s.insert({item.key, item.value[0]});
    return s;
  };
  EXPECT_EQ(signature(out), signature(episode));
}

TEST(JitterOrderTest, TimestampsStayMonotone) {
  TangledSequence episode = SampleEpisode(22);
  Rng rng(9);
  TangledSequence out = JitterOrder(episode, 6, rng);
  for (size_t i = 1; i < out.items.size(); ++i) {
    EXPECT_LE(out.items[i - 1].time, out.items[i].time);
  }
  out.Validate(NumValueFields(out));
}

TEST(JitterOrderTest, ActuallyMovesItems) {
  TangledSequence episode = SampleEpisode(23, 4);
  Rng rng(10);
  TangledSequence out = JitterOrder(episode, 5, rng);
  int moved = 0;
  for (size_t i = 0; i < out.items.size(); ++i) {
    if (out.items[i].key != episode.items[i].key ||
        out.items[i].value != episode.items[i].value) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

// ---- PerturbAll ----

TEST(PerturbAllTest, AppliesToEverySplitMember) {
  std::vector<TangledSequence> episodes = {SampleEpisode(24),
                                           SampleEpisode(25)};
  std::vector<TangledSequence> out = PerturbAll(
      episodes,
      [](const TangledSequence& e) { return TruncateSequences(e, 2); });
  ASSERT_EQ(out.size(), 2u);
  for (const TangledSequence& episode : out) {
    std::map<int, int> lengths;
    for (const Item& item : episode.items) ++lengths[item.key];
    for (const auto& [key, length] : lengths) EXPECT_LE(length, 2);
  }
}

TEST(PerturbDeathTest, RejectsBadArguments) {
  TangledSequence episode = SampleEpisode(26);
  Rng rng(11);
  EXPECT_DEATH(DropItems(episode, 1.0, rng), "check failed");
  EXPECT_DEATH(TruncateSequences(episode, 0), "check failed");
  EXPECT_DEATH(CorruptValues(episode, -1, 8, 0.5, rng), "check failed");
  EXPECT_DEATH(JitterOrder(episode, -1, rng), "check failed");
}

}  // namespace
}  // namespace kvec
