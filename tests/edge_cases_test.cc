// Edge-case coverage: single-item sequences, single-key episodes, extreme
// mask windows, degenerate training inputs, and failure injection.
#include <cmath>

#include "core/online.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

DatasetSpec TinySpec() {
  DatasetSpec spec;
  spec.name = "edge";
  spec.value_fields = {{"v", 4}, {"s", 2}};
  spec.session_field = 1;
  spec.num_classes = 2;
  spec.max_keys_per_episode = 4;
  spec.max_sequence_length = 8;
  spec.max_episode_length = 32;
  return spec;
}

TangledSequence SingleItemEpisode() {
  TangledSequence episode;
  episode.labels[0] = 1;
  Item item;
  item.key = 0;
  item.value = {2, 1};
  item.time = 0.0;
  episode.items.push_back(item);
  return episode;
}

KvecConfig TinyModelConfig() {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 12;
  config.epochs = 1;
  return config;
}

TEST(EdgeCaseTest, SingleItemEpisodeTrains) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TangledSequence> episodes = {SingleItemEpisode()};
  TrainEpochStats stats = trainer.TrainEpoch(episodes);
  EXPECT_EQ(stats.episodes, 1);
  EXPECT_TRUE(std::isfinite(stats.total_loss));
}

TEST(EdgeCaseTest, SingleItemEpisodeEvaluates) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  EvaluationResult result = trainer.Evaluate({SingleItemEpisode()});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].observed_items, 1);
  EXPECT_EQ(result.records[0].sequence_length, 1);
}

TEST(EdgeCaseTest, EmptyEpisodeListSkipsCleanly) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  EvaluationResult result = trainer.Evaluate({});
  EXPECT_EQ(result.summary.num_sequences, 0);
}

TEST(EdgeCaseTest, EpisodeWithEmptyItemsIsIgnored) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  TangledSequence empty;  // no items, no labels
  std::vector<TangledSequence> episodes = {empty, SingleItemEpisode()};
  TrainEpochStats stats = trainer.TrainEpoch(episodes);
  EXPECT_EQ(stats.episodes, 1);
}

TEST(EdgeCaseTest, SingleKeyEpisodeHasNoExternalAttention) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 6; ++i) {
    Item item;
    item.key = 0;
    item.value = {i % 4, i % 2};
    item.time = i;
    episode.items.push_back(item);
  }
  EvalOptions options;
  options.collect_attention = true;
  EvaluationResult result = trainer.Evaluate({episode}, options);
  for (const AttentionPoint& point : result.attention) {
    EXPECT_NEAR(point.external_score, 0.0, 1e-6);
  }
}

TEST(EdgeCaseTest, WindowOneStillBuildsValidMask) {
  CorrelationOptions options;
  options.session_field = 1;
  options.value_correlation_window = 1;
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  for (int i = 0; i < 10; ++i) {
    Item item;
    item.key = i % 2;
    item.value = {0, 0};  // all one session value
    item.time = i;
    episode.items.push_back(item);
  }
  EpisodeMask mask = BuildEpisodeMask(episode, options);
  // Alternating keys, window 1: item i can see the other key's open session
  // only when its last item is at i-1.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(mask.mask.At(i, i - 1), 0.0f);
  }
}

TEST(EdgeCaseTest, OnlineClassifierHandlesInterleavedNewKeys) {
  KvecConfig config = TinyModelConfig();
  KvecModel model(config);
  OnlineClassifier online(model);
  // Keys appear for the first time mid-stream.
  for (int i = 0; i < 12; ++i) {
    Item item;
    item.key = i / 3;  // new key every 3 items
    item.value = {i % 4, i % 2};
    item.time = i;
    OnlineDecision decision = online.Observe(item);
    EXPECT_EQ(decision.key, item.key);
  }
  EXPECT_EQ(online.num_items_observed(), 12);
}

TEST(EdgeCaseTest, MaskedSoftmaxSingleVisibleColumnIsOne) {
  Tensor scores = Tensor::FromData(1, 4, {5.0f, -3.0f, 0.0f, 2.0f});
  Tensor mask = Tensor::FromData(
      1, 4, {ops::kNegInf, ops::kNegInf, 0.0f, ops::kNegInf});
  Tensor weights = ops::MaskedSoftmax(scores, mask);
  EXPECT_NEAR(weights.At(0, 2), 1.0f, 1e-6f);
}

TEST(EdgeCaseTest, VeryLongSequenceClampsEmbeddingsAndRuns) {
  KvecConfig config = TinyModelConfig();  // max_sequence_length = 8
  KvecModel model(config);
  KvecTrainer trainer(&model);
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 50; ++i) {  // far beyond both vocab caps
    Item item;
    item.key = 0;
    item.value = {i % 4, (i / 5) % 2};
    item.time = i;
    episode.items.push_back(item);
  }
  EvaluationResult result = trainer.Evaluate({episode});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].sequence_length, 50);
}

TEST(EdgeCaseTest, KeyIdsBeyondMembershipVocabClamp) {
  KvecConfig config = TinyModelConfig();  // max_keys_per_episode = 4
  KvecModel model(config);
  KvecTrainer trainer(&model);
  TangledSequence episode;
  for (int k = 0; k < 7; ++k) {  // more concurrent keys than the vocab
    episode.labels[k] = k % 2;
    for (int i = 0; i < 3; ++i) {
      Item item;
      item.key = k;
      item.value = {k % 4, i % 2};
      item.time = k * 3 + i;
      episode.items.push_back(item);
    }
  }
  EvaluationResult result = trainer.Evaluate({episode});
  EXPECT_EQ(result.records.size(), 7u);
}

}  // namespace
}  // namespace kvec
