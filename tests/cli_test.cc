// The `kvec` driver: flag parsing, subcommand dispatch, and the JSON
// contract of `kvec eval`.
//
// Everything runs in-process through cli::RunKvecCli — the exact code path
// of apps/kvec.cc minus the argv shim — so bad flags, usage text, and exit
// codes are asserted without spawning processes.
//
// The golden test pins the byte-exact JSON of `kvec eval --json` for a
// fixed generate→train→eval recipe (tests/data/cli_eval_golden.json).
// If the JSON schema or the evaluation pipeline changes deliberately,
// regenerate with:
//   KVEC_REGEN_GOLDEN=1 ./cli_test --gtest_filter='*EvalJsonGolden*'
// (writes the golden next to the source tree via KVEC_TEST_DATA_DIR).
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/model_io.h"
#include "cli/subcommands.h"
#include "gtest/gtest.h"
#include "util/fault_injection.h"

namespace kvec {
namespace cli {
namespace {

#ifndef KVEC_TEST_DATA_DIR
#define KVEC_TEST_DATA_DIR "tests/data"
#endif

constexpr char kGoldenFile[] = KVEC_TEST_DATA_DIR "/cli_eval_golden.json";

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult RunCli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = RunKvecCli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// ---- ArgParser -----------------------------------------------------------

TEST(ArgParser, ParsesEveryKindAndBothSpellings) {
  ArgParser parser("kvec test");
  std::string* name = parser.AddString("name", "default", "a string");
  int64_t* count = parser.AddInt("count", 1, "an int");
  double* rate = parser.AddDouble("rate", 0.5, "a double");
  bool* verbose = parser.AddBool("verbose", false, "a bool");
  bool* cache = parser.AddBool("cache", true, "a bool");

  ASSERT_TRUE(parser.Parse(
      {"--name", "abc", "--count=42", "--rate", "2.5", "--verbose",
       "--no-cache"}))
      << parser.error();
  EXPECT_EQ(*name, "abc");
  EXPECT_EQ(*count, 42);
  EXPECT_DOUBLE_EQ(*rate, 2.5);
  EXPECT_TRUE(*verbose);
  EXPECT_FALSE(*cache);
  EXPECT_TRUE(parser.Provided("name"));
  EXPECT_TRUE(parser.Provided("rate"));
  EXPECT_FALSE(parser.help_requested());
}

TEST(ArgParser, DefaultsSurviveAnEmptyParse) {
  ArgParser parser("kvec test");
  int64_t* count = parser.AddInt("count", 7, "an int");
  ASSERT_TRUE(parser.Parse({}));
  EXPECT_EQ(*count, 7);
  EXPECT_FALSE(parser.Provided("count"));
}

TEST(ArgParser, RejectsUnknownFlagMissingValueAndBadNumbers) {
  {
    ArgParser parser("kvec test");
    EXPECT_FALSE(parser.Parse({"--nope"}));
    EXPECT_NE(parser.error().find("unknown flag"), std::string::npos);
  }
  {
    ArgParser parser("kvec test");
    parser.AddInt("count", 1, "an int");
    EXPECT_FALSE(parser.Parse({"--count"}));
    EXPECT_NE(parser.error().find("missing its value"), std::string::npos);
  }
  {
    ArgParser parser("kvec test");
    parser.AddInt("count", 1, "an int");
    EXPECT_FALSE(parser.Parse({"--count", "abc"}));
    EXPECT_NE(parser.error().find("integer"), std::string::npos);
  }
  {
    ArgParser parser("kvec test");
    parser.AddDouble("rate", 1, "a double");
    EXPECT_FALSE(parser.Parse({"--rate", "fast"}));
    EXPECT_NE(parser.error().find("number"), std::string::npos);
  }
  {
    ArgParser parser("kvec test");
    EXPECT_FALSE(parser.Parse({"positional"}));
    EXPECT_NE(parser.error().find("unexpected argument"), std::string::npos);
  }
}

TEST(ArgParser, HelpIsAlwaysRecognisedAndUsageListsFlags) {
  ArgParser parser("kvec test");
  parser.AddString("alpha", "x", "the alpha flag");
  parser.AddBool("beta", false, "the beta flag");
  ASSERT_TRUE(parser.Parse({"--help"}));
  EXPECT_TRUE(parser.help_requested());
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
  EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

TEST(ArgParser, SplitCommaList) {
  EXPECT_TRUE(SplitCommaList("").empty());
  EXPECT_EQ(SplitCommaList("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitCommaList("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

// ---- Dispatch ------------------------------------------------------------

TEST(CliDispatch, HelpListsEverySubcommand) {
  CliResult result = RunCli({"--help"});
  EXPECT_EQ(result.code, 0);
  for (const SubcommandInfo& info : Subcommands()) {
    EXPECT_NE(result.err.find(info.name), std::string::npos)
        << "help does not mention '" << info.name << "'";
  }
}

TEST(CliDispatch, NoArgumentsIsAUsageError) {
  CliResult result = RunCli({});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(CliDispatch, UnknownSubcommandFailsWithUsage) {
  CliResult result = RunCli({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown subcommand"), std::string::npos);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(CliDispatch, SubcommandHelpShowsFlagsAndSucceeds) {
  for (const SubcommandInfo& info : Subcommands()) {
    CliResult result = RunCli({info.name, "--help"});
    EXPECT_EQ(result.code, 0) << info.name;
    EXPECT_NE(result.err.find("usage: kvec "), std::string::npos)
        << info.name;
  }
}

TEST(CliDispatch, BadFlagsFailWithUsageText) {
  // Unknown flag.
  CliResult result = RunCli({"train", "--frobnicate", "1"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown flag"), std::string::npos);
  EXPECT_NE(result.err.find("usage: kvec train"), std::string::npos);

  // Unparsable value.
  result = RunCli({"generate", "--seed", "banana", "--out", "ignored"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("integer"), std::string::npos);

  // Missing required flag.
  result = RunCli({"train", "--preset", "ustc"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--model"), std::string::npos);

  result = RunCli({"eval"});
  EXPECT_EQ(result.code, 2);

  // Bad enum-ish values.
  result = RunCli({"generate", "--preset", "nope", "--out", "cli_test_nope"});
  EXPECT_EQ(result.code, 1);  // runtime: dataset resolution fails cleanly
  EXPECT_NE(result.err.find("unknown preset"), std::string::npos);

  result = RunCli({"sweep", "--preset", "smoke", "--methods", "nope"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown method"), std::string::npos);
}

TEST(CliDispatch, GenerateListSucceeds) {
  CliResult result = RunCli({"generate", "--list"});
  EXPECT_EQ(result.code, 0);
  for (const PresetInfo& info : AllPresets()) {
    EXPECT_NE(result.out.find(info.canonical), std::string::npos)
        << info.canonical;
  }
}

// ---- End-to-end golden ---------------------------------------------------

// The fixed recipe behind the golden JSON. Relative paths keep the JSON
// (which embeds the --model argument) independent of the working
// directory's location.
constexpr char kGoldenDataDir[] = "cli_test_golden_data";
constexpr char kGoldenModel[] = "cli_test_golden.kvm";

std::string RunGoldenPipeline() {
  CliResult generate =
      RunCli({"generate", "--preset", "ustc", "--scale", "tiny", "--episodes",
           "30", "--seed", "7", "--out", kGoldenDataDir});
  EXPECT_EQ(generate.code, 0) << generate.err;
  CliResult train =
      RunCli({"train", "--data", kGoldenDataDir, "--model", kGoldenModel,
           "--epochs", "2", "--embed-dim", "12", "--state-dim", "16",
           "--blocks", "1", "--ffn-dim", "24", "--train-seed", "42"});
  EXPECT_EQ(train.code, 0) << train.err;
  CliResult eval =
      RunCli({"eval", "--model", kGoldenModel, "--data", kGoldenDataDir,
           "--json"});
  EXPECT_EQ(eval.code, 0) << eval.err;
  EXPECT_TRUE(eval.err.empty()) << eval.err;
  return eval.out;
}

TEST(CliGolden, EvalJsonGolden) {
  const std::string json = RunGoldenPipeline();

  // Structural sanity regardless of the golden bytes.
  for (const char* key :
       {"\"dataset\"", "\"split\"", "\"summary\"", "\"earliness\"",
        "\"accuracy\"", "\"harmonic_mean\"", "\"num_sequences\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  if (std::getenv("KVEC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenFile, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << kGoldenFile;
    out << json;
    GTEST_SKIP() << "regenerated " << kGoldenFile;
  }

  std::ifstream in(kGoldenFile, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenFile
                  << " (regenerate with KVEC_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(json, golden.str())
      << "kvec eval --json drifted from the committed golden; if the "
         "change is deliberate, regenerate with KVEC_REGEN_GOLDEN=1";
}

TEST(CliGolden, EvalJsonIsDeterministic) {
  EXPECT_EQ(RunGoldenPipeline(), RunGoldenPipeline());
}

TEST(CliDispatch, HandAuthoredDatasetFailsClosed) {
  // The bring-your-own-data path must reject, with a clean exit 1, a
  // directory whose spec or items would otherwise abort inside the
  // embedding lookups: a spec missing max_keys_per_episode (defaults to
  // 0 → negative clamp index) and an item token outside the vocabulary.
  namespace fs = std::filesystem;
  const std::string dir = "cli_test_bad_data";
  fs::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream out(dir + "/" + name, std::ios::trunc);
    ASSERT_TRUE(out) << name;
    out << content;
  };
  const std::string items =
      "episode,key,time,label,v0\n0,0,0.5,1,3\n0,0,1.5,1,3\n";
  write("train.csv", items);
  write("validation.csv", items);
  write("test.csv", items);

  // Spec without the max_* rows: structurally incomplete.
  write("spec.csv",
        "key,value,aux\nname,bad,\nsession_field,0,\nnum_classes,2,\n"
        "value_field,f0,8\n");
  CliResult result =
      RunCli({"train", "--data", dir, "--model", "cli_test_bad.kvm"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("spec.csv"), std::string::npos) << result.err;

  // Complete spec, but the items' token 3 exceeds vocab_size 2.
  write("spec.csv",
        "key,value,aux\nname,bad,\nsession_field,0,\nnum_classes,2,\n"
        "max_keys_per_episode,4,\nmax_sequence_length,8,\n"
        "max_episode_length,8,\ntarget_avg_length,2,\n"
        "target_avg_session_length,1,\nvalue_field,f0,2\n");
  result = RunCli({"train", "--data", dir, "--model", "cli_test_bad.kvm"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("vocabulary"), std::string::npos) << result.err;
}

TEST(CliGolden, BundleRoundTripsAndInspects) {
  RunGoldenPipeline();  // ensures the bundle exists
  std::string error;
  auto model = LoadModelBundle(kGoldenModel, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->config().embed_dim, 12);
  EXPECT_EQ(model->config().spec.name, "USTC-TFC2016");

  CliResult inspect = RunCli({"checkpoint", "--inspect", kGoldenModel});
  EXPECT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("model_config"), std::string::npos);
  EXPECT_NE(inspect.out.find("model_params"), std::string::npos);

  CliResult corrupt = RunCli({"checkpoint", "--inspect", "cli_test_nonexistent"});
  EXPECT_EQ(corrupt.code, 1);
}

// ---- kvec serve: shard workers, overload flags, graceful interrupt -------

TEST(CliServe, WorkersModeReportsOverloadCounters) {
  CliResult result =
      RunCli({"serve", "--workers", "2", "--queue-depth", "8",
              "--overload-policy", "shed-newest", "--json"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"workers\": 2"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("\"overload\""), std::string::npos);
  EXPECT_NE(result.out.find("\"items_submitted\""), std::string::npos);
  EXPECT_NE(result.out.find("\"overload_policy\": \"shed-newest\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"queue_depth\": 8"), std::string::npos);
}

TEST(CliServe, WorkersShardsConflictAndBadPolicyAreUsageErrors) {
  CliResult mismatch = RunCli({"serve", "--workers", "2", "--shards", "4"});
  EXPECT_EQ(mismatch.code, 2);
  EXPECT_NE(mismatch.err.find("--workers must equal --shards"),
            std::string::npos)
      << mismatch.err;

  CliResult policy = RunCli({"serve", "--overload-policy", "drop"});
  EXPECT_EQ(policy.code, 2);
  EXPECT_NE(policy.err.find("block|shed-newest|shed-oldest"),
            std::string::npos)
      << policy.err;

  CliResult depth = RunCli({"serve", "--workers", "1", "--queue-depth", "0"});
  EXPECT_EQ(depth.code, 2);
}

TEST(CliServe, InterruptDrainsReportsAndStillSavesTheCheckpoint) {
  // Simulates Ctrl-C mid-replay: the "serve.batch" point fires at every
  // batch boundary, and after two batches the hook requests an interrupt
  // exactly as the SIGINT handler would. Serve must stop at the next
  // boundary, drain the shard queues, print the per-shard report, honor
  // --save-checkpoint, and exit 130.
  const std::string checkpoint = "cli_test_interrupt.ckpt";
  std::filesystem::remove(checkpoint);
  std::atomic<int> batches{0};
  FaultInjection::Arm("serve.batch", [&batches](const char*) {
    if (batches.fetch_add(1) + 1 == 2) RequestServeInterrupt();
    return false;
  });
  CliResult result = RunCli({"serve", "--workers", "2", "--batch", "16",
                             "--save-checkpoint", checkpoint});
  FaultInjection::DisarmAll();
  EXPECT_EQ(result.code, 130) << result.err;
  EXPECT_NE(result.out.find("interrupted: drained shard queues"),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("shed batches"), std::string::npos) << result.out;
  ASSERT_TRUE(std::filesystem::exists(checkpoint));

  // The interrupted process's state restores into a fresh serve run.
  CliResult resumed = RunCli({"serve", "--workers", "2", "--batch", "16",
                              "--load-checkpoint", checkpoint});
  EXPECT_EQ(resumed.code, 0) << resumed.err;
  std::filesystem::remove(checkpoint);
}

}  // namespace
}  // namespace cli
}  // namespace kvec
