// Property tests for the pool/arena layer (src/util/arena.h) that the
// serving stack's compaction rests on.
//
// Strategy: seeded random interleavings of the operations the serving
// path actually performs — pmr-container allocate/free churn against a
// ShardPool, scratch Alloc/Reset cycles, and pool-to-pool "compaction"
// rebuilds — with every handed-out byte stamped and re-checked, so a
// use-after-reset, overlap, or misaccounting shows up as a data mismatch
// here and as a hard fault under the ASan CI job (which runs this test
// with detect_leaks=1, KVEC_NO_BUFFER_POOL=1, and the scalar kernels).
// The counter invariants pin the accounting the compaction heuristic
// reads: live returns to zero when containers die, resident never lies
// below live, and destroying a pool releases everything.
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <memory_resource>  // kvec-lint: allow(pool-discipline) tests the wrapper against the raw default resource
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/arena.h"
#include "util/rng.h"

namespace kvec {
namespace {

TEST(CountingResourceTest, MetersLiveBytesBlocksAndHighWater) {
  CountingResource counter(std::pmr::get_default_resource());
  void* a = counter.allocate(100, 8);
  void* b = counter.allocate(28, 4);
  EXPECT_EQ(counter.bytes_live(), 128u);
  EXPECT_EQ(counter.blocks_live(), 2u);
  EXPECT_EQ(counter.bytes_high_water(), 128u);
  counter.deallocate(a, 100, 8);
  EXPECT_EQ(counter.bytes_live(), 28u);
  EXPECT_EQ(counter.blocks_live(), 1u);
  EXPECT_EQ(counter.bytes_high_water(), 128u);  // high water is sticky
  counter.deallocate(b, 28, 4);
  EXPECT_EQ(counter.bytes_live(), 0u);
  EXPECT_EQ(counter.blocks_live(), 0u);
  EXPECT_EQ(counter.allocation_count(), 2u);
  // Identity-equal only: two counters over the same upstream must not
  // compare equal, or pmr would let containers swap buffers across them.
  CountingResource other(std::pmr::get_default_resource());
  EXPECT_TRUE(counter.is_equal(counter));
  EXPECT_FALSE(counter.is_equal(other));
}

TEST(ShardPoolTest, LiveReturnsToZeroWhenContainersDie) {
  ShardPool pool;
  {
    std::pmr::unordered_map<int, std::pmr::vector<int>> map(pool.resource());
    for (int i = 0; i < 1000; ++i) {
      auto& vec = map[i];  // uses-allocator: vector lands in the pool too
      vec.assign(i % 17 + 1, i);
    }
    EXPECT_GT(pool.bytes_live(), 0u);
    EXPECT_GE(pool.bytes_resident(), 0u);
  }
  EXPECT_EQ(pool.bytes_live(), 0u);
  // The pool caches the freed nodes: resident stays up — this gap IS the
  // fragmentation signal compaction consumes.
  EXPECT_GT(pool.bytes_resident(), 0u);
  EXPECT_GE(pool.fragmentation(), 1.0);
}

TEST(ShardPoolTest, ChurnKeepsResidencyBoundedByRecycling) {
  ShardPool pool;
  std::pmr::map<int, std::pmr::vector<int>> map(pool.resource());
  // Steady-state churn at a fixed live size: insert/erase storms must
  // recycle pool nodes, not grow residency per cycle.
  for (int i = 0; i < 200; ++i) map[i].assign(8, i);
  const size_t resident_after_warmup = pool.bytes_resident();
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 200; ++i) map.erase(i);
    for (int i = 0; i < 200; ++i) map[i].assign(8, i);
  }
  // Identical-size recycling should cost little beyond the warm-up
  // footprint (2x allows pool bucketing slack, far below 50 cycles' worth).
  EXPECT_LE(pool.bytes_resident(), 2 * resident_after_warmup);
}

TEST(ScratchArenaTest, AlignmentUsedBytesAndHighWater) {
  ScratchArena arena;
  float* f = arena.AllocArray<float>(100);
  double* d = arena.AllocArray<double>(10);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(f) % alignof(float), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  EXPECT_GE(arena.used_bytes(), 100 * sizeof(float) + 10 * sizeof(double));
  const size_t peak = arena.used_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_GE(arena.high_water(), peak);
  // Post-reset the arena must satisfy the previous peak from one block.
  char* big = arena.AllocArray<char>(peak);
  std::memset(big, 0x5a, peak);
  EXPECT_EQ(arena.reserved_bytes(), arena.reserved_bytes());  // readable
}

TEST(ScratchArenaTest, GrowthPlateausAtHighWater) {
  ScratchArena arena;
  for (int cycle = 0; cycle < 20; ++cycle) {
    arena.AllocArray<float>(4096);
    arena.AllocArray<float>(1024);
    arena.Reset();
  }
  const size_t plateau = arena.reserved_bytes();
  for (int cycle = 0; cycle < 20; ++cycle) {
    arena.AllocArray<float>(4096);
    arena.AllocArray<float>(1024);
    arena.Reset();
  }
  EXPECT_EQ(arena.reserved_bytes(), plateau);  // steady state: no growth
}

// ---- Seeded interleaving properties. ----

// One simulated per-key record: a pmr vector in the pool, stamped with a
// key-derived pattern that is re-verified before every mutation and at
// teardown. Any allocator bug that overlaps or recycles live storage
// breaks the stamp.
using PoolMap = std::pmr::unordered_map<int, std::pmr::vector<uint32_t>>;

uint32_t StampFor(int key, size_t index) {
  return static_cast<uint32_t>(key) * 2654435761u +
         static_cast<uint32_t>(index) * 40503u + 0x9e37u;
}

void FillStamped(int key, std::pmr::vector<uint32_t>* vec, size_t size) {
  vec->resize(size);
  for (size_t i = 0; i < size; ++i) (*vec)[i] = StampFor(key, i);
}

void ExpectStamped(int key, const std::pmr::vector<uint32_t>& vec,
                   const std::string& context) {
  for (size_t i = 0; i < vec.size(); ++i) {
    ASSERT_EQ(vec[i], StampFor(key, i))
        << context << " key " << key << " index " << i;
  }
}

// "Compaction" as the serving stack performs it: rebuild the map into a
// fresh pool (uses-allocator copies), swap, drop the old pool.
void CompactInto(std::unique_ptr<ShardPool>* pool,
                 std::unique_ptr<PoolMap>* map) {
  auto fresh_pool = std::make_unique<ShardPool>();
  auto fresh_map = std::make_unique<PoolMap>(fresh_pool->resource());
  fresh_map->reserve((*map)->size());
  for (const auto& [key, vec] : **map) fresh_map->emplace(key, vec);
  *map = std::move(fresh_map);   // old containers die while old pool lives
  *pool = std::move(fresh_pool);
}

void RunPoolInterleaving(uint64_t seed) {
  Rng rng(seed);
  auto pool = std::make_unique<ShardPool>();
  auto map = std::make_unique<PoolMap>(pool->resource());
  const std::string context = "seed " + std::to_string(seed);

  int next_key = 0;
  for (int step = 0; step < 3000; ++step) {
    const int op = rng.NextInt(100);
    if (op < 45 || map->empty()) {
      // Insert (or grow) a key with a stamped payload of random size.
      const int key = rng.NextBernoulli(0.7) || map->empty()
                          ? next_key++
                          : rng.NextInt(next_key);
      FillStamped(key, &(*map)[key], static_cast<size_t>(rng.NextInt(64)) + 1);
    } else if (op < 80) {
      // Erase a random live key — after verifying its stamp.
      auto it = map->begin();
      std::advance(it, rng.NextInt(static_cast<int>(map->size())));
      ExpectStamped(it->first, it->second, context);
      map->erase(it);
    } else if (op < 95) {
      // Shrink/regrow a live key in place.
      auto it = map->begin();
      std::advance(it, rng.NextInt(static_cast<int>(map->size())));
      ExpectStamped(it->first, it->second, context);
      FillStamped(it->first, &it->second,
                  static_cast<size_t>(rng.NextInt(96)) + 1);
    } else {
      // Compact: every stamp must survive the pool swap.
      CompactInto(&pool, &map);
      for (const auto& [key, vec] : *map) ExpectStamped(key, vec, context);
      // A fresh pool starts tight: nothing dead is carried over.
      EXPECT_GE(pool->bytes_resident(), pool->bytes_live());
    }
    // Accounting invariants hold at every step.
    ASSERT_GE(pool->bytes_resident(), pool->bytes_live()) << context;
    ASSERT_GE(pool->fragmentation(), 1.0) << context;
  }

  for (const auto& [key, vec] : *map) ExpectStamped(key, vec, context);
  map.reset();
  EXPECT_EQ(pool->bytes_live(), 0u) << context;  // no leak in the pool
}

TEST(ArenaPropertyTest, PoolInterleavingsSeed1) { RunPoolInterleaving(1); }
TEST(ArenaPropertyTest, PoolInterleavingsSeed2) { RunPoolInterleaving(2); }
TEST(ArenaPropertyTest, PoolInterleavingsSeed3) { RunPoolInterleaving(3); }

void RunScratchInterleaving(uint64_t seed) {
  Rng rng(seed);
  ScratchArena arena;
  const std::string context = "seed " + std::to_string(seed);

  for (int cycle = 0; cycle < 200; ++cycle) {
    // A "microbatch": several allocations, all stamped, all verified at
    // the end of the cycle — writes to one panel must never bleed into
    // another, including across the main-block/overflow boundary.
    std::vector<std::pair<uint32_t*, size_t>> panels;
    const int num_panels = rng.NextInt(8) + 1;
    for (int p = 0; p < num_panels; ++p) {
      // Sizes straddle the growth threshold so some cycles overflow.
      const size_t count = static_cast<size_t>(rng.NextInt(5000)) + 1;
      uint32_t* panel = arena.AllocArray<uint32_t>(count);
      for (size_t i = 0; i < count; ++i) {
        panel[i] = StampFor(p + cycle * 31, i);
      }
      panels.emplace_back(panel, count);
    }
    for (int p = 0; p < num_panels; ++p) {
      for (size_t i = 0; i < panels[p].second; ++i) {
        ASSERT_EQ(panels[p].first[i], StampFor(p + cycle * 31, i))
            << context << " cycle " << cycle << " panel " << p;
      }
    }
    ASSERT_GE(arena.high_water(), arena.used_bytes()) << context;
    arena.Reset();
    ASSERT_EQ(arena.used_bytes(), 0u) << context;
  }
}

TEST(ArenaPropertyTest, ScratchInterleavingsSeed1) { RunScratchInterleaving(7); }
TEST(ArenaPropertyTest, ScratchInterleavingsSeed2) { RunScratchInterleaving(8); }

TEST(ArenaPropertyTest, NestedPmrContainersPropagateIntoThePool) {
  // The serving stack leans on uses-allocator construction: map nodes,
  // nested vectors, and set nodes must ALL land in the pool — a nested
  // container silently falling back to the default resource would defeat
  // compaction. Everything below allocates; live bytes must cover it.
  ShardPool pool;
  std::pmr::unordered_map<int, std::pmr::vector<int>> map(pool.resource());
  std::pmr::set<std::pair<int64_t, int>> set(pool.resource());
  std::pmr::map<int, std::pmr::map<int, int>> nested(pool.resource());
  for (int i = 0; i < 100; ++i) {
    map[i].assign(32, i);
    set.insert({i, i});
    nested[i][i * 2] = i;
  }
  // 100 vectors of 32 ints alone exceed 12800 bytes; if nesting leaked to
  // the default resource, live would sit far below this.
  EXPECT_GT(pool.bytes_live(), 100u * 32u * sizeof(int));
}

}  // namespace
}  // namespace kvec
