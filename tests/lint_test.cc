// Self-test for scripts/kvec_lint.py (docs/STATIC_ANALYSIS.md).
//
// The lint pass is part of the build gate, so it gets the same treatment
// as any other component: a fixture directory of deliberate violations —
// one file per rule — that the linter MUST flag with the right rule id,
// and a clean fixture it MUST pass. A third test runs the linter over the
// real tree, which keeps "the tree is lint-clean" a tested invariant
// rather than a CI-only one.
//
// The fixtures live in tests/lint_fixtures/. The linter's directory walk
// prunes any directory named lint_fixtures, so the violations never leak
// into a normal `kvec_lint.py tests/` run; they are only scanned when the
// path is passed explicitly, as done here.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

#ifndef KVEC_TEST_DATA_DIR
#define KVEC_TEST_DATA_DIR "tests/data"
#endif

// KVEC_TEST_DATA_DIR is "<repo_root>/tests/data"; the linter and fixtures
// are addressed relative to the repo root.
std::string RepoRoot() {
  std::string data_dir = KVEC_TEST_DATA_DIR;
  const std::string suffix = "/tests/data";
  if (data_dir.size() > suffix.size() &&
      data_dir.compare(data_dir.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    return data_dir.substr(0, data_dir.size() - suffix.size());
  }
  return ".";
}

struct LintRun {
  int exit_code = -1;
  std::string output;
};

// Runs `python3 scripts/kvec_lint.py <args>` from the repo root, capturing
// stdout+stderr. Returns exit_code -1 when the process could not be run.
LintRun RunLint(const std::string& args) {
  const std::string command = "cd '" + RepoRoot() +
                              "' && python3 scripts/kvec_lint.py " + args +
                              " 2>&1";
  LintRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer;
  size_t got = 0;
  while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), got);
  }
  const int status = pclose(pipe);
  if (status != -1 && WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
  }
  return run;
}

bool HavePython3() {
  return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

#define SKIP_WITHOUT_PYTHON3()                           \
  do {                                                   \
    if (!HavePython3()) {                                \
      GTEST_SKIP() << "python3 not available on PATH";   \
    }                                                    \
  } while (0)

TEST(LintTest, CleanFixturePasses) {
  SKIP_WITHOUT_PYTHON3();
  const LintRun run = RunLint("tests/lint_fixtures/clean");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, ViolationFixturesFlagEveryRule) {
  SKIP_WITHOUT_PYTHON3();
  const LintRun run = RunLint("tests/lint_fixtures/violations");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // One fixture per rule; each must be flagged with its own rule id.
  const char* kExpected[] = {
      "[fault-point-doc]",  "[naked-new]",   "[banned-call]",
      "[pragma-once]",      "[iostream-outside-cli]",
      "[raw-syscall]",      "[test-wiring]", "[include-path]",
      "[pool-discipline]",  "[section-id]",
      // Not a configurable rule but a linter invariant: suppressions must
      // name a real rule and carry a reason.
      "[bad-allow]",
  };
  for (const char* rule : kExpected) {
    EXPECT_NE(run.output.find(rule), std::string::npos)
        << "rule " << rule << " did not fire; output:\n"
        << run.output;
  }
}

TEST(LintTest, ViolationFixturesPinpointTheRightLines) {
  SKIP_WITHOUT_PYTHON3();
  const LintRun run = RunLint("tests/lint_fixtures/violations");
  // Spot-check that findings carry file:line anchors, not just rule names.
  EXPECT_NE(run.output.find("missing_pragma.h:1: [pragma-once]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("stray_helper.cc:1: [test-wiring]"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, RealTreeIsClean) {
  SKIP_WITHOUT_PYTHON3();
  const LintRun run = RunLint("src/ tests/ apps/ bench/");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("violation"), std::string::npos) << run.output;
}

}  // namespace
