// Compaction correctness: rebuilding a shard's pool-backed state must be
// invisible in every observable channel.
//
// The contract (docs/SERVING.md "Memory management") has two halves:
//  * differential-replay identity — a server that compacts mid-stream
//    emits the bit-identical StreamEvent sequence (keys, labels, causes,
//    order, confidences) of a server that never compacts, for the same
//    stream;
//  * checkpoint byte-identity — EncodeCheckpoint() returns byte-identical
//    strings immediately before and after a compaction, and a compacting
//    server's checkpoint equals a never-compacting twin's at the same
//    stream position.
// Both are exercised with compactions *forced* at exact stream positions
// (including rotation/idle/capacity boundaries), not left to the
// heuristic; the `compaction.run` fault point covers the suppression path
// and the heuristic has its own trigger test.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "util/fault_injection.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

std::vector<Item> ConcatStream(const Dataset& dataset) {
  std::vector<Item> stream;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      stream.push_back(item);
    }
    offset += 100;
  }
  return stream;
}

void ExpectIdenticalEvents(const std::vector<StreamEvent>& baseline,
                           const std::vector<StreamEvent>& compacted,
                           const std::string& context) {
  ASSERT_EQ(baseline.size(), compacted.size()) << context;
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].key, compacted[i].key) << context << " #" << i;
    EXPECT_EQ(baseline[i].predicted_label, compacted[i].predicted_label)
        << context << " #" << i;
    EXPECT_EQ(baseline[i].cause, compacted[i].cause) << context << " #" << i;
    EXPECT_EQ(baseline[i].observed_items, compacted[i].observed_items)
        << context << " #" << i;
    // Bit-identical: compaction moves state, it never recomputes it.
    EXPECT_EQ(baseline[i].confidence, compacted[i].confidence)
        << context << " #" << i;
  }
}

// Serving counters only: the memory gauges and the compaction counter are
// *expected* to differ between the twins.
void ExpectIdenticalServingStats(const StreamServerStats& a,
                                 const StreamServerStats& b,
                                 const std::string& context) {
  EXPECT_EQ(a.items_processed, b.items_processed) << context;
  EXPECT_EQ(a.sequences_classified, b.sequences_classified) << context;
  EXPECT_EQ(a.policy_halts, b.policy_halts) << context;
  EXPECT_EQ(a.idle_timeouts, b.idle_timeouts) << context;
  EXPECT_EQ(a.capacity_evictions, b.capacity_evictions) << context;
  EXPECT_EQ(a.rotation_classifications, b.rotation_classifications) << context;
  EXPECT_EQ(a.flush_classifications, b.flush_classifications) << context;
  EXPECT_EQ(a.windows_started, b.windows_started) << context;
  EXPECT_EQ(a.class_counts, b.class_counts) << context;
}

// The two bound regimes of the replay harness: rotation-heavy, and tight
// idle/capacity eviction. Compaction must be invisible under both.
std::vector<StreamServerConfig> Regimes() {
  StreamServerConfig rotation;
  rotation.max_window_items = 37;
  rotation.idle_timeout = 1 << 20;

  StreamServerConfig evicting;
  evicting.max_window_items = 51;
  evicting.idle_timeout = 9;
  evicting.idle_check_interval = 4;
  evicting.max_open_keys = 2;

  // The heuristic stays out of the way in both: compactions in these
  // tests run exactly where the test forces them.
  rotation.compaction_check_interval = 0;
  evicting.compaction_check_interval = 0;
  return {rotation, evicting};
}

TEST(CompactionTest, EventStreamIdenticalUnderForcedCompaction) {
  Fixture fixture = TrainSmallModel(81);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ASSERT_GT(stream.size(), 64u);

  for (const StreamServerConfig& config : Regimes()) {
    const std::string context =
        "window " + std::to_string(config.max_window_items);
    StreamServer baseline(*fixture.model, config);
    StreamServer compacting(*fixture.model, config);

    std::vector<StreamEvent> expected, actual;
    for (size_t i = 0; i < stream.size(); ++i) {
      for (const StreamEvent& event : baseline.Observe(stream[i])) {
        expected.push_back(event);
      }
      for (const StreamEvent& event : compacting.Observe(stream[i])) {
        actual.push_back(event);
      }
      // Prime-strided forced compactions sweep across rotation, idle, and
      // capacity boundaries as the stream advances.
      if (i % 17 == 0) ASSERT_TRUE(compacting.Compact()) << context;
    }
    for (const StreamEvent& event : baseline.Flush()) {
      expected.push_back(event);
    }
    for (const StreamEvent& event : compacting.Flush()) {
      actual.push_back(event);
    }

    ExpectIdenticalEvents(expected, actual, context);
    ExpectIdenticalServingStats(baseline.stats(), compacting.stats(), context);
    EXPECT_GT(compacting.stats().compactions, 0) << context;
    EXPECT_EQ(baseline.stats().compactions, 0) << context;
  }
}

TEST(CompactionTest, CheckpointBytesIdenticalAcrossCompaction) {
  Fixture fixture = TrainSmallModel(82);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);

  for (const StreamServerConfig& config : Regimes()) {
    StreamServer baseline(*fixture.model, config);
    StreamServer compacting(*fixture.model, config);
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      baseline.Observe(stream[i]);
      compacting.Observe(stream[i]);
      if (i % 23 == 0) ASSERT_TRUE(compacting.Compact());
    }

    // Before/after around one more compaction on the same server...
    const std::string before = compacting.EncodeCheckpoint();
    ASSERT_TRUE(compacting.Compact());
    const std::string after = compacting.EncodeCheckpoint();
    EXPECT_EQ(before, after);
    // ...and against the never-compacted twin at the same position.
    EXPECT_EQ(baseline.EncodeCheckpoint(), after);
  }
}

TEST(CompactionTest, ReplayFromCompactedCheckpointIsIdentical) {
  Fixture fixture = TrainSmallModel(83);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  const StreamServerConfig config = Regimes()[1];  // evicting regime
  const size_t cut = stream.size() / 2;

  StreamServer uninterrupted(*fixture.model, config);
  for (size_t i = 0; i < cut; ++i) {
    uninterrupted.Observe(stream[i]);
    if (i % 13 == 0) ASSERT_TRUE(uninterrupted.Compact());
  }

  const std::string bytes = uninterrupted.EncodeCheckpoint();
  StreamServer restored(*fixture.model, config);
  ASSERT_TRUE(restored.RestoreCheckpoint(bytes));
  EXPECT_EQ(restored.open_keys(), uninterrupted.open_keys());

  // The suffix compacts at *different* positions on each replica; the
  // event streams must not notice.
  std::vector<StreamEvent> expected, actual;
  for (size_t i = cut; i < stream.size(); ++i) {
    for (const StreamEvent& event : uninterrupted.Observe(stream[i])) {
      expected.push_back(event);
    }
    for (const StreamEvent& event : restored.Observe(stream[i])) {
      actual.push_back(event);
    }
    if (i % 19 == 0) ASSERT_TRUE(uninterrupted.Compact());
    if (i % 7 == 0) ASSERT_TRUE(restored.Compact());
  }
  for (const StreamEvent& event : uninterrupted.Flush()) {
    expected.push_back(event);
  }
  for (const StreamEvent& event : restored.Flush()) actual.push_back(event);

  ExpectIdenticalEvents(expected, actual, "compacted replay");
  ExpectIdenticalServingStats(uninterrupted.stats(), restored.stats(),
                              "compacted replay");
}

TEST(CompactionTest, RestorePreservesCompactionKnobsAndCounter) {
  Fixture fixture = TrainSmallModel(84);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);

  StreamServerConfig config;
  config.compaction_check_interval = 0;
  StreamServer source(*fixture.model, config);
  for (size_t i = 0; i < 32 && i < stream.size(); ++i) {
    source.Observe(stream[i]);
  }
  const std::string bytes = source.EncodeCheckpoint();

  // The target runs different (process-local) knobs and has compacted;
  // restoring serving state must clobber neither.
  StreamServerConfig target_config;
  target_config.compaction_check_interval = 7;
  target_config.compaction_fragmentation_threshold = 3.5;
  target_config.compaction_min_bytes = 123;
  StreamServer target(*fixture.model, target_config);
  ASSERT_TRUE(target.Compact());
  ASSERT_EQ(target.stats().compactions, 1);
  ASSERT_TRUE(target.RestoreCheckpoint(bytes));
  EXPECT_EQ(target.stats().compactions, 1);
  EXPECT_EQ(target.stats().items_processed, source.stats().items_processed);
}

TEST(CompactionTest, FaultPointSuppressesTheRun) {
  Fixture fixture = TrainSmallModel(84);
  StreamServer server(*fixture.model, {});
  FaultInjection::Arm("compaction.run", [](const char*) { return true; });
  EXPECT_FALSE(server.Compact());
  EXPECT_EQ(server.stats().compactions, 0);
  EXPECT_EQ(FaultInjection::FireCount("compaction.run"), 1);
  FaultInjection::DisarmAll();
  EXPECT_TRUE(server.Compact());
  EXPECT_EQ(server.stats().compactions, 1);
}

TEST(CompactionTest, HeuristicTriggersAndMetersCompaction) {
  Fixture fixture = TrainSmallModel(85);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);

  StreamServerConfig config;
  // Trip the heuristic as early as possible: check every 8 items, any
  // nonzero residency qualifies, and resident/live >= 1 always holds.
  config.compaction_check_interval = 8;
  config.compaction_fragmentation_threshold = 1.0;
  config.compaction_min_bytes = 1;
  StreamServer server(*fixture.model, config);
  for (size_t i = 0; i < 64 && i < stream.size(); ++i) {
    server.Observe(stream[i]);
  }
  const StreamServerStats& stats = server.stats();
  EXPECT_GT(stats.compactions, 0);
  EXPECT_GT(stats.bytes_resident, 0);
  EXPECT_GT(stats.pool_blocks, 0);
}

TEST(CompactionTest, ShardedCompactAllRunsEveryShardAndMergesGauges) {
  Fixture fixture = TrainSmallModel(86);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);

  for (int workers : {0, 2}) {
    ShardedStreamServerConfig config;
    config.num_shards = 2;
    config.worker_threads = workers;
    config.shard.compaction_check_interval = 0;
    ShardedStreamServer sharded(*fixture.model, config);
    StreamServer reference(*fixture.model, config.shard);

    std::vector<StreamEvent> expected, actual;
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      for (const StreamEvent& event : sharded.Observe(stream[i])) {
        actual.push_back(event);
      }
      if (i % 11 == 0) EXPECT_EQ(sharded.CompactAll(), 2);
    }
    const StreamServerStats merged = sharded.stats();
    EXPECT_GT(merged.compactions, 0);
    EXPECT_GT(merged.bytes_resident, 0);
    EXPECT_GT(merged.pool_blocks, 0);

    // Per-shard identity against standalone servers fed each sub-stream:
    // compaction must not leak across the shard boundary.
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      if (sharded.ShardOf(stream[i].key) != 0) continue;
      for (const StreamEvent& event : reference.Observe(stream[i])) {
        expected.push_back(event);
      }
    }
    std::vector<StreamEvent> shard0;
    for (const StreamEvent& event : actual) {
      if (sharded.ShardOf(event.key) == 0) shard0.push_back(event);
    }
    ExpectIdenticalEvents(expected, shard0,
                          "workers " + std::to_string(workers));
  }
}

}  // namespace
}  // namespace kvec
