// The load generator: latency percentile math, the end-to-end loadgen
// loop against a real loopback server, retry/reconnect under injected
// faults, and the CLI round trip (`kvec serve --listen` + `kvec loadgen`
// + SIGINT drain → exit 130).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cli/subcommands.h"
#include "core/sharded_stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "net/latency_recorder.h"
#include "net/loadgen.h"
#include "net/tcp_ingest_server.h"
#include "util/fault_injection.h"

namespace kvec {
namespace net {
namespace {

class NetLoadgenTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::DisarmAll(); }
};

// ---- LatencyRecorder -----------------------------------------------------

TEST_F(NetLoadgenTest, RecorderIsExactBelowThirtyTwoMicros) {
  LatencyRecorder recorder;
  for (int64_t v = 0; v < 32; ++v) recorder.Record(v);
  EXPECT_EQ(recorder.count(), 32);
  EXPECT_EQ(recorder.PercentileUs(0.0), 0);
  // ceil(0.5 * 32) = 16th smallest = value 15; exact buckets below 32.
  EXPECT_EQ(recorder.PercentileUs(0.5), 15);
  EXPECT_EQ(recorder.PercentileUs(1.0), 31);
}

TEST_F(NetLoadgenTest, RecorderBoundsRelativeErrorAtAllMagnitudes) {
  LatencyRecorder recorder;
  // One sample: every percentile is that sample, within 1/32 relative
  // error from bucket quantization.
  for (int64_t value :
       {33LL, 100LL, 12345LL, 1000000LL, 87654321LL, 4102444800LL}) {
    LatencyRecorder single;
    single.Record(value);
    for (double q : {0.5, 0.99, 0.999}) {
      const int64_t reported = single.PercentileUs(q);
      EXPECT_GE(reported, value - value / 32 - 1) << value;
      EXPECT_LE(reported, value) << value;  // clamped to observed max
    }
    recorder.Record(value);
  }
  EXPECT_EQ(recorder.count(), 6);
  EXPECT_EQ(recorder.PercentileUs(1.0), 4102444800LL);
}

TEST_F(NetLoadgenTest, RecorderPercentilesOrderedOnSkewedDistribution) {
  LatencyRecorder recorder;
  // 990 fast requests, 10 slow outliers: p50 fast, p999 slow.
  for (int i = 0; i < 990; ++i) recorder.Record(100 + i % 7);
  for (int i = 0; i < 10; ++i) recorder.Record(50000 + i);
  const LatencySnapshot snapshot = recorder.Snapshot();
  EXPECT_EQ(snapshot.count, 1000);
  EXPECT_LT(snapshot.p50_us, 120);
  EXPECT_LT(snapshot.p90_us, 120);
  EXPECT_LT(snapshot.p99_us, 120);
  EXPECT_GT(snapshot.p999_us, 45000);
  EXPECT_LE(snapshot.p50_us, snapshot.p90_us);
  EXPECT_LE(snapshot.p90_us, snapshot.p99_us);
  EXPECT_LE(snapshot.p99_us, snapshot.p999_us);
  EXPECT_LE(snapshot.p999_us, snapshot.max_us);
  EXPECT_GE(snapshot.min_us, 100);
}

TEST_F(NetLoadgenTest, RecorderMergeMatchesSingleRecorder) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder whole;
  for (int i = 0; i < 500; ++i) {
    const int64_t value = 37 * i + 11;
    (i % 2 == 0 ? a : b).Record(value);
    whole.Record(value);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.PercentileUs(q), whole.PercentileUs(q)) << q;
  }
  const LatencySnapshot merged = a.Snapshot();
  const LatencySnapshot single = whole.Snapshot();
  EXPECT_EQ(merged.min_us, single.min_us);
  EXPECT_EQ(merged.max_us, single.max_us);
  EXPECT_DOUBLE_EQ(merged.mean_us, single.mean_us);
}

TEST_F(NetLoadgenTest, RecorderEmptySnapshotIsZero) {
  const LatencySnapshot snapshot = LatencyRecorder().Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.p999_us, 0);
}

// ---- End-to-end loadgen --------------------------------------------------

struct Harness {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
  std::unique_ptr<ShardedStreamServer> server;
  std::unique_ptr<TcpIngestServer> tcp;
};

std::unique_ptr<Harness> StartHarness() {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  TrafficGenerator generator(generator_config);
  auto harness = std::make_unique<Harness>();
  harness->dataset = GenerateDataset(generator, {10, 2, 6}, 21);
  KvecConfig config = KvecConfig::ForSpec(harness->dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 2;
  harness->model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(harness->model.get());
  trainer.Train(harness->dataset.train);

  ShardedStreamServerConfig sharded;
  sharded.num_shards = 2;
  harness->server =
      std::make_unique<ShardedStreamServer>(*harness->model, sharded);
  TcpIngestServerConfig net_config;
  net_config.port = 0;
  net_config.num_value_fields =
      harness->model->config().spec.num_value_fields();
  net_config.num_classes = harness->model->config().spec.num_classes;
  harness->tcp = std::make_unique<TcpIngestServer>(harness->server.get(),
                                                   net_config);
  std::string error;
  EXPECT_TRUE(harness->tcp->Start(&error)) << error;
  return harness;
}

LoadgenConfig HarnessLoadgenConfig(const Harness& harness) {
  LoadgenConfig config;
  config.client.port = harness.tcp->port();
  config.num_value_fields = harness.model->config().spec.num_value_fields();
  config.num_classes = harness.model->config().spec.num_classes;
  config.batch_size = 16;
  config.backoff_ms = 1;
  config.backoff_cap_ms = 20;
  return config;
}

std::vector<Item> HarnessStream(const Harness& harness, int count) {
  std::vector<Item> items;
  int offset = 0;
  while (static_cast<int>(items.size()) < count) {
    for (const TangledSequence& episode : harness.dataset.test) {
      for (Item item : episode.items) {
        item.key += offset;
        items.push_back(std::move(item));
        if (static_cast<int>(items.size()) == count) return items;
      }
      offset += 100;
    }
  }
  return items;
}

TEST_F(NetLoadgenTest, DeliversEveryBatchAndReportsPercentiles) {
  auto harness = StartHarness();
  const std::vector<Item> items = HarnessStream(*harness, 96);
  LoadgenConfig config = HarnessLoadgenConfig(*harness);
  config.connections = 2;
  LoadgenReport report;
  std::string error;
  ASSERT_TRUE(RunLoadgen(config, items, &report, &error)) << error;
  EXPECT_EQ(report.batches_failed, 0);
  EXPECT_EQ(report.items_acked, 96);
  EXPECT_EQ(report.batches_sent, 6);  // 48 items per connection / 16
  EXPECT_EQ(report.latency.count, report.batches_sent);
  // Loopback round trips are real: the percentiles must be nonzero,
  // ordered, and bounded by the observed max.
  EXPECT_GT(report.latency.p50_us, 0);
  EXPECT_GE(report.latency.p99_us, report.latency.p50_us);
  EXPECT_GE(report.latency.p999_us, report.latency.p99_us);
  EXPECT_LE(report.latency.p999_us, report.latency.max_us);
  EXPECT_GT(report.items_per_sec, 0.0);

  harness->tcp->Shutdown();
  harness->server->Drain();
  const StreamServerStats stats = harness->server->stats();
  EXPECT_EQ(stats.items_submitted, stats.items_processed + stats.items_shed);
  EXPECT_EQ(stats.items_processed, 96);
}

TEST_F(NetLoadgenTest, PacedRateSpreadsBatchesOverTime) {
  auto harness = StartHarness();
  const std::vector<Item> items = HarnessStream(*harness, 64);
  LoadgenConfig config = HarnessLoadgenConfig(*harness);
  config.connections = 1;
  config.rate = 50.0;  // 4 batches at 50/s → at least ~60ms of pacing
  LoadgenReport report;
  std::string error;
  ASSERT_TRUE(RunLoadgen(config, items, &report, &error)) << error;
  EXPECT_EQ(report.batches_sent, 4);
  EXPECT_GE(report.elapsed_ms, 50);
}

// Injected torn reads (`net.read_frame`) kill the first few round trips;
// the loadgen must reconnect, re-hello, retry, and still deliver every
// batch exactly as many times as it takes.
TEST_F(NetLoadgenTest, RecoversFromInjectedDisconnects) {
  auto harness = StartHarness();
  std::atomic<int> remaining{3};
  FaultInjection::Arm("net.read_frame", [&remaining](const char*) {
    int value = remaining.load();
    while (value > 0 &&
           !remaining.compare_exchange_weak(value, value - 1)) {
    }
    return value > 0;
  });
  const std::vector<Item> items = HarnessStream(*harness, 48);
  LoadgenConfig config = HarnessLoadgenConfig(*harness);
  config.connections = 1;
  config.retries = 10;
  LoadgenReport report;
  std::string error;
  ASSERT_TRUE(RunLoadgen(config, items, &report, &error)) << error;
  EXPECT_EQ(report.batches_failed, 0);
  EXPECT_EQ(report.batches_sent, 3);
  // The injected failures had to be survived, not avoided.
  EXPECT_GT(report.retries + report.reconnects, 0);
  // FireCount counts hook invocations; the hook returned true 3 times.
  EXPECT_GE(FaultInjection::FireCount("net.read_frame"), 3);
}

TEST_F(NetLoadgenTest, ReportsFailureWhenNoServerListens) {
  LoadgenConfig config;
  config.client.port = 1;  // nothing listens on port 1
  config.client.connect_timeout_ms = 200;
  config.client.request_timeout_ms = 200;
  config.retries = 0;
  config.backoff_ms = 1;
  config.backoff_cap_ms = 2;
  std::vector<Item> items(4);
  LoadgenReport report;
  std::string error;
  EXPECT_FALSE(RunLoadgen(config, items, &report, &error));
  EXPECT_FALSE(error.empty());
}

// ---- CLI round trip ------------------------------------------------------

// The full reproduction path: `kvec serve --listen 127.0.0.1:0
// --port-file ...` in a background thread, `kvec loadgen` against the
// reported ephemeral port, then a SIGINT-equivalent interrupt that must
// drain and exit 130 with coherent final counters.
TEST_F(NetLoadgenTest, CliServeListenLoadgenInterruptRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("kvec_net_cli_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string port_file = (dir / "port").string();

  std::ostringstream serve_out;
  std::ostringstream serve_err;
  int serve_code = -1;
  std::thread serve_thread([&] {
    serve_code = cli::RunKvecCli(
        {"serve", "--preset", "ustc", "--scale", "tiny", "--episodes", "12",
         "--listen", "127.0.0.1:0", "--port-file", port_file, "--shards",
         "2", "--workers", "2", "--json"},
        serve_out, serve_err);
  });

  // Wait for the ephemeral port to be reported.
  std::string port;
  for (int i = 0; i < 600 && port.empty(); ++i) {
    std::ifstream in(port_file);
    std::getline(in, port);
    if (port.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_FALSE(port.empty()) << serve_err.str();

  std::ostringstream loadgen_out;
  std::ostringstream loadgen_err;
  const int loadgen_code = cli::RunKvecCli(
      {"loadgen", "--preset", "ustc", "--scale", "tiny", "--episodes", "12",
       "--connect", "127.0.0.1:" + port, "--connections", "2", "--batch",
       "32", "--json"},
      loadgen_out, loadgen_err);
  EXPECT_EQ(loadgen_code, 0) << loadgen_err.str();
  EXPECT_NE(loadgen_out.str().find("\"p999\""), std::string::npos);
  EXPECT_NE(loadgen_out.str().find("\"items_acked\""), std::string::npos);

  cli::RequestServeInterrupt();
  serve_thread.join();
  EXPECT_EQ(serve_code, 130) << serve_err.str();
  const std::string json = serve_out.str();
  EXPECT_NE(json.find("\"interrupted\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections_accepted\": 2"), std::string::npos)
      << json;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace net
}  // namespace kvec
