// Fixture: a header the lint pass must accept.
#pragma once

inline int FixtureClean() { return 7; }
