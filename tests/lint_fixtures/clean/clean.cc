// Fixture: a source file the lint pass must accept — canonical include,
// documented fault point, a reasoned suppression, cli-free output.
#include "clean.h"

#include "util/check.h"
#include "util/fault_injection.h"

int FixtureCleanUse() {
  // kvec-lint: allow-next(naked-new) exercising the suppression syntax
  int* p = new int(9);
  KVEC_CHECK(p != nullptr);
  bool failed = KVEC_FAULT_POINT("checkpoint.save");
  int value = failed ? 0 : *p;
  // kvec-lint: allow-next(naked-new) exercising the suppression syntax
  delete p;
  return value + FixtureClean();
}
