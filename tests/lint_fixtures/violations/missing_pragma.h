// Fixture: fires pragma-once — a header with an old-style guard only.
#ifndef KVEC_LINT_FIXTURE_MISSING_PRAGMA_H_
#define KVEC_LINT_FIXTURE_MISSING_PRAGMA_H_

inline int FixtureMissingPragma() { return 1; }

#endif  // KVEC_LINT_FIXTURE_MISSING_PRAGMA_H_
