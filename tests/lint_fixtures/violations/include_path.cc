// Fixture: fires include-path — relative traversal, a src/ prefix, and
// an include that resolves nowhere.
#include "../util/check.h"
#include "src/util/check.h"
#include "util/does_not_exist.h"

int FixtureIncludePath() { return 0; }
