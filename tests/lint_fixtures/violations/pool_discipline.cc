// Fixture: fires pool-discipline — raw pmr resource primitives outside
// src/util/arena.* and C allocation calls anywhere.
#include <cstdlib>
#include <memory_resource>

void* FixturePoolDiscipline() {
  std::pmr::unsynchronized_pool_resource pool;  // raw primitive
  std::pmr::monotonic_buffer_resource scratch;  // raw primitive
  void* block = malloc(64);                     // C allocation
  free(block);                                  // C allocation
  return std::pmr::new_delete_resource();       // raw primitive
}
