// Fixture: fires section-id — a registry constant defined outside
// src/util/serialize.h, and integer literals used as section ids.
#include <cstdint>
#include <string>
#include <vector>

struct CheckpointSection {
  int32_t id = 0;
  std::string payload;
};
struct Checkpoint {
  std::vector<CheckpointSection> sections;
  const CheckpointSection* Find(int32_t id) const { return nullptr; }
};

// A duplicate registry definition (the real one lives in serialize.h).
constexpr int32_t kCheckpointSectionRogue = 6;

void FixtureSectionId(Checkpoint* checkpoint) {
  checkpoint->sections.push_back({3, std::string("payload")});  // raw id
  CheckpointSection section{17, std::string("model")};          // raw id
  checkpoint->sections.push_back(section);
  (void)checkpoint->Find(4);                                    // raw id
}
