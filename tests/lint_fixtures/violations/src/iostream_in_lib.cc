// Fixture: fires iostream-outside-cli — a src/ file (not src/cli/)
// writing to std::cout.
#include <iostream>

void FixtureIostream() { std::cout << "library code must not print\n"; }
