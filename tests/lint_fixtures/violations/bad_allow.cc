// Fixture: fires bad-allow — a suppression without a reason and one
// naming an unknown rule.
int* FixtureBadAllow() {
  int* p = new int(5);  // kvec-lint: allow(naked-new)
  delete p;             // kvec-lint: allow(no-such-rule) because
  return nullptr;
}
