// Fixture: fires naked-new — raw allocation outside the tensor layer.
int* FixtureNakedNew() {
  int* p = new int(3);
  delete p;
  return new int(4);
}
