// Fixture: fires raw-syscall — naked socket syscalls outside src/net/.
#include <cstddef>

int FixtureRawSyscall(int fd, const void* data, std::size_t size) {
  int sock = socket(2, 1, 0);            // bare call
  ::connect(sock, nullptr, 0);           // ::-qualified call
  return static_cast<int>(send(fd, data, size, 0));
}
