// Fixture: fires fault-point-doc — the point below is not in SERVING.md.
#include "util/fault_injection.h"

bool FixtureFaultPoint() {
  return KVEC_FAULT_POINT("lint_fixture.undocumented_point");
}
