// Fixture: fires banned-call — all three banned families.
#include <cstdlib>
#include <ctime>

long FixtureBanned() {
  long seed = static_cast<long>(time(nullptr));
  seed += std::rand();
  return seed;
}
