// Fixture: fires test-wiring — a .cc in a tests/ directory that the
// *_test.cc CMake glob would silently never build or run.
int FixtureStrayHelper() { return 42; }
