#include "data/presets.h"

#include "data/stats.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(PresetsTest, NamesAndScales) {
  EXPECT_STREQ(PresetName(PresetId::kUstcTfc2016), "USTC-TFC2016");
  EXPECT_STREQ(PresetName(PresetId::kTrafficFg), "Traffic-FG");
  EXPECT_STREQ(ScaleName(ExperimentScale::kTiny), "tiny");
  ExperimentScale scale;
  EXPECT_TRUE(ParseScale("full", &scale));
  EXPECT_EQ(scale, ExperimentScale::kFull);
  EXPECT_FALSE(ParseScale("huge", &scale));
}

TEST(PresetsTest, ClassCountsMatchTableOne) {
  EXPECT_EQ(MakeGenerator(PresetId::kUstcTfc2016, ExperimentScale::kTiny)
                ->spec()
                .num_classes,
            9);
  EXPECT_EQ(MakeGenerator(PresetId::kMovieLens1M, ExperimentScale::kTiny)
                ->spec()
                .num_classes,
            2);
  EXPECT_EQ(MakeGenerator(PresetId::kTrafficFg, ExperimentScale::kTiny)
                ->spec()
                .num_classes,
            12);
  EXPECT_EQ(MakeGenerator(PresetId::kTrafficApp, ExperimentScale::kTiny)
                ->spec()
                .num_classes,
            10);
  EXPECT_EQ(MakeGenerator(PresetId::kSyntheticEarly, ExperimentScale::kTiny)
                ->spec()
                .num_classes,
            2);
}

TEST(PresetsTest, SessionFieldsMatchPaper) {
  // Traffic datasets: sessions are direction bursts (field 1).
  EXPECT_EQ(MakeGenerator(PresetId::kTrafficFg, ExperimentScale::kTiny)
                ->spec()
                .session_field,
            1);
  // MovieLens: sessions are genre runs (field 1 of movie/genre/rating).
  EXPECT_EQ(MakeGenerator(PresetId::kMovieLens1M, ExperimentScale::kTiny)
                ->spec()
                .session_field,
            1);
}

TEST(PresetsTest, DatasetGeneratesAndValidates) {
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 3);
  EXPECT_FALSE(dataset.train.empty());
  EXPECT_FALSE(dataset.validation.empty());
  EXPECT_FALSE(dataset.test.empty());
  DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_classes, 12);
  EXPECT_GT(stats.num_keys, 0);
  EXPECT_GT(stats.avg_sequence_length, 4.0);
}

TEST(PresetsTest, UstcIsBurstier) {
  // Table I: USTC-TFC2016 sessions average 8.3 items vs 2.4 for Traffic-FG.
  Dataset ustc =
      MakePresetDataset(PresetId::kUstcTfc2016, ExperimentScale::kTiny, 4);
  Dataset fg =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 4);
  DatasetStats ustc_stats = ComputeDatasetStats(ustc);
  DatasetStats fg_stats = ComputeDatasetStats(fg);
  EXPECT_GT(ustc_stats.avg_session_length,
            1.5 * fg_stats.avg_session_length);
}

TEST(PresetsTest, StopDatasetsCarryTruth) {
  Dataset dataset =
      MakePresetDataset(PresetId::kSyntheticEarly, ExperimentScale::kTiny, 5);
  for (const TangledSequence& episode : dataset.test) {
    EXPECT_EQ(episode.true_halt_positions.size(), episode.labels.size());
  }
}

TEST(PresetsTest, ScaleChangesLengths) {
  Dataset tiny =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 6);
  Dataset full =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kFull, 6);
  DatasetStats tiny_stats = ComputeDatasetStats(tiny);
  DatasetStats full_stats = ComputeDatasetStats(full);
  EXPECT_GT(full_stats.avg_sequence_length, tiny_stats.avg_sequence_length);
  EXPECT_GT(full_stats.num_episodes, tiny_stats.num_episodes);
}

TEST(PresetsTest, ScaleFromEnvDefaultsToTiny) {
  unsetenv("KVEC_BENCH_SCALE");
  EXPECT_EQ(ScaleFromEnv(), ExperimentScale::kTiny);
  setenv("KVEC_BENCH_SCALE", "small", 1);
  EXPECT_EQ(ScaleFromEnv(), ExperimentScale::kSmall);
  unsetenv("KVEC_BENCH_SCALE");
}

}  // namespace
}  // namespace kvec
