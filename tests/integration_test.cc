// End-to-end integration tests: full pipeline from preset generation
// through training, evaluation, checkpointing and streaming inference.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "core/online.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "data/stats.h"
#include "exp/method.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(IntegrationTest, TinyPresetPipeline) {
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, ExperimentScale::kTiny, 71);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 24;
  config.epochs = 2;
  config.seed = 9;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  ASSERT_EQ(history.size(), 2u);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_GT(result.summary.num_sequences, 0);
  // 9 classes, tiny training budget: just demand better than random.
  EXPECT_GT(result.summary.accuracy, 1.0 / 9.0);
  EXPECT_GT(result.summary.earliness, 0.0);
  EXPECT_LE(result.summary.earliness, 1.0);
}

TEST(IntegrationTest, CheckpointPreservesEvaluation) {
  Dataset dataset =
      MakePresetDataset(PresetId::kSyntheticEarly, ExperimentScale::kTiny, 72);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 12;
  config.num_blocks = 1;
  config.epochs = 2;
  config.seed = 10;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult before = trainer.Evaluate(dataset.test);

  std::string path = ::testing::TempDir() + "/kvec_integration_ckpt.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  config.seed = 999;  // fresh random weights
  KvecModel restored(config);
  ASSERT_TRUE(restored.LoadFromFile(path));
  KvecTrainer restored_trainer(&restored);
  EvaluationResult after = restored_trainer.Evaluate(dataset.test);
  EXPECT_EQ(before.summary.accuracy, after.summary.accuracy);
  EXPECT_EQ(before.summary.earliness, after.summary.earliness);
  std::remove(path.c_str());
}

TEST(IntegrationTest, StreamingEngineOnPresetStream) {
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 73);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 12;
  config.num_blocks = 1;
  config.epochs = 1;
  config.seed = 11;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);

  const TangledSequence& episode = dataset.test.front();
  OnlineClassifier online(model);
  int decisions = 0;
  for (const Item& item : episode.items) {
    OnlineDecision decision = online.Observe(item);
    if (decision.halted_now) ++decisions;
  }
  for (const auto& [key, label] : episode.labels) {
    if (!online.IsHalted(key)) {
      EXPECT_GE(online.ForceClassify(key), 0);
      ++decisions;
    } else {
      // already counted via halted_now or classified below
    }
  }
  EXPECT_GE(decisions, 1);
}

TEST(IntegrationTest, TrueHaltSignalIsLearnableEarly) {
  // On the early-stop synthetic dataset a trained KVEC should halt well
  // before the end of the flow on average (the signal is in the first ten
  // items) — the property Fig. 11 visualises.
  Dataset dataset =
      MakePresetDataset(PresetId::kSyntheticEarly, ExperimentScale::kTiny, 74);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 2e-1f;  // encourage earliness
  config.seed = 12;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_LT(result.summary.earliness, 0.9);
  for (const HaltingRecord& halt : result.halts) {
    EXPECT_GT(halt.true_halt_position, 0);  // ground truth present
  }
}

TEST(IntegrationTest, FullLifecycleTrainCheckpointServeConsistently) {
  // The whole production path: train -> checkpoint -> reload in a fresh
  // process stand-in -> offline evaluation, plain streaming engine, and
  // bounded StreamServer must agree on the same stream.
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 81);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 24;
  config.epochs = 3;
  config.beta = 1e-2f;
  config.seed = 13;

  const std::string path = ::testing::TempDir() + "/kvec_lifecycle.ckpt";
  {
    KvecModel trainee(config);
    KvecTrainer trainer(&trainee);
    trainer.Train(dataset.train);
    ASSERT_TRUE(trainee.SaveToFile(path));
  }

  KvecModel model(config);
  ASSERT_TRUE(model.LoadFromFile(path));
  KvecTrainer evaluator(&model);
  const TangledSequence& stream = dataset.test.front();
  EvaluationResult offline = evaluator.Evaluate({stream});

  // Plain streaming engine.
  OnlineClassifier engine(model);
  std::map<int, int> online_verdicts;
  for (const Item& item : stream.items) {
    OnlineDecision decision = engine.Observe(item);
    if (decision.halted_now) {
      online_verdicts[decision.key] = decision.predicted_label;
    }
  }
  for (const auto& [key, label] : stream.labels) {
    if (!online_verdicts.count(key)) {
      online_verdicts[key] = engine.ForceClassify(key);
    }
  }

  // Bounded server with bounds large enough to never trigger.
  StreamServer server(model, {});
  std::map<int, int> server_verdicts;
  for (const Item& item : stream.items) {
    for (const StreamEvent& event : server.Observe(item)) {
      server_verdicts[event.key] = event.predicted_label;
    }
  }
  for (const StreamEvent& event : server.Flush()) {
    server_verdicts[event.key] = event.predicted_label;
  }

  ASSERT_EQ(offline.records.size(), online_verdicts.size());
  ASSERT_EQ(online_verdicts, server_verdicts);
  // Offline evaluation and streaming inference agree per key.
  std::map<int, int> offline_verdicts;
  for (size_t i = 0; i < offline.records.size(); ++i) {
    offline_verdicts[offline.halts[i].key] =
        offline.records[i].predicted_label;
  }
  EXPECT_EQ(offline_verdicts, online_verdicts);
}

TEST(IntegrationTest, DatasetStatsShapedLikeTableOne) {
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, ExperimentScale::kSmall, 75);
  DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_classes, 9);
  // Scaled lengths: shape preserved (long bursts), magnitude scaled.
  EXPECT_GT(stats.avg_session_length, 3.0);
  EXPECT_GT(stats.avg_sequence_length, 10.0);
}

}  // namespace
}  // namespace kvec
