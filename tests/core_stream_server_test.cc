#include "core/stream_server.h"

#include <map>
#include <set>
#include <vector>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed = 61) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// Streams one episode; remaps episode-local keys by `key_offset` so several
// episodes can share one server without collisions.
std::vector<StreamEvent> StreamEpisode(StreamServer& server,
                                       const TangledSequence& episode,
                                       int key_offset = 0) {
  std::vector<StreamEvent> events;
  for (Item item : episode.items) {
    item.key += key_offset;
    for (StreamEvent& event : server.Observe(item)) {
      events.push_back(event);
    }
  }
  return events;
}

TEST(StreamServerTest, EveryKeyGetsExactlyOneVerdict) {
  Fixture fixture = TrainSmallModel();
  StreamServer server(*fixture.model, {});
  std::map<int, int> verdicts;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      ++verdicts[event.key];
    }
    offset += 100;
  }
  for (const StreamEvent& event : server.Flush()) ++verdicts[event.key];

  offset = 0;
  int expected_keys = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    expected_keys += episode.num_keys();
  }
  EXPECT_EQ(static_cast<int>(verdicts.size()), expected_keys);
  for (const auto& [key, count] : verdicts) {
    EXPECT_EQ(count, 1) << "key " << key << " classified " << count
                        << " times";
  }
  EXPECT_EQ(server.open_keys(), 0);
}

TEST(StreamServerTest, StatsAddUp) {
  Fixture fixture = TrainSmallModel(62);
  StreamServer server(*fixture.model, {});
  int64_t total_items = 0;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    StreamEpisode(server, episode, offset);
    total_items += static_cast<int64_t>(episode.items.size());
    offset += 100;
  }
  const int64_t flushed = static_cast<int64_t>(server.Flush().size());
  const StreamServerStats& stats = server.stats();
  EXPECT_EQ(stats.items_processed, total_items);
  int64_t by_class = 0;
  for (int64_t count : stats.class_counts) by_class += count;
  EXPECT_EQ(by_class, stats.sequences_classified);
  EXPECT_GE(stats.sequences_classified, stats.policy_halts);
  // Every verdict has exactly one cause: the per-cause counters partition
  // sequences_classified.
  EXPECT_EQ(stats.flush_classifications, flushed);
  EXPECT_EQ(stats.policy_halts + stats.idle_timeouts +
                stats.capacity_evictions + stats.rotation_classifications +
                stats.flush_classifications,
            stats.sequences_classified);
}

TEST(StreamServerTest, IdleKeysAreEvicted) {
  Fixture fixture = TrainSmallModel(63);
  StreamServerConfig config;
  config.idle_timeout = 10;
  config.idle_check_interval = 1;
  StreamServer server(*fixture.model, config);

  // One item of key 1000, then a long stream of other keys: key 1000 must
  // be idle-evicted along the way.
  Item probe = fixture.dataset.test[0].items[0];
  probe.key = 1000;
  server.Observe(probe);
  bool evicted = false;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      if (event.key == 1000) {
        EXPECT_EQ(event.cause, StreamEvent::Cause::kIdleTimeout);
        EXPECT_EQ(event.observed_items, 1);
        evicted = true;
      }
    }
    offset += 100;
  }
  EXPECT_TRUE(evicted);
  EXPECT_GE(server.stats().idle_timeouts, 1);
}

TEST(StreamServerTest, IdleEvictionBoundaryCases) {
  // Documented semantics: a key last seen at position p is evicted once
  // position - p >= idle_timeout, i.e. it survives the idle_timeout - 1
  // following items and is evicted by the check after the idle_timeout-th.
  Fixture fixture = TrainSmallModel(63);
  StreamServerConfig config;
  config.idle_timeout = 8;
  config.idle_check_interval = 1;
  StreamServer server(*fixture.model, config);

  Item probe = fixture.dataset.test[0].items[0];
  probe.key = 1000;
  // The probe must stay open for the test to mean anything (with this
  // fixture it does not policy-halt on its first item).
  ASSERT_TRUE(server.Observe(probe).empty());

  // Positions 2..8: the probe's gap is 1..7 < idle_timeout. Not evicted.
  Item filler = fixture.dataset.test[0].items[0];
  for (int i = 0; i < config.idle_timeout - 1; ++i) {
    filler.key = 2000 + i;
    for (const StreamEvent& event : server.Observe(filler)) {
      EXPECT_NE(event.key, 1000)
          << "evicted at gap " << i + 1 << " < idle_timeout";
    }
  }

  // Position 9: the probe's gap reaches exactly idle_timeout. Evicted now.
  filler.key = 3000;
  bool evicted = false;
  for (const StreamEvent& event : server.Observe(filler)) {
    if (event.key == 1000) {
      EXPECT_EQ(event.cause, StreamEvent::Cause::kIdleTimeout);
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted) << "not evicted at gap == idle_timeout";
}

TEST(StreamServerTest, IdleSweepRunsOnAlreadyHaltedItems) {
  // A stream tail made of items for keys that already got their verdict
  // must still advance the idle clock and evict idle keys on schedule.
  Fixture fixture = TrainSmallModel(63);
  StreamServerConfig config;
  config.idle_timeout = 8;
  config.idle_check_interval = 1;
  StreamServer server(*fixture.model, config);

  Item probe = fixture.dataset.test[0].items[0];
  probe.key = 1000;
  ASSERT_TRUE(server.Observe(probe).empty());  // probe stays open

  // Open a second key, then force-close it so its later items are
  // already-halted from the engine's point of view.
  Item tail = fixture.dataset.test[0].items[0];
  tail.key = 2000;
  server.Observe(tail);
  server.Flush();  // closes both; reopen the probe
  ASSERT_EQ(server.open_keys(), 0);
  probe.key = 1001;
  ASSERT_TRUE(server.Observe(probe).empty());

  // Feed only already-halted key-2000 items; the probe must still be
  // idle-evicted once its gap reaches idle_timeout.
  bool evicted = false;
  for (int i = 0; i < 2 * config.idle_timeout && !evicted; ++i) {
    for (const StreamEvent& event : server.Observe(tail)) {
      if (event.key == 1001) {
        EXPECT_EQ(event.cause, StreamEvent::Cause::kIdleTimeout);
        evicted = true;
      }
    }
  }
  EXPECT_TRUE(evicted) << "already-halted tail items skipped the idle sweep";
}

TEST(StreamServerTest, CapacityCapHolds) {
  Fixture fixture = TrainSmallModel(64);
  StreamServerConfig config;
  config.max_open_keys = 4;
  config.idle_timeout = 1 << 20;  // disable idle eviction
  StreamServer server(*fixture.model, config);
  // Feed one item each for many distinct keys: open set must stay <= 4.
  Item base = fixture.dataset.test[0].items[0];
  for (int key = 0; key < 50; ++key) {
    Item item = base;
    item.key = key;
    item.time = key;
    server.Observe(item);
    EXPECT_LE(server.open_keys(), 4);
  }
  EXPECT_GE(server.stats().capacity_evictions, 1);
}

TEST(StreamServerTest, CapacityEvictionPicksLeastRecentlyActive) {
  // Shadow the server's recency bookkeeping and check every capacity
  // eviction hits the key with the smallest last-activity position.
  Fixture fixture = TrainSmallModel(64);
  StreamServerConfig config;
  config.max_open_keys = 4;
  config.idle_timeout = 1 << 20;
  StreamServer server(*fixture.model, config);

  std::map<int, int64_t> last_seen;  // open keys -> latest position
  std::set<int> closed;              // keys that already got their verdict
  Item base = fixture.dataset.test[0].items[0];
  std::vector<int> key_at;  // key of the i-th item
  int next_key = 0;
  int64_t position = 0;
  for (int i = 0; i < 200; ++i) {
    Item item = base;
    // Mostly fresh keys (forcing evictions), with every 4th item
    // re-touching a recent key so refreshed recency is exercised too.
    item.key = (i % 4 == 3) ? key_at[i - 3] : next_key++;
    key_at.push_back(item.key);
    item.time = i;
    ++position;
    std::vector<StreamEvent> events = server.Observe(item);
    if (!closed.count(item.key)) last_seen[item.key] = position;
    for (const StreamEvent& event : events) {
      if (event.cause == StreamEvent::Cause::kCapacityEviction) {
        auto lru = last_seen.begin();
        for (auto it = last_seen.begin(); it != last_seen.end(); ++it) {
          if (it->second < lru->second) lru = it;
        }
        EXPECT_EQ(event.key, lru->first)
            << "eviction skipped the least recently active key";
      }
      last_seen.erase(event.key);
      closed.insert(event.key);
    }
    EXPECT_LE(server.open_keys(), config.max_open_keys);
  }
  EXPECT_GE(server.stats().capacity_evictions, 1);
}

TEST(StreamServerTest, WindowRotationBoundsEngineAndClosesKeys) {
  Fixture fixture = TrainSmallModel(65);
  StreamServerConfig config;
  config.max_window_items = 40;
  config.idle_timeout = 1 << 20;
  StreamServer server(*fixture.model, config);
  int rotations_seen = 0;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      if (event.cause == StreamEvent::Cause::kWindowRotation) {
        ++rotations_seen;
      }
    }
    offset += 100;
  }
  EXPECT_GT(server.stats().windows_started, 1);
  EXPECT_EQ(server.stats().rotation_classifications, rotations_seen);
}

TEST(StreamServerTest, LargeWindowMatchesPlainOnlineClassifier) {
  // With bounds effectively disabled, the server's policy halts must agree
  // with a bare OnlineClassifier on the same stream.
  Fixture fixture = TrainSmallModel(66);
  StreamServerConfig config;  // defaults are far larger than one episode
  StreamServer server(*fixture.model, config);
  OnlineClassifier plain(*fixture.model);

  const TangledSequence& episode = fixture.dataset.test[0];
  std::map<int, int> server_verdicts, plain_verdicts;
  for (const Item& item : episode.items) {
    for (const StreamEvent& event : server.Observe(item)) {
      if (event.cause == StreamEvent::Cause::kPolicyHalt) {
        server_verdicts[event.key] = event.predicted_label;
      }
    }
    OnlineDecision decision = plain.Observe(item);
    if (decision.halted_now) {
      plain_verdicts[decision.key] = decision.predicted_label;
    }
  }
  EXPECT_EQ(server_verdicts, plain_verdicts);
}

TEST(StreamServerTest, FlushIsIdempotent) {
  Fixture fixture = TrainSmallModel(67);
  StreamServer server(*fixture.model, {});
  StreamEpisode(server, fixture.dataset.test[0]);
  server.Flush();
  EXPECT_TRUE(server.Flush().empty());
  EXPECT_EQ(server.open_keys(), 0);
}

TEST(StreamServerTest, EventsCarryConfidence) {
  Fixture fixture = TrainSmallModel(68);
  StreamServer server(*fixture.model, {});
  std::vector<StreamEvent> events =
      StreamEpisode(server, fixture.dataset.test[0]);
  for (const StreamEvent& event : server.Flush()) events.push_back(event);
  ASSERT_FALSE(events.empty());
  for (const StreamEvent& event : events) {
    EXPECT_GT(event.confidence, 0.0);
    EXPECT_LE(event.confidence, 1.0);
    EXPECT_GE(event.observed_items, 1);
  }
}

TEST(StreamServerDeathTest, RejectsBadConfig) {
  Fixture fixture = TrainSmallModel(69);
  StreamServerConfig bad;
  bad.max_window_items = 0;
  EXPECT_DEATH(StreamServer(*fixture.model, bad), "check failed");
}

}  // namespace
}  // namespace kvec
