#include "core/stream_server.h"

#include <map>
#include <set>
#include <vector>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed = 61) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// Streams one episode; remaps episode-local keys by `key_offset` so several
// episodes can share one server without collisions.
std::vector<StreamEvent> StreamEpisode(StreamServer& server,
                                       const TangledSequence& episode,
                                       int key_offset = 0) {
  std::vector<StreamEvent> events;
  for (Item item : episode.items) {
    item.key += key_offset;
    for (StreamEvent& event : server.Observe(item)) {
      events.push_back(event);
    }
  }
  return events;
}

TEST(StreamServerTest, EveryKeyGetsExactlyOneVerdict) {
  Fixture fixture = TrainSmallModel();
  StreamServer server(*fixture.model, {});
  std::map<int, int> verdicts;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      ++verdicts[event.key];
    }
    offset += 100;
  }
  for (const StreamEvent& event : server.Flush()) ++verdicts[event.key];

  offset = 0;
  int expected_keys = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    expected_keys += episode.num_keys();
  }
  EXPECT_EQ(static_cast<int>(verdicts.size()), expected_keys);
  for (const auto& [key, count] : verdicts) {
    EXPECT_EQ(count, 1) << "key " << key << " classified " << count
                        << " times";
  }
  EXPECT_EQ(server.open_keys(), 0);
}

TEST(StreamServerTest, StatsAddUp) {
  Fixture fixture = TrainSmallModel(62);
  StreamServer server(*fixture.model, {});
  int64_t total_items = 0;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    StreamEpisode(server, episode, offset);
    total_items += static_cast<int64_t>(episode.items.size());
    offset += 100;
  }
  server.Flush();
  const StreamServerStats& stats = server.stats();
  EXPECT_EQ(stats.items_processed, total_items);
  int64_t by_class = 0;
  for (int64_t count : stats.class_counts) by_class += count;
  EXPECT_EQ(by_class, stats.sequences_classified);
  EXPECT_GE(stats.sequences_classified, stats.policy_halts);
}

TEST(StreamServerTest, IdleKeysAreEvicted) {
  Fixture fixture = TrainSmallModel(63);
  StreamServerConfig config;
  config.idle_timeout = 10;
  config.idle_check_interval = 1;
  StreamServer server(*fixture.model, config);

  // One item of key 1000, then a long stream of other keys: key 1000 must
  // be idle-evicted along the way.
  Item probe = fixture.dataset.test[0].items[0];
  probe.key = 1000;
  server.Observe(probe);
  bool evicted = false;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      if (event.key == 1000) {
        EXPECT_EQ(event.cause, StreamEvent::Cause::kIdleTimeout);
        EXPECT_EQ(event.observed_items, 1);
        evicted = true;
      }
    }
    offset += 100;
  }
  EXPECT_TRUE(evicted);
  EXPECT_GE(server.stats().idle_timeouts, 1);
}

TEST(StreamServerTest, CapacityCapHolds) {
  Fixture fixture = TrainSmallModel(64);
  StreamServerConfig config;
  config.max_open_keys = 4;
  config.idle_timeout = 1 << 20;  // disable idle eviction
  StreamServer server(*fixture.model, config);
  // Feed one item each for many distinct keys: open set must stay <= 4.
  Item base = fixture.dataset.test[0].items[0];
  for (int key = 0; key < 50; ++key) {
    Item item = base;
    item.key = key;
    item.time = key;
    server.Observe(item);
    EXPECT_LE(server.open_keys(), 4);
  }
  EXPECT_GE(server.stats().capacity_evictions, 1);
}

TEST(StreamServerTest, WindowRotationBoundsEngineAndClosesKeys) {
  Fixture fixture = TrainSmallModel(65);
  StreamServerConfig config;
  config.max_window_items = 40;
  config.idle_timeout = 1 << 20;
  StreamServer server(*fixture.model, config);
  int rotations_seen = 0;
  int offset = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    for (const StreamEvent& event :
         StreamEpisode(server, episode, offset)) {
      if (event.cause == StreamEvent::Cause::kWindowRotation) {
        ++rotations_seen;
      }
    }
    offset += 100;
  }
  EXPECT_GT(server.stats().windows_started, 1);
  EXPECT_EQ(server.stats().rotation_classifications, rotations_seen);
}

TEST(StreamServerTest, LargeWindowMatchesPlainOnlineClassifier) {
  // With bounds effectively disabled, the server's policy halts must agree
  // with a bare OnlineClassifier on the same stream.
  Fixture fixture = TrainSmallModel(66);
  StreamServerConfig config;  // defaults are far larger than one episode
  StreamServer server(*fixture.model, config);
  OnlineClassifier plain(*fixture.model);

  const TangledSequence& episode = fixture.dataset.test[0];
  std::map<int, int> server_verdicts, plain_verdicts;
  for (const Item& item : episode.items) {
    for (const StreamEvent& event : server.Observe(item)) {
      if (event.cause == StreamEvent::Cause::kPolicyHalt) {
        server_verdicts[event.key] = event.predicted_label;
      }
    }
    OnlineDecision decision = plain.Observe(item);
    if (decision.halted_now) {
      plain_verdicts[decision.key] = decision.predicted_label;
    }
  }
  EXPECT_EQ(server_verdicts, plain_verdicts);
}

TEST(StreamServerTest, FlushIsIdempotent) {
  Fixture fixture = TrainSmallModel(67);
  StreamServer server(*fixture.model, {});
  StreamEpisode(server, fixture.dataset.test[0]);
  server.Flush();
  EXPECT_TRUE(server.Flush().empty());
  EXPECT_EQ(server.open_keys(), 0);
}

TEST(StreamServerTest, EventsCarryConfidence) {
  Fixture fixture = TrainSmallModel(68);
  StreamServer server(*fixture.model, {});
  std::vector<StreamEvent> events =
      StreamEpisode(server, fixture.dataset.test[0]);
  for (const StreamEvent& event : server.Flush()) events.push_back(event);
  ASSERT_FALSE(events.empty());
  for (const StreamEvent& event : events) {
    EXPECT_GT(event.confidence, 0.0);
    EXPECT_LE(event.confidence, 1.0);
    EXPECT_GE(event.observed_items, 1);
  }
}

TEST(StreamServerDeathTest, RejectsBadConfig) {
  Fixture fixture = TrainSmallModel(69);
  StreamServerConfig bad;
  bad.max_window_items = 0;
  EXPECT_DEATH(StreamServer(*fixture.model, bad), "check failed");
}

}  // namespace
}  // namespace kvec
