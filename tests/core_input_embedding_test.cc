#include "core/input_embedding.h"

#include <cmath>

#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.name = "test";
  spec.value_fields = {{"size", 8}, {"direction", 2}};
  spec.session_field = 1;
  spec.num_classes = 3;
  spec.max_keys_per_episode = 4;
  spec.max_sequence_length = 16;
  spec.max_episode_length = 64;
  return spec;
}

TangledSequence SmallEpisode() {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 1;
  for (int i = 0; i < 6; ++i) {
    Item item;
    item.key = i % 2;
    item.value = {i % 8, i % 2};
    item.time = i;
    episode.items.push_back(item);
  }
  return episode;
}

TEST(EpisodeIndexTest, PositionsWithinKey) {
  TangledSequence episode = SmallEpisode();
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EXPECT_EQ(index.keys, (std::vector<int>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(index.position_in_key, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(InputEmbeddingTest, OutputShape) {
  Rng rng(1);
  KvecConfig config = KvecConfig::ForSpec(SmallSpec());
  config.embed_dim = 12;
  InputEmbedding embedding(config, rng);
  TangledSequence episode = SmallEpisode();
  Tensor out = embedding.Forward(episode, EpisodeIndex::Build(episode));
  EXPECT_EQ(out.rows(), 6);
  EXPECT_EQ(out.cols(), 12);
}

TEST(InputEmbeddingTest, SameInputsGiveSameRows) {
  Rng rng(2);
  KvecConfig config = KvecConfig::ForSpec(SmallSpec());
  config.embed_dim = 8;
  config.use_time_embeddings = false;  // rows then depend only on value+key
  InputEmbedding embedding(config, rng);
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 2; ++i) {
    Item item;
    item.key = 0;
    item.value = {3, 1};
    item.time = i;
    episode.items.push_back(item);
  }
  // Without time embeddings, membership+value identical -> different only
  // through relative position, which is also disabled by the flag.
  Tensor out = embedding.Forward(episode, EpisodeIndex::Build(episode));
  for (int c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(out.At(0, c), out.At(1, c));
  }
}

TEST(InputEmbeddingTest, AblationsShrinkParameterCount) {
  Rng rng1(3), rng2(3);
  KvecConfig full = KvecConfig::ForSpec(SmallSpec());
  KvecConfig ablated = full;
  ablated.use_membership_embedding = false;
  ablated.use_time_embeddings = false;
  InputEmbedding a(full, rng1);
  InputEmbedding b(ablated, rng2);
  // Tables still exist (same count) but ablated ones are unused in Forward;
  // verify the forward result differs.
  TangledSequence episode = SmallEpisode();
  Tensor fa = a.Forward(episode, EpisodeIndex::Build(episode));
  Tensor fb = b.Forward(episode, EpisodeIndex::Build(episode));
  float diff = 0.0f;
  for (int i = 0; i < fa.size(); ++i) {
    diff += std::fabs(fa.data()[i] - fb.data()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(InputEmbeddingTest, AccumulateItemRowMatchesForward) {
  Rng rng(4);
  KvecConfig config = KvecConfig::ForSpec(SmallSpec());
  config.embed_dim = 10;
  InputEmbedding embedding(config, rng);
  TangledSequence episode = SmallEpisode();
  EpisodeIndex index = EpisodeIndex::Build(episode);
  Tensor batch = embedding.Forward(episode, index);
  for (size_t t = 0; t < episode.items.size(); ++t) {
    std::vector<float> row(config.embed_dim, 0.0f);
    embedding.AccumulateItemRow(episode.items[t], index.position_in_key[t],
                                static_cast<int>(t), &row);
    for (int c = 0; c < config.embed_dim; ++c) {
      EXPECT_NEAR(row[c], batch.At(static_cast<int>(t), c), 1e-5f);
    }
  }
}

TEST(InputEmbeddingTest, AccumulateItemRowMatchesForwardUnderAblation) {
  Rng rng(5);
  KvecConfig config = KvecConfig::ForSpec(SmallSpec());
  config.embed_dim = 10;
  config.use_membership_embedding = false;
  InputEmbedding embedding(config, rng);
  TangledSequence episode = SmallEpisode();
  EpisodeIndex index = EpisodeIndex::Build(episode);
  Tensor batch = embedding.Forward(episode, index);
  for (size_t t = 0; t < episode.items.size(); ++t) {
    std::vector<float> row(config.embed_dim, 0.0f);
    embedding.AccumulateItemRow(episode.items[t], index.position_in_key[t],
                                static_cast<int>(t), &row);
    for (int c = 0; c < config.embed_dim; ++c) {
      EXPECT_NEAR(row[c], batch.At(static_cast<int>(t), c), 1e-5f);
    }
  }
}

TEST(InputEmbeddingTest, LongEpisodeClampsVocabularies) {
  Rng rng(6);
  DatasetSpec spec = SmallSpec();
  spec.max_sequence_length = 4;  // will be exceeded
  spec.max_episode_length = 6;
  KvecConfig config = KvecConfig::ForSpec(spec);
  InputEmbedding embedding(config, rng);
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 10; ++i) {
    Item item;
    item.key = 0;
    item.value = {0, 0};
    item.time = i;
    episode.items.push_back(item);
  }
  // Must not abort: ids clamp to the vocabulary bounds.
  Tensor out = embedding.Forward(episode, EpisodeIndex::Build(episode));
  EXPECT_EQ(out.rows(), 10);
}

TEST(InputEmbeddingTest, GradientsReachValueTables) {
  Rng rng(7);
  KvecConfig config = KvecConfig::ForSpec(SmallSpec());
  InputEmbedding embedding(config, rng);
  TangledSequence episode = SmallEpisode();
  embedding.ZeroGrad();
  ops::SumAll(embedding.Forward(episode, EpisodeIndex::Build(episode)))
      .Backward();
  std::vector<Tensor> params = embedding.Parameters();
  float total = 0.0f;
  for (const Tensor& param : params) {
    for (float g : param.grad()) total += std::fabs(g);
  }
  EXPECT_GT(total, 0.0f);
}

}  // namespace
}  // namespace kvec
