#include "core/fusion.h"

#include <cmath>

#include "data/generator.h"
#include "data/traffic_generator.h"
#include "core/model.h"
#include "core/trainer.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

KvecConfig FusionConfig(KvecConfig::FusionKind kind) {
  KvecConfig config;
  config.embed_dim = 4;
  config.state_dim = 6;
  config.fusion = kind;
  config.spec.num_classes = 2;
  return config;
}

Tensor Row(std::vector<float> values) {
  const int cols = static_cast<int>(values.size());
  return Tensor::FromData(1, cols, std::move(values));
}

TEST(EmbeddingFusionTest, LstmOutputsStateDim) {
  Rng rng(1);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kLstm), rng);
  EXPECT_EQ(fusion.output_dim(), 6);
  ASSERT_NE(fusion.lstm(), nullptr);
  FusionState state = fusion.InitialState();
  state = fusion.Step(state, Row({1, 2, 3, 4}));
  EXPECT_EQ(state.hidden.cols(), 6);
  EXPECT_EQ(state.count, 1);
}

TEST(EmbeddingFusionTest, ParameterFreeModesHaveNoParameters) {
  for (auto kind :
       {KvecConfig::FusionKind::kSum, KvecConfig::FusionKind::kMean,
        KvecConfig::FusionKind::kLast}) {
    Rng rng(2);
    EmbeddingFusion fusion(FusionConfig(kind), rng);
    EXPECT_EQ(fusion.ParameterCount(), 0);
    EXPECT_EQ(fusion.output_dim(), 4);
    EXPECT_EQ(fusion.lstm(), nullptr);
  }
}

TEST(EmbeddingFusionTest, SumAccumulates) {
  Rng rng(3);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kSum), rng);
  FusionState state = fusion.InitialState();
  state = fusion.Step(state, Row({1, 0, 0, 2}));
  state = fusion.Step(state, Row({2, 1, 0, -1}));
  EXPECT_FLOAT_EQ(state.hidden.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 3), 1.0f);
  EXPECT_EQ(state.count, 2);
}

TEST(EmbeddingFusionTest, MeanIsRunningAverage) {
  Rng rng(4);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kMean), rng);
  FusionState state = fusion.InitialState();
  state = fusion.Step(state, Row({4, 0, 0, 0}));
  EXPECT_FLOAT_EQ(state.hidden.At(0, 0), 4.0f);
  state = fusion.Step(state, Row({0, 2, 0, 0}));
  EXPECT_FLOAT_EQ(state.hidden.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 1), 1.0f);
  state = fusion.Step(state, Row({2, 1, 3, 0}));
  EXPECT_FLOAT_EQ(state.hidden.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 2), 1.0f);
}

TEST(EmbeddingFusionTest, LastKeepsOnlyNewestItem) {
  Rng rng(5);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kLast), rng);
  FusionState state = fusion.InitialState();
  state = fusion.Step(state, Row({1, 1, 1, 1}));
  state = fusion.Step(state, Row({7, 8, 9, 10}));
  EXPECT_FLOAT_EQ(state.hidden.At(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(state.hidden.At(0, 3), 10.0f);
}

TEST(EmbeddingFusionTest, DetachInPlaceCutsGraph) {
  Rng rng(6);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kLstm), rng);
  FusionState state = fusion.InitialState();
  Tensor input = Row({1, 2, 3, 4});
  state = fusion.Step(state, input);
  state.DetachInPlace();
  EXPECT_FALSE(state.hidden.requires_grad());
  EXPECT_TRUE(state.hidden.impl()->parents.empty());
}

TEST(EmbeddingFusionTest, GradientsFlowThroughLstmMode) {
  Rng rng(7);
  EmbeddingFusion fusion(FusionConfig(KvecConfig::FusionKind::kLstm), rng);
  FusionState state = fusion.InitialState();
  state = fusion.Step(state, Row({0.5f, -0.5f, 0.25f, 1.0f}));
  ops::SumAll(state.hidden).Backward();
  int with_grad = 0;
  for (const Tensor& param : fusion.Parameters()) {
    for (float g : param.grad()) {
      if (g != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_GT(with_grad, 0);
}

// ---- End-to-end: every fusion mode trains and evaluates. ----

class FusionModeTrainingTest
    : public ::testing::TestWithParam<KvecConfig::FusionKind> {};

TEST_P(FusionModeTrainingTest, TrainsAndEvaluates) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 2;
  generator_config.avg_flow_length = 10.0;
  generator_config.min_flow_length = 5;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Dataset dataset = GenerateDataset(generator, {10, 2, 4}, /*seed=*/31);

  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 12;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 2;
  config.fusion = GetParam();
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  for (const TrainEpochStats& stats : history) {
    EXPECT_TRUE(std::isfinite(stats.total_loss));
  }
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_GT(result.summary.num_sequences, 0);
  for (const PredictionRecord& record : result.records) {
    EXPECT_GE(record.predicted_label, 0);
    EXPECT_LT(record.predicted_label, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, FusionModeTrainingTest,
    ::testing::Values(KvecConfig::FusionKind::kLstm,
                      KvecConfig::FusionKind::kSum,
                      KvecConfig::FusionKind::kMean,
                      KvecConfig::FusionKind::kLast));

// ---- Checkpoint round-trips across model variants. ----

struct CheckpointCase {
  KvecConfig::FusionKind fusion;
  int num_heads;
};

class ModelCheckpointTest : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(ModelCheckpointTest, SaveLoadPreservesPredictions) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 3;
  generator_config.concurrency = 2;
  generator_config.avg_flow_length = 10.0;
  generator_config.min_flow_length = 5;
  TrafficGenerator generator(generator_config);
  Dataset dataset = GenerateDataset(generator, {6, 2, 3}, /*seed=*/37);

  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 12;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 1;
  config.fusion = GetParam().fusion;
  config.num_heads = GetParam().num_heads;

  KvecModel original(config);
  KvecTrainer trainer(&original);
  trainer.Train(dataset.train);
  EvaluationResult before = trainer.Evaluate(dataset.test);

  const std::string path = ::testing::TempDir() + "/kvec_ckpt_fusion.bin";
  ASSERT_TRUE(original.SaveToFile(path));

  KvecModel restored(config);
  ASSERT_TRUE(restored.LoadFromFile(path));
  KvecTrainer restored_trainer(&restored);
  EvaluationResult after = restored_trainer.Evaluate(dataset.test);

  ASSERT_EQ(before.records.size(), after.records.size());
  for (size_t i = 0; i < before.records.size(); ++i) {
    EXPECT_EQ(before.records[i].predicted_label,
              after.records[i].predicted_label);
    EXPECT_EQ(before.records[i].observed_items,
              after.records[i].observed_items);
  }
}

TEST_P(ModelCheckpointTest, LoadRejectsMismatchedArchitecture) {
  KvecConfig config;
  config.embed_dim = 12;  // divisible by every head count used below
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 12;
  config.spec.num_classes = 2;
  config.spec.value_fields = {{"f", 4}, {"s", 2}};
  config.spec.max_keys_per_episode = 4;
  config.spec.max_sequence_length = 8;
  config.spec.max_episode_length = 16;
  config.fusion = GetParam().fusion;
  config.num_heads = GetParam().num_heads;
  KvecModel model(config);
  const std::string path = ::testing::TempDir() + "/kvec_ckpt_mismatch.bin";
  ASSERT_TRUE(model.SaveToFile(path));

  KvecConfig other = config;
  other.embed_dim = 24;  // different tensor shapes
  KvecModel wrong(other);
  EXPECT_FALSE(wrong.LoadFromFile(path));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ModelCheckpointTest,
    ::testing::Values(CheckpointCase{KvecConfig::FusionKind::kLstm, 1},
                      CheckpointCase{KvecConfig::FusionKind::kLstm, 2},
                      CheckpointCase{KvecConfig::FusionKind::kMean, 1},
                      CheckpointCase{KvecConfig::FusionKind::kSum, 3},
                      CheckpointCase{KvecConfig::FusionKind::kLast, 1}));

}  // namespace
}  // namespace kvec
