// InferenceMode: ops inside the guard must produce plain leaves (no
// parents, no backward_fn, requires_grad off) and the serving stack
// (OnlineClassifier behind StreamServer::Push) must build zero graph nodes
// for an entire stream.
#include <vector>

#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace kvec {
namespace {

Tensor RandomGradTensor(int rows, int cols, Rng& rng) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.data()) v = static_cast<float>(rng.NextGaussian());
  return t;
}

bool IsTapelessLeaf(const Tensor& t) {
  return !t.requires_grad() && t.impl()->parents.empty() &&
         !t.impl()->backward_fn;
}

TEST(InferenceModeTest, OpsInsideGuardRecordNothing) {
  Rng rng(7);
  Tensor a = RandomGradTensor(3, 4, rng);
  Tensor w = RandomGradTensor(4, 4, rng);
  const uint64_t nodes_before = internal::GraphNodesRecorded();
  {
    InferenceMode guard;
    Tensor h = ops::Relu(ops::MatMul(a, w));
    Tensor s = ops::Softmax(ops::MatMulTransposeB(h, h));
    Tensor out = ops::SumAll(ops::Mul(s, s));
    EXPECT_TRUE(IsTapelessLeaf(h));
    EXPECT_TRUE(IsTapelessLeaf(s));
    EXPECT_TRUE(IsTapelessLeaf(out));
  }
  EXPECT_EQ(internal::GraphNodesRecorded(), nodes_before);
  // The tape resumes once the guard dies.
  Tensor tracked = ops::MatMul(a, w);
  EXPECT_TRUE(tracked.requires_grad());
  EXPECT_GT(internal::GraphNodesRecorded(), nodes_before);
}

TEST(InferenceModeTest, GuardNests) {
  Rng rng(8);
  Tensor a = RandomGradTensor(2, 2, rng);
  InferenceMode outer;
  {
    InferenceMode inner;
    EXPECT_TRUE(IsTapelessLeaf(ops::Tanh(a)));
  }
  // Still inside the outer guard.
  EXPECT_TRUE(InferenceMode::Enabled());
  EXPECT_TRUE(IsTapelessLeaf(ops::Tanh(a)));
}

// End-to-end: a trained model served through StreamServer::Push processes a
// whole episode without creating a single autograd node, even though every
// model parameter has requires_grad == true. This is the zero-tape serving
// guarantee the latency story rests on — no Detach() garbage collection,
// no per-item graph churn.
TEST(InferenceModeTest, StreamServerPushBuildsZeroTape) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 10.0;
  generator_config.min_flow_length = 5;
  TrafficGenerator generator(generator_config);
  Dataset dataset = GenerateDataset(generator, {8, 1, 2}, /*seed=*/17);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 1;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);

  // Sanity: the model's parameters do require gradients, so any op reading
  // them outside the guard WOULD record nodes.
  std::vector<Tensor> parameters;
  model.CollectParameters(&parameters);
  ASSERT_FALSE(parameters.empty());
  for (const Tensor& parameter : parameters) {
    EXPECT_TRUE(parameter.requires_grad());
  }

  StreamServer server(model, {});
  const uint64_t nodes_before = internal::GraphNodesRecorded();
  int events_seen = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (const Item& item : episode.items) {
      events_seen += static_cast<int>(server.Push(item).size());
    }
  }
  events_seen += static_cast<int>(server.Flush().size());
  EXPECT_GT(events_seen, 0);
  EXPECT_EQ(internal::GraphNodesRecorded(), nodes_before)
      << "serving built autograd tape nodes";
}

TEST(BufferPoolTest, RecyclesOpOutputBuffers) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) {
    GTEST_SKIP() << "buffer pool disabled (KVEC_NO_BUFFER_POOL)";
  }
  Rng rng(9);
  Tensor a = RandomGradTensor(8, 8, rng).Detach();
  // Warm up: let the first round's buffers flow back into the free list.
  for (int i = 0; i < 4; ++i) ops::Relu(ops::MatMul(a, a));
  const BufferPool::Stats warm = pool.stats();
  for (int i = 0; i < 16; ++i) ops::Relu(ops::MatMul(a, a));
  const BufferPool::Stats after = pool.stats();
  // Steady state: every op output reuses pooled storage.
  EXPECT_GE(after.hits - warm.hits, 30u);
  EXPECT_EQ(after.misses, warm.misses);
}

}  // namespace
}  // namespace kvec
