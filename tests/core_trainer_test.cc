#include "core/trainer.h"

#include <cmath>

#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

// A small, strongly separable traffic workload.
Dataset EasyDataset(int train_episodes = 20) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 3;
  config.avg_flow_length = 12.0;
  config.min_flow_length = 6;
  config.handshake_sharpness = 6.0;  // very separable
  config.body_sharpness = 3.0;
  TrafficGenerator generator(config);
  return GenerateDataset(generator, {train_episodes, 2, 6}, /*seed=*/21);
}

KvecConfig SmallModel(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 16;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 24;
  config.learning_rate = 3e-3f;
  config.baseline_learning_rate = 3e-3f;
  config.epochs = 6;
  config.seed = 77;
  return config;
}

TEST(KvecTrainerTest, LossDecreasesOverEpochs) {
  Dataset dataset = EasyDataset();
  KvecConfig config = SmallModel(dataset.spec);
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  ASSERT_EQ(static_cast<int>(history.size()), config.epochs);
  EXPECT_LT(history.back().classification_loss,
            history.front().classification_loss);
}

TEST(KvecTrainerTest, LearnsAboveChanceOnSeparableData) {
  Dataset dataset = EasyDataset();
  KvecConfig config = SmallModel(dataset.spec);
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  ASSERT_GT(result.summary.num_sequences, 0);
  EXPECT_GT(result.summary.accuracy, 0.65);  // chance = 0.5
}

TEST(KvecTrainerTest, EvaluateRecordsAreConsistent) {
  Dataset dataset = EasyDataset(6);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 1;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  int expected_sequences = 0;
  for (const TangledSequence& episode : dataset.test) {
    expected_sequences += episode.num_keys();
  }
  EXPECT_EQ(result.summary.num_sequences, expected_sequences);
  for (const PredictionRecord& record : result.records) {
    EXPECT_GE(record.observed_items, 1);
    EXPECT_LE(record.observed_items, record.sequence_length);
    EXPECT_GE(record.predicted_label, 0);
    EXPECT_LT(record.predicted_label, 2);
  }
  EXPECT_EQ(result.halts.size(), result.records.size());
}

TEST(KvecTrainerTest, LargeBetaHaltsEarlier) {
  // The earliness pressure l3 is the knob the paper sweeps: a much larger
  // beta must not produce *later* halting than a strongly negative one.
  Dataset dataset = EasyDataset(12);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 4;

  config.beta = 0.5f;
  KvecModel eager(config);
  KvecTrainer eager_trainer(&eager);
  eager_trainer.Train(dataset.train);
  double eager_earliness =
      eager_trainer.Evaluate(dataset.test).summary.earliness;

  config.beta = -0.05f;
  KvecModel lazy(config);
  KvecTrainer lazy_trainer(&lazy);
  lazy_trainer.Train(dataset.train);
  double lazy_earliness =
      lazy_trainer.Evaluate(dataset.test).summary.earliness;

  EXPECT_LE(eager_earliness, lazy_earliness + 0.05);
}

TEST(KvecTrainerTest, AttentionInstrumentationSumsToOne) {
  Dataset dataset = EasyDataset(6);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 1;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvalOptions options;
  options.collect_attention = true;
  EvaluationResult result = trainer.Evaluate(dataset.test, options);
  ASSERT_FALSE(result.attention.empty());
  for (const AttentionPoint& point : result.attention) {
    EXPECT_NEAR(point.internal_score + point.external_score, 1.0, 1e-3);
    EXPECT_GE(point.earliness, 0.0);
    EXPECT_LE(point.earliness, 1.0);
  }
}

TEST(KvecTrainerTest, AblatedValueCorrelationHasNoExternalAttention) {
  Dataset dataset = EasyDataset(4);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 1;
  config.correlation.use_value_correlation = false;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvalOptions options;
  options.collect_attention = true;
  EvaluationResult result = trainer.Evaluate(dataset.test, options);
  for (const AttentionPoint& point : result.attention) {
    EXPECT_NEAR(point.external_score, 0.0, 1e-6);
  }
}

TEST(KvecTrainerTest, TrainWithValidationRestoresBestEpoch) {
  Dataset dataset = EasyDataset(10);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 4;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  int best_epoch = -1;
  std::vector<TrainEpochStats> history = trainer.TrainWithValidation(
      dataset.train, dataset.validation, &best_epoch);
  ASSERT_EQ(static_cast<int>(history.size()), config.epochs);
  ASSERT_GE(best_epoch, 0);
  ASSERT_LT(best_epoch, config.epochs);
  // The restored model must reproduce the best validation HM exactly.
  EvaluationResult validation = trainer.Evaluate(dataset.validation);
  // Re-train a fresh model and track validation HM per epoch to confirm.
  KvecModel fresh(config);
  KvecTrainer fresh_trainer(&fresh);
  double best_hm = -1.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    fresh_trainer.TrainEpoch(dataset.train);
    best_hm = std::max(
        best_hm,
        fresh_trainer.Evaluate(dataset.validation).summary.harmonic_mean);
  }
  EXPECT_NEAR(validation.summary.harmonic_mean, best_hm, 1e-9);
}

TEST(KvecTrainerDeathTest, TrainWithValidationNeedsValidationData) {
  Dataset dataset = EasyDataset(4);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 1;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  EXPECT_DEATH(trainer.TrainWithValidation(dataset.train, {}),
               "check failed");
}

TEST(KvecTrainerTest, TrainsUnderCosineSchedule) {
  Dataset dataset = EasyDataset();
  KvecConfig config = SmallModel(dataset.spec);
  config.lr_schedule = KvecConfig::LrSchedule::kCosine;
  config.min_learning_rate = 1e-4f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  ASSERT_EQ(static_cast<int>(history.size()), config.epochs);
  EXPECT_LT(history.back().classification_loss,
            history.front().classification_loss);
}

TEST(KvecTrainerTest, TrainsUnderWarmupCosineSchedule) {
  Dataset dataset = EasyDataset();
  KvecConfig config = SmallModel(dataset.spec);
  config.lr_schedule = KvecConfig::LrSchedule::kWarmupCosine;
  config.warmup_epochs = 2;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  trainer.Train(dataset.train);
  EvaluationResult trained = trainer.Evaluate(dataset.test);
  // Training with warmup must not be a no-op: predictions move.
  EXPECT_GE(trained.summary.accuracy, result.summary.accuracy - 0.2);
}

TEST(KvecTrainerTest, TrainsWithMultiHeadAttention) {
  Dataset dataset = EasyDataset(8);
  KvecConfig config = SmallModel(dataset.spec);
  config.num_heads = 2;  // embed_dim 16 -> head_dim 8
  config.epochs = 2;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  ASSERT_EQ(history.size(), 2u);
  for (const TrainEpochStats& stats : history) {
    EXPECT_TRUE(std::isfinite(stats.total_loss));
  }
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_GT(result.summary.num_sequences, 0);
}

TEST(KvecTrainerTest, TrainingIsDeterministicGivenSeeds) {
  Dataset dataset = EasyDataset(5);
  KvecConfig config = SmallModel(dataset.spec);
  config.epochs = 2;
  KvecModel a(config);
  KvecTrainer ta(&a);
  ta.Train(dataset.train);
  KvecModel b(config);
  KvecTrainer tb(&b);
  tb.Train(dataset.train);
  EXPECT_EQ(ta.Evaluate(dataset.test).summary.accuracy,
            tb.Evaluate(dataset.test).summary.accuracy);
}

}  // namespace
}  // namespace kvec
