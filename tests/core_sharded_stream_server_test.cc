#include "core/sharded_stream_server.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed = 71) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// The test episodes concatenated into one stream with globally-unique keys.
std::vector<Item> GlobalStream(const Dataset& dataset) {
  std::vector<Item> stream;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      stream.push_back(item);
    }
    offset += 100;
  }
  return stream;
}

// key -> (predicted_label, observed_items)
using VerdictMap = std::map<int, std::pair<int, int>>;

void Record(const std::vector<StreamEvent>& events, VerdictMap* verdicts) {
  for (const StreamEvent& event : events) {
    auto [it, inserted] = verdicts->emplace(
        event.key, std::make_pair(event.predicted_label, event.observed_items));
    ASSERT_TRUE(inserted) << "key " << event.key << " classified twice";
  }
}

TEST(ShardedStreamServerTest, MatchesOneServerPerPartition) {
  // Keys are partitioned by ShardOf, so no cross-shard correlation exists
  // that a per-partition StreamServer would not also cut: the sharded
  // server must emit identical per-key verdicts to one plain StreamServer
  // per partition fed that partition's sub-stream.
  Fixture fixture = TrainSmallModel(71);
  ShardedStreamServerConfig config;
  config.num_shards = 4;
  ShardedStreamServer sharded(*fixture.model, config);

  std::vector<std::unique_ptr<StreamServer>> partitions;
  for (int s = 0; s < config.num_shards; ++s) {
    partitions.push_back(
        std::make_unique<StreamServer>(*fixture.model, config.shard));
  }

  VerdictMap sharded_verdicts, partition_verdicts;
  for (const Item& item : GlobalStream(fixture.dataset)) {
    Record(sharded.Observe(item), &sharded_verdicts);
    Record(partitions[sharded.ShardOf(item.key)]->Observe(item),
           &partition_verdicts);
  }
  Record(sharded.Flush(), &sharded_verdicts);
  for (const auto& partition : partitions) {
    Record(partition->Flush(), &partition_verdicts);
  }

  ASSERT_FALSE(sharded_verdicts.empty());
  EXPECT_EQ(sharded_verdicts, partition_verdicts);
}

TEST(ShardedStreamServerTest, ObserveBatchMatchesPerItemObserve) {
  Fixture fixture = TrainSmallModel(72);
  ShardedStreamServerConfig config;
  config.num_shards = 4;
  ShardedStreamServer batched(*fixture.model, config);
  ShardedStreamServer per_item(*fixture.model, config);

  const std::vector<Item> stream = GlobalStream(fixture.dataset);
  VerdictMap batched_verdicts, per_item_verdicts;
  // Uneven chunk sizes so batch boundaries fall mid-episode.
  for (size_t begin = 0; begin < stream.size();) {
    const size_t size = std::min<size_t>(1 + begin % 37,
                                         stream.size() - begin);
    std::vector<Item> batch(stream.begin() + begin,
                            stream.begin() + begin + size);
    Record(batched.ObserveBatch(batch), &batched_verdicts);
    begin += size;
  }
  for (const Item& item : stream) {
    Record(per_item.Observe(item), &per_item_verdicts);
  }
  Record(batched.Flush(), &batched_verdicts);
  Record(per_item.Flush(), &per_item_verdicts);

  ASSERT_FALSE(batched_verdicts.empty());
  EXPECT_EQ(batched_verdicts, per_item_verdicts);

  const StreamServerStats batched_stats = batched.stats();
  const StreamServerStats per_item_stats = per_item.stats();
  EXPECT_EQ(batched_stats.items_processed, per_item_stats.items_processed);
  EXPECT_EQ(batched_stats.sequences_classified,
            per_item_stats.sequences_classified);
  EXPECT_EQ(batched_stats.policy_halts, per_item_stats.policy_halts);
}

TEST(ShardedStreamServerTest, MergedStatsAddUp) {
  Fixture fixture = TrainSmallModel(73);
  ShardedStreamServerConfig config;
  config.num_shards = 3;
  ShardedStreamServer server(*fixture.model, config);

  const std::vector<Item> stream = GlobalStream(fixture.dataset);
  server.ObserveBatch(stream);
  const int64_t flushed = static_cast<int64_t>(server.Flush().size());

  const StreamServerStats stats = server.stats();
  EXPECT_EQ(stats.items_processed, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.flush_classifications, flushed);
  EXPECT_EQ(stats.policy_halts + stats.idle_timeouts +
                stats.capacity_evictions + stats.rotation_classifications +
                stats.flush_classifications,
            stats.sequences_classified);
  int64_t by_class = 0;
  for (int64_t count : stats.class_counts) by_class += count;
  EXPECT_EQ(by_class, stats.sequences_classified);
  EXPECT_EQ(stats.windows_started, config.num_shards);  // no rotations here

  // The merged view is exactly the sum of the per-shard views.
  int64_t per_shard_items = 0;
  int64_t per_shard_verdicts = 0;
  for (int s = 0; s < server.num_shards(); ++s) {
    const StreamServerStats shard = server.shard_stats(s);
    per_shard_items += shard.items_processed;
    per_shard_verdicts += shard.sequences_classified;
  }
  EXPECT_EQ(per_shard_items, stats.items_processed);
  EXPECT_EQ(per_shard_verdicts, stats.sequences_classified);
}

TEST(ShardedStreamServerTest, EveryKeyGetsExactlyOneVerdict) {
  Fixture fixture = TrainSmallModel(74);
  ShardedStreamServerConfig config;
  config.num_shards = 5;
  ShardedStreamServer server(*fixture.model, config);

  VerdictMap verdicts;
  Record(server.ObserveBatch(GlobalStream(fixture.dataset)), &verdicts);
  Record(server.Flush(), &verdicts);

  int expected_keys = 0;
  for (const TangledSequence& episode : fixture.dataset.test) {
    expected_keys += episode.num_keys();
  }
  EXPECT_EQ(static_cast<int>(verdicts.size()), expected_keys);
  EXPECT_EQ(server.open_keys(), 0);
  EXPECT_TRUE(server.Flush().empty());  // idempotent
}

TEST(ShardedStreamServerTest, PerShardCapacityCapHolds) {
  Fixture fixture = TrainSmallModel(75);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.shard.max_open_keys = 4;
  config.shard.idle_timeout = 1 << 20;
  ShardedStreamServer server(*fixture.model, config);

  Item base = fixture.dataset.test[0].items[0];
  for (int key = 0; key < 100; ++key) {
    Item item = base;
    item.key = key;
    item.time = key;
    server.Observe(item);
    EXPECT_LE(server.open_keys(),
              config.num_shards * config.shard.max_open_keys);
  }
  EXPECT_GE(server.stats().capacity_evictions, 1);
}

TEST(ShardedStreamServerTest, ShardOfIsStableAndInRange) {
  Fixture fixture = TrainSmallModel(76);
  ShardedStreamServerConfig config;
  config.num_shards = 8;
  ShardedStreamServer server(*fixture.model, config);
  for (int key = -5; key < 1000; ++key) {
    const int shard = server.ShardOf(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, config.num_shards);
    EXPECT_EQ(shard, server.ShardOf(key));
  }
}

TEST(ShardedStreamServerDeathTest, RejectsBadShardCount) {
  Fixture fixture = TrainSmallModel(77);
  ShardedStreamServerConfig bad;
  bad.num_shards = 0;
  EXPECT_DEATH(ShardedStreamServer(*fixture.model, bad), "check failed");
}

}  // namespace
}  // namespace kvec
