// Parameterized property tests of the tensor operators: algebraic
// identities that must hold for every shape, independent of the values.
#include <cmath>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {
namespace {

Tensor RandomTensor(int rows, int cols, Rng& rng, float scale = 1.0f) {
  Tensor t = Tensor::Zeros(rows, cols);
  for (float& v : t.data()) {
    v = scale * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor Identity(int n) {
  Tensor eye = Tensor::Zeros(n, n);
  for (int i = 0; i < n; ++i) eye.Set(i, i, 1.0f);
  return eye;
}

void ExpectTensorsNear(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.At(i, j), b.At(i, j), tol) << "(" << i << "," << j << ")";
    }
  }
}

using Shape = std::tuple<int, int>;

class MatMulProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(MatMulProperty, IdentityIsNeutral) {
  auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  Tensor a = RandomTensor(m, n, rng);
  ExpectTensorsNear(ops::MatMul(a, Identity(n)), a);
  ExpectTensorsNear(ops::MatMul(Identity(m), a), a);
}

TEST_P(MatMulProperty, TransposeBMatchesExplicitTranspose) {
  auto [m, n] = GetParam();
  Rng rng(m * 37 + n);
  Tensor a = RandomTensor(m, 5, rng);
  Tensor b = RandomTensor(n, 5, rng);
  ExpectTensorsNear(ops::MatMulTransposeB(a, b),
                    ops::MatMul(a, ops::Transpose(b)));
}

TEST_P(MatMulProperty, DistributesOverAddition) {
  auto [m, n] = GetParam();
  Rng rng(m * 41 + n);
  Tensor a = RandomTensor(m, n, rng);
  Tensor b = RandomTensor(n, 3, rng);
  Tensor c = RandomTensor(n, 3, rng);
  ExpectTensorsNear(ops::MatMul(a, ops::Add(b, c)),
                    ops::Add(ops::MatMul(a, b), ops::MatMul(a, c)), 2e-4f);
}

TEST_P(MatMulProperty, DoubleTransposeIsIdentity) {
  auto [m, n] = GetParam();
  Rng rng(m * 43 + n);
  Tensor a = RandomTensor(m, n, rng);
  ExpectTensorsNear(ops::Transpose(ops::Transpose(a)), a, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulProperty,
                         ::testing::Values(Shape{1, 1}, Shape{1, 7},
                                           Shape{4, 4}, Shape{3, 8},
                                           Shape{9, 2}));

class SoftmaxShiftProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(SoftmaxShiftProperty, InvariantToRowShift) {
  // softmax(x + c) == softmax(x) for a constant shift c.
  auto [m, n] = GetParam();
  Rng rng(m * 47 + n);
  Tensor a = RandomTensor(m, n, rng, 2.0f);
  Tensor shifted = ops::Affine(a, 1.0f, 13.5f);
  ExpectTensorsNear(ops::Softmax(a), ops::Softmax(shifted), 1e-5f);
}

TEST_P(SoftmaxShiftProperty, LogSoftmaxConsistent) {
  auto [m, n] = GetParam();
  Rng rng(m * 53 + n);
  Tensor a = RandomTensor(m, n, rng, 2.0f);
  Tensor log_soft = ops::LogSoftmax(a);
  Tensor soft = ops::Softmax(a);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(std::exp(log_soft.At(i, j)), soft.At(i, j), 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShiftProperty,
                         ::testing::Values(Shape{1, 2}, Shape{3, 5},
                                           Shape{6, 1}, Shape{2, 12}));

class SliceProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(SliceProperty, RowAndColSlicesTile) {
  auto [m, n] = GetParam();
  if (m < 2 || n < 2) GTEST_SKIP();
  Rng rng(m * 59 + n);
  Tensor a = RandomTensor(m, n, rng);
  // Stitch row slices back together.
  std::vector<Tensor> rows;
  for (int i = 0; i < m; ++i) rows.push_back(ops::SliceRow(a, i));
  ExpectTensorsNear(ops::StackRows(rows), a, 0.0f);
  // Stitch column slices back together.
  Tensor rebuilt = ops::ConcatCols(ops::SliceCols(a, 0, n / 2),
                                   ops::SliceCols(a, n / 2, n));
  ExpectTensorsNear(rebuilt, a, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SliceProperty,
                         ::testing::Values(Shape{2, 2}, Shape{5, 4},
                                           Shape{3, 9}));

class ReductionProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(ReductionProperty, SumAndMeanAgree) {
  auto [m, n] = GetParam();
  Rng rng(m * 61 + n);
  Tensor a = RandomTensor(m, n, rng);
  const float sum = ops::SumAll(a).ScalarValue();
  const float mean = ops::MeanAll(a).ScalarValue();
  EXPECT_NEAR(sum, mean * m * n, 1e-3f * (1.0f + std::fabs(sum)));
}

TEST_P(ReductionProperty, AddNMatchesRepeatedAdd) {
  auto [m, n] = GetParam();
  Rng rng(m * 67 + n);
  Tensor a = RandomTensor(m, n, rng);
  Tensor b = RandomTensor(m, n, rng);
  Tensor c = RandomTensor(m, n, rng);
  ExpectTensorsNear(ops::AddN({a, b, c}), ops::Add(ops::Add(a, b), c),
                    1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReductionProperty,
                         ::testing::Values(Shape{1, 1}, Shape{4, 7},
                                           Shape{8, 3}));

// ---- Nonlinearity bounds ----

class NonlinearityProperty : public ::testing::TestWithParam<int> {};

TEST_P(NonlinearityProperty, RangesHold) {
  Rng rng(GetParam());
  Tensor a = RandomTensor(4, 6, rng, 3.0f);
  Tensor sigmoid = ops::Sigmoid(a);
  Tensor tanh = ops::Tanh(a);
  Tensor relu = ops::Relu(a);
  Tensor gelu = ops::Gelu(a);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_GT(sigmoid.data()[i], 0.0f);
    EXPECT_LT(sigmoid.data()[i], 1.0f);
    EXPECT_GE(tanh.data()[i], -1.0f);
    EXPECT_LE(tanh.data()[i], 1.0f);
    EXPECT_GE(relu.data()[i], 0.0f);
    // gelu(x) >= min(0, x) - small slack, <= max(0, x).
    const float x = a.data()[i];
    EXPECT_GE(gelu.data()[i], std::min(0.0f, x) - 0.2f);
    EXPECT_LE(gelu.data()[i], std::max(0.0f, x) + 1e-5f);
  }
}

TEST_P(NonlinearityProperty, ReluIsIdempotent) {
  Rng rng(GetParam() + 100);
  Tensor a = RandomTensor(3, 5, rng, 2.0f);
  ExpectTensorsNear(ops::Relu(ops::Relu(a)), ops::Relu(a), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonlinearityProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace kvec
