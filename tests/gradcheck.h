// Finite-difference gradient checking for autograd tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace kvec {
namespace testing {

// Checks d(forward())/d(input[i][j]) against central differences for every
// element of every input. `forward` must rebuild the graph on each call and
// return a scalar tensor computed from `inputs`.
inline void ExpectGradientsMatch(const std::vector<Tensor>& inputs,
                                 const std::function<Tensor()>& forward,
                                 float eps = 1e-2f, float tol = 4e-2f) {
  // Analytic gradients.
  for (const Tensor& input : inputs) {
    ASSERT_TRUE(input.requires_grad());
    const_cast<Tensor&>(input).ZeroGrad();
  }
  Tensor loss = forward();
  ASSERT_EQ(loss.size(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (const Tensor& input : inputs) analytic.push_back(input.grad());

  // Numeric gradients.
  for (size_t which = 0; which < inputs.size(); ++which) {
    Tensor input = inputs[which];
    for (size_t i = 0; i < input.data().size(); ++i) {
      const float saved = input.data()[i];
      input.impl()->data[i] = saved + eps;
      const float up = forward().ScalarValue();
      input.impl()->data[i] = saved - eps;
      const float down = forward().ScalarValue();
      input.impl()->data[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic[which][i];
      EXPECT_NEAR(got, numeric, tol * (1.0f + std::fabs(numeric)))
          << "input " << which << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace kvec

