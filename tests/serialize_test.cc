#include "util/serialize.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter writer;
  writer.WriteInt32(-42);
  writer.WriteInt64(1234567890123LL);
  writer.WriteFloat(3.25f);
  writer.WriteString("hello kvec");
  writer.WriteFloatVector({1.0f, -2.5f, 0.0f});
  writer.WriteIntVector({7, 8, 9});

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadInt32(), -42);
  EXPECT_EQ(reader.ReadInt64(), 1234567890123LL);
  EXPECT_EQ(reader.ReadFloat(), 3.25f);
  EXPECT_EQ(reader.ReadString(), "hello kvec");
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{1.0f, -2.5f, 0.0f}));
  EXPECT_EQ(reader.ReadIntVector(), (std::vector<int>{7, 8, 9}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, EmptyContainers) {
  BinaryWriter writer;
  writer.WriteString("");
  writer.WriteFloatVector({});
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadFloatVector().empty());
}

TEST(SerializeTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/kvec_serialize_test.bin";
  BinaryWriter writer;
  writer.WriteInt32(99);
  writer.WriteFloatVector({0.5f, 1.5f});
  ASSERT_TRUE(writer.SaveToFile(path));

  BinaryReader reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadInt32(), 99);
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{0.5f, 1.5f}));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileReportsNotOk) {
  BinaryReader reader = BinaryReader::FromFile("/nonexistent/kvec.bin");
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeDeathTest, TypeMismatchAborts) {
  BinaryWriter writer;
  writer.WriteInt32(1);
  BinaryReader reader(writer.buffer());
  EXPECT_DEATH(reader.ReadFloat(), "type mismatch");
}

TEST(SerializeDeathTest, TruncatedBufferAborts) {
  BinaryWriter writer;
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f});
  std::string truncated = writer.buffer().substr(0, 10);
  BinaryReader reader(truncated);
  EXPECT_DEATH(reader.ReadFloatVector(), "truncated");
}

}  // namespace
}  // namespace kvec
