#include "util/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter writer;
  writer.WriteInt32(-42);
  writer.WriteInt64(1234567890123LL);
  writer.WriteFloat(3.25f);
  writer.WriteString("hello kvec");
  writer.WriteFloatVector({1.0f, -2.5f, 0.0f});
  writer.WriteIntVector({7, 8, 9});

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadInt32(), -42);
  EXPECT_EQ(reader.ReadInt64(), 1234567890123LL);
  EXPECT_EQ(reader.ReadFloat(), 3.25f);
  EXPECT_EQ(reader.ReadString(), "hello kvec");
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{1.0f, -2.5f, 0.0f}));
  EXPECT_EQ(reader.ReadIntVector(), (std::vector<int>{7, 8, 9}));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(reader.ok());
}

TEST(SerializeTest, EmptyContainers) {
  BinaryWriter writer;
  writer.WriteString("");
  writer.WriteFloatVector({});
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadFloatVector().empty());
  EXPECT_TRUE(reader.ok());
}

TEST(SerializeTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/kvec_serialize_test.bin";
  BinaryWriter writer;
  writer.WriteInt32(99);
  writer.WriteFloatVector({0.5f, 1.5f});
  ASSERT_TRUE(writer.SaveToFile(path));

  BinaryReader reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadInt32(), 99);
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{0.5f, 1.5f}));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileReportsNotOk) {
  BinaryReader reader = BinaryReader::FromFile("/nonexistent/kvec.bin");
  EXPECT_FALSE(reader.ok());
}

// ---- Fail-closed reads (the reader must never abort, allocate huge
// buffers, or read out of bounds on untrusted bytes). ----

TEST(SerializeTest, TypeMismatchFailsClosed) {
  BinaryWriter writer;
  writer.WriteInt32(1);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadFloat(), 0.0f);
  EXPECT_FALSE(reader.ok());
  // Once failed, every later read fails too — even one the bytes could
  // have satisfied.
  EXPECT_EQ(reader.ReadInt32(), 0);
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, TruncatedVectorFailsClosed) {
  BinaryWriter writer;
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f});
  std::string truncated = writer.buffer().substr(0, 10);
  BinaryReader reader(truncated);
  EXPECT_TRUE(reader.ReadFloatVector().empty());
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, EveryTruncationPointFailsClosed) {
  BinaryWriter writer;
  writer.WriteInt32(7);
  writer.WriteString("abc");
  writer.WriteIntVector({1, 2, 3});
  const std::string& full = writer.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader reader(full.substr(0, cut));
    reader.ReadInt32();
    reader.ReadString();
    reader.ReadIntVector();
    EXPECT_FALSE(reader.ok()) << "cut at " << cut;
  }
}

TEST(SerializeTest, OversizedLengthPrefixFailsWithoutAllocating) {
  // Hand-craft a float vector whose length prefix claims 2^60 elements:
  // the reader must reject it by comparing against the bytes remaining,
  // not by trying to allocate.
  BinaryWriter writer;
  writer.WriteFloatVector({1.0f, 2.0f});
  std::string bytes = writer.buffer();
  const int64_t huge = int64_t{1} << 60;
  std::memcpy(&bytes[4], &huge, sizeof(huge));  // after the 4-byte tag
  BinaryReader reader(bytes);
  EXPECT_TRUE(reader.ReadFloatVector().empty());
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, NegativeLengthPrefixFailsClosed) {
  BinaryWriter writer;
  writer.WriteString("abcd");
  std::string bytes = writer.buffer();
  const int64_t negative = -5;
  std::memcpy(&bytes[4], &negative, sizeof(negative));
  BinaryReader reader(bytes);
  EXPECT_TRUE(reader.ReadString().empty());
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, RemainingTracksConsumption) {
  BinaryWriter writer;
  writer.WriteInt32(5);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), writer.buffer().size());
  reader.ReadInt32();
  EXPECT_EQ(reader.remaining(), 0u);
}

// ---- Checkpoint container ----

Checkpoint MakeTwoSectionCheckpoint() {
  Checkpoint checkpoint;
  // kvec-lint: allow-next(section-id) container framing test, ids arbitrary
  checkpoint.sections.push_back({1, std::string("alpha")});
  // kvec-lint: allow-next(section-id) container framing test, ids arbitrary
  checkpoint.sections.push_back({7, std::string("\x00\x01\x02", 3)});
  return checkpoint;
}

TEST(CheckpointContainerTest, EncodeDecodeRoundTrip) {
  const std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  Checkpoint decoded;
  ASSERT_TRUE(CheckpointDecode(bytes, &decoded));
  EXPECT_EQ(decoded.version, kCheckpointFormatVersion);
  ASSERT_EQ(decoded.sections.size(), 2u);
  EXPECT_EQ(decoded.sections[0].id, 1);
  EXPECT_EQ(decoded.sections[0].payload, "alpha");
  EXPECT_EQ(decoded.sections[1].id, 7);
  EXPECT_EQ(decoded.sections[1].payload, std::string("\x00\x01\x02", 3));
  // kvec-lint: allow-next(section-id) framing test looks up arbitrary ids
  ASSERT_NE(decoded.Find(7), nullptr);
  // kvec-lint: allow-next(section-id) framing test looks up arbitrary ids
  EXPECT_EQ(decoded.Find(7)->payload.size(), 3u);
  // kvec-lint: allow-next(section-id) framing test looks up arbitrary ids
  EXPECT_EQ(decoded.Find(99), nullptr);
}

TEST(CheckpointContainerTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/kvec_checkpoint_test.ckpt";
  ASSERT_TRUE(CheckpointSave(path, MakeTwoSectionCheckpoint()));
  Checkpoint decoded;
  ASSERT_TRUE(CheckpointLoad(path, &decoded));
  EXPECT_EQ(decoded.sections.size(), 2u);
  std::remove(path.c_str());
}

TEST(CheckpointContainerTest, RejectsBadMagic) {
  std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  bytes[0] ^= 0xff;
  Checkpoint decoded;
  EXPECT_FALSE(CheckpointDecode(bytes, &decoded));
}

TEST(CheckpointContainerTest, RejectsFutureVersion) {
  Checkpoint future = MakeTwoSectionCheckpoint();
  future.version = kCheckpointMaxFormatVersion + 1;
  Checkpoint decoded;
  EXPECT_FALSE(CheckpointDecode(CheckpointEncode(future), &decoded));
  future.version = 0;
  EXPECT_FALSE(CheckpointDecode(CheckpointEncode(future), &decoded));
}

TEST(CheckpointContainerTest, AcceptsEveryKnownVersion) {
  for (int32_t v = kCheckpointFormatVersion; v <= kCheckpointMaxFormatVersion;
       ++v) {
    Checkpoint known = MakeTwoSectionCheckpoint();
    known.version = v;
    Checkpoint decoded;
    ASSERT_TRUE(CheckpointDecode(CheckpointEncode(known), &decoded));
    EXPECT_EQ(decoded.version, v);
  }
}

TEST(AtomicWriteFileTest, WritesAndReplaces) {
  const std::string path = ::testing::TempDir() + "/atomic_write_test.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "first"));
  ASSERT_TRUE(AtomicWriteFile(path, std::string("\x00second\xff", 9)));
  std::ifstream in(path, std::ios::binary);
  std::string read((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read, std::string("\x00second\xff", 9));
  std::remove(path.c_str());
}

TEST(CheckpointFingerprintTest, SensitiveToEveryByte) {
  const std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  const uint64_t base = CheckpointFingerprint(bytes);
  EXPECT_EQ(base, CheckpointFingerprint(bytes));  // deterministic
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(CheckpointFingerprint(mutated), base) << "byte " << i;
  }
}

TEST(CheckpointContainerTest, RejectsEveryTruncationPoint) {
  const std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Checkpoint decoded;
    EXPECT_FALSE(CheckpointDecode(bytes.substr(0, cut), &decoded))
        << "cut at " << cut;
  }
}

TEST(CheckpointContainerTest, RejectsTrailingGarbage) {
  std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  bytes.push_back('x');
  Checkpoint decoded;
  EXPECT_FALSE(CheckpointDecode(bytes, &decoded));
}

TEST(CheckpointContainerTest, RejectsOversizedSectionCount) {
  std::string bytes = CheckpointEncode(MakeTwoSectionCheckpoint());
  const int32_t huge = 1 << 30;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // section-count field
  Checkpoint decoded;
  EXPECT_FALSE(CheckpointDecode(bytes, &decoded));
}

}  // namespace
}  // namespace kvec
