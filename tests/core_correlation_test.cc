#include "core/correlation.h"

#include <set>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace kvec {
namespace {

Item MakeItem(int key, int session_value, int other = 0) {
  Item item;
  item.key = key;
  item.value = {other, session_value};
  return item;
}

CorrelationOptions Options(bool key_corr = true, bool value_corr = true,
                           int window = 64) {
  CorrelationOptions options;
  options.use_key_correlation = key_corr;
  options.use_value_correlation = value_corr;
  options.value_correlation_window = window;
  options.session_field = 1;
  return options;
}

TEST(CorrelationTrackerTest, KeyCorrelationSeesAllPriorSameKeyItems) {
  CorrelationTracker tracker(Options(true, false));
  EXPECT_TRUE(tracker.ObserveItem(MakeItem(0, 1)).empty());
  EXPECT_TRUE(tracker.ObserveItem(MakeItem(1, 1)).empty());
  std::vector<int> visible = tracker.ObserveItem(MakeItem(0, 2));
  EXPECT_EQ(visible, (std::vector<int>{0}));
  visible = tracker.ObserveItem(MakeItem(0, 3));
  EXPECT_EQ(visible, (std::vector<int>{0, 2}));
}

TEST(CorrelationTrackerTest, ValueCorrelationMatchesOpenSession) {
  // Paper Fig. 2 example: e_t value-correlates with another key's open
  // session when the session-field values agree.
  CorrelationTracker tracker(Options(false, true));
  tracker.ObserveItem(MakeItem(0, 7));  // index 0: key0 session {7}
  tracker.ObserveItem(MakeItem(0, 7));  // index 1: same session
  std::vector<int> visible = tracker.ObserveItem(MakeItem(1, 7));
  std::set<int> got(visible.begin(), visible.end());
  EXPECT_EQ(got, (std::set<int>{0, 1}));
}

TEST(CorrelationTrackerTest, ValueCorrelationIgnoresMismatchedValue) {
  CorrelationTracker tracker(Options(false, true));
  tracker.ObserveItem(MakeItem(0, 7));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(1, 8));
  EXPECT_TRUE(visible.empty());
}

TEST(CorrelationTrackerTest, ClosedSessionIsNotJoinable) {
  CorrelationTracker tracker(Options(false, true));
  tracker.ObserveItem(MakeItem(0, 7));  // index 0
  tracker.ObserveItem(MakeItem(0, 9));  // index 1: key0's session is now {9}
  std::vector<int> visible = tracker.ObserveItem(MakeItem(1, 7));
  EXPECT_TRUE(visible.empty());  // the {7} session of key0 is closed
}

TEST(CorrelationTrackerTest, RecencyWindowEnforced) {
  CorrelationTracker tracker(Options(false, true, /*window=*/2));
  tracker.ObserveItem(MakeItem(0, 7));  // index 0
  tracker.ObserveItem(MakeItem(2, 5));  // index 1 (filler)
  tracker.ObserveItem(MakeItem(2, 5));  // index 2 (filler)
  // Key0's open session last item is index 0; gap is 3 > window 2.
  std::vector<int> visible = tracker.ObserveItem(MakeItem(1, 7));
  EXPECT_TRUE(visible.empty());
}

TEST(CorrelationTrackerTest, SameKeyNotReportedAsValueCorrelation) {
  CorrelationTracker tracker(Options(false, true));
  tracker.ObserveItem(MakeItem(0, 7));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(0, 7));
  EXPECT_TRUE(visible.empty());  // own key handled by key correlation only
}

TEST(CorrelationTrackerTest, BothCorrelationsCombine) {
  CorrelationTracker tracker(Options(true, true));
  tracker.ObserveItem(MakeItem(0, 7));  // 0
  tracker.ObserveItem(MakeItem(1, 7));  // 1: value-correlated with 0
  std::vector<int> visible = tracker.ObserveItem(MakeItem(1, 7));  // 2
  std::set<int> got(visible.begin(), visible.end());
  // key corr -> {1}; value corr -> key0's open session {0}.
  EXPECT_EQ(got, (std::set<int>{0, 1}));
}

TEST(CorrelationTrackerTest, SelectiveCapKeepsMostRecentMatches) {
  CorrelationOptions options = Options(/*key_corr=*/false);
  options.max_value_correlations = 2;
  CorrelationTracker tracker(options);
  // Keys 0..3 each open a session with value 7 (stream positions 0..3);
  // the item of key 9 matches all four but may only see the last two.
  tracker.ObserveItem(MakeItem(0, 7));
  tracker.ObserveItem(MakeItem(1, 7));
  tracker.ObserveItem(MakeItem(2, 7));
  tracker.ObserveItem(MakeItem(3, 7));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(9, 7));
  EXPECT_EQ(visible, (std::vector<int>{2, 3}));
}

TEST(CorrelationTrackerTest, SelectiveCapZeroMeansUnlimited) {
  CorrelationOptions options = Options(/*key_corr=*/false);
  options.max_value_correlations = 0;
  CorrelationTracker tracker(options);
  for (int key = 0; key < 5; ++key) tracker.ObserveItem(MakeItem(key, 7));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(9, 7));
  EXPECT_EQ(visible.size(), 5u);
}

TEST(CorrelationTrackerTest, SelectiveCapDoesNotLimitKeyCorrelation) {
  CorrelationOptions options = Options();
  options.max_value_correlations = 1;
  CorrelationTracker tracker(options);
  // Five same-key items: all stay visible (key correlation is never capped).
  for (int i = 0; i < 5; ++i) tracker.ObserveItem(MakeItem(0, i));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(0, 99));
  EXPECT_EQ(visible.size(), 5u);
}

TEST(CorrelationTrackerTest, SelectiveCapCountsItemsNotSessions) {
  CorrelationOptions options = Options(/*key_corr=*/false);
  options.max_value_correlations = 3;
  CorrelationTracker tracker(options);
  // One other key with a 5-item open session of value 7: the cap limits the
  // *items* of that session, keeping the most recent three.
  for (int i = 0; i < 5; ++i) tracker.ObserveItem(MakeItem(1, 7));
  std::vector<int> visible = tracker.ObserveItem(MakeItem(9, 7));
  EXPECT_EQ(visible, (std::vector<int>{2, 3, 4}));
}

TEST(BuildEpisodeMaskTest, SelectiveMaskIsSubsetOfUnlimitedMask) {
  TangledSequence episode;
  Rng rng(5);
  for (int t = 0; t < 40; ++t) {
    Item item;
    item.key = rng.NextInt(4);
    item.value = {0, rng.NextInt(3)};
    episode.items.push_back(item);
  }
  for (int key = 0; key < 4; ++key) episode.labels[key] = 0;
  CorrelationOptions unlimited = Options();
  CorrelationOptions capped = Options();
  capped.max_value_correlations = 2;
  EpisodeMask full = BuildEpisodeMask(episode, unlimited);
  EpisodeMask selective = BuildEpisodeMask(episode, capped);
  const int total = static_cast<int>(episode.items.size());
  for (int i = 0; i < total; ++i) {
    for (int j = 0; j < total; ++j) {
      if (selective.mask.At(i, j) == 0.0f) {
        EXPECT_EQ(full.mask.At(i, j), 0.0f)
            << "capped mask visible at (" << i << "," << j
            << ") but unlimited mask is not";
      }
    }
  }
}

TEST(BuildEpisodeMaskTest, DiagonalAlwaysVisible) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  for (int i = 0; i < 5; ++i) {
    episode.items.push_back(MakeItem(i % 2, i));
    episode.items.back().time = i;
  }
  EpisodeMask mask = BuildEpisodeMask(episode, Options());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(mask.mask.At(i, i), 0.0f);
}

TEST(BuildEpisodeMaskTest, CausalityNoFutureVisibility) {
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 6; ++i) {
    episode.items.push_back(MakeItem(0, 3));  // all one session
    episode.items.back().time = i;
  }
  EpisodeMask mask = BuildEpisodeMask(episode, Options());
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      EXPECT_EQ(mask.mask.At(i, j), ops::kNegInf)
          << "future item visible at (" << i << "," << j << ")";
    }
  }
}

TEST(BuildEpisodeMaskTest, MatchesTrackerVisibility) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  episode.labels[2] = 0;
  Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    episode.items.push_back(MakeItem(rng.NextInt(3), rng.NextInt(2)));
    episode.items.back().time = i;
  }
  CorrelationOptions options = Options();
  EpisodeMask mask = BuildEpisodeMask(episode, options);
  CorrelationTracker tracker(options);
  for (int i = 0; i < 40; ++i) {
    std::set<int> expected;
    for (int j : tracker.ObserveItem(episode.items[i])) expected.insert(j);
    expected.insert(i);
    for (int j = 0; j < 40; ++j) {
      bool visible = mask.mask.At(i, j) == 0.0f;
      EXPECT_EQ(visible, expected.count(j) > 0)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(BuildEpisodeMaskTest, KeyOnlyMaskIsBlockCausal) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  for (int i = 0; i < 8; ++i) {
    episode.items.push_back(MakeItem(i % 2, i));  // distinct session values
    episode.items.back().time = i;
  }
  EpisodeMask mask = BuildEpisodeMask(episode, Options(true, false));
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < i; ++j) {
      bool same_key = (i % 2) == (j % 2);
      EXPECT_EQ(mask.mask.At(i, j) == 0.0f, same_key);
    }
  }
}

TEST(BuildEpisodeMaskTest, NoCorrelationsLeavesOnlyDiagonal) {
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 4; ++i) {
    episode.items.push_back(MakeItem(0, 3));
    episode.items.back().time = i;
  }
  EpisodeMask mask = BuildEpisodeMask(episode, Options(false, false));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(mask.mask.At(i, j) == 0.0f, i == j);
    }
  }
}

}  // namespace
}  // namespace kvec
