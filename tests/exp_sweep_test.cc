#include "exp/sweep.h"

#include <cstdio>
#include <filesystem>

#include "data/generator.h"
#include "data/traffic_generator.h"
#include "exp/cache.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

Dataset TinyDataset() {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 2;
  config.avg_flow_length = 8.0;
  config.min_flow_length = 4;
  config.handshake_sharpness = 6.0;
  TrafficGenerator generator(config);
  return GenerateDataset(generator, {6, 1, 3}, /*seed=*/61);
}

MethodRunOptions TinyOptions() {
  MethodRunOptions options = MethodRunOptions::ForScale(ExperimentScale::kTiny);
  options.epochs = 2;
  return options;
}

TEST(MethodTest, AllMethodsPresent) {
  std::vector<MethodSpec> methods = AllMethods();
  ASSERT_EQ(methods.size(), 5u);
  EXPECT_EQ(methods[0].name, "KVEC");
  for (const MethodSpec& method : methods) {
    EXPECT_FALSE(method.grid.empty());
    EXPECT_TRUE(method.run != nullptr);
  }
}

TEST(MethodTest, EachMethodRunsEndToEnd) {
  Dataset dataset = TinyDataset();
  MethodRunOptions options = TinyOptions();
  for (const MethodSpec& method : AllMethods()) {
    EvaluationResult result =
        method.run(dataset, method.grid.front(), options);
    EXPECT_GT(result.summary.num_sequences, 0) << method.name;
    EXPECT_GE(result.summary.accuracy, 0.0) << method.name;
    EXPECT_LE(result.summary.earliness, 1.0) << method.name;
  }
}

TEST(SweepTest, PointsSortedByEarliness) {
  Dataset dataset = TinyDataset();
  MethodRunOptions options = TinyOptions();
  MethodSpec fixed = SrnFixedMethod();
  fixed.grid = {1, 4, 16};
  std::vector<SweepPoint> points = RunMethodSweep(fixed, dataset, options);
  ASSERT_EQ(points.size(), 3u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].earliness, points[i].earliness);
  }
}

TEST(SweepTest, FixedTauGridSpansEarliness) {
  // τ=1 must observe fewer items than τ=16 on sequences of length >= 4.
  Dataset dataset = TinyDataset();
  MethodRunOptions options = TinyOptions();
  MethodSpec fixed = SrnFixedMethod();
  fixed.grid = {1, 16};
  std::vector<SweepPoint> points = RunMethodSweep(fixed, dataset, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points.front().earliness, points.back().earliness);
}

TEST(SweepTest, TableRoundTrip) {
  std::vector<SweepPoint> points(2);
  points[0].method = "KVEC";
  points[0].hyper = 0.01;
  points[0].earliness = 0.2;
  points[0].accuracy = 0.9;
  points[0].harmonic_mean = 0.84;
  points[1].method = "EARLIEST";
  points[1].hyper = -0.02;
  points[1].earliness = 0.5;
  points[1].accuracy = 0.7;

  Table table = SweepToTable(points);
  std::vector<SweepPoint> parsed;
  ASSERT_TRUE(SweepFromTable(table, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].method, "KVEC");
  EXPECT_NEAR(parsed[0].accuracy, 0.9, 1e-5);
  EXPECT_NEAR(parsed[1].hyper, -0.02, 1e-5);
}

TEST(SweepTest, FromTableRejectsWrongSchema) {
  Table table({"not", "the", "schema"});
  std::vector<SweepPoint> parsed;
  EXPECT_FALSE(SweepFromTable(table, &parsed));
}

TEST(CacheTest, StoreThenLoad) {
  std::string dir = ::testing::TempDir() + "/kvec_cache_test";
  std::filesystem::remove_all(dir);
  SweepCache cache(dir);
  std::vector<SweepPoint> points(1);
  points[0].method = "KVEC";
  points[0].accuracy = 0.5;
  cache.Store("unit", points);
  std::vector<SweepPoint> loaded;
  ASSERT_TRUE(cache.Load("unit", &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].method, "KVEC");
  std::filesystem::remove_all(dir);
}

TEST(CacheTest, MissingKeyLoadsFalse) {
  std::string dir = ::testing::TempDir() + "/kvec_cache_test2";
  std::filesystem::remove_all(dir);
  SweepCache cache(dir);
  std::vector<SweepPoint> loaded;
  EXPECT_FALSE(cache.Load("never-stored", &loaded));
  std::filesystem::remove_all(dir);
}

TEST(CacheTest, LoadOrComputeComputesOnce) {
  std::string dir = ::testing::TempDir() + "/kvec_cache_test3";
  std::filesystem::remove_all(dir);
  SweepCache cache(dir);
  int calls = 0;
  auto compute = [&]() {
    ++calls;
    std::vector<SweepPoint> points(1);
    points[0].method = "M";
    return points;
  };
  cache.LoadOrCompute("key", compute);
  cache.LoadOrCompute("key", compute);
  EXPECT_EQ(calls, 1);
  std::filesystem::remove_all(dir);
}

// ---- Curve interpolation (headline_improvements machinery) ----

SweepPoint Point(const std::string& method, double earliness,
                 double accuracy, double hm = 0.0) {
  SweepPoint point;
  point.method = method;
  point.earliness = earliness;
  point.accuracy = accuracy;
  point.harmonic_mean = hm;
  return point;
}

TEST(InterpolateTest, PointsOfMethodFiltersAndSorts) {
  std::vector<SweepPoint> all = {Point("A", 0.5, 0.9), Point("B", 0.1, 0.2),
                                 Point("A", 0.1, 0.5), Point("A", 0.3, 0.7)};
  std::vector<SweepPoint> a = PointsOfMethod(all, "A");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].earliness, 0.1);
  EXPECT_DOUBLE_EQ(a[1].earliness, 0.3);
  EXPECT_DOUBLE_EQ(a[2].earliness, 0.5);
  EXPECT_TRUE(PointsOfMethod(all, "missing").empty());
}

TEST(InterpolateTest, LinearBetweenPoints) {
  std::vector<SweepPoint> curve = {Point("A", 0.1, 0.5),
                                   Point("A", 0.3, 0.9)};
  EXPECT_NEAR(InterpolateMetric(curve, 0.2, &SweepPoint::accuracy), 0.7,
              1e-12);
  EXPECT_NEAR(InterpolateMetric(curve, 0.15, &SweepPoint::accuracy), 0.6,
              1e-12);
}

TEST(InterpolateTest, ClampsOutsideRange) {
  std::vector<SweepPoint> curve = {Point("A", 0.2, 0.4),
                                   Point("A", 0.6, 0.8)};
  EXPECT_DOUBLE_EQ(InterpolateMetric(curve, 0.0, &SweepPoint::accuracy), 0.4);
  EXPECT_DOUBLE_EQ(InterpolateMetric(curve, 1.0, &SweepPoint::accuracy), 0.8);
}

TEST(InterpolateTest, ExactPointsReturnedVerbatim) {
  std::vector<SweepPoint> curve = {Point("A", 0.1, 0.5, 0.2),
                                   Point("A", 0.4, 0.9, 0.6)};
  EXPECT_DOUBLE_EQ(InterpolateMetric(curve, 0.4, &SweepPoint::accuracy),
                   0.9);
  EXPECT_DOUBLE_EQ(
      InterpolateMetric(curve, 0.1, &SweepPoint::harmonic_mean), 0.2);
}

TEST(InterpolateTest, DuplicateEarlinessDoesNotDivideByZero) {
  std::vector<SweepPoint> curve = {Point("A", 0.2, 0.4),
                                   Point("A", 0.2, 0.6),
                                   Point("A", 0.5, 1.0)};
  const double v = InterpolateMetric(curve, 0.2, &SweepPoint::accuracy);
  EXPECT_GE(v, 0.4);
  EXPECT_LE(v, 0.6);
}

TEST(InterpolateDeathTest, EmptyCurveRejected) {
  EXPECT_DEATH(InterpolateMetric({}, 0.5, &SweepPoint::accuracy),
               "check failed");
}

TEST(CacheTest, FreshEnvBypassesCache) {
  std::string dir = ::testing::TempDir() + "/kvec_cache_test4";
  std::filesystem::remove_all(dir);
  SweepCache cache(dir);
  std::vector<SweepPoint> points(1);
  points[0].method = "M";
  cache.Store("key", points);
  setenv("KVEC_BENCH_FRESH", "1", 1);
  std::vector<SweepPoint> loaded;
  EXPECT_FALSE(cache.Load("key", &loaded));
  unsetenv("KVEC_BENCH_FRESH");
  EXPECT_TRUE(cache.Load("key", &loaded));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kvec
