// Overload behavior of the shard-owned-worker serving mode.
//
// The contract under test is the overload invariant: after Drain(),
//
//   items_submitted == items_processed + items_shed
//
// for every overload policy, queue depth, and shard count — including with
// fault-injected worker stalls. Overload may slow serving or (under a shed
// policy) drop counted batches; it must never lose items silently, deadlock,
// or corrupt serving state. Checkpoints taken from a worker-mode server must
// restore into a differential-replay-identical server with re-baselined
// transport counters.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "util/fault_injection.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed = 137) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// The fixture is expensive to train; every test reads it, none mutates it.
const Fixture& SharedFixture() {
  static const Fixture fixture = TrainSmallModel();
  return fixture;
}

// The test episodes as one stream, replicated `rounds` times with fresh
// global keys each round so the offered load is large while every key's
// sub-sequence stays realistic.
std::vector<Item> OfferedStream(const Dataset& dataset, int rounds) {
  std::vector<Item> stream;
  int offset = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const TangledSequence& episode : dataset.test) {
      for (Item item : episode.items) {
        item.key += offset;
        stream.push_back(std::move(item));
      }
      offset += 100;
    }
  }
  return stream;
}

// Splits `stream` into batches of `batch` items.
std::vector<std::vector<Item>> Batches(const std::vector<Item>& stream,
                                       int batch) {
  std::vector<std::vector<Item>> batches;
  for (size_t begin = 0; begin < stream.size();
       begin += static_cast<size_t>(batch)) {
    size_t end = std::min(stream.size(), begin + static_cast<size_t>(batch));
    batches.emplace_back(stream.begin() + begin, stream.begin() + end);
  }
  return batches;
}

class OverloadTest : public ::testing::Test {
 protected:
  // Fault hooks must never leak into the next test.
  void TearDown() override { FaultInjection::DisarmAll(); }
};

TEST_F(OverloadTest, InvariantHoldsAcrossPoliciesDepthsAndShardCounts) {
  const Fixture& fixture = SharedFixture();
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 3);
  const std::vector<std::vector<Item>> batches = Batches(stream, 8);
  const int64_t offered = static_cast<int64_t>(stream.size());

  const OverloadPolicy policies[] = {OverloadPolicy::kBlock,
                                     OverloadPolicy::kShedNewest,
                                     OverloadPolicy::kShedOldest};
  const int depths[] = {1, 16, 1024};
  const int shard_counts[] = {1, 2, 8};
  for (OverloadPolicy policy : policies) {
    for (int depth : depths) {
      for (int num_shards : shard_counts) {
        SCOPED_TRACE(std::string(OverloadPolicyName(policy)) + " depth " +
                     std::to_string(depth) + " shards " +
                     std::to_string(num_shards));
        ShardedStreamServerConfig config;
        config.num_shards = num_shards;
        config.worker_threads = num_shards;
        config.queue_depth = depth;
        config.overload_policy = policy;
        ShardedStreamServer server(*fixture.model, config);

        // Two producers racing into the same shard queues.
        std::vector<std::thread> producers;
        for (int p = 0; p < 2; ++p) {
          producers.emplace_back([&server, &batches, p]() {
            for (size_t i = static_cast<size_t>(p); i < batches.size();
                 i += 2) {
              server.Submit(batches[i]);
            }
          });
        }
        for (std::thread& producer : producers) producer.join();
        server.Drain();

        const StreamServerStats stats = server.stats();
        EXPECT_EQ(stats.items_submitted, offered);
        EXPECT_EQ(stats.items_submitted,
                  stats.items_processed + stats.items_shed);
        if (policy == OverloadPolicy::kBlock) {
          // Backpressure never sheds.
          EXPECT_EQ(stats.items_shed, 0);
          EXPECT_EQ(stats.batches_shed, 0);
          EXPECT_EQ(stats.items_processed, offered);
        }
        // The invariant also holds shard by shard.
        int64_t submitted = 0, processed = 0, shed = 0;
        for (int s = 0; s < server.num_shards(); ++s) {
          const StreamServerStats shard = server.shard_stats(s);
          EXPECT_EQ(shard.items_submitted,
                    shard.items_processed + shard.items_shed);
          submitted += shard.items_submitted;
          processed += shard.items_processed;
          shed += shard.items_shed;
        }
        EXPECT_EQ(submitted, stats.items_submitted);
        EXPECT_EQ(processed, stats.items_processed);
        EXPECT_EQ(shed, stats.items_shed);
      }
    }
  }
}

TEST_F(OverloadTest, StalledWorkerShedsWithoutDeadlockOrLoss) {
  // Deterministic saturation: the single worker stalls on its first batch
  // until everything has been offered, so with depth 1 and kShedNewest all
  // but the in-flight and queued batches must shed — and be counted.
  const Fixture& fixture = SharedFixture();
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 2);
  const std::vector<std::vector<Item>> batches = Batches(stream, 8);
  ASSERT_GT(batches.size(), 2u);

  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> stalled_once{false};
  FaultInjection::Arm("shard_worker.batch", [&](const char*) {
    if (!stalled_once.exchange(true)) released.wait();
    return false;
  });

  ShardedStreamServerConfig config;
  config.num_shards = 1;
  config.worker_threads = 1;
  config.queue_depth = 1;
  config.overload_policy = OverloadPolicy::kShedNewest;
  ShardedStreamServer server(*fixture.model, config);

  for (const std::vector<Item>& batch : batches) server.Submit(batch);
  // The queue is non-empty, so the worker reaches the stall point soon even
  // if it was never scheduled while we were submitting.
  while (!stalled_once.load()) std::this_thread::yield();
  release.set_value();
  server.Drain();

  const StreamServerStats stats = server.stats();
  EXPECT_EQ(stats.items_submitted, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.items_submitted, stats.items_processed + stats.items_shed);
  // Only the stalled in-flight batch plus one queued batch could survive.
  EXPECT_GT(stats.items_shed, 0);
  EXPECT_GT(stats.items_processed, 0);
  EXPECT_GE(FaultInjection::FireCount("shard_worker.batch"), 1);
}

TEST_F(OverloadTest, StallWithBackpressureDelaysButProcessesEverything) {
  // Same stall, kBlock policy: producers wait out the stall instead of
  // shedding, and every offered item is eventually processed.
  const Fixture& fixture = SharedFixture();
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 1);
  const std::vector<std::vector<Item>> batches = Batches(stream, 8);

  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> stalled_once{false};
  FaultInjection::Arm("shard_worker.batch", [&](const char*) {
    if (!stalled_once.exchange(true)) released.wait();
    return false;
  });

  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.worker_threads = 2;
  config.queue_depth = 2;
  config.overload_policy = OverloadPolicy::kBlock;
  ShardedStreamServer server(*fixture.model, config);

  std::thread producer([&]() {
    for (const std::vector<Item>& batch : batches) server.Submit(batch);
  });
  // Unblock the stalled worker once it has stalled (the producer may be
  // blocked on that shard's full queue until then).
  while (!stalled_once.load()) std::this_thread::yield();
  release.set_value();
  producer.join();
  server.Drain();

  const StreamServerStats stats = server.stats();
  EXPECT_EQ(stats.items_submitted, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.items_processed, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.items_shed, 0);
  EXPECT_EQ(stats.batches_shed, 0);
}

TEST_F(OverloadTest, CheckpointAfterOverloadRestoresReplayIdentically) {
  // Quiesce (Drain) -> checkpoint -> restore into a fresh worker-mode
  // server. The restored server must (a) re-baseline transport counters so
  // the invariant keeps holding, and (b) be differential-replay identical:
  // the same follow-up stream produces the same verdict events.
  const Fixture& fixture = SharedFixture();
  const std::vector<Item> warmup = OfferedStream(fixture.dataset, 2);
  const std::vector<std::vector<Item>> batches = Batches(warmup, 8);

  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.worker_threads = 2;
  config.queue_depth = 1;
  config.overload_policy = OverloadPolicy::kShedOldest;
  ShardedStreamServer original(*fixture.model, config);
  for (const std::vector<Item>& batch : batches) original.Submit(batch);
  original.Drain();
  const StreamServerStats before = original.stats();
  EXPECT_EQ(before.items_submitted,
            before.items_processed + before.items_shed);

  const std::string bytes = original.EncodeCheckpoint();
  ShardedStreamServer restored(*fixture.model, config);
  ASSERT_TRUE(restored.RestoreCheckpoint(bytes));

  // Transport counters re-baseline: submitted == processed, shed zeroed.
  const StreamServerStats after = restored.stats();
  EXPECT_EQ(after.items_processed, before.items_processed);
  EXPECT_EQ(after.items_submitted, after.items_processed);
  EXPECT_EQ(after.items_shed, 0);
  EXPECT_EQ(after.batches_shed, 0);
  EXPECT_EQ(restored.open_keys(), original.open_keys());

  // Differential replay through the deterministic control path: byte-equal
  // state must produce identical event streams.
  const std::vector<Item> followup = OfferedStream(fixture.dataset, 1);
  const std::vector<StreamEvent> original_events =
      original.ObserveBatch(followup);
  const std::vector<StreamEvent> restored_events =
      restored.ObserveBatch(followup);
  ASSERT_EQ(original_events.size(), restored_events.size());
  for (size_t i = 0; i < original_events.size(); ++i) {
    EXPECT_EQ(original_events[i].key, restored_events[i].key);
    EXPECT_EQ(original_events[i].predicted_label,
              restored_events[i].predicted_label);
    EXPECT_EQ(original_events[i].observed_items,
              restored_events[i].observed_items);
    EXPECT_EQ(original_events[i].cause, restored_events[i].cause);
  }
  const std::vector<StreamEvent> original_flush = original.Flush();
  const std::vector<StreamEvent> restored_flush = restored.Flush();
  ASSERT_EQ(original_flush.size(), restored_flush.size());
  for (size_t i = 0; i < original_flush.size(); ++i) {
    EXPECT_EQ(original_flush[i].key, restored_flush[i].key);
    EXPECT_EQ(original_flush[i].predicted_label,
              restored_flush[i].predicted_label);
  }
}

TEST_F(OverloadTest, CheckpointSaveFailureLeavesTheServerServing) {
  const Fixture& fixture = SharedFixture();
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.worker_threads = 2;
  ShardedStreamServer server(*fixture.model, config);
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 1);
  server.Submit(stream);
  server.Drain();
  const StreamServerStats before = server.stats();

  const std::string path =
      (std::filesystem::temp_directory_path() / "kvec_overload_ckpt.bin")
          .string();
  std::filesystem::remove(path);
  FaultInjection::Arm("checkpoint.save",
                      [](const char*) { return true; });  // inject failure
  EXPECT_FALSE(server.SaveCheckpoint(path));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(FaultInjection::FireCount("checkpoint.save"), 1);
  FaultInjection::Disarm("checkpoint.save");

  // The failed save must not have disturbed serving state: stats are
  // unchanged and a retry succeeds.
  const StreamServerStats after = server.stats();
  EXPECT_EQ(after.items_processed, before.items_processed);
  EXPECT_EQ(after.sequences_classified, before.sequences_classified);
  EXPECT_TRUE(server.SaveCheckpoint(path));
  ShardedStreamServer reloaded(*fixture.model, config);
  EXPECT_TRUE(reloaded.LoadCheckpoint(path));
  EXPECT_EQ(reloaded.stats().items_processed, before.items_processed);
  std::filesystem::remove(path);
}

TEST_F(OverloadTest, QueuePushDelayPointWidensTheRaceWindow) {
  // Arm the producer-side delay point with a tiny sleep: the invariant must
  // be interleaving-independent.
  const Fixture& fixture = SharedFixture();
  FaultInjection::Arm("bounded_queue.push", [](const char*) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return false;
  });
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 1);
  const std::vector<std::vector<Item>> batches = Batches(stream, 8);

  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.worker_threads = 2;
  config.queue_depth = 1;
  config.overload_policy = OverloadPolicy::kShedNewest;
  ShardedStreamServer server(*fixture.model, config);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&server, &batches, p]() {
      for (size_t i = static_cast<size_t>(p); i < batches.size(); i += 2) {
        server.Submit(batches[i]);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  server.Drain();
  EXPECT_GT(FaultInjection::FireCount("bounded_queue.push"), 0);

  const StreamServerStats stats = server.stats();
  EXPECT_EQ(stats.items_submitted, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(stats.items_submitted, stats.items_processed + stats.items_shed);
}

TEST_F(OverloadTest, CompactionUnderOverloadShedsCountedAndCompletes) {
  // A compaction pass is a control task on the owning worker, so a slow
  // compaction IS an overload condition: while the worker is held inside
  // `compaction.run`, its depth-1 queue saturates and the shed policy must
  // count every drop — and the compaction itself must complete and leave a
  // serving, invariant-clean shard.
  const Fixture& fixture = SharedFixture();
  const std::vector<Item> stream = OfferedStream(fixture.dataset, 2);
  const std::vector<std::vector<Item>> batches = Batches(stream, 8);
  ASSERT_GT(batches.size(), 2u);

  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> stalled{false};
  FaultInjection::Arm("compaction.run", [&](const char*) {
    stalled.store(true);
    released.wait();
    return false;  // stall only; the compaction then runs
  });

  ShardedStreamServerConfig config;
  config.num_shards = 1;
  config.worker_threads = 1;
  config.queue_depth = 1;
  config.overload_policy = OverloadPolicy::kShedNewest;
  config.shard.compaction_check_interval = 0;  // only the forced pass runs
  ShardedStreamServer server(*fixture.model, config);
  server.Submit(batches[0]);
  server.Drain();  // some real state in the pool before compacting

  // CompactAll blocks until the shard ran it, so it needs its own thread;
  // the producer below saturates the queue while the worker is stalled
  // inside the compaction.
  std::thread compactor([&server]() { EXPECT_EQ(server.CompactAll(), 1); });
  while (!stalled.load()) std::this_thread::yield();
  for (const std::vector<Item>& batch : batches) server.Submit(batch);
  release.set_value();
  compactor.join();
  server.Drain();

  const StreamServerStats stats = server.stats();
  EXPECT_EQ(stats.compactions, 1);
  EXPECT_EQ(FaultInjection::FireCount("compaction.run"), 1);
  EXPECT_EQ(stats.items_submitted,
            static_cast<int64_t>(stream.size() + batches[0].size()));
  EXPECT_EQ(stats.items_submitted, stats.items_processed + stats.items_shed);
  EXPECT_GT(stats.items_shed, 0);  // the stall really saturated the queue

  // The shard still serves after the compaction-under-pressure episode.
  const int64_t processed_before = stats.items_processed;
  server.Submit(batches[0]);
  server.Drain();
  EXPECT_GT(server.stats().items_processed, processed_before);
}

}  // namespace
}  // namespace kvec
