#include "core/heads.h"

#include <cmath>

#include "core/model.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

TEST(EctlPolicyTest, OutputsProbability) {
  Rng rng(1);
  EctlPolicy policy(8, rng);
  for (int i = 0; i < 20; ++i) {
    Tensor state = nn::NormalInit(1, 8, 3.0f, rng);
    float p = policy.HaltProbability(state).ScalarValue();
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(EctlPolicyTest, ParameterCountIsLinear) {
  Rng rng(2);
  EctlPolicy policy(16, rng);
  EXPECT_EQ(policy.ParameterCount(), 16 + 1);  // w and b
}

TEST(BaselineNetworkTest, ScalarOutput) {
  Rng rng(3);
  BaselineNetwork baseline(8, 12, rng);
  Tensor state = nn::NormalInit(1, 8, 1.0f, rng);
  Tensor value = baseline.Forward(state);
  EXPECT_EQ(value.rows(), 1);
  EXPECT_EQ(value.cols(), 1);
}

TEST(SequenceClassifierTest, LogitsShape) {
  Rng rng(4);
  SequenceClassifier classifier(8, 5, rng);
  Tensor state = nn::NormalInit(1, 8, 1.0f, rng);
  Tensor logits = classifier.Logits(state);
  EXPECT_EQ(logits.cols(), 5);
  EXPECT_EQ(classifier.num_classes(), 5);
}

DatasetSpec TinySpec() {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  return TrafficGenerator(config).spec();
}

TEST(KvecModelTest, ParameterPartition) {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  KvecModel model(config);
  std::vector<Tensor> all = model.Parameters();
  std::vector<Tensor> main = model.MainParameters();
  std::vector<Tensor> baseline = model.BaselineParameters();
  EXPECT_EQ(all.size(), main.size() + baseline.size());
  EXPECT_FALSE(baseline.empty());
}

TEST(KvecModelTest, SaveLoadRoundTrip) {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.seed = 5;
  KvecModel a(config);
  config.seed = 99;  // different init
  KvecModel b(config);

  std::string path = ::testing::TempDir() + "/kvec_model_test.bin";
  ASSERT_TRUE(a.SaveToFile(path));
  ASSERT_TRUE(b.LoadFromFile(path));
  std::vector<Tensor> pa = a.Parameters();
  std::vector<Tensor> pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data()) << "parameter " << i;
  }
  std::remove(path.c_str());
}

TEST(KvecModelTest, LoadRejectsWrongArchitecture) {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.embed_dim = 8;
  config.num_blocks = 1;
  KvecModel a(config);
  config.embed_dim = 12;
  KvecModel b(config);
  std::string path = ::testing::TempDir() + "/kvec_model_mismatch.bin";
  ASSERT_TRUE(a.SaveToFile(path));
  EXPECT_FALSE(b.LoadFromFile(path));
  std::remove(path.c_str());
}

TEST(KvecModelTest, LoadRejectsMissingFile) {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.num_blocks = 1;
  KvecModel model(config);
  EXPECT_FALSE(model.LoadFromFile("/nonexistent/model.bin"));
}

TEST(KvecModelTest, DeterministicInitGivenSeed) {
  KvecConfig config = KvecConfig::ForSpec(TinySpec());
  config.num_blocks = 1;
  config.seed = 1234;
  KvecModel a(config);
  KvecModel b(config);
  std::vector<Tensor> pa = a.Parameters();
  std::vector<Tensor> pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data());
  }
}

}  // namespace
}  // namespace kvec
