#include "core/online.h"

#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

Dataset SmallDataset() {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 3;
  config.avg_flow_length = 10.0;
  config.min_flow_length = 5;
  config.handshake_sharpness = 6.0;
  TrafficGenerator generator(config);
  return GenerateDataset(generator, {10, 1, 3}, /*seed=*/31);
}

KvecConfig SmallModelConfig(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 12;
  config.state_dim = 12;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.seed = 17;
  return config;
}

TEST(OnlineClassifierTest, MatchesBatchEvaluation) {
  // The streaming engine must reproduce KvecTrainer::Evaluate exactly:
  // same halting positions, same predictions.
  Dataset dataset = SmallDataset();
  KvecConfig config = SmallModelConfig(dataset.spec);
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);

  for (const TangledSequence& episode : dataset.test) {
    EvaluationResult batch = trainer.Evaluate({episode});
    OnlineClassifier online(model);
    std::map<int, int> online_halt, online_pred;
    for (const Item& item : episode.items) {
      OnlineDecision decision = online.Observe(item);
      if (decision.halted_now) {
        online_halt[item.key] = decision.observed_items;
        online_pred[item.key] = decision.predicted_label;
      }
    }
    for (const auto& [key, label] : episode.labels) {
      if (!online.IsHalted(key)) {
        online_pred[key] = online.ForceClassify(key);
        online_halt[key] = episode.KeyLength(key);
      }
    }
    for (const HaltingRecord& halt : batch.halts) {
      EXPECT_EQ(online_halt[halt.key], halt.halt_position)
          << "halt mismatch for key " << halt.key;
    }
    for (const PredictionRecord& record : batch.records) {
      // Keys are iterated in the same (map) order in both paths.
      (void)record;
    }
    for (const auto& [key, predicted] : online_pred) {
      bool found = false;
      for (size_t i = 0; i < batch.halts.size(); ++i) {
        if (batch.halts[i].key == key) {
          EXPECT_EQ(predicted, batch.records[i].predicted_label)
              << "prediction mismatch for key " << key;
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(OnlineClassifierTest, HaltedKeysIgnoreFurtherItems) {
  Dataset dataset = SmallDataset();
  KvecConfig config = SmallModelConfig(dataset.spec);
  KvecModel model(config);  // untrained is fine for the API contract
  OnlineClassifier online(model);
  const TangledSequence& episode = dataset.test[0];
  int halted_key = -1;
  for (const Item& item : episode.items) {
    OnlineDecision decision = online.Observe(item);
    if (halted_key < 0 && decision.halted_now) halted_key = item.key;
    if (halted_key >= 0 && item.key == halted_key) {
      if (!decision.halted_now) {
        EXPECT_TRUE(decision.already_halted);
      }
    }
  }
}

TEST(OnlineClassifierTest, ForceClassifyUnknownKey) {
  Dataset dataset = SmallDataset();
  KvecConfig config = SmallModelConfig(dataset.spec);
  KvecModel model(config);
  OnlineClassifier online(model);
  EXPECT_EQ(online.ForceClassify(/*key=*/123), -1);
}

TEST(OnlineClassifierTest, ObservedCountsPerKey) {
  Dataset dataset = SmallDataset();
  KvecConfig config = SmallModelConfig(dataset.spec);
  KvecModel model(config);
  OnlineClassifier online(model);
  const TangledSequence& episode = dataset.test[0];
  std::map<int, int> fed;
  for (const Item& item : episode.items) {
    OnlineDecision decision = online.Observe(item);
    if (!decision.already_halted) {
      ++fed[item.key];
      EXPECT_EQ(decision.observed_items, fed[item.key]);
    }
  }
  EXPECT_EQ(online.num_items_observed(),
            static_cast<int>(episode.items.size()));
}

}  // namespace
}  // namespace kvec
