#include "util/table.h"

#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(TableTest, TextRenderingAligns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string text = table.ToText();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"a", "b"});
  table.AddRow({"1", "plain"});
  table.AddRow({"2", "with,comma"});
  table.AddRow({"3", "with\"quote"});
  std::string csv = table.ToCsv();

  Table parsed({"x"});
  ASSERT_TRUE(Table::FromCsv(csv, &parsed));
  ASSERT_EQ(parsed.columns().size(), 2u);
  ASSERT_EQ(parsed.rows().size(), 3u);
  EXPECT_EQ(parsed.rows()[1][1], "with,comma");
  EXPECT_EQ(parsed.rows()[2][1], "with\"quote");
}

TEST(TableTest, FromCsvRejectsRaggedRows) {
  Table parsed({"x"});
  EXPECT_FALSE(Table::FromCsv("a,b\n1\n", &parsed));
}

TEST(TableTest, FromCsvRejectsEmpty) {
  Table parsed({"x"});
  EXPECT_FALSE(Table::FromCsv("", &parsed));
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(Table::FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(Table::FormatDouble(-0.5, 1), "-0.5");
}

TEST(TableDeathTest, AddRowChecksWidth) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "row width");
}

}  // namespace
}  // namespace kvec
