#include "metrics/metrics.h"

#include "gtest/gtest.h"

namespace kvec {
namespace {

PredictionRecord Record(int truth, int predicted, int observed, int length) {
  PredictionRecord record;
  record.true_label = truth;
  record.predicted_label = predicted;
  record.observed_items = observed;
  record.sequence_length = length;
  return record;
}

TEST(MetricsTest, PerfectPredictions) {
  std::vector<PredictionRecord> records = {Record(0, 0, 1, 10),
                                           Record(1, 1, 2, 10)};
  EvaluationSummary summary = Evaluate(records, 2);
  EXPECT_DOUBLE_EQ(summary.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(summary.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(summary.macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(summary.macro_f1, 1.0);
  EXPECT_NEAR(summary.earliness, (0.1 + 0.2) / 2.0, 1e-12);
}

TEST(MetricsTest, HandComputedConfusion) {
  // Class 0: TP=1, FN=1 (third record predicted 1); class 1: TP=1, FP=1.
  std::vector<PredictionRecord> records = {
      Record(0, 0, 5, 10), Record(1, 1, 5, 10), Record(0, 1, 5, 10)};
  EvaluationSummary summary = Evaluate(records, 2);
  EXPECT_NEAR(summary.accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(summary.macro_precision, 0.75, 1e-12);  // (1/1 + 1/2) / 2
  EXPECT_NEAR(summary.macro_recall, 0.75, 1e-12);     // (1/2 + 1/1) / 2
}

TEST(MetricsTest, AbsentClassesSkippedInMacro) {
  std::vector<PredictionRecord> records = {Record(0, 0, 1, 4)};
  EvaluationSummary summary = Evaluate(records, 5);
  EXPECT_DOUBLE_EQ(summary.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(summary.macro_recall, 1.0);
}

TEST(MetricsTest, EarlinessIsMeanOfRatios) {
  std::vector<PredictionRecord> records = {Record(0, 0, 2, 4),
                                           Record(0, 0, 10, 10)};
  EvaluationSummary summary = Evaluate(records, 1);
  EXPECT_NEAR(summary.earliness, (0.5 + 1.0) / 2.0, 1e-12);
}

TEST(MetricsTest, EmptyRecords) {
  EvaluationSummary summary = Evaluate({}, 3);
  EXPECT_EQ(summary.num_sequences, 0);
  EXPECT_DOUBLE_EQ(summary.accuracy, 0.0);
}

TEST(HarmonicMeanTest, MatchesFormula) {
  EXPECT_NEAR(HarmonicMean(0.8, 0.2), 2 * 0.8 * 0.8 / (0.8 + 0.8), 1e-12);
  EXPECT_NEAR(HarmonicMean(1.0, 0.0), 1.0, 1e-12);
}

TEST(HarmonicMeanTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 0.5), 0.0);
}

TEST(HarmonicMeanTest, SymmetricInAccuracyAndTimeliness) {
  EXPECT_NEAR(HarmonicMean(0.6, 1.0 - 0.9), HarmonicMean(0.9, 1.0 - 0.6),
              1e-12);
}

TEST(HarmonicMeanTest, BoundedByComponents) {
  // HM lies between min and max of (accuracy, 1 - earliness).
  double hm = HarmonicMean(0.9, 0.5);
  EXPECT_GE(hm, 0.5);  // min(0.9, 1 - 0.5)
  EXPECT_LE(hm, 0.9);  // max
}

TEST(MetricsTest, SummaryHmConsistent) {
  std::vector<PredictionRecord> records = {Record(0, 0, 3, 10),
                                           Record(1, 0, 4, 10)};
  EvaluationSummary summary = Evaluate(records, 2);
  EXPECT_NEAR(summary.harmonic_mean,
              HarmonicMean(summary.accuracy, summary.earliness), 1e-12);
}

TEST(ConfusionMatrixTest, CountsCells) {
  std::vector<PredictionRecord> records = {
      Record(0, 0, 1, 2), Record(0, 1, 1, 2), Record(1, 1, 1, 2),
      Record(1, 1, 1, 2)};
  auto matrix = ConfusionMatrix(records, 2);
  EXPECT_EQ(matrix[0][0], 1);
  EXPECT_EQ(matrix[0][1], 1);
  EXPECT_EQ(matrix[1][0], 0);
  EXPECT_EQ(matrix[1][1], 2);
}

TEST(ClassificationReportTest, ContainsPerClassRowsAndMacro) {
  std::vector<PredictionRecord> records = {
      Record(0, 0, 1, 2), Record(1, 0, 1, 2), Record(1, 1, 1, 2)};
  std::string report = ClassificationReport(records, 2);
  EXPECT_NE(report.find("macro avg"), std::string::npos);
  EXPECT_NE(report.find("precision"), std::string::npos);
  // Class 0: precision 1/2, recall 1/1.
  EXPECT_NE(report.find("0.500"), std::string::npos);
}

TEST(ClassificationReportTest, SkipsAbsentClasses) {
  std::vector<PredictionRecord> records = {Record(0, 0, 1, 2)};
  std::string report = ClassificationReport(records, 10);
  // Only class 0 and the macro row: three lines of header/sep + 2 rows.
  int rows = 0;
  for (char c : report) rows += (c == '\n');
  EXPECT_EQ(rows, 4);
}

TEST(MetricsDeathTest, RejectsOutOfRangeLabel) {
  std::vector<PredictionRecord> records = {Record(5, 0, 1, 2)};
  EXPECT_DEATH(Evaluate(records, 2), "check failed");
}

TEST(MetricsDeathTest, RejectsObservedBeyondLength) {
  std::vector<PredictionRecord> records = {Record(0, 0, 11, 10)};
  EXPECT_DEATH(Evaluate(records, 2), "check failed");
}

}  // namespace
}  // namespace kvec
