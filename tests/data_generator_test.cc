#include "data/generator.h"

#include <set>

#include "data/movielens_generator.h"
#include "data/session.h"
#include "data/stop_signal_generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(SplitCountsTest, FollowsEightOneOne) {
  SplitCounts counts = SplitCounts::FromTotal(100);
  EXPECT_EQ(counts.train, 80);
  EXPECT_EQ(counts.validation, 10);
  EXPECT_EQ(counts.test, 10);
}

TEST(SplitCountsTest, SmallTotalsStayPositive) {
  SplitCounts counts = SplitCounts::FromTotal(10);
  EXPECT_GE(counts.train, 1);
  EXPECT_GE(counts.validation, 1);
  EXPECT_GE(counts.test, 1);
  EXPECT_EQ(counts.train + counts.validation + counts.test, 10);
}

TEST(TrafficGeneratorTest, EpisodeStructure) {
  TrafficGeneratorConfig config;
  config.num_classes = 4;
  config.concurrency = 3;
  config.avg_flow_length = 20.0;
  TrafficGenerator generator(config);
  Rng rng(1);
  TangledSequence episode = generator.GenerateEpisode(rng);
  episode.Validate(2);
  EXPECT_EQ(episode.num_keys(), 3);
  for (const auto& [key, label] : episode.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
    EXPECT_GE(episode.KeyLength(key), config.min_flow_length);
  }
  for (const Item& item : episode.items) {
    EXPECT_GE(item.value[0], 0);
    EXPECT_LT(item.value[0], config.num_size_buckets);
    EXPECT_GE(item.value[1], 0);
    EXPECT_LE(item.value[1], 1);
  }
}

TEST(TrafficGeneratorTest, AverageLengthTracksTarget) {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  config.concurrency = 4;
  config.avg_flow_length = 30.0;
  TrafficGenerator generator(config);
  Rng rng(2);
  double total = 0.0;
  int sequences = 0;
  for (int e = 0; e < 50; ++e) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    for (const auto& [key, label] : episode.labels) {
      total += episode.KeyLength(key);
      ++sequences;
    }
  }
  EXPECT_NEAR(total / sequences, 30.0, 5.0);
}

TEST(TrafficGeneratorTest, BurstinessTracksContinueProb) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 2;
  config.avg_flow_length = 60.0;
  config.burst_continue_prob = 0.9;  // long bursts
  TrafficGenerator generator(config);
  Rng rng(3);
  double session_length_sum = 0.0;
  for (int e = 0; e < 30; ++e) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    session_length_sum += AverageSessionLength(episode, 1);
  }
  // 1/(1-0.9) = 10 before per-class jitter; must be clearly bursty.
  EXPECT_GT(session_length_sum / 30.0, 4.0);
}

TEST(TrafficGeneratorTest, ShortFlowClassesAreShorter) {
  TrafficGeneratorConfig config;
  config.num_classes = 4;
  config.num_short_flow_classes = 2;
  config.concurrency = 4;
  config.avg_flow_length = 45.0;
  config.min_flow_length = 4;
  TrafficGenerator generator(config);
  Rng rng(4);
  double short_total = 0.0, long_total = 0.0;
  int short_count = 0, long_count = 0;
  for (int e = 0; e < 60; ++e) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    for (const auto& [key, label] : episode.labels) {
      if (label < 2) {
        short_total += episode.KeyLength(key);
        ++short_count;
      } else {
        long_total += episode.KeyLength(key);
        ++long_count;
      }
    }
  }
  ASSERT_GT(short_count, 0);
  ASSERT_GT(long_count, 0);
  EXPECT_LT(short_total / short_count, 0.6 * (long_total / long_count));
}

TEST(TrafficGeneratorTest, DeterministicGivenSeed) {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  TrafficGenerator generator(config);
  Rng rng1(77), rng2(77);
  TangledSequence a = generator.GenerateEpisode(rng1);
  TangledSequence b = generator.GenerateEpisode(rng2);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].key, b.items[i].key);
    EXPECT_EQ(a.items[i].value, b.items[i].value);
  }
}

TEST(MovieLensGeneratorTest, EpisodeStructure) {
  MovieLensGeneratorConfig config;
  config.concurrency = 3;
  config.avg_sequence_length = 25.0;
  MovieLensGenerator generator(config);
  Rng rng(5);
  TangledSequence episode = generator.GenerateEpisode(rng);
  episode.Validate(3);
  EXPECT_EQ(episode.num_keys(), 3);
  for (const auto& [key, label] : episode.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LE(label, 1);
  }
  for (const Item& item : episode.items) {
    EXPECT_LT(item.value[0], config.num_movie_buckets);
    EXPECT_LT(item.value[1], config.num_genres);
    EXPECT_LT(item.value[2], config.num_ratings);
  }
}

TEST(MovieLensGeneratorTest, SessionsAreShort) {
  MovieLensGeneratorConfig config;
  config.session_continue_prob = 0.41;
  config.avg_sequence_length = 60.0;
  MovieLensGenerator generator(config);
  Rng rng(6);
  double total = 0.0;
  for (int e = 0; e < 30; ++e) {
    total += AverageSessionLength(generator.GenerateEpisode(rng), 1);
  }
  EXPECT_NEAR(total / 30.0, 1.7, 0.4);
}

TEST(StopSignalGeneratorTest, EarlyStopPositions) {
  StopSignalGeneratorConfig config;
  config.early_stop = true;
  config.flow_length = 40;
  config.signal_length = 10;
  StopSignalGenerator generator(config);
  Rng rng(7);
  TangledSequence episode = generator.GenerateEpisode(rng);
  episode.Validate(2);
  for (const auto& [key, position] : episode.true_halt_positions) {
    EXPECT_EQ(position, 10);
    EXPECT_EQ(episode.KeyLength(key), 40);
  }
}

TEST(StopSignalGeneratorTest, LateStopPositions) {
  StopSignalGeneratorConfig config;
  config.early_stop = false;
  config.flow_length = 40;
  config.signal_length = 10;
  StopSignalGenerator generator(config);
  Rng rng(8);
  TangledSequence episode = generator.GenerateEpisode(rng);
  for (const auto& [key, position] : episode.true_halt_positions) {
    EXPECT_EQ(position, 40);
  }
}

TEST(StopSignalGeneratorTest, SignalIsClassDiscriminative) {
  // Signal-token histograms of the two classes must differ much more than
  // filler histograms (which are class-independent by construction).
  StopSignalGeneratorConfig config;
  config.early_stop = true;
  config.flow_length = 30;
  config.signal_length = 10;
  config.concurrency = 4;
  StopSignalGenerator generator(config);
  Rng rng(9);
  std::vector<std::vector<double>> signal_hist(
      2, std::vector<double>(config.num_size_buckets, 0.0));
  for (int e = 0; e < 50; ++e) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    std::map<int, int> seen;
    for (const Item& item : episode.items) {
      int position = seen[item.key]++;
      if (position < config.signal_length) {
        signal_hist[episode.labels[item.key]][item.value[0]] += 1.0;
      }
    }
  }
  for (auto& hist : signal_hist) {
    double total = 0.0;
    for (double v : hist) total += v;
    for (double& v : hist) v /= total;
  }
  double l1_distance = 0.0;
  for (int b = 0; b < config.num_size_buckets; ++b) {
    l1_distance += std::abs(signal_hist[0][b] - signal_hist[1][b]);
  }
  EXPECT_GT(l1_distance, 0.5);
}

TEST(GenerateDatasetTest, SplitSizesAndValidation) {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  config.concurrency = 2;
  config.avg_flow_length = 12.0;
  config.min_flow_length = 4;
  TrafficGenerator generator(config);
  Dataset dataset = GenerateDataset(generator, {8, 2, 2}, /*seed=*/11);
  EXPECT_EQ(dataset.train.size(), 8u);
  EXPECT_EQ(dataset.validation.size(), 2u);
  EXPECT_EQ(dataset.test.size(), 2u);
  EXPECT_EQ(dataset.spec.num_classes, 3);
}

TEST(TrafficGeneratorTest, ClassCooccurrenceBoundsDistinctClasses) {
  TrafficGeneratorConfig config;
  config.num_classes = 8;
  config.concurrency = 6;
  config.avg_flow_length = 8.0;
  config.min_flow_length = 4;
  config.classes_per_episode = 2;
  TrafficGenerator generator(config);
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    std::set<int> classes;
    for (const auto& [key, label] : episode.labels) classes.insert(label);
    EXPECT_LE(classes.size(), 2u);
    EXPECT_GE(classes.size(), 1u);
  }
}

TEST(TrafficGeneratorTest, ZeroCooccurrenceUsesAllClasses) {
  TrafficGeneratorConfig config;
  config.num_classes = 4;
  config.concurrency = 4;
  config.avg_flow_length = 6.0;
  config.min_flow_length = 4;
  config.classes_per_episode = 0;  // independent classes
  TrafficGenerator generator(config);
  Rng rng(18);
  std::set<int> classes;
  for (int trial = 0; trial < 40; ++trial) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    for (const auto& [key, label] : episode.labels) classes.insert(label);
  }
  EXPECT_EQ(classes.size(), 4u);  // every class eventually appears
}

TEST(GenerateDatasetTest, ReproducibleFromSeed) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  TrafficGenerator generator(config);
  Dataset a = GenerateDataset(generator, {4, 1, 1}, 99);
  Dataset b = GenerateDataset(generator, {4, 1, 1}, 99);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t e = 0; e < a.train.size(); ++e) {
    ASSERT_EQ(a.train[e].items.size(), b.train[e].items.size());
  }
}

}  // namespace
}  // namespace kvec
