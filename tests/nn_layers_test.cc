#include "nn/layers.h"

#include <cmath>

#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "tensor/ops.h"
#include "util/serialize.h"

namespace kvec {
namespace {

TEST(InitTest, XavierUniformBounds) {
  Rng rng(1);
  Tensor t = nn::XavierUniform(20, 30, rng);
  float bound = std::sqrt(6.0f / 50.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  EXPECT_TRUE(t.requires_grad());
}

TEST(InitTest, NormalInitSpread) {
  Rng rng(2);
  Tensor t = nn::NormalInit(40, 40, 0.5f, rng);
  double sum_sq = 0.0;
  for (float v : t.data()) sum_sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sum_sq / t.size()), 0.5, 0.05);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear layer(2, 3, rng);
  Tensor x = Tensor::FromData(1, 2, {1.0f, -2.0f});
  Tensor y = layer.Forward(x);
  for (int j = 0; j < 3; ++j) {
    float expected = layer.weight().At(0, j) * 1.0f +
                     layer.weight().At(1, j) * -2.0f + layer.bias().At(0, j);
    EXPECT_NEAR(y.At(0, j), expected, 1e-5f);
  }
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  Linear layer(3, 2, rng, /*use_bias=*/false);
  std::vector<Tensor> params;
  layer.CollectParameters(&params);
  EXPECT_EQ(params.size(), 1u);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(5);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  layer.ZeroGrad();
  ops::SumAll(layer.Forward(x)).Backward();
  std::vector<Tensor> params = layer.Parameters();
  for (const Tensor& param : params) {
    float grad_norm = 0.0f;
    for (float g : param.grad()) grad_norm += std::fabs(g);
    EXPECT_GT(grad_norm, 0.0f);
  }
}

TEST(EmbeddingTest, LookupMatchesTable) {
  Rng rng(6);
  Embedding embedding(10, 4, rng);
  Tensor out = embedding.Forward({3, 7, 3});
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(out.At(0, c), embedding.table().At(3, c));
    EXPECT_EQ(out.At(1, c), embedding.table().At(7, c));
    EXPECT_EQ(out.At(2, c), out.At(0, c));
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(7);
  LayerNorm norm(6);
  Tensor x = Tensor::FromData(2, 6, {1, 2, 3, 4, 5, 6, -3, 0, 3, 6, 9, 12});
  Tensor y = norm.Forward(x);
  for (int r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int c = 0; c < 6; ++c) mean += y.At(r, c);
    mean /= 6.0f;
    for (int c = 0; c < 6; ++c) {
      var += (y.At(r, c) - mean) * (y.At(r, c) - mean);
    }
    var /= 6.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);  // gamma=1, beta=0 initially
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(FeedForwardTest, MatchesManualComputation) {
  Rng rng(8);
  FeedForward ffn(2, 3, rng);
  Tensor x = Tensor::FromData(1, 2, {0.5f, -1.0f});
  Tensor y = ffn.Forward(x);
  Tensor hidden = ops::Relu(ffn.first().Forward(x));
  Tensor expected = ffn.second().Forward(hidden);
  for (int c = 0; c < 2; ++c) EXPECT_NEAR(y.At(0, c), expected.At(0, c), 1e-6f);
}

TEST(MlpTest, LayerSizesRespected) {
  Rng rng(9);
  Mlp mlp({4, 8, 2}, rng);
  Tensor x = Tensor::Zeros(3, 4);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
}

TEST(ModuleTest, ParameterCountLinear) {
  Rng rng(10);
  Linear layer(4, 5, rng);
  EXPECT_EQ(layer.ParameterCount(), 4 * 5 + 5);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(11);
  Linear a(3, 2, rng);
  Linear b(3, 2, rng);  // different init
  BinaryWriter writer;
  a.SaveParameters(&writer);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(b.LoadParameters(&reader));
  EXPECT_EQ(a.weight().data(), b.weight().data());
  EXPECT_EQ(a.bias().data(), b.bias().data());
}

TEST(ModuleTest, LoadRejectsShapeMismatch) {
  Rng rng(12);
  Linear a(3, 2, rng);
  Linear b(2, 2, rng);
  BinaryWriter writer;
  a.SaveParameters(&writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(b.LoadParameters(&reader));
}

TEST(ModuleTest, ClipGradNormScalesDown) {
  Tensor p = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  p.ZeroGrad();
  p.impl()->grad = {3.0f, 4.0f};  // norm 5
  double norm = ClipGradNorm({p}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(p.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad()[1], 0.8f, 1e-5f);
}

TEST(ModuleTest, ClipGradNormLeavesSmallGradients) {
  Tensor p = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  p.ZeroGrad();
  p.impl()->grad = {0.3f, 0.4f};
  ClipGradNorm({p}, 1.0);
  EXPECT_NEAR(p.grad()[0], 0.3f, 1e-6f);
}

// Property sweep: gradcheck Linear across shapes.
class LinearGradParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LinearGradParam, GradcheckForwardSum) {
  auto [in, out] = GetParam();
  Rng rng(100 + in * 10 + out);
  Linear layer(in, out, rng);
  Tensor x = nn::NormalInit(2, in, 1.0f, rng);
  std::vector<Tensor> inputs = layer.Parameters();
  inputs.push_back(x);
  testing::ExpectGradientsMatch(inputs, [&]() {
    return ops::SumAll(ops::Tanh(layer.Forward(x)));
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearGradParam,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 3),
                                           std::make_pair(4, 2),
                                           std::make_pair(5, 5)));

}  // namespace
}  // namespace kvec
