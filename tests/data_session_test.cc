#include "data/session.h"

#include "gtest/gtest.h"

namespace kvec {
namespace {

Item MakeItem(int key, std::vector<int> value, double time) {
  Item item;
  item.key = key;
  item.value = std::move(value);
  item.time = time;
  return item;
}

TEST(SessionTest, SingleKeyRuns) {
  TangledSequence episode;
  episode.labels[0] = 0;
  // Session field 0 values: 1,1,2,2,2,1 -> sessions 0,0,1,1,1,2.
  for (int v : {1, 1, 2, 2, 2, 1}) {
    episode.items.push_back(
        MakeItem(0, {v}, static_cast<double>(episode.items.size())));
  }
  std::vector<int> ids = ComputeSessionIds(episode, 0);
  EXPECT_EQ(ids, (std::vector<int>{0, 0, 1, 1, 1, 2}));
}

TEST(SessionTest, SessionsArePerKey) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  // Interleaved keys; each key's runs are independent of the other's.
  episode.items = {
      MakeItem(0, {5}, 0.0), MakeItem(1, {5}, 1.0), MakeItem(0, {5}, 2.0),
      MakeItem(1, {6}, 3.0), MakeItem(0, {6}, 4.0), MakeItem(1, {6}, 5.0),
  };
  std::vector<int> ids = ComputeSessionIds(episode, 0);
  // key0: 5,5,6 -> 0,0,1 ; key1: 5,6,6 -> 0,1,1
  EXPECT_EQ(ids, (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(SessionTest, InterleavingDoesNotBreakARun) {
  // A key's session continues across other keys' items (runs are defined
  // within the key sequence, not the tangled stream).
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.labels[1] = 0;
  episode.items = {
      MakeItem(0, {7}, 0.0), MakeItem(1, {9}, 1.0), MakeItem(0, {7}, 2.0),
  };
  std::vector<int> ids = ComputeSessionIds(episode, 0);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[2], 0);  // same session as item 0
}

TEST(SessionTest, AverageSessionLengthAllDistinct) {
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int v : {1, 2, 3, 4}) {
    episode.items.push_back(
        MakeItem(0, {v}, static_cast<double>(episode.items.size())));
  }
  EXPECT_DOUBLE_EQ(AverageSessionLength(episode, 0), 1.0);
}

TEST(SessionTest, AverageSessionLengthSingleRun) {
  TangledSequence episode;
  episode.labels[0] = 0;
  for (int i = 0; i < 6; ++i) {
    episode.items.push_back(MakeItem(0, {3}, static_cast<double>(i)));
  }
  EXPECT_DOUBLE_EQ(AverageSessionLength(episode, 0), 6.0);
}

TEST(SessionTest, AverageSessionLengthEmpty) {
  TangledSequence episode;
  EXPECT_DOUBLE_EQ(AverageSessionLength(episode, 0), 0.0);
}

TEST(TangledSequenceTest, KeyHelpers) {
  TangledSequence episode;
  episode.labels[3] = 1;
  episode.labels[5] = 0;
  episode.items = {
      MakeItem(3, {0}, 0.0), MakeItem(5, {0}, 1.0), MakeItem(3, {0}, 2.0),
  };
  EXPECT_EQ(episode.KeyLength(3), 2);
  EXPECT_EQ(episode.KeyLength(5), 1);
  EXPECT_EQ(episode.KeyItemIndices(3), (std::vector<int>{0, 2}));
  EXPECT_EQ(episode.num_keys(), 2);
}

TEST(TangledSequenceDeathTest, ValidateCatchesDisorder) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.items = {MakeItem(0, {1}, 5.0), MakeItem(0, {1}, 1.0)};
  EXPECT_DEATH(episode.Validate(1), "out of order");
}

TEST(TangledSequenceDeathTest, ValidateCatchesMissingLabel) {
  TangledSequence episode;
  episode.items = {MakeItem(0, {1}, 0.0)};
  EXPECT_DEATH(episode.Validate(1), "unlabeled key");
}

TEST(TangledSequenceDeathTest, ValidateCatchesArityMismatch) {
  TangledSequence episode;
  episode.labels[0] = 0;
  episode.items = {MakeItem(0, {1}, 0.0)};
  EXPECT_DEATH(episode.Validate(2), "arity");
}

}  // namespace
}  // namespace kvec
