#include "metrics/calibration.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace kvec {
namespace {

PredictionRecord Record(double confidence, bool correct) {
  PredictionRecord record;
  record.true_label = 0;
  record.predicted_label = correct ? 0 : 1;
  record.confidence = confidence;
  record.observed_items = 1;
  record.sequence_length = 1;
  return record;
}

TEST(ReliabilityBinsTest, BinBoundariesAndCounts) {
  std::vector<PredictionRecord> records = {
      Record(0.05, true), Record(0.15, false), Record(0.95, true),
      Record(1.0, true),  // exactly 1.0 -> last bin
  };
  std::vector<CalibrationBin> bins = ReliabilityBins(records, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[0].count, 1);
  EXPECT_EQ(bins[1].count, 1);
  EXPECT_EQ(bins[9].count, 2);
  EXPECT_DOUBLE_EQ(bins[0].lower, 0.0);
  EXPECT_DOUBLE_EQ(bins[9].upper, 1.0);
}

TEST(ReliabilityBinsTest, PerBinAccuracyAndConfidence) {
  std::vector<PredictionRecord> records = {
      Record(0.82, true), Record(0.84, false), Record(0.86, true),
      Record(0.88, true)};
  std::vector<CalibrationBin> bins = ReliabilityBins(records, 10);
  const CalibrationBin& bin = bins[8];  // [0.8, 0.9)
  EXPECT_EQ(bin.count, 4);
  EXPECT_NEAR(bin.mean_confidence, 0.85, 1e-9);
  EXPECT_NEAR(bin.accuracy, 0.75, 1e-9);
}

TEST(ExpectedCalibrationErrorTest, PerfectCalibrationIsZero) {
  // In each bin, accuracy equals mean confidence exactly.
  std::vector<PredictionRecord> records;
  // Bin [0.7, 0.8): 4 records at 0.75, 3 correct -> accuracy 0.75.
  for (int i = 0; i < 3; ++i) records.push_back(Record(0.75, true));
  records.push_back(Record(0.75, false));
  EXPECT_NEAR(ExpectedCalibrationError(records, 10), 0.0, 1e-9);
}

TEST(ExpectedCalibrationErrorTest, OverconfidenceIsPositive) {
  // All predictions claim 0.95 confidence but only half are right.
  std::vector<PredictionRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(Record(0.95, i % 2 == 0));
  const double ece = ExpectedCalibrationError(records, 10);
  EXPECT_NEAR(ece, 0.95 - 0.5, 1e-9);
  EXPECT_NEAR(MaximumCalibrationError(records, 10), ece, 1e-9);
}

TEST(ExpectedCalibrationErrorTest, EmptyInputIsZero) {
  EXPECT_EQ(ExpectedCalibrationError({}, 10), 0.0);
  EXPECT_EQ(MaximumCalibrationError({}, 10), 0.0);
}

TEST(ExpectedCalibrationErrorTest, WeightsBinsBySize) {
  // A big well-calibrated bin plus a tiny badly calibrated one: the ECE is
  // dominated by the big bin, the MCE by the bad one.
  std::vector<PredictionRecord> records;
  for (int i = 0; i < 90; ++i) records.push_back(Record(0.55, i < 49));
  for (int i = 0; i < 10; ++i) records.push_back(Record(0.95, false));
  const double ece = ExpectedCalibrationError(records, 10);
  const double mce = MaximumCalibrationError(records, 10);
  EXPECT_LT(ece, 0.2);
  EXPECT_NEAR(mce, 0.95, 1e-9);
}

TEST(CalibrationReportTest, MentionsEceAndBins) {
  std::vector<PredictionRecord> records = {Record(0.6, true),
                                           Record(0.7, false)};
  std::string report = CalibrationReport(records, 5);
  EXPECT_NE(report.find("ECE"), std::string::npos);
  EXPECT_NE(report.find("[0.60, 0.80)"), std::string::npos);
}

TEST(ReliabilityBinsDeathTest, RejectsZeroBins) {
  EXPECT_DEATH(ReliabilityBins({}, 0), "check failed");
}

// Property: ECE is invariant to shuffling and bounded by MCE <= 1.
TEST(CalibrationPropertyTest, EceBoundedByMce) {
  Rng rng(5);
  std::vector<PredictionRecord> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(
        Record(rng.NextDouble(), rng.NextBernoulli(0.6)));
  }
  const double ece = ExpectedCalibrationError(records, 10);
  const double mce = MaximumCalibrationError(records, 10);
  EXPECT_GE(ece, 0.0);
  EXPECT_LE(ece, mce + 1e-12);
  EXPECT_LE(mce, 1.0);
  Rng shuffle_rng(6);
  shuffle_rng.Shuffle(records);
  EXPECT_NEAR(ExpectedCalibrationError(records, 10), ece, 1e-12);
}

}  // namespace
}  // namespace kvec
