// BoundedQueue: overload policies, the sheddable bit, close/drain
// semantics, and the blocking paths (exercised with real threads).
#include "util/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace kvec {
namespace {

using Queue = BoundedQueue<int>;
using Result = Queue::PushResult;

TEST(OverloadPolicyTest, ParsesTheCliSpellings) {
  OverloadPolicy policy = OverloadPolicy::kShedOldest;
  EXPECT_TRUE(ParseOverloadPolicy("block", &policy));
  EXPECT_EQ(policy, OverloadPolicy::kBlock);
  EXPECT_TRUE(ParseOverloadPolicy("shed-newest", &policy));
  EXPECT_EQ(policy, OverloadPolicy::kShedNewest);
  EXPECT_TRUE(ParseOverloadPolicy("shed-oldest", &policy));
  EXPECT_EQ(policy, OverloadPolicy::kShedOldest);
  EXPECT_FALSE(ParseOverloadPolicy("drop", &policy));
  EXPECT_FALSE(ParseOverloadPolicy("", &policy));
  EXPECT_STREQ(OverloadPolicyName(OverloadPolicy::kBlock), "block");
  EXPECT_STREQ(OverloadPolicyName(OverloadPolicy::kShedNewest), "shed-newest");
  EXPECT_STREQ(OverloadPolicyName(OverloadPolicy::kShedOldest), "shed-oldest");
}

TEST(BoundedQueueTest, FifoWithinCapacity) {
  Queue queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.Push(i, OverloadPolicy::kBlock, true, nullptr),
              Result::kAccepted);
  }
  EXPECT_EQ(queue.size(), 4u);
  int value = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Pop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, ShedNewestRejectsTheIncomingEntry) {
  Queue queue(2);
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kShedNewest, true, nullptr),
            Result::kAccepted);
  ASSERT_EQ(queue.Push(1, OverloadPolicy::kShedNewest, true, nullptr),
            Result::kAccepted);
  EXPECT_EQ(queue.Push(2, OverloadPolicy::kShedNewest, true, nullptr),
            Result::kShedNewest);
  // The queue still holds the two oldest entries, untouched.
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 0);
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
}

TEST(BoundedQueueTest, ShedOldestEvictsIntoShedOut) {
  Queue queue(2);
  std::vector<int> shed;
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kShedOldest, true, &shed),
            Result::kAccepted);
  ASSERT_EQ(queue.Push(1, OverloadPolicy::kShedOldest, true, &shed),
            Result::kAccepted);
  EXPECT_EQ(queue.Push(2, OverloadPolicy::kShedOldest, true, &shed),
            Result::kAccepted);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 0);  // oldest evicted, every drop handed back
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
}

TEST(BoundedQueueTest, ShedOldestSkipsControlEntries) {
  Queue queue(2);
  std::vector<int> shed;
  // A control entry (sheddable=false) at the head must survive eviction:
  // the oldest *sheddable* entry goes instead.
  ASSERT_EQ(queue.Push(100, OverloadPolicy::kBlock, false, nullptr),
            Result::kAccepted);
  ASSERT_EQ(queue.Push(1, OverloadPolicy::kShedOldest, true, &shed),
            Result::kAccepted);
  EXPECT_EQ(queue.Push(2, OverloadPolicy::kShedOldest, true, &shed),
            Result::kAccepted);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 1);
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 100);
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
}

TEST(BoundedQueueTest, NonSheddableEntriesIgnoreShedPolicies) {
  // Control pushes pass sheddable=false; even under a shed policy a full
  // queue must make them wait, not drop them. A consumer thread frees one
  // slot after a delay; the push must land.
  Queue queue(1);
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kBlock, true, nullptr),
            Result::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&]() {
    EXPECT_EQ(queue.Push(1, OverloadPolicy::kShedNewest, false, nullptr),
              Result::kAccepted);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked: the queue is full
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
}

TEST(BoundedQueueTest, BlockPolicyWaitsForSpace) {
  Queue queue(1);
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kBlock, true, nullptr),
            Result::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&]() {
    EXPECT_EQ(queue.Push(1, OverloadPolicy::kBlock, true, nullptr),
              Result::kAccepted);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  producer.join();
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
}

TEST(BoundedQueueTest, CloseDrainsAcceptedWorkThenStopsPop) {
  Queue queue(4);
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kBlock, true, nullptr),
            Result::kAccepted);
  ASSERT_EQ(queue.Push(1, OverloadPolicy::kBlock, true, nullptr),
            Result::kAccepted);
  queue.Close();
  EXPECT_EQ(queue.Push(2, OverloadPolicy::kBlock, true, nullptr),
            Result::kClosed);
  int value = -1;
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 0);
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_FALSE(queue.Pop(&value));  // closed and empty: consumer exits
}

TEST(BoundedQueueTest, CloseWakesABlockedProducer) {
  Queue queue(1);
  ASSERT_EQ(queue.Push(0, OverloadPolicy::kBlock, true, nullptr),
            Result::kAccepted);
  std::atomic<bool> returned{false};
  std::thread producer([&]() {
    EXPECT_EQ(queue.Push(1, OverloadPolicy::kBlock, true, nullptr),
              Result::kClosed);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, CloseWakesABlockedConsumer) {
  Queue queue(1);
  std::atomic<bool> returned{false};
  std::thread consumer([&]() {
    int value = -1;
    EXPECT_FALSE(queue.Pop(&value));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, ManyProducersOneConsumerLosesNothing) {
  // Every accepted push must come out exactly once; kBlock never sheds, so
  // accepted == offered.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  Queue queue(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(queue.Push(p * kPerProducer + i, OverloadPolicy::kBlock,
                             true, nullptr),
                  Result::kAccepted);
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&]() {
    int value = -1;
    while (queue.Pop(&value)) seen.push_back(value);
  });
  for (std::thread& producer : producers) producer.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::vector<bool> present(kProducers * kPerProducer, false);
  for (int value : seen) {
    ASSERT_FALSE(present[value]) << "value " << value << " popped twice";
    present[value] = true;
  }
}

}  // namespace
}  // namespace kvec
