// Batched-vs-sequential equivalence of the streaming inference pipeline:
//  * IncrementalEncoder::AppendBatch vs AppendItem (numeric, <= 1e-5),
//  * OnlineClassifier::ObserveBatch vs Observe (decision-for-decision),
//  * StreamServer::ObserveBatch vs Observe on tangled streams that span
//    window-rotation, idle-timeout, and capacity-eviction boundaries
//    (identical StreamEvent sequences: keys, labels, causes, order),
//  * ShardedStreamServer::ObserveBatch vs per-item Observe.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed, int num_heads = 1) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 2;
  config.num_heads = num_heads;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// Concatenates every test episode into one long tangled stream with
// non-colliding keys.
std::vector<Item> ConcatStream(const Dataset& dataset) {
  std::vector<Item> stream;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      stream.push_back(item);
    }
    offset += 100;
  }
  return stream;
}

void ExpectSameEvents(const std::vector<StreamEvent>& sequential,
                      const std::vector<StreamEvent>& batched) {
  ASSERT_EQ(sequential.size(), batched.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].key, batched[i].key) << "event " << i;
    EXPECT_EQ(sequential[i].predicted_label, batched[i].predicted_label)
        << "event " << i;
    EXPECT_EQ(sequential[i].cause, batched[i].cause) << "event " << i;
    EXPECT_EQ(sequential[i].observed_items, batched[i].observed_items)
        << "event " << i;
    EXPECT_NEAR(sequential[i].confidence, batched[i].confidence, 1e-4)
        << "event " << i;
  }
}

TEST(BatchEquivalenceTest, AppendBatchMatchesAppendItem) {
  for (int num_heads : {1, 3}) {
    Fixture fixture = TrainSmallModel(71, num_heads);
    const KvrlEncoder& encoder = fixture.model->encoder();
    const int d = fixture.model->config().embed_dim;
    const TangledSequence& episode = fixture.dataset.test[0];
    EpisodeIndex index = EpisodeIndex::Build(episode);

    // Sequential reference.
    IncrementalEncoder sequential(encoder);
    CorrelationTracker seq_tracker(fixture.model->config().correlation);
    std::vector<std::vector<float>> expected;
    for (size_t t = 0; t < episode.items.size(); ++t) {
      expected.push_back(sequential.AppendItem(
          episode.items[t], index.position_in_key[t],
          seq_tracker.ObserveItem(episode.items[t])));
    }

    // Batched path, mixed batch sizes (1 exercises the degenerate batch).
    IncrementalEncoder batched(encoder);
    CorrelationTracker batch_tracker(fixture.model->config().correlation);
    const int total = static_cast<int>(episode.items.size());
    const int sizes[] = {1, 2, 3, 5, 8, 13};
    int size_index = 0;
    int begin = 0;
    while (begin < total) {
      const int batch =
          std::min(sizes[size_index++ % 6], total - begin);
      std::vector<int> positions(batch);
      std::vector<std::vector<int>> visibles(batch);
      for (int i = 0; i < batch; ++i) {
        visibles[i] = batch_tracker.ObserveItem(episode.items[begin + i]);
        positions[i] = index.position_in_key[begin + i];
      }
      std::vector<float> rows;
      batched.AppendBatch(episode.items.data() + begin, positions.data(),
                          visibles.data(), batch, &rows);
      ASSERT_EQ(rows.size(), static_cast<size_t>(batch) * d);
      for (int i = 0; i < batch; ++i) {
        for (int c = 0; c < d; ++c) {
          ASSERT_NEAR(rows[static_cast<size_t>(i) * d + c],
                      expected[begin + i][c], 1e-5f)
              << "heads " << num_heads << " item " << begin + i << " col "
              << c;
        }
      }
      begin += batch;
    }
    EXPECT_EQ(batched.num_items(), sequential.num_items());
  }
}

TEST(BatchEquivalenceTest, OnlineObserveBatchMatchesObserve) {
  Fixture fixture = TrainSmallModel(72);
  std::vector<Item> stream = ConcatStream(fixture.dataset);

  OnlineClassifier sequential(*fixture.model);
  std::vector<OnlineDecision> expected;
  for (const Item& item : stream) expected.push_back(sequential.Observe(item));

  OnlineClassifier batched(*fixture.model);
  std::vector<OnlineDecision> actual;
  const size_t kBatch = 7;
  for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
    const size_t end = std::min(stream.size(), begin + kBatch);
    std::vector<Item> chunk(stream.begin() + begin, stream.begin() + end);
    for (const OnlineDecision& decision : batched.ObserveBatch(chunk)) {
      actual.push_back(decision);
    }
  }

  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].key, actual[i].key) << "item " << i;
    EXPECT_EQ(expected[i].halted_now, actual[i].halted_now) << "item " << i;
    EXPECT_EQ(expected[i].already_halted, actual[i].already_halted)
        << "item " << i;
    EXPECT_EQ(expected[i].predicted_label, actual[i].predicted_label)
        << "item " << i;
    EXPECT_EQ(expected[i].observed_items, actual[i].observed_items)
        << "item " << i;
    EXPECT_NEAR(expected[i].halt_probability, actual[i].halt_probability,
                1e-4)
        << "item " << i;
  }
  EXPECT_EQ(sequential.num_items_observed(), batched.num_items_observed());
}

// Streams the same items through a sequential and a batched server and
// asserts identical event sequences and stats under `config`.
void CheckServerEquivalence(const KvecModel& model,
                            const StreamServerConfig& config,
                            const std::vector<Item>& stream,
                            size_t batch_size) {
  StreamServer sequential(model, config);
  std::vector<StreamEvent> expected;
  for (const Item& item : stream) {
    for (const StreamEvent& event : sequential.Observe(item)) {
      expected.push_back(event);
    }
  }

  StreamServer batched(model, config);
  std::vector<StreamEvent> actual;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    const size_t end = std::min(stream.size(), begin + batch_size);
    std::vector<Item> chunk(stream.begin() + begin, stream.begin() + end);
    for (const StreamEvent& event : batched.ObserveBatch(chunk)) {
      actual.push_back(event);
    }
  }

  ExpectSameEvents(expected, actual);
  for (const StreamEvent& event : sequential.Flush()) expected.push_back(event);
  for (const StreamEvent& event : batched.Flush()) actual.push_back(event);
  ExpectSameEvents(expected, actual);

  const StreamServerStats& a = sequential.stats();
  const StreamServerStats& b = batched.stats();
  EXPECT_EQ(a.items_processed, b.items_processed);
  EXPECT_EQ(a.sequences_classified, b.sequences_classified);
  EXPECT_EQ(a.policy_halts, b.policy_halts);
  EXPECT_EQ(a.idle_timeouts, b.idle_timeouts);
  EXPECT_EQ(a.capacity_evictions, b.capacity_evictions);
  EXPECT_EQ(a.rotation_classifications, b.rotation_classifications);
  EXPECT_EQ(a.windows_started, b.windows_started);
}

TEST(BatchEquivalenceTest, StreamServerAcrossRotationBoundaries) {
  Fixture fixture = TrainSmallModel(73);
  std::vector<Item> stream = ConcatStream(fixture.dataset);
  StreamServerConfig config;
  config.max_window_items = 37;  // not a multiple of any batch size below
  config.idle_timeout = 1 << 20;
  for (size_t batch_size : {3u, 16u, 64u}) {
    CheckServerEquivalence(*fixture.model, config, stream, batch_size);
  }
}

TEST(BatchEquivalenceTest, StreamServerAcrossIdleAndCapacityBoundaries) {
  Fixture fixture = TrainSmallModel(74);
  std::vector<Item> stream = ConcatStream(fixture.dataset);
  StreamServerConfig config;
  config.max_window_items = 51;
  config.idle_timeout = 9;
  config.idle_check_interval = 4;
  config.max_open_keys = 2;  // constant capacity pressure
  for (size_t batch_size : {5u, 32u}) {
    CheckServerEquivalence(*fixture.model, config, stream, batch_size);
  }
}

TEST(BatchEquivalenceTest, ShardedObserveBatchMatchesPerItemObserve) {
  Fixture fixture = TrainSmallModel(75);
  std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 4;
  config.shard.max_window_items = 29;
  config.shard.idle_timeout = 11;
  config.shard.idle_check_interval = 2;
  config.shard.max_open_keys = 2;

  ShardedStreamServer sequential(*fixture.model, config);
  std::vector<StreamEvent> expected;
  for (const Item& item : stream) {
    for (const StreamEvent& event : sequential.Observe(item)) {
      expected.push_back(event);
    }
  }

  ShardedStreamServer batched(*fixture.model, config);
  std::vector<StreamEvent> actual;
  const size_t kBatch = 24;
  for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
    const size_t end = std::min(stream.size(), begin + kBatch);
    std::vector<Item> chunk(stream.begin() + begin, stream.begin() + end);
    for (const StreamEvent& event : batched.ObserveBatch(chunk)) {
      actual.push_back(event);
    }
  }

  // Batched events come grouped by shard; compare per-key verdict streams
  // (within a key, order and causes must match exactly).
  auto by_key = [](const std::vector<StreamEvent>& events) {
    std::map<int, std::vector<StreamEvent>> grouped;
    for (const StreamEvent& event : events) grouped[event.key].push_back(event);
    return grouped;
  };
  auto expected_by_key = by_key(expected);
  auto actual_by_key = by_key(actual);
  ASSERT_EQ(expected_by_key.size(), actual_by_key.size());
  for (auto& [key, events] : expected_by_key) {
    ASSERT_TRUE(actual_by_key.count(key)) << "key " << key;
    ExpectSameEvents(events, actual_by_key[key]);
  }
  EXPECT_EQ(sequential.stats().sequences_classified,
            batched.stats().sequences_classified);
}

}  // namespace
}  // namespace kvec
