#include "exp/cv.h"

#include <set>
#include <vector>

#include "data/generator.h"
#include "data/traffic_generator.h"
#include "exp/method.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

std::vector<TangledSequence> MakeEpisodes(int count) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 2;
  config.avg_flow_length = 8.0;
  config.min_flow_length = 4;
  TrafficGenerator generator(config);
  Rng rng(3);
  std::vector<TangledSequence> episodes;
  for (int i = 0; i < count; ++i) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  return episodes;
}

// Identifies an episode by its item count + first item time, which is
// unique enough for the partition checks below.
std::pair<size_t, double> EpisodeId(const TangledSequence& episode) {
  return {episode.items.size(),
          episode.items.empty() ? -1.0 : episode.items.front().time};
}

TEST(MakeFoldsTest, EveryEpisodeTestedExactlyOnce) {
  std::vector<TangledSequence> episodes = MakeEpisodes(23);
  std::vector<Fold> folds = MakeFolds(episodes, 5, /*seed=*/1);
  ASSERT_EQ(folds.size(), 5u);
  size_t total_test = 0;
  for (const Fold& fold : folds) total_test += fold.test.size();
  EXPECT_EQ(total_test, episodes.size());
}

TEST(MakeFoldsTest, SplitsArePartitions) {
  std::vector<TangledSequence> episodes = MakeEpisodes(20);
  for (const Fold& fold : MakeFolds(episodes, 4, /*seed=*/2)) {
    EXPECT_EQ(fold.train.size() + fold.validation.size() + fold.test.size(),
              episodes.size());
    std::multiset<std::pair<size_t, double>> test_ids, train_ids;
    for (const TangledSequence& e : fold.test) test_ids.insert(EpisodeId(e));
    for (const TangledSequence& e : fold.train) {
      train_ids.insert(EpisodeId(e));
    }
    for (const TangledSequence& e : fold.validation) {
      train_ids.insert(EpisodeId(e));
    }
    // No test episode appears on the training side.
    for (const auto& id : test_ids) {
      EXPECT_EQ(train_ids.count(id) + test_ids.count(id),
                static_cast<size_t>(
                    std::count_if(episodes.begin(), episodes.end(),
                                  [&](const TangledSequence& e) {
                                    return EpisodeId(e) == id;
                                  })));
    }
  }
}

TEST(MakeFoldsTest, ValidationCarvedFromTrainingSide) {
  std::vector<TangledSequence> episodes = MakeEpisodes(30);
  std::vector<Fold> folds =
      MakeFolds(episodes, 5, /*seed=*/3, /*validation_fraction=*/0.2);
  for (const Fold& fold : folds) {
    EXPECT_GE(fold.validation.size(), 1u);
    EXPECT_GE(fold.train.size(), 1u);
  }
}

TEST(MakeFoldsTest, ZeroValidationFraction) {
  std::vector<TangledSequence> episodes = MakeEpisodes(10);
  for (const Fold& fold : MakeFolds(episodes, 2, 4, 0.0)) {
    EXPECT_TRUE(fold.validation.empty());
  }
}

TEST(MakeFoldsTest, DeterministicGivenSeed) {
  std::vector<TangledSequence> episodes = MakeEpisodes(15);
  std::vector<Fold> a = MakeFolds(episodes, 3, 7);
  std::vector<Fold> b = MakeFolds(episodes, 3, 7);
  for (size_t f = 0; f < a.size(); ++f) {
    ASSERT_EQ(a[f].test.size(), b[f].test.size());
    for (size_t i = 0; i < a[f].test.size(); ++i) {
      EXPECT_EQ(EpisodeId(a[f].test[i]), EpisodeId(b[f].test[i]));
    }
  }
}

TEST(MakeFoldsDeathTest, RejectsDegenerateRequests) {
  std::vector<TangledSequence> episodes = MakeEpisodes(3);
  EXPECT_DEATH(MakeFolds(episodes, 1, 0), "check failed");
  EXPECT_DEATH(MakeFolds(episodes, 4, 0), "one episode per fold");
}

TEST(AggregateSummariesTest, MeanAndStddev) {
  EvaluationSummary a, b;
  a.accuracy = 0.8;
  a.earliness = 0.2;
  a.num_sequences = 10;
  b.accuracy = 0.6;
  b.earliness = 0.4;
  b.num_sequences = 20;
  CrossValidationSummary cv = AggregateSummaries({a, b});
  EXPECT_EQ(cv.folds, 2);
  EXPECT_NEAR(cv.mean.accuracy, 0.7, 1e-9);
  EXPECT_NEAR(cv.stddev.accuracy, 0.1, 1e-9);
  EXPECT_NEAR(cv.mean.earliness, 0.3, 1e-9);
  EXPECT_EQ(cv.mean.num_sequences, 15);
}

TEST(AggregateSummariesTest, SingleFoldHasZeroStddev) {
  EvaluationSummary a;
  a.accuracy = 0.75;
  CrossValidationSummary cv = AggregateSummaries({a});
  EXPECT_NEAR(cv.mean.accuracy, 0.75, 1e-9);
  EXPECT_NEAR(cv.stddev.accuracy, 0.0, 1e-9);
}

TEST(CrossValidateTest, RunsClassicMethodAcrossFolds) {
  // Use the cheap PrefixEcts method so 3-fold CV stays fast.
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 2;
  config.avg_flow_length = 10.0;
  config.min_flow_length = 5;
  config.handshake_sharpness = 6.0;
  TrafficGenerator generator(config);
  Dataset dataset = GenerateDataset(generator, {12, 2, 4}, /*seed=*/9);
  MethodRunOptions options;
  CrossValidationSummary cv =
      CrossValidate(PrefixEctsMethod(), /*hyper=*/2.0, dataset, 3, options);
  EXPECT_EQ(cv.folds, 3);
  EXPECT_GT(cv.mean.num_sequences, 0);
  EXPECT_GE(cv.mean.accuracy, 0.0);
  EXPECT_LE(cv.mean.accuracy, 1.0);
  EXPECT_GE(cv.mean.harmonic_mean, 0.0);
}

}  // namespace
}  // namespace kvec
