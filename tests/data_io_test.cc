#include "data/io.h"

#include <cstdio>

#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

std::vector<TangledSequence> SampleEpisodes() {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  config.concurrency = 3;
  config.avg_flow_length = 10.0;
  config.min_flow_length = 4;
  TrafficGenerator generator(config);
  Rng rng(5);
  std::vector<TangledSequence> episodes;
  for (int e = 0; e < 4; ++e) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  return episodes;
}

TEST(DataIoTest, RoundTripPreservesEverything) {
  std::vector<TangledSequence> episodes = SampleEpisodes();
  std::string csv = TangledSequencesToCsv(episodes, 2);
  std::vector<TangledSequence> loaded;
  ASSERT_TRUE(TangledSequencesFromCsv(csv, &loaded));
  ASSERT_EQ(loaded.size(), episodes.size());
  for (size_t e = 0; e < episodes.size(); ++e) {
    ASSERT_EQ(loaded[e].items.size(), episodes[e].items.size());
    EXPECT_EQ(loaded[e].labels, episodes[e].labels);
    for (size_t i = 0; i < episodes[e].items.size(); ++i) {
      EXPECT_EQ(loaded[e].items[i].key, episodes[e].items[i].key);
      EXPECT_EQ(loaded[e].items[i].value, episodes[e].items[i].value);
      EXPECT_NEAR(loaded[e].items[i].time, episodes[e].items[i].time, 1e-6);
    }
  }
}

TEST(DataIoTest, TrueHaltColumnsRoundTrip) {
  std::vector<TangledSequence> episodes(1);
  TangledSequence& episode = episodes[0];
  episode.labels[0] = 1;
  episode.true_halt_positions[0] = 2;
  for (int i = 0; i < 3; ++i) {
    Item item;
    item.key = 0;
    item.value = {i, 0};
    item.time = i;
    episode.items.push_back(item);
  }
  std::string csv = TangledSequencesToCsv(episodes, 2);
  std::vector<TangledSequence> loaded;
  ASSERT_TRUE(TangledSequencesFromCsv(csv, &loaded));
  EXPECT_EQ(loaded[0].true_halt_positions.at(0), 2);
}

TEST(DataIoTest, FileRoundTrip) {
  std::vector<TangledSequence> episodes = SampleEpisodes();
  std::string path = ::testing::TempDir() + "/kvec_io_test.csv";
  ASSERT_TRUE(SaveTangledSequences(episodes, 2, path));
  std::vector<TangledSequence> loaded;
  ASSERT_TRUE(LoadTangledSequences(path, &loaded));
  EXPECT_EQ(loaded.size(), episodes.size());
  std::remove(path.c_str());
}

TEST(DataIoTest, LoadedEpisodesValidate) {
  std::vector<TangledSequence> episodes = SampleEpisodes();
  std::string csv = TangledSequencesToCsv(episodes, 2);
  std::vector<TangledSequence> loaded;
  ASSERT_TRUE(TangledSequencesFromCsv(csv, &loaded));
  for (const TangledSequence& episode : loaded) episode.Validate(2);
}

TEST(DataIoTest, RejectsBadHeader) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(
      TangledSequencesFromCsv("foo,bar\n1,2\n", &episodes));
  EXPECT_FALSE(TangledSequencesFromCsv("", &episodes));
  // No value columns at all.
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,true_halt\n0,0,0,0,0\n", &episodes));
}

TEST(DataIoTest, RejectsRaggedRow) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,v0,true_halt\n0,0,0.0,1\n", &episodes));
}

TEST(DataIoTest, RejectsNonNumeric) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,v0,true_halt\n0,zero,0.0,1,2,0\n", &episodes));
}

TEST(DataIoTest, RejectsInconsistentLabels) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,v0,true_halt\n"
      "0,0,0.0,1,2,0\n"
      "0,0,1.0,2,3,0\n",
      &episodes));
}

TEST(DataIoTest, RejectsOutOfOrderTime) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,v0,true_halt\n"
      "0,0,5.0,1,2,0\n"
      "0,0,1.0,1,3,0\n",
      &episodes));
}

TEST(DataIoTest, RejectsNonContiguousEpisodes) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(TangledSequencesFromCsv(
      "episode,key,time,label,v0,true_halt\n"
      "0,0,0.0,1,2,0\n"
      "2,0,0.0,1,3,0\n",
      &episodes));
}

TEST(DataIoTest, FailureLeavesOutputUntouched) {
  std::vector<TangledSequence> episodes(3);
  EXPECT_FALSE(TangledSequencesFromCsv("broken", &episodes));
  EXPECT_EQ(episodes.size(), 3u);
}

TEST(DataIoTest, MissingFileLoadFails) {
  std::vector<TangledSequence> episodes;
  EXPECT_FALSE(LoadTangledSequences("/nonexistent/data.csv", &episodes));
}

}  // namespace
}  // namespace kvec
