#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace kvec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, NextIntWithinRangeAndCoversAll) {
  Rng rng(10);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    int v = rng.NextInt(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    ++counts[v];
  }
  for (int count : counts) EXPECT_GT(count, 800);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(12);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 10000.0, 0.1, 0.03);
  EXPECT_NEAR(counts[1] / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[3] / 10000.0, 0.6, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) total += rng.NextPoisson(4.0);
  EXPECT_NEAR(total / 5000.0, 4.0, 0.2);
}

TEST(RngTest, GeometricMean) {
  Rng rng(14);
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) total += rng.NextGeometric(0.25);
  EXPECT_NEAR(total / 5000.0, 4.0, 0.25);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SplitStreamDiffersFromParent) {
  Rng a(42);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngDeathTest, CategoricalRejectsAllZeroWeights) {
  Rng rng(16);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH(rng.NextCategorical(weights), "check failed");
}

TEST(RngDeathTest, NextIntRejectsNonPositive) {
  Rng rng(17);
  EXPECT_DEATH(rng.NextInt(0), "check failed");
}

}  // namespace
}  // namespace kvec
