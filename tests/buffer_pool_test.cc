#include "tensor/buffer_pool.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace kvec {
namespace {

// Release a fresh buffer of exactly `capacity` floats into the pool.
void ReleaseWithCapacity(BufferPool& pool, size_t capacity) {
  std::vector<float> buffer;
  buffer.reserve(capacity);
  ASSERT_EQ(buffer.capacity(), capacity);
  pool.Release(std::move(buffer));
}

TEST(BufferPoolTest, RoundTripHitsAndSlackCap) {
  BufferPool& pool = BufferPool::Global();
  pool.SetEnabled(true);
  pool.Clear();

  // Exact-capacity round trip is a hit.
  ReleaseWithCapacity(pool, 64);
  const BufferPool::Stats before = pool.stats();
  std::vector<float> exact = pool.AcquireUninitialized(64);
  EXPECT_EQ(exact.size(), 64u);
  EXPECT_EQ(exact.capacity(), 64u);
  EXPECT_EQ(pool.stats().hits, before.hits + 1);
  pool.Release(std::move(exact));

  // Capacity exactly at the slack cap (2x the request) is still handed out.
  std::vector<float> slack = pool.AcquireUninitialized(32);
  EXPECT_EQ(slack.size(), 32u);
  EXPECT_EQ(slack.capacity(), 64u);
  EXPECT_EQ(pool.stats().hits, before.hits + 2);
  pool.Clear();
}

TEST(BufferPoolTest, OversizedCachedBufferIsNotHandedOut) {
  BufferPool& pool = BufferPool::Global();
  pool.SetEnabled(true);
  pool.Clear();

  // A 1M-float block is cached; a 16-float request must NOT receive it
  // (that would pin ~4 MB to a 64-byte need and starve later big acquires).
  constexpr size_t kBig = size_t{1} << 20;
  ReleaseWithCapacity(pool, kBig);
  const BufferPool::Stats before = pool.stats();

  std::vector<float> small = pool.AcquireUninitialized(16);
  EXPECT_EQ(small.size(), 16u);
  EXPECT_LT(small.capacity(), kBig);
  BufferPool::Stats after = pool.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.oversized_rejects, before.oversized_rejects + 1);
  EXPECT_EQ(after.cached_buffers, 1u);  // the big block stays pooled

  // Just above half the cached capacity satisfies the 2x cap: served.
  std::vector<float> fits = pool.AcquireUninitialized(kBig / 2);
  EXPECT_EQ(fits.capacity(), kBig);
  after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.cached_buffers, 0u);

  // One float below the 2x boundary: rejected again.
  pool.Release(std::move(fits));
  std::vector<float> too_small = pool.AcquireUninitialized(kBig / 2 - 1);
  EXPECT_LT(too_small.capacity(), kBig);
  after = pool.stats();
  EXPECT_EQ(after.oversized_rejects, before.oversized_rejects + 2);
  pool.Clear();
}

TEST(BufferPoolTest, StaleGiantsAreEvictedUnderReleasePressure) {
  // A cached block that keeps being rejected by the slack cap must not
  // occupy the budget forever: releases of smaller buffers evict strictly
  // larger cached ones when the budget is full, so the pool recovers once
  // the workload's shapes shrink.
  BufferPool& pool = BufferPool::Global();
  pool.SetEnabled(true);
  pool.Clear();
  pool.SetMaxCachedFloats(1000);

  ReleaseWithCapacity(pool, 800);
  const BufferPool::Stats before = pool.stats();
  EXPECT_EQ(before.cached_floats, 800u);

  // 800 + 300 exceeds the budget; the giant is strictly larger, so it is
  // freed and the incoming buffer is accepted.
  ReleaseWithCapacity(pool, 300);
  BufferPool::Stats after = pool.stats();
  EXPECT_EQ(after.evicted, before.evicted + 1);
  EXPECT_EQ(after.cached_floats, 300u);
  EXPECT_EQ(after.cached_buffers, 1u);

  // An incoming buffer at least as large as everything cached is dropped,
  // not swapped in (no strictly-larger buffer to evict).
  ReleaseWithCapacity(pool, 900);
  after = pool.stats();
  EXPECT_EQ(after.evicted, before.evicted + 1);
  EXPECT_EQ(after.dropped, before.dropped + 1);
  EXPECT_EQ(after.cached_floats, 300u);

  pool.SetMaxCachedFloats(BufferPool::kDefaultMaxCachedFloats);
  pool.Clear();
}

TEST(BufferPoolTest, AcquireFillsRequestedValue) {
  BufferPool& pool = BufferPool::Global();
  pool.SetEnabled(true);
  pool.Clear();
  ReleaseWithCapacity(pool, 48);
  std::vector<float> buffer = pool.Acquire(40, 2.5f);
  ASSERT_EQ(buffer.size(), 40u);
  for (float value : buffer) EXPECT_EQ(value, 2.5f);
  pool.Clear();
}

}  // namespace
}  // namespace kvec
