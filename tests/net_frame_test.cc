// Wire-framing hardening: a FrameDecoder fed hostile or torn byte streams
// must fail closed — reject before allocating, poison after
// desynchronization, and never mis-parse a valid frame that arrives one
// byte at a time.
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "util/serialize.h"

namespace kvec {
namespace net {
namespace {

std::string RawHeader(uint32_t magic, uint16_t version, uint16_t type,
                      uint64_t request_id, uint32_t payload_len) {
  std::string out;
  const auto append = [&out](const void* data, size_t size) {
    out.append(static_cast<const char*>(data), size);
  };
  append(&magic, sizeof(magic));
  append(&version, sizeof(version));
  append(&type, sizeof(type));
  append(&request_id, sizeof(request_id));
  append(&payload_len, sizeof(payload_len));
  return out;
}

Item MakeItem(int key, std::vector<int> value, double time) {
  Item item;
  item.key = key;
  item.value = std::move(value);
  item.time = time;
  return item;
}

TEST(NetFrameTest, HeaderIsTwentyBytes) {
  Frame frame;
  frame.type = FrameType::kFlush;
  frame.request_id = 7;
  EXPECT_EQ(EncodeFrame(frame).size(), kFrameHeaderBytes);
}

TEST(NetFrameTest, RoundTripsEveryFrameType) {
  for (FrameType type :
       {FrameType::kHello, FrameType::kIngestBatch, FrameType::kStatsQuery,
        FrameType::kFlush, FrameType::kHelloAck, FrameType::kIngestAck,
        FrameType::kStatsReply, FrameType::kFlushAck, FrameType::kError}) {
    Frame frame;
    frame.type = type;
    frame.request_id = 0xdeadbeefcafeULL;
    frame.payload = "payload-" + std::string(FrameTypeName(type));
    const std::string bytes = EncodeFrame(frame);

    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame decoded;
    std::string error;
    ASSERT_EQ(decoder.Next(&decoded, &error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.request_id, frame.request_id);
    EXPECT_EQ(decoded.payload, frame.payload);
    EXPECT_EQ(decoder.Next(&decoded, &error),
              FrameDecoder::Status::kNeedMore);
  }
}

TEST(NetFrameTest, DecodesTornFramesFedOneByteAtATime) {
  Frame frame;
  frame.type = FrameType::kIngestBatch;
  frame.request_id = 42;
  frame.payload = EncodeItems({MakeItem(3, {1, 2}, 0.5)});
  const std::string bytes = EncodeFrame(frame);

  FrameDecoder decoder;
  Frame decoded;
  std::string error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    ASSERT_EQ(decoder.Next(&decoded, &error),
              FrameDecoder::Status::kNeedMore)
        << "byte " << i;
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&decoded, &error), FrameDecoder::Status::kFrame);
  std::vector<Item> items;
  ASSERT_TRUE(DecodeItems(decoded.payload, &items));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].key, 3);
  EXPECT_EQ(items[0].value, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(items[0].time, 0.5);
}

TEST(NetFrameTest, ExtractsBackToBackFramesFromOneFeed) {
  std::string bytes;
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame frame;
    frame.type = FrameType::kStatsQuery;
    frame.request_id = id;
    bytes += EncodeFrame(frame);
  }
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame decoded;
    std::string error;
    ASSERT_EQ(decoder.Next(&decoded, &error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(decoded.request_id, id);
  }
}

// The regression the framing layer exists for: a 4 GiB length prefix is
// rejected while the decoder has buffered only the 20 header bytes the
// peer actually sent — the hostile length never drives an allocation.
TEST(NetFrameTest, HostileFourGiBLengthPrefixRejectedBeforeAllocation) {
  const uint32_t hostile_len = std::numeric_limits<uint32_t>::max() - 16;
  const std::string header = RawHeader(
      kFrameMagic, kFrameProtocolVersion,
      static_cast<uint16_t>(FrameType::kIngestBatch), 1, hostile_len);
  FrameDecoder decoder;  // default 4 MiB cap
  decoder.Feed(header.data(), header.size());
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes);
  Frame decoded;
  std::string error;
  EXPECT_EQ(decoder.Next(&decoded, &error),
            FrameDecoder::Status::kMalformed);
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
  // Still just the header: rejection happened before any payload
  // buffering or reservation could be sized by the hostile length.
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes);
}

TEST(NetFrameTest, BadMagicPoisonsTheDecoder) {
  const std::string header = RawHeader(
      0x12345678u, kFrameProtocolVersion,
      static_cast<uint16_t>(FrameType::kHello), 1, 0);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame decoded;
  std::string error;
  EXPECT_EQ(decoder.Next(&decoded, &error),
            FrameDecoder::Status::kMalformed);
  // Poisoned: even a subsequently fed valid frame is refused, because a
  // desynchronized stream cannot be trusted again.
  Frame valid;
  valid.type = FrameType::kFlush;
  const std::string bytes = EncodeFrame(valid);
  decoder.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(decoder.Next(&decoded, &error),
            FrameDecoder::Status::kMalformed);
}

TEST(NetFrameTest, WrongProtocolVersionIsMalformed) {
  const std::string header = RawHeader(
      kFrameMagic, kFrameProtocolVersion + 1,
      static_cast<uint16_t>(FrameType::kHello), 1, 0);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame decoded;
  std::string error;
  EXPECT_EQ(decoder.Next(&decoded, &error),
            FrameDecoder::Status::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(NetFrameTest, EnforcesTheConfiguredPayloadCap) {
  Frame frame;
  frame.type = FrameType::kIngestBatch;
  frame.payload.assign(65, 'x');
  const std::string bytes = EncodeFrame(frame);

  FrameDecoder tight(/*max_frame_bytes=*/64);
  tight.Feed(bytes.data(), bytes.size());
  Frame decoded;
  std::string error;
  EXPECT_EQ(tight.Next(&decoded, &error), FrameDecoder::Status::kMalformed);

  frame.payload.assign(64, 'x');
  const std::string ok_bytes = EncodeFrame(frame);
  FrameDecoder roomy(/*max_frame_bytes=*/64);
  roomy.Feed(ok_bytes.data(), ok_bytes.size());
  EXPECT_EQ(roomy.Next(&decoded, &error), FrameDecoder::Status::kFrame);
}

TEST(NetFrameTest, PayloadCodecsRoundTrip) {
  HelloRequest hello{5, 3};
  HelloRequest hello_out;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &hello_out));
  EXPECT_EQ(hello_out.num_value_fields, 5);
  EXPECT_EQ(hello_out.num_classes, 3);

  const std::vector<Item> items = {MakeItem(1, {9, 8, 7}, 1.25),
                                   MakeItem(2, {}, -3.5)};
  std::vector<Item> items_out;
  ASSERT_TRUE(DecodeItems(EncodeItems(items), &items_out));
  ASSERT_EQ(items_out.size(), 2u);
  EXPECT_EQ(items_out[0].value, items[0].value);
  EXPECT_DOUBLE_EQ(items_out[1].time, -3.5);

  IngestAck ack{100, 4};
  IngestAck ack_out;
  ASSERT_TRUE(DecodeIngestAck(EncodeIngestAck(ack), &ack_out));
  EXPECT_EQ(ack_out.accepted, 100);
  EXPECT_EQ(ack_out.shed, 4);

  StatsReply stats{10, 8, 2, 3, 1};
  StatsReply stats_out;
  ASSERT_TRUE(DecodeStatsReply(EncodeStatsReply(stats), &stats_out));
  EXPECT_EQ(stats_out.items_submitted, 10);
  EXPECT_EQ(stats_out.open_keys, 1);

  FlushAck flush{6};
  FlushAck flush_out;
  ASSERT_TRUE(DecodeFlushAck(EncodeFlushAck(flush), &flush_out));
  EXPECT_EQ(flush_out.events, 6);

  ErrorFrame error{ErrorCode::kOverloaded, "queue full", 30, 2};
  ErrorFrame error_out;
  ASSERT_TRUE(DecodeError(EncodeError(error), &error_out));
  EXPECT_EQ(error_out.code, ErrorCode::kOverloaded);
  EXPECT_EQ(error_out.message, "queue full");
  EXPECT_EQ(error_out.accepted, 30);
  EXPECT_EQ(error_out.shed, 2);
}

TEST(NetFrameTest, RejectsHostileItemCountAndTrailingBytes) {
  // A count the payload cannot possibly hold fails before any reserve.
  BinaryWriter writer;
  writer.WriteInt32(1 << 30);
  std::vector<Item> items;
  EXPECT_FALSE(DecodeItems(writer.buffer(), &items));

  // Trailing bytes after a structurally valid payload are corruption.
  std::string padded = EncodeItems({MakeItem(1, {2}, 0.0)});
  padded.push_back('\0');
  EXPECT_FALSE(DecodeItems(padded, &items));

  // Truncation inside an item fails closed.
  const std::string whole = EncodeItems({MakeItem(1, {2, 3}, 1.0)});
  const std::string truncated = whole.substr(0, whole.size() - 3);
  EXPECT_FALSE(DecodeItems(truncated, &items));
}

TEST(NetFrameTest, NamesAreStable) {
  EXPECT_STREQ(FrameTypeName(FrameType::kIngestBatch), "ingest_batch");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kMalformed), "MALFORMED");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kShuttingDown), "SHUTTING_DOWN");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnsupported), "UNSUPPORTED");
}

}  // namespace
}  // namespace net
}  // namespace kvec
