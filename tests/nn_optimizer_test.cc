#include "nn/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace kvec {
namespace {

// Minimises f(x) = (x - target)^2 elementwise with the given optimizer.
template <typename Opt>
double MinimizeQuadratic(Opt& optimizer, Tensor x,
                         const std::vector<float>& target, int steps) {
  for (int step = 0; step < steps; ++step) {
    optimizer.ZeroGrad();
    Tensor diff =
        ops::Sub(x, Tensor::FromData(1, static_cast<int>(target.size()),
                                     target));
    ops::SumAll(ops::Mul(diff, diff)).Backward();
    optimizer.Step();
  }
  double error = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    error += std::fabs(x.data()[i] - target[i]);
  }
  return error;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromData(1, 3, {5.0f, -4.0f, 0.5f},
                              /*requires_grad=*/true);
  Sgd sgd({x}, 0.1f);
  double error = MinimizeQuadratic(sgd, x, {1.0f, 2.0f, -3.0f}, 100);
  EXPECT_LT(error, 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  Tensor x = Tensor::FromData(1, 2, {10.0f, -10.0f}, /*requires_grad=*/true);
  Sgd sgd({x}, 0.05f, 0.9f);
  double error = MinimizeQuadratic(sgd, x, {0.0f, 0.0f}, 200);
  EXPECT_LT(error, 1e-3);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromData(1, 3, {5.0f, -4.0f, 0.5f},
                              /*requires_grad=*/true);
  Adam adam({x}, 0.1f);
  double error = MinimizeQuadratic(adam, x, {1.0f, 2.0f, -3.0f}, 300);
  EXPECT_LT(error, 1e-2);
}

TEST(AdamTest, SingleStepDirectionAndMagnitude) {
  // With bias correction the very first Adam step is ±lr per coordinate.
  Tensor x = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  Adam adam({x}, 0.5f);
  x.ZeroGrad();
  x.impl()->grad = {3.0f, -7.0f};
  adam.Step();
  EXPECT_NEAR(x.data()[0], -0.5f, 1e-4f);
  EXPECT_NEAR(x.data()[1], 0.5f, 1e-4f);
}

TEST(AdamTest, ZeroGradientMeansNoUpdate) {
  Tensor x = Tensor::FromData(1, 2, {1.0f, 2.0f}, /*requires_grad=*/true);
  Adam adam({x}, 0.5f);
  x.ZeroGrad();
  adam.Step();
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(x.data()[1], 2.0f);
}

TEST(OptimizerTest, ZeroGradClearsAllParams) {
  Tensor a = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  Tensor b = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  ops::SumAll(ops::Mul(a, b)).Backward();
  Sgd sgd({a, b}, 0.1f);
  sgd.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
  EXPECT_EQ(b.grad()[0], 0.0f);
}

TEST(OptimizerTest, TrainsLinearRegression) {
  // y = 2x - 1 from noisy-free data; a Linear layer must recover it.
  Rng rng(1);
  Linear layer(1, 1, rng);
  Adam adam(layer.Parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    float xv = static_cast<float>(rng.NextUniform(-2.0, 2.0));
    Tensor x = Tensor::FromData(1, 1, {xv});
    adam.ZeroGrad();
    Tensor prediction = layer.Forward(x);
    ops::MseLoss(prediction, {2.0f * xv - 1.0f}).Backward();
    adam.Step();
  }
  EXPECT_NEAR(layer.weight().At(0, 0), 2.0f, 0.1f);
  EXPECT_NEAR(layer.bias().At(0, 0), -1.0f, 0.1f);
}

TEST(OptimizerDeathTest, RejectsNonGradParameters) {
  Tensor x = Tensor::Zeros(1, 1);  // requires_grad = false
  EXPECT_DEATH(Sgd({x}, 0.1f), "does not require grad");
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromData(1, 3, {5.0f, -4.0f, 0.5f},
                              /*requires_grad=*/true);
  AdamW adamw({x}, 0.1f, /*weight_decay=*/0.0f);
  double error = MinimizeQuadratic(adamw, x, {1.0f, 2.0f, -3.0f}, 300);
  EXPECT_LT(error, 1e-2);
}

TEST(AdamWTest, ZeroDecayMatchesAdam) {
  Tensor xa = Tensor::FromData(1, 2, {1.0f, -2.0f}, /*requires_grad=*/true);
  Tensor xw = Tensor::FromData(1, 2, {1.0f, -2.0f}, /*requires_grad=*/true);
  Adam adam({xa}, 0.05f);
  AdamW adamw({xw}, 0.05f, /*weight_decay=*/0.0f);
  for (int step = 0; step < 20; ++step) {
    xa.ZeroGrad();
    xw.ZeroGrad();
    xa.impl()->EnsureGrad();
    xw.impl()->EnsureGrad();
    xa.impl()->grad = {0.3f, -0.7f};
    xw.impl()->grad = {0.3f, -0.7f};
    adam.Step();
    adamw.Step();
  }
  EXPECT_NEAR(xa.data()[0], xw.data()[0], 1e-6f);
  EXPECT_NEAR(xa.data()[1], xw.data()[1], 1e-6f);
}

TEST(AdamWTest, DecayShrinksWeightsWithZeroGradient) {
  // With zero gradients, AdamW still multiplies weights by (1 - lr*decay)
  // each step — the decoupled decay acts independently of the gradient.
  Tensor x = Tensor::FromData(1, 2, {4.0f, -8.0f}, /*requires_grad=*/true);
  AdamW adamw({x}, /*learning_rate=*/0.1f, /*weight_decay=*/0.5f);
  x.ZeroGrad();
  adamw.Step();
  EXPECT_NEAR(x.data()[0], 4.0f * (1.0f - 0.1f * 0.5f), 1e-5f);
  EXPECT_NEAR(x.data()[1], -8.0f * (1.0f - 0.1f * 0.5f), 1e-5f);
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromData(1, 3, {5.0f, -4.0f, 0.5f},
                              /*requires_grad=*/true);
  RmsProp rmsprop({x}, 0.05f);
  double error = MinimizeQuadratic(rmsprop, x, {1.0f, 2.0f, -3.0f}, 500);
  EXPECT_LT(error, 1e-2);
}

TEST(RmsPropTest, MomentumConverges) {
  Tensor x = Tensor::FromData(1, 2, {10.0f, -10.0f}, /*requires_grad=*/true);
  RmsProp rmsprop({x}, 0.01f, /*decay=*/0.9f, /*momentum=*/0.9f);
  double error = MinimizeQuadratic(rmsprop, x, {0.0f, 0.0f}, 800);
  EXPECT_LT(error, 1e-2);
}

TEST(OptimizerTest, LearningRateAccessors) {
  Tensor x = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  Adam adam({x}, 0.25f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.25f);
  adam.set_learning_rate(0.125f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.125f);
}

// Every optimizer must leave parameters untouched when gradients are zero
// (AdamW with nonzero decay is the deliberate exception, tested above).
template <typename Opt>
void ExpectNoUpdateOnZeroGrad(Opt&& optimizer, Tensor x) {
  x.ZeroGrad();
  optimizer.Step();
  EXPECT_FLOAT_EQ(x.data()[0], 1.5f);
}

TEST(OptimizerTest, ZeroGradientNoUpdateAcrossOptimizers) {
  {
    Tensor x = Tensor::FromData(1, 1, {1.5f}, /*requires_grad=*/true);
    ExpectNoUpdateOnZeroGrad(Sgd({x}, 0.1f, 0.9f), x);
  }
  {
    Tensor x = Tensor::FromData(1, 1, {1.5f}, /*requires_grad=*/true);
    ExpectNoUpdateOnZeroGrad(RmsProp({x}, 0.1f), x);
  }
  {
    Tensor x = Tensor::FromData(1, 1, {1.5f}, /*requires_grad=*/true);
    ExpectNoUpdateOnZeroGrad(AdamW({x}, 0.1f, /*weight_decay=*/0.0f), x);
  }
}

}  // namespace
}  // namespace kvec
