// Tests for the two classical (non-deep) early classifiers: the
// prefix-based stability rule (PrefixEcts) and feature-based indicator
// matching (IndicatorMatcher).
#include <algorithm>
#include <vector>

#include "baselines/indicator_matcher.h"
#include "baselines/prefix_ects.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "exp/method.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

// A strongly separable 2-class traffic workload.
Dataset EasyDataset(int train_episodes = 25, uint64_t seed = 51) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 3;
  config.avg_flow_length = 14.0;
  config.min_flow_length = 6;
  config.handshake_sharpness = 6.0;
  config.body_sharpness = 3.0;
  TrafficGenerator generator(config);
  return GenerateDataset(generator, {train_episodes, 3, 8}, seed);
}

// A hand-built dataset where class 0 sequences always contain token 5 in
// field 0 and class 1 sequences always contain token 6.
Dataset MarkerDataset(int episodes_per_split = 10) {
  Dataset dataset;
  dataset.spec.name = "marker";
  dataset.spec.value_fields = {{"field0", 10}, {"dir", 2}};
  dataset.spec.session_field = 1;
  dataset.spec.num_classes = 2;
  dataset.spec.max_keys_per_episode = 2;
  dataset.spec.max_sequence_length = 16;
  dataset.spec.max_episode_length = 32;
  Rng rng(99);
  auto make_split = [&](int count) {
    std::vector<TangledSequence> split;
    for (int e = 0; e < count; ++e) {
      TangledSequence episode;
      episode.labels[0] = 0;
      episode.labels[1] = 1;
      for (int t = 0; t < 20; ++t) {
        Item item;
        item.key = t % 2;
        const int label = item.key;
        // The class marker appears from position 1 onwards; the first item
        // is uninformative noise shared by both classes. (With a longer
        // noise prefix the stability rule would latch onto the constant
        // noise prediction — the classic prefix-method failure mode, which
        // PrefixEctsTest.StabilityOneHaltsAtFirstItem &co. cover.)
        const int position = t / 2;
        const int marker = label == 0 ? 5 : 6;
        item.value = {position < 1 ? rng.NextInt(4) : marker,
                      rng.NextInt(2)};
        item.time = t;
        episode.items.push_back(item);
      }
      split.push_back(std::move(episode));
    }
    return split;
  };
  dataset.train = make_split(episodes_per_split);
  dataset.validation = make_split(2);
  dataset.test = make_split(4);
  return dataset;
}

// ---- PrefixEcts ----

TEST(PrefixEctsTest, LearnsSeparableMarkers) {
  Dataset dataset = MarkerDataset();
  PrefixEctsConfig config;
  config.stability = 2;
  PrefixEcts model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  EXPECT_GT(result.summary.accuracy, 0.9);
  // The marker appears at position 3 (1-based), so halting must be early.
  EXPECT_LT(result.summary.earliness, 0.8);
}

TEST(PrefixEctsTest, LearnsAboveChanceOnTraffic) {
  Dataset dataset = EasyDataset();
  PrefixEctsConfig config;
  config.stability = 3;
  PrefixEcts model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  ASSERT_GT(result.summary.num_sequences, 0);
  EXPECT_GT(result.summary.accuracy, 0.6);  // chance = 0.5
}

TEST(PrefixEctsTest, StabilityOneHaltsAtFirstItem) {
  Dataset dataset = EasyDataset(10);
  PrefixEctsConfig config;
  config.stability = 1;
  PrefixEcts model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  for (const PredictionRecord& record : result.records) {
    EXPECT_EQ(record.observed_items, 1);
  }
}

TEST(PrefixEctsTest, LargerStabilityWaitsLonger) {
  Dataset dataset = EasyDataset(15);
  PrefixEctsConfig fast_config, slow_config;
  fast_config.stability = 1;
  slow_config.stability = 6;
  PrefixEcts fast(dataset.spec, fast_config);
  PrefixEcts slow(dataset.spec, slow_config);
  fast.Fit(dataset.train);
  slow.Fit(dataset.train);
  EXPECT_LT(fast.Evaluate(dataset.test).summary.earliness,
            slow.Evaluate(dataset.test).summary.earliness);
}

TEST(PrefixEctsTest, RecordsAreConsistent) {
  Dataset dataset = EasyDataset(8);
  PrefixEctsConfig config;
  PrefixEcts model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  ASSERT_EQ(result.records.size(), result.halts.size());
  for (const PredictionRecord& record : result.records) {
    EXPECT_GE(record.observed_items, 1);
    EXPECT_LE(record.observed_items, record.sequence_length);
    EXPECT_GE(record.predicted_label, 0);
    EXPECT_LT(record.predicted_label, dataset.spec.num_classes);
  }
}

TEST(PrefixEctsTest, FeatureDimSumsVocabularies) {
  Dataset dataset = MarkerDataset(2);
  PrefixEcts model(dataset.spec, {});
  EXPECT_EQ(model.feature_dim(), 10 + 2);
}

TEST(PrefixEctsTest, ClassifyPrefixDirectly) {
  Dataset dataset = MarkerDataset();
  PrefixEctsConfig config;
  PrefixEcts model(dataset.spec, config);
  model.Fit(dataset.train);
  // Build a 6-item class-1 prefix: markers (token 6) from position 2 on.
  std::vector<Item> items(6);
  std::vector<const Item*> prefix;
  for (int t = 0; t < 6; ++t) {
    items[t].key = 1;
    items[t].value = {t < 2 ? 1 : 6, 0};
    prefix.push_back(&items[t]);
  }
  EXPECT_EQ(model.Classify(prefix), 1);
}

TEST(PrefixEctsDeathTest, RejectsBadConfig) {
  Dataset dataset = MarkerDataset(1);
  PrefixEctsConfig bad;
  bad.max_prefix = 0;
  EXPECT_DEATH(PrefixEcts(dataset.spec, bad), "check failed");
}

// ---- IndicatorMatcher ----

TEST(IndicatorMatcherTest, MinesMarkersAndHaltsEarly) {
  Dataset dataset = MarkerDataset();
  IndicatorMatcherConfig config;
  config.precision_threshold = 0.9f;
  config.min_support = 3;
  IndicatorMatcher model(dataset.spec, config);
  model.Fit(dataset.train);
  EXPECT_GT(model.num_indicators(), 0);
  EvaluationResult result = model.Evaluate(dataset.test);
  EXPECT_GT(result.summary.accuracy, 0.9);
  EXPECT_LT(result.summary.earliness, 0.8);
}

TEST(IndicatorMatcherTest, LearnsAboveChanceOnTraffic) {
  Dataset dataset = EasyDataset();
  IndicatorMatcherConfig config;
  config.precision_threshold = 0.7f;
  IndicatorMatcher model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  ASSERT_GT(result.summary.num_sequences, 0);
  EXPECT_GT(result.summary.accuracy, 0.55);
}

TEST(IndicatorMatcherTest, HigherPrecisionMinesFewerIndicators) {
  Dataset dataset = EasyDataset(15);
  IndicatorMatcherConfig loose, strict;
  loose.precision_threshold = 0.5f;
  strict.precision_threshold = 0.95f;
  IndicatorMatcher a(dataset.spec, loose);
  IndicatorMatcher b(dataset.spec, strict);
  a.Fit(dataset.train);
  b.Fit(dataset.train);
  EXPECT_GE(a.num_indicators(), b.num_indicators());
}

TEST(IndicatorMatcherTest, NoIndicatorsFallsBackToMajority) {
  // Pure-noise dataset: both classes draw identical uniform tokens, so no
  // n-gram can reach 95% precision with reasonable support.
  Dataset dataset;
  dataset.spec.name = "noise";
  dataset.spec.value_fields = {{"field0", 3}, {"dir", 2}};
  dataset.spec.session_field = 1;
  dataset.spec.num_classes = 2;
  Rng rng(7);
  auto split = [&](int count) {
    std::vector<TangledSequence> out;
    for (int e = 0; e < count; ++e) {
      TangledSequence episode;
      episode.labels[0] = 0;
      episode.labels[1] = 1;
      for (int t = 0; t < 16; ++t) {
        Item item;
        item.key = t % 2;
        item.value = {rng.NextInt(3), rng.NextInt(2)};
        item.time = t;
        episode.items.push_back(item);
      }
      out.push_back(std::move(episode));
    }
    return out;
  };
  dataset.train = split(20);
  dataset.test = split(5);
  IndicatorMatcherConfig config;
  config.precision_threshold = 0.995f;
  config.min_support = 10;
  IndicatorMatcher model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  // Everything halts at full length with the majority-class fallback.
  for (const PredictionRecord& record : result.records) {
    if (record.observed_items == record.sequence_length) {
      EXPECT_EQ(record.predicted_label, model.majority_class());
    }
  }
}

TEST(IndicatorMatcherTest, RecordsAreConsistent) {
  Dataset dataset = EasyDataset(8);
  IndicatorMatcherConfig config;
  IndicatorMatcher model(dataset.spec, config);
  model.Fit(dataset.train);
  EvaluationResult result = model.Evaluate(dataset.test);
  ASSERT_EQ(result.records.size(), result.halts.size());
  for (const PredictionRecord& record : result.records) {
    EXPECT_GE(record.observed_items, 1);
    EXPECT_LE(record.observed_items, record.sequence_length);
  }
}

TEST(IndicatorMatcherDeathTest, RejectsBadConfig) {
  Dataset dataset = MarkerDataset(1);
  IndicatorMatcherConfig bad;
  bad.precision_threshold = 0.0f;
  EXPECT_DEATH(IndicatorMatcher(dataset.spec, bad), "check failed");
}

// ---- Method-spec integration ----

TEST(ClassicMethodsTest, ExtendedMethodListHasSevenEntries) {
  std::vector<MethodSpec> methods = AllMethodsExtended();
  ASSERT_EQ(methods.size(), 7u);
  EXPECT_EQ(methods[5].name, "Prefix-ECTS");
  EXPECT_EQ(methods[6].name, "Indicator");
}

TEST(ClassicMethodsTest, MethodSpecsRunEndToEnd) {
  Dataset dataset = EasyDataset(8);
  MethodRunOptions options;
  options.epochs = 2;
  for (MethodSpec spec : {PrefixEctsMethod(), IndicatorMatcherMethod()}) {
    ASSERT_FALSE(spec.grid.empty());
    EvaluationResult result = spec.run(dataset, spec.grid[2], options);
    EXPECT_GT(result.summary.num_sequences, 0) << spec.name;
    EXPECT_GE(result.summary.accuracy, 0.0) << spec.name;
    EXPECT_LE(result.summary.earliness, 1.0) << spec.name;
  }
}

}  // namespace
}  // namespace kvec
