// Parameterized property suites: invariants that must hold across a grid
// of configurations — mask structure, generator statistics, and metric
// identities on random inputs.
#include <cmath>
#include <set>

#include "core/correlation.h"
#include "data/session.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace kvec {
namespace {

// ---- Mask invariants over random tangled streams ----

struct MaskCase {
  int num_keys;
  int num_session_values;
  bool key_correlation;
  bool value_correlation;
  int window;
};

class MaskProperty : public ::testing::TestWithParam<MaskCase> {};

TEST_P(MaskProperty, StructuralInvariants) {
  const MaskCase& param = GetParam();
  Rng rng(1000 + param.num_keys * 10 + param.window);
  TangledSequence episode;
  for (int k = 0; k < param.num_keys; ++k) episode.labels[k] = 0;
  for (int i = 0; i < 60; ++i) {
    Item item;
    item.key = rng.NextInt(param.num_keys);
    item.value = {rng.NextInt(8), rng.NextInt(param.num_session_values)};
    item.time = i;
    episode.items.push_back(item);
  }
  CorrelationOptions options;
  options.use_key_correlation = param.key_correlation;
  options.use_value_correlation = param.value_correlation;
  options.value_correlation_window = param.window;
  options.session_field = 1;
  EpisodeMask mask = BuildEpisodeMask(episode, options);

  std::vector<int> session_ids = ComputeSessionIds(episode, 1);
  for (int i = 0; i < 60; ++i) {
    // (1) diagonal visible
    EXPECT_EQ(mask.mask.At(i, i), 0.0f);
    for (int j = 0; j < 60; ++j) {
      const bool visible = mask.mask.At(i, j) == 0.0f;
      // (2) causality
      if (j > i) EXPECT_FALSE(visible);
      if (j >= i) continue;
      const bool same_key = episode.items[i].key == episode.items[j].key;
      // (3) with key correlation on, ALL earlier same-key items visible
      if (param.key_correlation && same_key) {
        EXPECT_TRUE(visible) << i << "," << j;
      }
      // (4) with key correlation off, same-key never visible
      if (!param.key_correlation && same_key) {
        EXPECT_FALSE(visible) << i << "," << j;
      }
      // (5) cross-key visibility requires value correlation enabled and a
      //     session-field match
      if (!same_key && visible) {
        EXPECT_TRUE(param.value_correlation);
        EXPECT_EQ(episode.items[i].value[1], episode.items[j].value[1]);
        EXPECT_LE(i - j, param.window + 60);  // within a joinable horizon
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaskProperty,
    ::testing::Values(MaskCase{2, 2, true, true, 64},
                      MaskCase{4, 2, true, true, 8},
                      MaskCase{3, 3, true, false, 64},
                      MaskCase{3, 2, false, true, 64},
                      MaskCase{5, 4, false, false, 16},
                      MaskCase{1, 2, true, true, 64}));

// ---- Generator invariants over a config grid ----

struct GeneratorCase {
  int num_classes;
  int concurrency;
  double avg_length;
  double burst_continue;
};

class TrafficGeneratorProperty
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(TrafficGeneratorProperty, EpisodesWellFormed) {
  const GeneratorCase& param = GetParam();
  TrafficGeneratorConfig config;
  config.num_classes = param.num_classes;
  config.concurrency = param.concurrency;
  config.avg_flow_length = param.avg_length;
  config.min_flow_length = 4;
  config.burst_continue_prob = param.burst_continue;
  TrafficGenerator generator(config);
  Rng rng(7);
  std::set<int> seen_labels;
  for (int e = 0; e < 20; ++e) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    episode.Validate(2);
    EXPECT_EQ(episode.num_keys(), param.concurrency);
    for (const auto& [key, label] : episode.labels) {
      seen_labels.insert(label);
      EXPECT_GE(episode.KeyLength(key), 4);
    }
  }
  // Over 20 episodes × K flows, most classes should appear.
  EXPECT_GE(static_cast<int>(seen_labels.size()),
            std::min(param.num_classes, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrafficGeneratorProperty,
    ::testing::Values(GeneratorCase{2, 1, 8.0, 0.3},
                      GeneratorCase{4, 3, 15.0, 0.55},
                      GeneratorCase{9, 4, 25.0, 0.88},
                      GeneratorCase{12, 5, 30.0, 0.6},
                      GeneratorCase{3, 2, 60.0, 0.95}));

// ---- Metric identities on random prediction sets ----

class MetricsProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricsProperty, IdentitiesHold) {
  const int num_classes = GetParam();
  Rng rng(400 + num_classes);
  std::vector<PredictionRecord> records;
  for (int i = 0; i < 200; ++i) {
    PredictionRecord record;
    record.true_label = rng.NextInt(num_classes);
    record.predicted_label = rng.NextInt(num_classes);
    record.sequence_length = 1 + rng.NextInt(40);
    record.observed_items = 1 + rng.NextInt(record.sequence_length);
    records.push_back(record);
  }
  EvaluationSummary summary = Evaluate(records, num_classes);
  // Bounds.
  EXPECT_GE(summary.accuracy, 0.0);
  EXPECT_LE(summary.accuracy, 1.0);
  EXPECT_GT(summary.earliness, 0.0);
  EXPECT_LE(summary.earliness, 1.0);
  EXPECT_GE(summary.macro_f1, 0.0);
  EXPECT_LE(summary.macro_f1, 1.0);
  // HM consistency with its definition.
  EXPECT_NEAR(summary.harmonic_mean,
              HarmonicMean(summary.accuracy, summary.earliness), 1e-12);
  // Confusion matrix row sums = per-class support; total = #records.
  auto matrix = ConfusionMatrix(records, num_classes);
  int64_t total = 0;
  for (const auto& row : matrix) {
    for (int64_t count : row) total += count;
  }
  EXPECT_EQ(total, static_cast<int64_t>(records.size()));
  // Accuracy = trace / total.
  int64_t trace = 0;
  for (int c = 0; c < num_classes; ++c) trace += matrix[c][c];
  EXPECT_NEAR(summary.accuracy,
              static_cast<double>(trace) / records.size(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, MetricsProperty,
                         ::testing::Values(2, 3, 5, 9, 12));

// ---- Softmax invariants over random shapes ----

class SoftmaxProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SoftmaxProperty, RowsAreDistributions) {
  auto [rows, cols] = GetParam();
  Rng rng(500 + rows * 10 + cols);
  Tensor x = Tensor::Zeros(rows, cols);
  for (float& v : x.data()) {
    v = static_cast<float>(rng.NextGaussian() * 3.0);
  }
  Tensor y = ops::Softmax(x);
  for (int r = 0; r < rows; ++r) {
    float total = 0.0f;
    float max_weight = 0.0f;
    int argmax_in = 0, argmax_out = 0;
    for (int c = 0; c < cols; ++c) {
      EXPECT_GT(y.At(r, c), 0.0f);
      total += y.At(r, c);
      if (x.At(r, c) > x.At(r, argmax_in)) argmax_in = c;
      if (y.At(r, c) > max_weight) {
        max_weight = y.At(r, c);
        argmax_out = c;
      }
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
    EXPECT_EQ(argmax_in, argmax_out);  // monotone
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxProperty,
                         ::testing::Values(std::make_pair(1, 2),
                                           std::make_pair(3, 7),
                                           std::make_pair(16, 16),
                                           std::make_pair(40, 3)));

}  // namespace
}  // namespace kvec
