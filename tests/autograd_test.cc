// Finite-difference validation of every differentiable operator, plus
// forward-value correctness checks.
#include <cmath>

#include "gradcheck.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {
namespace {

using testing::ExpectGradientsMatch;

Tensor RandomTensor(int rows, int cols, Rng& rng, float scale = 1.0f) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.data()) {
    v = scale * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

TEST(OpsForwardTest, MatMulValues) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsForwardTest, MatMulTransposeBMatchesMatMul) {
  Rng rng(1);
  Tensor a = RandomTensor(3, 4, rng);
  Tensor b = RandomTensor(5, 4, rng);
  Tensor direct = ops::MatMulTransposeB(a, b);
  Tensor via_transpose = ops::MatMul(a, ops::Transpose(b));
  ASSERT_EQ(direct.rows(), via_transpose.rows());
  ASSERT_EQ(direct.cols(), via_transpose.cols());
  for (int i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], via_transpose.data()[i], 1e-5f);
  }
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Rng rng(2);
  Tensor x = RandomTensor(4, 6, rng, 2.0f);
  Tensor y = ops::Softmax(x);
  for (int r = 0; r < y.rows(); ++r) {
    float total = 0.0f;
    for (int c = 0; c < y.cols(); ++c) {
      EXPECT_GT(y.At(r, c), 0.0f);
      total += y.At(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, MaskedSoftmaxZeroesMaskedColumns) {
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, 1, 2, 3});
  Tensor mask = Tensor::FromData(
      2, 3, {0, ops::kNegInf, 0, 0, 0, ops::kNegInf});
  Tensor y = ops::MaskedSoftmax(x, mask);
  EXPECT_FLOAT_EQ(y.At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.At(1, 2), 0.0f);
  EXPECT_NEAR(y.At(0, 0) + y.At(0, 2), 1.0f, 1e-5f);
  EXPECT_NEAR(y.At(1, 0) + y.At(1, 1), 1.0f, 1e-5f);
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(3);
  Tensor x = RandomTensor(3, 5, rng, 2.0f);
  Tensor ls = ops::LogSoftmax(x);
  Tensor s = ops::Softmax(x);
  for (int i = 0; i < ls.size(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-4f);
  }
}

TEST(OpsForwardTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromData(2, 3, {1, 2, 3, 3, 2, 1});
  Tensor loss = ops::CrossEntropy(logits, {2, 2});
  Tensor ls = ops::LogSoftmax(logits);
  float expected = -(ls.At(0, 2) + ls.At(1, 2));
  EXPECT_NEAR(loss.ScalarValue(), expected, 1e-5f);
}

TEST(OpsForwardTest, EmbeddingGatherSelectsRows) {
  Tensor table = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor out = ops::EmbeddingGather(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(out.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.At(2, 1), 6.0f);
}

TEST(OpsForwardTest, ArgMaxRow) {
  Tensor t = Tensor::FromData(2, 3, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(ops::ArgMaxRow(t, 0), 1);
  EXPECT_EQ(ops::ArgMaxRow(t, 1), 0);
}

TEST(OpsForwardTest, DropoutInferenceIsIdentity) {
  Rng rng(4);
  Tensor x = RandomTensor(3, 3, rng);
  Tensor y = ops::Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.impl().get(), x.impl().get());
}

TEST(OpsForwardTest, DropoutTrainingZeroesAndScales) {
  Rng rng(5);
  Tensor x = Tensor::Full(20, 20, 1.0f, /*requires_grad=*/true);
  Tensor y = ops::Dropout(x, 0.4f, rng, /*training=*/true);
  int zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
  }
  EXPECT_GT(zeros, 80);   // ~160 expected
  EXPECT_LT(zeros, 240);
}

// ---- Gradient checks ----

TEST(GradCheckTest, MatMul) {
  Rng rng(10);
  Tensor a = RandomTensor(3, 4, rng);
  Tensor b = RandomTensor(4, 2, rng);
  ExpectGradientsMatch({a, b},
                       [&]() { return ops::SumAll(ops::MatMul(a, b)); });
}

TEST(GradCheckTest, MatMulTransposeB) {
  Rng rng(11);
  Tensor a = RandomTensor(2, 3, rng);
  Tensor b = RandomTensor(4, 3, rng);
  ExpectGradientsMatch(
      {a, b}, [&]() { return ops::SumAll(ops::MatMulTransposeB(a, b)); });
}

// Regression guard for kernel rewrites: MatMulTransposeB must stay
// numerically equivalent to MatMul(a, Transpose(b)) — forward values AND
// gradients — even though the two run entirely different GEMM code paths.
TEST(GradCheckTest, MatMulTransposeBMatchesMatMulOfTranspose) {
  Rng rng(99);
  // Odd sizes on purpose: exercise the SIMD kernels' remainder ladders.
  const int m = 5, k = 19, n = 7;
  Tensor a1 = RandomTensor(m, k, rng);
  Tensor b1 = RandomTensor(n, k, rng);
  Tensor a2 = Tensor::FromData(m, k, a1.data(), /*requires_grad=*/true);
  Tensor b2 = Tensor::FromData(n, k, b1.data(), /*requires_grad=*/true);
  Tensor picker = RandomTensor(m, n, rng).Detach();

  Tensor direct = ops::MatMulTransposeB(a1, b1);
  Tensor via_transpose = ops::MatMul(a2, ops::Transpose(b2));
  ASSERT_EQ(direct.rows(), via_transpose.rows());
  ASSERT_EQ(direct.cols(), via_transpose.cols());
  for (int i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], via_transpose.data()[i], 1e-5f)
        << "forward element " << i;
  }

  ops::SumAll(ops::Mul(direct, picker)).Backward();
  ops::SumAll(ops::Mul(via_transpose, picker)).Backward();
  for (size_t i = 0; i < a1.grad().size(); ++i) {
    EXPECT_NEAR(a1.grad()[i], a2.grad()[i], 1e-4f) << "dA element " << i;
  }
  for (size_t i = 0; i < b1.grad().size(); ++i) {
    EXPECT_NEAR(b1.grad()[i], b2.grad()[i], 1e-4f) << "dB element " << i;
  }
}

TEST(GradCheckTest, LinearForwardFused) {
  Rng rng(98);
  Tensor x = RandomTensor(3, 5, rng);
  Tensor w = RandomTensor(5, 4, rng);
  Tensor bias = RandomTensor(1, 4, rng);
  ExpectGradientsMatch({x, w, bias}, [&]() {
    return ops::SumAll(ops::Tanh(ops::LinearForward(x, w, bias)));
  });
  // Bias-free variant.
  ExpectGradientsMatch({x, w}, [&]() {
    return ops::SumAll(ops::Tanh(ops::LinearForward(x, w, Tensor())));
  });
}

TEST(GradCheckTest, FusedMulAddAndMulTanh) {
  Rng rng(97);
  Tensor a = RandomTensor(2, 3, rng);
  Tensor b = RandomTensor(2, 3, rng);
  Tensor c = RandomTensor(2, 3, rng);
  Tensor d = RandomTensor(2, 3, rng);
  ExpectGradientsMatch({a, b, c, d}, [&]() {
    return ops::SumAll(ops::MulTanh(a, ops::FusedMulAdd(a, b, c, d)));
  });
}

TEST(GradCheckTest, ConcatColsNMatchesPairwise) {
  Rng rng(96);
  Tensor a = RandomTensor(3, 2, rng);
  Tensor b = RandomTensor(3, 3, rng);
  Tensor c = RandomTensor(3, 1, rng);
  ExpectGradientsMatch({a, b, c}, [&]() {
    return ops::SumAll(ops::Tanh(ops::ConcatColsN({a, b, c})));
  });
}

// Larger-shape gradcheck routed through the SIMD panel kernels (the other
// gradchecks are small enough to stay on remainder paths).
TEST(GradCheckTest, MatMulWideEnoughForSimdPanels) {
  Rng rng(95);
  Tensor a = RandomTensor(7, 33, rng, 0.3f);
  Tensor b = RandomTensor(33, 65, rng, 0.3f);
  ExpectGradientsMatch(
      {a, b}, [&]() { return ops::MeanAll(ops::MatMul(a, b)); },
      /*eps=*/5e-2f, /*tol=*/6e-2f);
}

TEST(GradCheckTest, AddSubMul) {
  Rng rng(12);
  Tensor a = RandomTensor(2, 3, rng);
  Tensor b = RandomTensor(2, 3, rng);
  ExpectGradientsMatch({a, b}, [&]() {
    return ops::SumAll(ops::Mul(ops::Add(a, b), ops::Sub(a, b)));
  });
}

TEST(GradCheckTest, AddRowBroadcast) {
  Rng rng(13);
  Tensor a = RandomTensor(3, 4, rng);
  Tensor bias = RandomTensor(1, 4, rng);
  ExpectGradientsMatch({a, bias}, [&]() {
    return ops::SumAll(ops::Tanh(ops::AddRow(a, bias)));
  });
}

TEST(GradCheckTest, AffineAndAddN) {
  Rng rng(14);
  Tensor a = RandomTensor(2, 2, rng);
  Tensor b = RandomTensor(2, 2, rng);
  ExpectGradientsMatch({a, b}, [&]() {
    return ops::SumAll(
        ops::AddN({ops::Affine(a, 2.0f, 1.0f), b, ops::Affine(b, -0.5f, 0.0f)}));
  });
}

TEST(GradCheckTest, ConcatColsAndSlice) {
  Rng rng(15);
  Tensor a = RandomTensor(3, 2, rng);
  Tensor b = RandomTensor(3, 3, rng);
  ExpectGradientsMatch({a, b}, [&]() {
    Tensor joined = ops::ConcatCols(a, b);
    return ops::SumAll(ops::Mul(ops::SliceRows(joined, 1, 3),
                                ops::SliceRows(joined, 0, 2)));
  });
}

TEST(GradCheckTest, SliceCols) {
  Rng rng(42);
  Tensor a = RandomTensor(3, 6, rng);
  ExpectGradientsMatch({a}, [&]() {
    // Overlap-free head split and a use of both halves keeps every element
    // of `a` on some gradient path.
    Tensor left = ops::SliceCols(a, 0, 3);
    Tensor right = ops::SliceCols(a, 3, 6);
    return ops::SumAll(ops::Mul(left, right));
  });
}

TEST(OpsForwardTest, SliceColsValues) {
  Tensor a = Tensor::FromData(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor mid = ops::SliceCols(a, 1, 3);
  EXPECT_EQ(mid.rows(), 2);
  EXPECT_EQ(mid.cols(), 2);
  EXPECT_FLOAT_EQ(mid.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mid.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(mid.At(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(mid.At(1, 1), 7.0f);
}

TEST(OpsForwardTest, SliceColsRoundTripsWithConcat) {
  Rng rng(43);
  Tensor a = RandomTensor(4, 6, rng);
  Tensor rebuilt =
      ops::ConcatCols(ops::SliceCols(a, 0, 2), ops::SliceCols(a, 2, 6));
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_FLOAT_EQ(rebuilt.At(i, j), a.At(i, j));
    }
  }
}

TEST(GradCheckTest, Gelu) {
  Rng rng(44);
  Tensor a = RandomTensor(3, 4, rng);
  ExpectGradientsMatch({a},
                       [&]() { return ops::SumAll(ops::Gelu(a)); });
}

TEST(OpsForwardTest, GeluKnownValues) {
  Tensor x = Tensor::FromData(1, 3, {-10.0f, 0.0f, 10.0f});
  Tensor y = ops::Gelu(x);
  EXPECT_NEAR(y.At(0, 0), 0.0f, 1e-4f);   // strongly negative -> ~0
  EXPECT_NEAR(y.At(0, 1), 0.0f, 1e-6f);   // gelu(0) = 0
  EXPECT_NEAR(y.At(0, 2), 10.0f, 1e-4f);  // strongly positive -> identity
}

TEST(GradCheckTest, StackRows) {
  Rng rng(16);
  Tensor a = RandomTensor(1, 4, rng);
  Tensor b = RandomTensor(1, 4, rng);
  Tensor c = RandomTensor(1, 4, rng);
  ExpectGradientsMatch({a, b, c}, [&]() {
    return ops::SumAll(ops::Sigmoid(ops::StackRows({a, b, c})));
  });
}

TEST(GradCheckTest, Transpose) {
  Rng rng(17);
  Tensor a = RandomTensor(2, 3, rng);
  ExpectGradientsMatch(
      {a}, [&]() { return ops::SumAll(ops::Tanh(ops::Transpose(a))); });
}

TEST(GradCheckTest, Nonlinearities) {
  Rng rng(18);
  Tensor a = RandomTensor(2, 3, rng);
  ExpectGradientsMatch({a}, [&]() { return ops::SumAll(ops::Relu(a)); });
  ExpectGradientsMatch({a}, [&]() { return ops::SumAll(ops::Sigmoid(a)); });
  ExpectGradientsMatch({a}, [&]() { return ops::SumAll(ops::Tanh(a)); });
}

TEST(GradCheckTest, LogOfSigmoid) {
  Rng rng(19);
  Tensor a = RandomTensor(2, 2, rng);
  ExpectGradientsMatch(
      {a}, [&]() { return ops::SumAll(ops::Log(ops::Sigmoid(a))); });
}

TEST(GradCheckTest, Softmax) {
  Rng rng(20);
  Tensor a = RandomTensor(3, 4, rng);
  Tensor picker = Tensor::FromData(3, 4, {0.3f, -1.0f, 0.7f, 0.1f,  //
                                          1.0f, 0.2f, -0.5f, 0.4f,  //
                                          -0.2f, 0.8f, 0.6f, -0.9f});
  ExpectGradientsMatch({a}, [&]() {
    return ops::SumAll(ops::Mul(ops::Softmax(a), picker));
  });
}

TEST(GradCheckTest, MaskedSoftmax) {
  Rng rng(21);
  Tensor a = RandomTensor(3, 3, rng);
  Tensor mask = Tensor::FromData(3, 3, {0, ops::kNegInf, ops::kNegInf,  //
                                        0, 0, ops::kNegInf,             //
                                        ops::kNegInf, 0, 0});
  Tensor picker = RandomTensor(3, 3, rng);
  Tensor picker_const = picker.Detach();
  ExpectGradientsMatch({a}, [&]() {
    return ops::SumAll(ops::Mul(ops::MaskedSoftmax(a, mask), picker_const));
  });
}

TEST(GradCheckTest, LogSoftmax) {
  Rng rng(22);
  Tensor a = RandomTensor(2, 5, rng);
  Tensor picker = RandomTensor(2, 5, rng);
  Tensor picker_const = picker.Detach();
  ExpectGradientsMatch({a}, [&]() {
    return ops::SumAll(ops::Mul(ops::LogSoftmax(a), picker_const));
  });
}

TEST(GradCheckTest, LayerNorm) {
  Rng rng(23);
  Tensor a = RandomTensor(3, 6, rng);
  Tensor gamma = RandomTensor(1, 6, rng);
  Tensor beta = RandomTensor(1, 6, rng);
  Tensor picker = RandomTensor(3, 6, rng).Detach();
  ExpectGradientsMatch({a, gamma, beta}, [&]() {
    return ops::SumAll(ops::Mul(ops::LayerNorm(a, gamma, beta), picker));
  });
}

TEST(GradCheckTest, EmbeddingGather) {
  Rng rng(24);
  Tensor table = RandomTensor(5, 3, rng);
  std::vector<int> indices = {0, 2, 2, 4};
  ExpectGradientsMatch({table}, [&]() {
    return ops::SumAll(ops::Tanh(ops::EmbeddingGather(table, indices)));
  });
}

TEST(GradCheckTest, CrossEntropy) {
  Rng rng(25);
  Tensor logits = RandomTensor(4, 3, rng);
  std::vector<int> labels = {0, 2, 1, 2};
  ExpectGradientsMatch(
      {logits}, [&]() { return ops::CrossEntropy(logits, labels); });
}

TEST(GradCheckTest, MseLoss) {
  Rng rng(26);
  Tensor pred = RandomTensor(5, 1, rng);
  std::vector<float> targets = {1.0f, -2.0f, 0.5f, 3.0f, 0.0f};
  ExpectGradientsMatch({pred},
                       [&]() { return ops::MseLoss(pred, targets); });
}

TEST(GradCheckTest, MeanAll) {
  Rng rng(27);
  Tensor a = RandomTensor(3, 3, rng);
  ExpectGradientsMatch({a},
                       [&]() { return ops::MeanAll(ops::Mul(a, a)); });
}

// Composite expression resembling one attention block.
TEST(GradCheckTest, AttentionLikeComposite) {
  Rng rng(28);
  Tensor x = RandomTensor(4, 3, rng, 0.5f);
  Tensor wq = RandomTensor(3, 3, rng, 0.5f);
  Tensor wk = RandomTensor(3, 3, rng, 0.5f);
  Tensor wv = RandomTensor(3, 3, rng, 0.5f);
  Tensor mask = Tensor::Full(4, 4, 0.0f);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) mask.Set(i, j, ops::kNegInf);
  }
  Tensor picker = RandomTensor(4, 3, rng).Detach();
  ExpectGradientsMatch({x, wq, wk, wv}, [&]() {
    Tensor q = ops::MatMul(x, wq);
    Tensor k = ops::MatMul(x, wk);
    Tensor v = ops::MatMul(x, wv);
    Tensor scores = ops::Affine(ops::MatMulTransposeB(q, k), 0.57735f, 0.0f);
    Tensor weights = ops::MaskedSoftmax(scores, mask);
    return ops::SumAll(ops::Mul(ops::MatMul(weights, v), picker));
  });
}

}  // namespace
}  // namespace kvec
