#include "tensor/tensor.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

TEST(TensorTest, FactoryShapes) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor f = Tensor::Full(3, 1, 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);

  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_EQ(s.ScalarValue(), 7.0f);
}

TEST(TensorTest, FromDataRowMajorLayout) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
  EXPECT_EQ(t.At(1, 2), 6.0f);
}

TEST(TensorTest, SetAndAt) {
  Tensor t = Tensor::Zeros(2, 2);
  t.Set(1, 0, 3.5f);
  EXPECT_EQ(t.At(1, 0), 3.5f);
  EXPECT_EQ(t.At(0, 0), 0.0f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros(1, 2);
  Tensor b = a;
  b.Set(0, 0, 9.0f);
  EXPECT_EQ(a.At(0, 0), 9.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Zeros(1, 2);
  Tensor b = a.Clone();
  b.Set(0, 0, 9.0f);
  EXPECT_EQ(a.At(0, 0), 0.0f);
}

TEST(TensorTest, DetachDropsGraphAndGrad) {
  Tensor a = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor b = ops::Affine(a, 3.0f, 0.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.ScalarValue(), 6.0f);
  EXPECT_TRUE(d.impl()->parents.empty());
}

TEST(TensorTest, BackwardThroughSharedNodeAccumulates) {
  // y = x + x  =>  dy/dx = 2
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor y = ops::Add(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  ops::Affine(x, 2.0f, 0.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  ops::Affine(x, 5.0f, 0.0f).Backward();
  ops::Affine(x, 5.0f, 0.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 10.0f);
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = (x*x) + (x*x) computed through two distinct nodes sharing x.
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor a = ops::Mul(x, x);
  Tensor b = ops::Mul(x, x);
  Tensor y = ops::Add(a, b);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // d(2x^2)/dx = 4x
}

TEST(TensorTest, GraphIsFreedWhenOutputsGoOutOfScope) {
  // Regression test: backward lambdas must not own their own node, or the
  // whole graph leaks (reference cycle). The leaf's use count must return
  // to its original value once all op outputs are gone.
  Tensor x = Tensor::Scalar(1.5f, /*requires_grad=*/true);
  const long baseline = x.impl().use_count();
  {
    Tensor y = ops::Mul(x, x);
    Tensor z = ops::SumAll(ops::Add(y, x));
    z.Backward();
    EXPECT_GT(x.impl().use_count(), baseline);  // graph alive
  }
  EXPECT_EQ(x.impl().use_count(), baseline);  // graph freed
}

TEST(TensorTest, ToStringRendersValues) {
  Tensor t = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.ToString(), "[2x2][1 2; 3 4]");
  EXPECT_EQ(Tensor().ToString(), "[undefined]");
}

TEST(TensorDeathTest, ScalarValueRejectsMatrix) {
  Tensor t = Tensor::Zeros(2, 2);
  EXPECT_DEATH(t.ScalarValue(), "non-scalar");
}

TEST(TensorDeathTest, AtBoundsChecked) {
  Tensor t = Tensor::Zeros(2, 2);
  EXPECT_DEATH(t.At(2, 0), "check failed");
  EXPECT_DEATH(t.At(0, -1), "check failed");
}

TEST(TensorDeathTest, BackwardRequiresScalar) {
  Tensor t = Tensor::Zeros(2, 2, /*requires_grad=*/true);
  EXPECT_DEATH(t.Backward(), "scalar");
}

// Regression for the soak harness's RSS ratchet: a tensor that ADOPTS an
// externally built vector (FromData/Scalar/Clone) must free it normally on
// destruction, not deposit it into the BufferPool. Every adopted buffer
// released into the pool is a net gain the pool never handed out — with one
// FromData per served item the free list outgrew the live working set and
// climbed toward its cap instead of holding flat.
TEST(TensorTest, AdoptedBuffersDoNotDepositIntoThePool) {
  BufferPool& pool = BufferPool::Global();
  pool.SetEnabled(true);
  pool.Clear();
  const BufferPool::Stats before = pool.stats();

  {
    std::vector<float> values(16, 1.0f);
    Tensor adopted = Tensor::FromData(4, 4, std::move(values));
  }
  BufferPool::Stats after = pool.stats();
  EXPECT_EQ(after.returned, before.returned);
  EXPECT_EQ(after.cached_floats, 0u);

  // Pool-acquired storage still recycles: Zeros draws from the pool, so its
  // buffer is returned on destruction.
  { Tensor pooled = Tensor::Zeros(4, 4); }
  after = pool.stats();
  EXPECT_EQ(after.returned, before.returned + 1);
  EXPECT_EQ(after.cached_floats, 16u);
  pool.Clear();
}

}  // namespace
}  // namespace kvec
