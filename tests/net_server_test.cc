// Connection-lifecycle behavior of the TCP ingest front end.
//
// Each test drives a real loopback socket against a TcpIngestServer over a
// small trained model, forcing one hostile or unlucky lifecycle through
// the `net.*` fault points (util/fault_injection.h) or raw byte streams:
// torn frames, hostile length prefixes, slow-loris idleness, overload,
// disconnects mid-batch, and graceful drain with in-flight work. The
// invariant carried over from the overload harness: after drain,
// items_submitted == items_processed + items_shed on the shard server.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/loadgen.h"
#include "net/socket.h"
#include "net/tcp_ingest_server.h"
#include "util/fault_injection.h"

namespace kvec {
namespace net {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed = 137) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

// Expensive to train; every test reads it, none mutates it.
const Fixture& SharedFixture() {
  static const Fixture fixture = TrainSmallModel();
  return fixture;
}

std::vector<Item> TestItems(int count) {
  std::vector<Item> items;
  for (const TangledSequence& episode : SharedFixture().dataset.test) {
    for (const Item& item : episode.items) {
      items.push_back(item);
      if (static_cast<int>(items.size()) == count) return items;
    }
  }
  return items;
}

class NetServerTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::DisarmAll(); }

  // Builds server + TCP front end with test-friendly timeouts.
  void StartServer(int workers = 0, int queue_depth = 256,
                   OverloadPolicy policy = OverloadPolicy::kBlock,
                   int max_connections = 8) {
    const Fixture& fixture = SharedFixture();
    ShardedStreamServerConfig config;
    config.num_shards = workers > 0 ? workers : 2;
    config.worker_threads = workers;
    config.queue_depth = queue_depth;
    config.overload_policy = policy;
    server_ = std::make_unique<ShardedStreamServer>(*fixture.model, config);

    TcpIngestServerConfig net_config;
    net_config.port = 0;
    net_config.max_connections = max_connections;
    net_config.idle_timeout_ms = 30000;  // eviction tests use net.deadline
    net_config.io_timeout_ms = 2000;
    net_config.num_value_fields =
        fixture.model->config().spec.num_value_fields();
    net_config.num_classes = fixture.model->config().spec.num_classes;
    tcp_ = std::make_unique<TcpIngestServer>(server_.get(), net_config);
    std::string error;
    ASSERT_TRUE(tcp_->Start(&error)) << error;
    ASSERT_NE(tcp_->port(), 0);  // port 0 bind reported the kernel's pick
  }

  ClientConfig MakeClientConfig() const {
    ClientConfig config;
    config.port = tcp_->port();
    return config;
  }

  bool ClientHello(IngestClient* client) {
    const Fixture& fixture = SharedFixture();
    std::string error;
    if (!client->Connect(&error)) {
      ADD_FAILURE() << "connect: " << error;
      return false;
    }
    if (!client->Hello(fixture.model->config().spec.num_value_fields(),
                       fixture.model->config().spec.num_classes, &error)) {
      ADD_FAILURE() << "hello: " << error;
      return false;
    }
    return true;
  }

  void ExpectInvariantAfterDrain() {
    server_->Drain();
    const StreamServerStats stats = server_->stats();
    EXPECT_EQ(stats.items_submitted,
              stats.items_processed + stats.items_shed);
  }

  // Polls `predicate` for up to two seconds (handler threads race tests).
  template <typename Predicate>
  bool WaitFor(Predicate predicate, int timeout_ms = 2000) {
    const int64_t deadline = SteadyNowMs() + timeout_ms;
    while (SteadyNowMs() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
  }

  std::unique_ptr<ShardedStreamServer> server_;
  std::unique_ptr<TcpIngestServer> tcp_;
};

TEST_F(NetServerTest, HelloIngestStatsFlushRoundTrip) {
  StartServer();
  IngestClient client(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&client));

  const std::vector<Item> items = TestItems(24);
  Frame reply;
  ASSERT_EQ(client.Call(FrameType::kIngestBatch, EncodeItems(items), &reply),
            IngestClient::CallStatus::kOk);
  ASSERT_EQ(reply.type, FrameType::kIngestAck);
  IngestAck ack;
  ASSERT_TRUE(DecodeIngestAck(reply.payload, &ack));
  EXPECT_EQ(ack.accepted, static_cast<int64_t>(items.size()));
  EXPECT_EQ(ack.shed, 0);

  ASSERT_EQ(client.Call(FrameType::kStatsQuery, "", &reply),
            IngestClient::CallStatus::kOk);
  ASSERT_EQ(reply.type, FrameType::kStatsReply);
  StatsReply stats;
  ASSERT_TRUE(DecodeStatsReply(reply.payload, &stats));
  EXPECT_EQ(stats.items_submitted, static_cast<int64_t>(items.size()));
  EXPECT_EQ(stats.items_shed, 0);

  ASSERT_EQ(client.Call(FrameType::kFlush, "", &reply),
            IngestClient::CallStatus::kOk);
  ASSERT_EQ(reply.type, FrameType::kFlushAck);
  FlushAck flush;
  ASSERT_TRUE(DecodeFlushAck(reply.payload, &flush));
  EXPECT_GT(flush.events, 0);

  client.Close();
  tcp_->Shutdown();
  ExpectInvariantAfterDrain();
}

TEST_F(NetServerTest, HelloShapeMismatchIsRejected) {
  StartServer();
  IngestClient client(MakeClientConfig());
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;
  EXPECT_FALSE(client.Hello(999, 999, &error));
  EXPECT_NE(error.find("UNSUPPORTED"), std::string::npos) << error;
}

TEST_F(NetServerTest, IngestBeforeHelloIsUnsupportedButRecoverable) {
  StartServer();
  IngestClient client(MakeClientConfig());
  std::string error;
  ASSERT_TRUE(client.Connect(&error)) << error;
  Frame reply;
  ASSERT_EQ(client.Call(FrameType::kIngestBatch,
                        EncodeItems(TestItems(4)), &reply),
            IngestClient::CallStatus::kOk);
  ASSERT_EQ(reply.type, FrameType::kError);
  ErrorFrame frame;
  ASSERT_TRUE(DecodeError(reply.payload, &frame));
  EXPECT_EQ(frame.code, ErrorCode::kUnsupported);
  // The stream is still framed, so the connection survives: hello and
  // ingest now succeed on the same socket.
  const Fixture& fixture = SharedFixture();
  ASSERT_TRUE(client.Hello(fixture.model->config().spec.num_value_fields(),
                           fixture.model->config().spec.num_classes,
                           &error))
      << error;
  ASSERT_EQ(client.Call(FrameType::kIngestBatch,
                        EncodeItems(TestItems(4)), &reply),
            IngestClient::CallStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kIngestAck);
}

TEST_F(NetServerTest, GarbageBytesEarnMalformedErrorAndClose) {
  StartServer();
  std::string error;
  Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(socket.valid()) << error;
  // Longer than one frame header, so the decoder can actually judge it.
  const std::string garbage = "GET /ingest HTTP/1.1\r\nHost: kvec\r\n\r\n";
  ASSERT_EQ(socket.SendAll(garbage.data(), garbage.size(), 2000),
            IoStatus::kOk);

  // Expect one MALFORMED error frame, then EOF.
  FrameDecoder decoder;
  Frame reply;
  std::string reason;
  char buffer[1024];
  bool got_frame = false;
  bool got_eof = false;
  for (int i = 0; i < 100 && !got_eof; ++i) {
    size_t received = 0;
    const IoStatus io = socket.RecvSome(buffer, sizeof(buffer), 100,
                                        &received);
    if (io == IoStatus::kOk) {
      decoder.Feed(buffer, received);
      if (decoder.Next(&reply, &reason) == FrameDecoder::Status::kFrame) {
        got_frame = true;
      }
    } else if (io != IoStatus::kTimeout) {
      got_eof = true;
    }
  }
  ASSERT_TRUE(got_frame);
  EXPECT_TRUE(got_eof);
  ASSERT_EQ(reply.type, FrameType::kError);
  ErrorFrame frame;
  ASSERT_TRUE(DecodeError(reply.payload, &frame));
  EXPECT_EQ(frame.code, ErrorCode::kMalformed);
  EXPECT_TRUE(WaitFor([&] { return tcp_->stats().frames_malformed >= 1; }));
}

// The hostile 4 GiB length prefix, this time over a real socket: rejected
// as MALFORMED without the server buffering anything payload-sized.
TEST_F(NetServerTest, HostileLengthPrefixOverTheWireIsMalformed) {
  StartServer();
  std::string error;
  Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(socket.valid()) << error;
  std::string header;
  const uint32_t magic = kFrameMagic;
  const uint16_t version = kFrameProtocolVersion;
  const uint16_t type = static_cast<uint16_t>(FrameType::kIngestBatch);
  const uint64_t request_id = 9;
  const uint32_t hostile_len = 0xfffffff0u;
  header.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  header.append(reinterpret_cast<const char*>(&version), sizeof(version));
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&request_id),
                sizeof(request_id));
  header.append(reinterpret_cast<const char*>(&hostile_len),
                sizeof(hostile_len));
  ASSERT_EQ(socket.SendAll(header.data(), header.size(), 2000),
            IoStatus::kOk);
  EXPECT_TRUE(WaitFor([&] { return tcp_->stats().frames_malformed >= 1; }));
}

// Disconnect mid-batch: the peer vanishes with half a frame on the wire.
// The handler must abandon the torn frame, close, and leave the server
// fully serviceable for the next connection.
TEST_F(NetServerTest, DisconnectMidBatchLeavesServerServiceable) {
  StartServer();
  const std::vector<Item> items = TestItems(16);
  Frame frame;
  frame.type = FrameType::kIngestBatch;
  frame.request_id = 5;
  frame.payload = EncodeItems(items);
  const std::string bytes = EncodeFrame(frame);
  {
    std::string error;
    Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000,
                                    &error);
    ASSERT_TRUE(socket.valid()) << error;
    // Half the frame, then a hard close (RAII) — a torn write.
    ASSERT_EQ(socket.SendAll(bytes.data(), bytes.size() / 2, 2000),
              IoStatus::kOk);
  }
  EXPECT_TRUE(WaitFor([&] { return tcp_->active_connections() == 0; }));
  // The torn frame was abandoned: nothing was submitted to the shards.
  EXPECT_EQ(server_->stats().items_submitted, 0);

  IngestClient client(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&client));
  Frame reply;
  ASSERT_EQ(client.Call(FrameType::kIngestBatch, EncodeItems(items), &reply),
            IngestClient::CallStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kIngestAck);
  tcp_->Shutdown();
  ExpectInvariantAfterDrain();
}

// Slow loris: a connection that never completes a frame. The per-frame
// idle deadline evicts it; `net.deadline` forces the expiry so the test
// does not wait out a real timeout.
TEST_F(NetServerTest, SlowLorisConnectionIsEvicted) {
  StartServer();
  std::string error;
  Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(socket.valid()) << error;
  // Drip two bytes of a valid header — never a complete frame. The
  // deadline resets per frame, so these bytes must not keep it alive.
  const char drip[2] = {'\x46', '\x4e'};
  ASSERT_EQ(socket.SendAll(drip, sizeof(drip), 2000), IoStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  FaultInjection::Arm("net.deadline", [](const char*) { return true; });
  EXPECT_TRUE(WaitFor(
      [&] { return tcp_->stats().connections_evicted_idle >= 1; }));
  EXPECT_GT(FaultInjection::FireCount("net.deadline"), 0);
  // The evicted client sees EOF, not a hang.
  char buffer[64];
  size_t received = 0;
  IoStatus io = IoStatus::kTimeout;
  for (int i = 0; i < 50 && io == IoStatus::kTimeout; ++i) {
    io = socket.RecvSome(buffer, sizeof(buffer), 100, &received);
  }
  EXPECT_EQ(io, IoStatus::kClosed);
}

TEST_F(NetServerTest, ConnectionLimitRejectsWithOverloadedFrame) {
  StartServer(/*workers=*/0, /*queue_depth=*/256, OverloadPolicy::kBlock,
              /*max_connections=*/1);
  IngestClient first(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&first));

  std::string error;
  Socket second = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(second.valid()) << error;
  FrameDecoder decoder;
  Frame reply;
  std::string reason;
  char buffer[1024];
  bool got_frame = false;
  for (int i = 0; i < 100 && !got_frame; ++i) {
    size_t received = 0;
    const IoStatus io = second.RecvSome(buffer, sizeof(buffer), 100,
                                        &received);
    if (io == IoStatus::kOk) {
      decoder.Feed(buffer, received);
      got_frame =
          decoder.Next(&reply, &reason) == FrameDecoder::Status::kFrame;
    } else if (io != IoStatus::kTimeout) {
      break;
    }
  }
  ASSERT_TRUE(got_frame);
  ASSERT_EQ(reply.type, FrameType::kError);
  ErrorFrame frame;
  ASSERT_TRUE(DecodeError(reply.payload, &frame));
  EXPECT_EQ(frame.code, ErrorCode::kOverloaded);
  EXPECT_EQ(tcp_->stats().connections_rejected, 1);
}

// An injected accept-time drop (`net.accept`) must not wedge the accept
// loop: the dropped client simply sees a close and the next connection
// succeeds.
TEST_F(NetServerTest, AcceptFaultDropsConnectionWithoutWedgingServer) {
  StartServer();
  std::atomic<int> fired{0};
  FaultInjection::Arm("net.accept", [&fired](const char*) {
    return fired.fetch_add(1) == 0;  // drop exactly the first accept
  });
  std::string error;
  Socket dropped = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(dropped.valid()) << error;
  char buffer[16];
  size_t received = 0;
  IoStatus io = IoStatus::kTimeout;
  for (int i = 0; i < 50 && io == IoStatus::kTimeout; ++i) {
    io = dropped.RecvSome(buffer, sizeof(buffer), 100, &received);
  }
  EXPECT_EQ(io, IoStatus::kClosed);

  IngestClient client(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&client));
}

// Overload composition: stalled shard workers + depth-1 queues force a
// shed; the client sees an OVERLOADED error frame with the accounting,
// backs off, retries, and eventually succeeds once the stall lifts.
TEST_F(NetServerTest, OverloadedResponseThenSuccessfulRetry) {
  StartServer(/*workers=*/2, /*queue_depth=*/1,
              OverloadPolicy::kShedNewest);
  std::atomic<bool> stall{true};
  FaultInjection::Arm("shard_worker.batch", [&stall](const char*) {
    while (stall.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  });

  IngestClient client(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&client));
  const std::string payload = EncodeItems(TestItems(8));

  // With workers wedged, depth-1 queues fill after a couple of batches;
  // some submission must come back OVERLOADED.
  bool saw_overloaded = false;
  ErrorFrame overloaded;
  for (int attempt = 0; attempt < 32 && !saw_overloaded; ++attempt) {
    Frame reply;
    ASSERT_EQ(client.Call(FrameType::kIngestBatch, payload, &reply),
              IngestClient::CallStatus::kOk);
    if (reply.type == FrameType::kError) {
      ASSERT_TRUE(DecodeError(reply.payload, &overloaded));
      ASSERT_EQ(overloaded.code, ErrorCode::kOverloaded);
      saw_overloaded = true;
    }
  }
  ASSERT_TRUE(saw_overloaded);
  EXPECT_GT(overloaded.shed, 0);

  // Back off (lift the stall — the "server recovered" half of the retry
  // contract), then the same batch goes through.
  stall.store(false);
  bool retried_ok = false;
  for (int attempt = 0; attempt < 32 && !retried_ok; ++attempt) {
    Frame reply;
    ASSERT_EQ(client.Call(FrameType::kIngestBatch, payload, &reply),
              IngestClient::CallStatus::kOk);
    retried_ok = reply.type == FrameType::kIngestAck;
    if (!retried_ok) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(retried_ok);

  client.Close();
  tcp_->Shutdown();
  ExpectInvariantAfterDrain();
  EXPECT_GT(server_->stats().items_shed, 0);
}

// Graceful drain with in-flight work: requests already accepted (acked
// into stalled shard queues) and requests already in the kernel's receive
// buffer are both completed by Shutdown(); only then does the handler see
// EOF. Accepted work is never dropped.
TEST_F(NetServerTest, ShutdownDrainsInFlightRequests) {
  StartServer(/*workers=*/2, /*queue_depth=*/256, OverloadPolicy::kBlock);
  std::atomic<bool> stall{true};
  FaultInjection::Arm("shard_worker.batch", [&stall](const char*) {
    while (stall.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  });

  IngestClient client(MakeClientConfig());
  ASSERT_TRUE(ClientHello(&client));
  const std::vector<Item> items = TestItems(12);
  Frame reply;
  ASSERT_EQ(client.Call(FrameType::kIngestBatch, EncodeItems(items), &reply),
            IngestClient::CallStatus::kOk);
  ASSERT_EQ(reply.type, FrameType::kIngestAck);
  // Acked into stalled queues: in-flight. (Checked via the lock-free TCP
  // counters — server_->stats() would queue behind the stalled workers.)
  ASSERT_EQ(tcp_->stats().items_accepted,
            static_cast<int64_t>(items.size()));

  // One more request is in flight on the wire when the drain begins.
  Frame stats_query;
  stats_query.type = FrameType::kStatsQuery;
  stats_query.request_id = 77;
  std::thread drainer;
  {
    // Raw second client so the request can be on the wire before Shutdown.
    std::string error;
    Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000,
                                    &error);
    ASSERT_TRUE(socket.valid()) << error;
    const std::string bytes = EncodeFrame(stats_query);
    ASSERT_EQ(socket.SendAll(bytes.data(), bytes.size(), 2000),
              IoStatus::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stall.store(false);
    drainer = std::thread([this] { tcp_->Shutdown(); });
    // The buffered request is still answered during the drain.
    FrameDecoder decoder;
    Frame drained_reply;
    std::string reason;
    char buffer[1024];
    bool got_reply = false;
    for (int i = 0; i < 100 && !got_reply; ++i) {
      size_t received = 0;
      const IoStatus io = socket.RecvSome(buffer, sizeof(buffer), 100,
                                          &received);
      if (io == IoStatus::kOk) {
        decoder.Feed(buffer, received);
        got_reply = decoder.Next(&drained_reply, &reason) ==
                    FrameDecoder::Status::kFrame;
      } else if (io != IoStatus::kTimeout) {
        break;
      }
    }
    ASSERT_TRUE(got_reply);
    EXPECT_EQ(drained_reply.type, FrameType::kStatsReply);
    EXPECT_EQ(drained_reply.request_id, 77u);
  }
  drainer.join();
  ExpectInvariantAfterDrain();
  const StreamServerStats stats = server_->stats();
  EXPECT_EQ(stats.items_processed, static_cast<int64_t>(items.size()));
  EXPECT_EQ(stats.items_shed, 0);
}

// `net.write_frame` forces a response-write failure; the handler must
// close rather than continue a connection whose responses are lost. The
// hook passes its first firing (the test's own send below) and fails the
// second (the server's reply write) — send order makes that deterministic.
TEST_F(NetServerTest, WriteFaultClosesConnection) {
  StartServer();
  std::string error;
  Socket socket = Socket::Connect("127.0.0.1", tcp_->port(), 2000, &error);
  ASSERT_TRUE(socket.valid()) << error;
  std::atomic<int> calls{0};
  FaultInjection::Arm("net.write_frame", [&calls](const char*) {
    return calls.fetch_add(1) >= 1;
  });
  Frame query;
  query.type = FrameType::kStatsQuery;
  query.request_id = 3;
  const std::string bytes = EncodeFrame(query);
  ASSERT_EQ(socket.SendAll(bytes.data(), bytes.size(), 2000), IoStatus::kOk);
  // No reply can arrive — the server's write failed — only EOF.
  char buffer[256];
  size_t received = 0;
  IoStatus io = IoStatus::kTimeout;
  for (int i = 0; i < 50 && io == IoStatus::kTimeout; ++i) {
    io = socket.RecvSome(buffer, sizeof(buffer), 100, &received);
  }
  EXPECT_EQ(io, IoStatus::kClosed);
  EXPECT_TRUE(WaitFor([&] { return tcp_->active_connections() == 0; }));
  EXPECT_EQ(tcp_->stats().frames_received, 1);
}

}  // namespace
}  // namespace net
}  // namespace kvec
