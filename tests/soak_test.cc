// The `kvec soak` harness: flag validation, the CI-budget flatness run,
// and the memory-vs-open-keys curve artifact.
//
// The budget run IS the PR's headline claim executed in miniature: drive a
// sharded server through ingest / churn / compaction / checkpoint-restore
// cycles at 100k open keys and require the post-warm-up RSS trend to stay
// inside the flatness band. Everything runs in-process through
// cli::RunKvecCli, the exact code path of `kvec soak`.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/subcommands.h"
#include "gtest/gtest.h"

// Mirrors soak.cc's sanitizer detection: under ASan/TSan the RSS numbers
// are dominated by shadow memory and quarantines and everything runs a
// few times slower, so the budget run shrinks (the harness itself widens
// its default band the same way).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KVEC_SOAK_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KVEC_SOAK_TEST_SANITIZED 1
#endif
#endif

namespace kvec {
namespace cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult RunSoak(std::vector<std::string> args) {
  args.insert(args.begin(), "soak");
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = RunKvecCli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// First integer following `"<key>": ` in a JSON dump; -1 when absent.
int64_t JsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(json.c_str() + at + needle.size());
}

TEST(SoakCli, BadFlagsAreUsageErrors) {
  EXPECT_EQ(RunSoak({"--keys", "0"}).code, 2);
  EXPECT_EQ(RunSoak({"--rss-band", "-1"}).code, 2);
  EXPECT_EQ(RunSoak({"--scales", "0,1"}).code, 2);
  EXPECT_EQ(RunSoak({"--scales", "2"}).code, 2);
  EXPECT_EQ(RunSoak({"--no-such-flag"}).code, 2);
  // Workers must be 0 (caller-thread mode) or match the shard count.
  EXPECT_EQ(RunSoak({"--shards", "4", "--workers", "3"}).code, 2);
}

TEST(SoakCli, BudgetRunIsFlatAndExercisesEveryClosePath) {
#if defined(KVEC_SOAK_TEST_SANITIZED)
  const std::string keys = "20000";
#else
  const std::string keys = "100000";
#endif
  CliResult result = RunSoak({"--keys", keys, "--scales", "1", "--json"});
  ASSERT_EQ(result.code, 0) << result.err;

  EXPECT_NE(result.out.find("\"flat\": true"), std::string::npos) << result.out;
  EXPECT_EQ(JsonInt(result.out, "open_keys_peak"), std::atoll(keys.c_str()));

  // Every bound fires during steady state: engine rotation (the window
  // holds one cycle), the idle sweep (churn-retired keys go quiet), and
  // the compaction heuristic over the churned pool. Capacity eviction is
  // load-dependent, so it is exercised but not asserted here.
  EXPECT_GT(JsonInt(result.out, "rotation_classifications"), 0);
  EXPECT_GT(JsonInt(result.out, "idle_timeouts"), 0);
  EXPECT_GT(JsonInt(result.out, "compactions"), 0);
  EXPECT_GT(JsonInt(result.out, "sequences_classified"), 0);

  // The pool gauges came through the worker seam, not a stale default.
  EXPECT_GT(JsonInt(result.out, "bytes_resident"), 0);
  EXPECT_GT(JsonInt(result.out, "pool_blocks"), 0);
  EXPECT_GT(JsonInt(result.out, "scratch_high_water"), 0);
}

TEST(SoakCli, DisablingCompactionAndCheckpointStillHoldsTheBand) {
  CliResult result =
      RunSoak({"--keys", "2000", "--shards", "2", "--scales", "1",
               "--no-checkpoint", "--no-compact", "--json"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"flat\": true"), std::string::npos) << result.out;
  EXPECT_EQ(JsonInt(result.out, "compactions"), 0);
}

TEST(SoakCli, CurveArtifactMatchesTheBenchReportShape) {
  const std::filesystem::path curve =
      std::filesystem::temp_directory_path() / "kvec_soak_curve_test.json";
  std::filesystem::remove(curve);

  CliResult result =
      RunSoak({"--keys", "2000", "--shards", "2", "--warmup-cycles", "1",
               "--cycles", "2", "--scales", "0.5,1", "--curve",
               curve.string()});
  ASSERT_EQ(result.code, 0) << result.err;

  std::ifstream in(curve);
  ASSERT_TRUE(in.good());
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();

  // One benchmark entry per stage, in the merge_reports shape the bench
  // runner folds into BENCH_PR9.json.
  EXPECT_NE(json.find("\"SOAK_MemoryVsOpenKeys/1000\""), std::string::npos);
  EXPECT_NE(json.find("\"SOAK_MemoryVsOpenKeys/2000\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"items_per_second\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"pool_resident_bytes\""), std::string::npos);
  std::filesystem::remove(curve);
}

}  // namespace
}  // namespace cli
}  // namespace kvec
