#include "baselines/baseline_model.h"

#include <cmath>

#include "baselines/baseline_trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

Dataset EasyDataset(int train_episodes = 16) {
  TrafficGeneratorConfig config;
  config.num_classes = 2;
  config.concurrency = 3;
  config.avg_flow_length = 12.0;
  config.min_flow_length = 6;
  config.handshake_sharpness = 6.0;
  config.body_sharpness = 3.0;
  TrafficGenerator generator(config);
  return GenerateDataset(generator, {train_episodes, 2, 5}, /*seed=*/41);
}

BaselineConfig MakeConfig(const Dataset& dataset, RepresentationKind repr,
                          HaltingKind halting) {
  BaselineConfig config;
  config.representation = repr;
  config.halting = halting;
  config.base = KvecConfig::ForSpec(dataset.spec);
  config.base.embed_dim = 16;
  config.base.state_dim = 16;
  config.base.num_blocks = 1;
  config.base.ffn_hidden_dim = 24;
  config.base.learning_rate = 3e-3f;
  config.base.baseline_learning_rate = 3e-3f;
  config.base.epochs = 5;
  config.base.seed = 53;
  return config;
}

TEST(BaselineModelTest, TransformerStateWidthIsEmbedDim) {
  Dataset dataset = EasyDataset(2);
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kPolicy);
  BaselineModel model(config);
  EXPECT_EQ(model.state_dim(), 16);
  EXPECT_NE(model.encoder(), nullptr);
  EXPECT_EQ(model.fusion(), nullptr);
}

TEST(BaselineModelTest, LstmStateWidthIsStateDim) {
  Dataset dataset = EasyDataset(2);
  BaselineConfig config =
      MakeConfig(dataset, RepresentationKind::kLstm, HaltingKind::kPolicy);
  config.base.state_dim = 20;
  BaselineModel model(config);
  EXPECT_EQ(model.state_dim(), 20);
  EXPECT_EQ(model.encoder(), nullptr);
  EXPECT_NE(model.fusion(), nullptr);
}

TEST(SrnFixedTest, HaltsExactlyAtTau) {
  Dataset dataset = EasyDataset(4);
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kFixed);
  config.fixed_halt_step = 3;
  config.base.epochs = 1;
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  for (const PredictionRecord& record : result.records) {
    EXPECT_EQ(record.observed_items, std::min(3, record.sequence_length));
  }
}

TEST(SrnFixedTest, TauBeyondLengthHaltsAtEnd) {
  Dataset dataset = EasyDataset(4);
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kFixed);
  config.fixed_halt_step = 10000;
  config.base.epochs = 1;
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  for (const PredictionRecord& record : result.records) {
    EXPECT_EQ(record.observed_items, record.sequence_length);
  }
}

TEST(SrnConfidenceTest, ThresholdControlsEarliness) {
  Dataset dataset = EasyDataset();
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kConfidence);
  config.confidence_threshold = 0.55f;
  BaselineModel eager(config);
  BaselineTrainer eager_trainer(&eager);
  eager_trainer.Train(dataset.train);
  double eager_earliness =
      eager_trainer.Evaluate(dataset.test).summary.earliness;

  config.confidence_threshold = 0.999f;
  BaselineModel conservative(config);
  BaselineTrainer conservative_trainer(&conservative);
  conservative_trainer.Train(dataset.train);
  double conservative_earliness =
      conservative_trainer.Evaluate(dataset.test).summary.earliness;

  EXPECT_LE(eager_earliness, conservative_earliness + 1e-9);
}

TEST(SrnEarliestTest, LearnsAboveChance) {
  Dataset dataset = EasyDataset();
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kPolicy);
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_GT(result.summary.accuracy, 0.6);
}

TEST(EarliestTest, LearnsAboveChance) {
  Dataset dataset = EasyDataset();
  BaselineConfig config =
      MakeConfig(dataset, RepresentationKind::kLstm, HaltingKind::kPolicy);
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  EXPECT_GT(result.summary.accuracy, 0.6);
}

TEST(BaselineTrainerTest, RecordsCoverAllSequences) {
  Dataset dataset = EasyDataset(4);
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kFixed);
  config.base.epochs = 1;
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.TrainEpoch(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  int expected = 0;
  for (const TangledSequence& episode : dataset.test) {
    expected += episode.num_keys();
  }
  EXPECT_EQ(result.summary.num_sequences, expected);
}

TEST(BaselineTrainerTest, LossDecreases) {
  Dataset dataset = EasyDataset();
  BaselineConfig config = MakeConfig(dataset, RepresentationKind::kTransformer,
                                     HaltingKind::kConfidence);
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  EXPECT_LT(history.back().classification_loss,
            history.front().classification_loss);
}

}  // namespace
}  // namespace kvec
