// Corruption-fuzz property test for CheckpointLoad / RestoreCheckpoint.
//
// Property: feeding the restore path truncated, bit-flipped, or
// wrong-version checkpoint bytes NEVER crashes, hangs, over-allocates, or
// partially mutates the target server — a failed restore leaves the target
// exactly as it was, and a successful restore (possible when a flip lands
// in float payload bytes the framing cannot vet) leaves a server that is
// still structurally sound, i.e. can serve more items without tripping an
// invariant (the whole binary runs under ASan/UBSan in CI).
//
// ~1.2k seeded cases on an untrained tiny model, so the serving-layer
// bookkeeping dominates and the suite stays fast.
#include <cstring>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

// Untrained model: weights are seed-deterministic and the fuzz property is
// about parsing, not prediction quality.
KvecModel MakeTinyModel() {
  DatasetSpec spec;
  spec.name = "fuzz";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.value_correlation_window = 16;
  config.correlation.max_value_correlations = 4;
  return KvecModel(config);
}

// A stream that populates every state family: many interleaved keys, a few
// session values, bounds tight enough to trigger rotations and evictions.
std::vector<Item> MakeStream(int total_items) {
  std::vector<Item> items;
  items.reserve(total_items);
  for (int i = 0; i < total_items; ++i) {
    Item item;
    item.key = i % 23;
    item.value = {i % 3};
    item.time = i;
    items.push_back(item);
  }
  return items;
}

StreamServerConfig TightConfig() {
  StreamServerConfig config;
  config.max_window_items = 64;
  config.idle_timeout = 40;
  config.idle_check_interval = 8;
  config.max_open_keys = 12;
  return config;
}

// The target must be byte-for-byte unmutated after a failed restore; its
// re-encoded checkpoint is the cheapest complete fingerprint of its state.
void ExpectUntouched(const StreamServer& server,
                     const std::string& fingerprint, size_t case_index) {
  EXPECT_EQ(server.EncodeCheckpoint(), fingerprint)
      << "failed restore mutated the server, case " << case_index;
}

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<KvecModel>(MakeTinyModel());
    stream_ = MakeStream(300);
    StreamServer source(*model_, TightConfig());
    for (const Item& item : stream_) source.Observe(item);
    pristine_ = source.EncodeCheckpoint();
    ASSERT_GT(pristine_.size(), 64u);

    // Fingerprint of a fresh, never-fed server (every fuzz target starts
    // in this state).
    StreamServer fresh(*model_, TightConfig());
    fresh_fingerprint_ = fresh.EncodeCheckpoint();
  }

  // Attempts a restore of `bytes` into a fresh server and checks the
  // property; every `replay_stride`-th failing case additionally proves
  // the target still accepts the pristine checkpoint and replays.
  void CheckCase(const std::string& bytes, size_t case_index) {
    StreamServer target(*model_, TightConfig());
    const bool restored = target.RestoreCheckpoint(bytes);
    if (!restored) {
      ExpectUntouched(target, fresh_fingerprint_, case_index);
      if (case_index % 97 == 0) {
        // A failed restore must not poison later restores.
        ASSERT_TRUE(target.RestoreCheckpoint(pristine_))
            << "case " << case_index;
        EXPECT_EQ(target.EncodeCheckpoint(), pristine_)
            << "case " << case_index;
      }
    } else {
      // Framing accepted the bytes (e.g. a flip inside float payload).
      // The restored server must still be structurally sound: serve a few
      // items and flush without tripping any invariant.
      for (int i = 0; i < 8; ++i) target.Observe(stream_[i]);
      target.Flush();
    }
  }

  std::unique_ptr<KvecModel> model_;
  std::vector<Item> stream_;
  std::string pristine_;
  std::string fresh_fingerprint_;
};

TEST_F(CheckpointFuzzTest, TruncationsFailCleanly) {
  Rng rng(0xC0FFEE);
  size_t case_index = 0;
  // Every short prefix up to 64 bytes, then 350 random cuts.
  for (size_t cut = 0; cut < 64; ++cut) {
    CheckCase(pristine_.substr(0, cut), case_index++);
  }
  for (int i = 0; i < 350; ++i) {
    const size_t cut = static_cast<size_t>(
        rng.NextInt(static_cast<int>(pristine_.size())));
    CheckCase(pristine_.substr(0, cut), case_index++);
  }
}

TEST_F(CheckpointFuzzTest, BitFlipsNeverCrashOrPartiallyMutate) {
  Rng rng(0xBADF00D);
  for (int i = 0; i < 500; ++i) {
    std::string corrupt = pristine_;
    const int flips = 1 + rng.NextInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.NextInt(static_cast<int>(corrupt.size())));
      corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.NextInt(8)));
    }
    CheckCase(corrupt, static_cast<size_t>(i));
  }
}

TEST_F(CheckpointFuzzTest, WrongVersionAndHeaderMutationsAreRejected) {
  size_t case_index = 0;
  // Version field (bytes 4..7): every small value plus sign-bit patterns.
  for (int32_t version : {-1, 0, 2, 3, 1000, INT32_MIN, INT32_MAX}) {
    std::string corrupt = pristine_;
    std::memcpy(&corrupt[4], &version, sizeof(version));
    StreamServer target(*model_, TightConfig());
    EXPECT_FALSE(target.RestoreCheckpoint(corrupt)) << "version " << version;
    ExpectUntouched(target, fresh_fingerprint_, case_index++);
  }
  // Magic, section count, and section length fields.
  Rng rng(0x5EED);
  for (int i = 0; i < 150; ++i) {
    std::string corrupt = pristine_;
    const size_t at = static_cast<size_t>(rng.NextInt(24));
    corrupt[at] = static_cast<char>(rng.NextUint64());
    CheckCase(corrupt, case_index++);
  }
  // Pure garbage of assorted sizes.
  for (int i = 0; i < 50; ++i) {
    std::string garbage(static_cast<size_t>(rng.NextInt(256)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextUint64());
    CheckCase(garbage, case_index++);
  }
}

TEST_F(CheckpointFuzzTest, ShardedRestoreFailsCleanlyOnCorruptShard) {
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.shard = TightConfig();
  ShardedStreamServer source(*model_, config);
  for (const Item& item : stream_) source.Observe(item);
  const std::string pristine = source.EncodeCheckpoint();

  Rng rng(0xD15EA5E);
  for (int i = 0; i < 200; ++i) {
    std::string corrupt = pristine;
    // Land flips in the back half so the second shard's payload — the last
    // section staged — is the one that breaks: a partial restore would
    // leave shard 0 swapped and shard 1 stale.
    const size_t at = corrupt.size() / 2 +
                      static_cast<size_t>(rng.NextInt(
                          static_cast<int>(corrupt.size() / 2)));
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.NextInt(8)));

    ShardedStreamServer target(*model_, config);
    const bool restored = target.RestoreCheckpoint(corrupt);
    if (!restored) {
      EXPECT_EQ(target.stats().items_processed, 0) << "case " << i;
      EXPECT_EQ(target.open_keys(), 0) << "case " << i;
      // All-or-nothing across shards: a fresh target must still accept the
      // pristine bytes after the failed attempt.
      if (i % 50 == 0) {
        ASSERT_TRUE(target.RestoreCheckpoint(pristine)) << "case " << i;
        EXPECT_EQ(target.EncodeCheckpoint(), pristine) << "case " << i;
      }
    } else {
      for (int j = 0; j < 8; ++j) target.Observe(stream_[j]);
      target.Flush();
    }
  }
}

}  // namespace
}  // namespace kvec
