// Corruption-fuzz property test for CheckpointLoad / RestoreCheckpoint.
//
// Property: feeding the restore path truncated, bit-flipped, or
// wrong-version checkpoint bytes NEVER crashes, hangs, over-allocates, or
// partially mutates the target server — a failed restore leaves the target
// exactly as it was, and a successful restore (possible when a flip lands
// in float payload bytes the framing cannot vet) leaves a server that is
// still structurally sound, i.e. can serve more items without tripping an
// invariant (the whole binary runs under ASan/UBSan in CI).
//
// ~1.2k seeded cases on an untrained tiny model, so the serving-layer
// bookkeeping dominates and the suite stays fast.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

// Untrained model: weights are seed-deterministic and the fuzz property is
// about parsing, not prediction quality.
KvecModel MakeTinyModel() {
  DatasetSpec spec;
  spec.name = "fuzz";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.value_correlation_window = 16;
  config.correlation.max_value_correlations = 4;
  return KvecModel(config);
}

// A stream that populates every state family: many interleaved keys, a few
// session values, bounds tight enough to trigger rotations and evictions.
std::vector<Item> MakeStream(int total_items) {
  std::vector<Item> items;
  items.reserve(total_items);
  for (int i = 0; i < total_items; ++i) {
    Item item;
    item.key = i % 23;
    item.value = {i % 3};
    item.time = i;
    items.push_back(item);
  }
  return items;
}

StreamServerConfig TightConfig() {
  StreamServerConfig config;
  config.max_window_items = 64;
  config.idle_timeout = 40;
  config.idle_check_interval = 8;
  config.max_open_keys = 12;
  return config;
}

// The target must be byte-for-byte unmutated after a failed restore; its
// re-encoded checkpoint is the cheapest complete fingerprint of its state.
void ExpectUntouched(const StreamServer& server,
                     const std::string& fingerprint, size_t case_index) {
  EXPECT_EQ(server.EncodeCheckpoint(), fingerprint)
      << "failed restore mutated the server, case " << case_index;
}

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<KvecModel>(MakeTinyModel());
    stream_ = MakeStream(300);
    StreamServer source(*model_, TightConfig());
    for (const Item& item : stream_) source.Observe(item);
    pristine_ = source.EncodeCheckpoint();
    ASSERT_GT(pristine_.size(), 64u);

    // Fingerprint of a fresh, never-fed server (every fuzz target starts
    // in this state).
    StreamServer fresh(*model_, TightConfig());
    fresh_fingerprint_ = fresh.EncodeCheckpoint();
  }

  // Attempts a restore of `bytes` into a fresh server and checks the
  // property; every `replay_stride`-th failing case additionally proves
  // the target still accepts the pristine checkpoint and replays.
  void CheckCase(const std::string& bytes, size_t case_index) {
    StreamServer target(*model_, TightConfig());
    const bool restored = target.RestoreCheckpoint(bytes);
    if (!restored) {
      ExpectUntouched(target, fresh_fingerprint_, case_index);
      if (case_index % 97 == 0) {
        // A failed restore must not poison later restores.
        ASSERT_TRUE(target.RestoreCheckpoint(pristine_))
            << "case " << case_index;
        EXPECT_EQ(target.EncodeCheckpoint(), pristine_)
            << "case " << case_index;
      }
    } else {
      // Framing accepted the bytes (e.g. a flip inside float payload).
      // The restored server must still be structurally sound: serve a few
      // items and flush without tripping any invariant.
      for (int i = 0; i < 8; ++i) target.Observe(stream_[i]);
      target.Flush();
    }
  }

  std::unique_ptr<KvecModel> model_;
  std::vector<Item> stream_;
  std::string pristine_;
  std::string fresh_fingerprint_;
};

TEST_F(CheckpointFuzzTest, TruncationsFailCleanly) {
  Rng rng(0xC0FFEE);
  size_t case_index = 0;
  // Every short prefix up to 64 bytes, then 350 random cuts.
  for (size_t cut = 0; cut < 64; ++cut) {
    CheckCase(pristine_.substr(0, cut), case_index++);
  }
  for (int i = 0; i < 350; ++i) {
    const size_t cut = static_cast<size_t>(
        rng.NextInt(static_cast<int>(pristine_.size())));
    CheckCase(pristine_.substr(0, cut), case_index++);
  }
}

TEST_F(CheckpointFuzzTest, BitFlipsNeverCrashOrPartiallyMutate) {
  Rng rng(0xBADF00D);
  for (int i = 0; i < 500; ++i) {
    std::string corrupt = pristine_;
    const int flips = 1 + rng.NextInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.NextInt(static_cast<int>(corrupt.size())));
      corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.NextInt(8)));
    }
    CheckCase(corrupt, static_cast<size_t>(i));
  }
}

TEST_F(CheckpointFuzzTest, WrongVersionAndHeaderMutationsAreRejected) {
  size_t case_index = 0;
  // Version field (bytes 4..7): every small value plus sign-bit patterns.
  for (int32_t version : {-1, 0, 2, 3, 1000, INT32_MIN, INT32_MAX}) {
    std::string corrupt = pristine_;
    std::memcpy(&corrupt[4], &version, sizeof(version));
    StreamServer target(*model_, TightConfig());
    EXPECT_FALSE(target.RestoreCheckpoint(corrupt)) << "version " << version;
    ExpectUntouched(target, fresh_fingerprint_, case_index++);
  }
  // Magic, section count, and section length fields.
  Rng rng(0x5EED);
  for (int i = 0; i < 150; ++i) {
    std::string corrupt = pristine_;
    const size_t at = static_cast<size_t>(rng.NextInt(24));
    corrupt[at] = static_cast<char>(rng.NextUint64());
    CheckCase(corrupt, case_index++);
  }
  // Pure garbage of assorted sizes.
  for (int i = 0; i < 50; ++i) {
    std::string garbage(static_cast<size_t>(rng.NextInt(256)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextUint64());
    CheckCase(garbage, case_index++);
  }
}

TEST_F(CheckpointFuzzTest, ShardedRestoreFailsCleanlyOnCorruptShard) {
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.shard = TightConfig();
  ShardedStreamServer source(*model_, config);
  for (const Item& item : stream_) source.Observe(item);
  const std::string pristine = source.EncodeCheckpoint();

  Rng rng(0xD15EA5E);
  for (int i = 0; i < 200; ++i) {
    std::string corrupt = pristine;
    // Land flips in the back half so the second shard's payload — the last
    // section staged — is the one that breaks: a partial restore would
    // leave shard 0 swapped and shard 1 stale.
    const size_t at = corrupt.size() / 2 +
                      static_cast<size_t>(rng.NextInt(
                          static_cast<int>(corrupt.size() / 2)));
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.NextInt(8)));

    ShardedStreamServer target(*model_, config);
    const bool restored = target.RestoreCheckpoint(corrupt);
    if (!restored) {
      EXPECT_EQ(target.stats().items_processed, 0) << "case " << i;
      EXPECT_EQ(target.open_keys(), 0) << "case " << i;
      // All-or-nothing across shards: a fresh target must still accept the
      // pristine bytes after the failed attempt.
      if (i % 50 == 0) {
        ASSERT_TRUE(target.RestoreCheckpoint(pristine)) << "case " << i;
        EXPECT_EQ(target.EncodeCheckpoint(), pristine) << "case " << i;
      }
    } else {
      for (int j = 0; j < 8; ++j) target.Observe(stream_[j]);
      target.Flush();
    }
  }
}

// ---- Delta-chain corruption (PR 10) --------------------------------------
//
// Same property, applied to RestoreFromCheckpointChain: truncated,
// bit-flipped, wrong-fingerprint, reordered, or duplicate-tombstone delta
// files NEVER crash or partially mutate the target — a failed chain load
// leaves the target byte-for-byte fresh, and the original chain keeps
// loading after each corrupted attempt.
class DeltaChainFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<KvecModel>(MakeTinyModel());
    stream_ = MakeStream(300);
    config_.num_shards = 2;
    config_.shard = TightConfig();
    base_ = ::testing::TempDir() + "/kvec_fuzz_chain.ckpt";
    RemoveChain();

    ShardedStreamServer source(*model_, config_);
    ShardedStreamServer::IncrementalCheckpointState state;
    size_t fed = 0;
    for (; fed < 150; ++fed) source.Observe(stream_[fed]);
    ASSERT_TRUE(source.CheckpointIncremental(base_, 0, &state));
    for (; fed < 225; ++fed) source.Observe(stream_[fed]);
    ASSERT_TRUE(source.CheckpointIncremental(base_, 0, &state));
    for (; fed < 300; ++fed) source.Observe(stream_[fed]);
    ASSERT_TRUE(source.CheckpointIncremental(base_, 0, &state));
    expected_ = source.EncodeCheckpoint();

    ASSERT_TRUE(Slurp(base_, &base_bytes_));
    ASSERT_TRUE(Slurp(Delta(1), &delta1_bytes_));
    ASSERT_TRUE(Slurp(Delta(2), &delta2_bytes_));

    ShardedStreamServer fresh(*model_, config_);
    fresh_fingerprint_ = fresh.EncodeCheckpoint();
  }

  void TearDown() override { RemoveChain(); }

  std::string Delta(int64_t seq) const {
    return ShardedStreamServer::DeltaPath(base_, seq);
  }

  void RemoveChain() {
    std::remove(Delta(2).c_str());
    std::remove(Delta(1).c_str());
    std::remove(base_.c_str());
  }

  static bool Slurp(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return true;
  }

  void RestoreOriginalChain() {
    ASSERT_TRUE(AtomicWriteFile(base_, base_bytes_));
    ASSERT_TRUE(AtomicWriteFile(Delta(1), delta1_bytes_));
    ASSERT_TRUE(AtomicWriteFile(Delta(2), delta2_bytes_));
  }

  // A corrupted chain either fails closed with a byte-for-byte fresh
  // target, or (a flip landing in float payload the framing cannot vet)
  // loads a server that is still structurally sound.
  void CheckChainCase(size_t case_index) {
    ShardedStreamServer target(*model_, config_);
    const bool restored = target.RestoreFromCheckpointChain(base_);
    if (!restored) {
      EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_)
          << "failed chain load mutated the target, case " << case_index;
    } else {
      for (int i = 0; i < 8; ++i) target.Observe(stream_[i]);
      target.Flush();
    }
  }

  // The pristine chain must keep loading exactly after any corrupted
  // attempt (corruption lives in the files, never leaks into state).
  void ExpectPristineChainStillLoads() {
    RestoreOriginalChain();
    ShardedStreamServer target(*model_, config_);
    ASSERT_TRUE(target.RestoreFromCheckpointChain(base_));
    EXPECT_EQ(target.EncodeCheckpoint(), expected_);
  }

  std::unique_ptr<KvecModel> model_;
  std::vector<Item> stream_;
  ShardedStreamServerConfig config_;
  std::string base_;
  std::string expected_;
  std::string base_bytes_, delta1_bytes_, delta2_bytes_;
  std::string fresh_fingerprint_;
};

TEST_F(DeltaChainFuzzTest, DeltaTruncationsFailCleanly) {
  Rng rng(0xC0FFEE);
  size_t case_index = 0;
  // An existing-but-torn delta file is corruption, not end-of-chain: the
  // container framing must reject every proper prefix.
  for (size_t cut = 0; cut < 48; ++cut) {
    ASSERT_TRUE(AtomicWriteFile(Delta(1), delta1_bytes_.substr(0, cut)));
    ShardedStreamServer target(*model_, config_);
    EXPECT_FALSE(target.RestoreFromCheckpointChain(base_)) << "cut " << cut;
    EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_) << "cut " << cut;
    ++case_index;
  }
  for (int i = 0; i < 150; ++i) {
    const size_t cut = static_cast<size_t>(
        rng.NextInt(static_cast<int>(delta1_bytes_.size())));
    ASSERT_TRUE(AtomicWriteFile(Delta(1), delta1_bytes_.substr(0, cut)));
    CheckChainCase(case_index++);
  }
  // A MISSING delta.1 with delta.2 still present is end-of-chain at the
  // base — by design — and the stale delta.2 must not be picked up.
  std::remove(Delta(1).c_str());
  {
    ShardedStreamServer target(*model_, config_);
    ASSERT_TRUE(target.RestoreFromCheckpointChain(base_));
    Checkpoint base_only;
    ASSERT_TRUE(CheckpointDecode(base_bytes_, &base_only));
    ShardedStreamServer base_target(*model_, config_);
    ASSERT_TRUE(base_target.RestoreCheckpoint(base_bytes_));
    EXPECT_EQ(target.EncodeCheckpoint(), base_target.EncodeCheckpoint());
  }
  ExpectPristineChainStillLoads();
}

TEST_F(DeltaChainFuzzTest, DeltaBitFlipsNeverCrashOrPartiallyMutate) {
  Rng rng(0xBADF00D);
  const std::string* originals[3] = {&base_bytes_, &delta1_bytes_,
                                     &delta2_bytes_};
  for (int i = 0; i < 250; ++i) {
    const int which = rng.NextInt(3);
    std::string corrupt = *originals[which];
    const int flips = 1 + rng.NextInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.NextInt(static_cast<int>(corrupt.size())));
      corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.NextInt(8)));
    }
    const std::string path =
        which == 0 ? base_ : Delta(which);
    ASSERT_TRUE(AtomicWriteFile(path, corrupt));
    CheckChainCase(static_cast<size_t>(i));
    ASSERT_TRUE(AtomicWriteFile(path, *originals[which]));
  }
  ExpectPristineChainStillLoads();
}

TEST_F(DeltaChainFuzzTest, WrongFingerprintsAndSequenceAreRejected) {
  Checkpoint delta;
  ASSERT_TRUE(CheckpointDecode(delta1_bytes_, &delta));
  const CheckpointSection* manifest =
      delta.Find(kCheckpointSectionDeltaManifest);
  ASSERT_NE(manifest, nullptr);
  BinaryReader reader(manifest->payload);
  const int64_t base_fp = reader.ReadInt64();
  const int64_t prev_fp = reader.ReadInt64();
  const int64_t seq = reader.ReadInt64();
  const int32_t num_shards = reader.ReadInt32();
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.AtEnd());
  EXPECT_EQ(static_cast<uint64_t>(base_fp),
            CheckpointFingerprint(base_bytes_));
  EXPECT_EQ(base_fp, prev_fp);  // first link hangs off the base
  EXPECT_EQ(seq, 1);
  EXPECT_EQ(num_shards, 2);

  // One field off at a time: a delta cut against another base, spliced
  // after the wrong link, at the wrong position, or for another topology.
  struct Mutation {
    const char* name;
    int64_t base, prev, seq;
    int32_t shards;
  };
  const Mutation mutations[] = {
      {"wrong base fingerprint", base_fp ^ 1, prev_fp, seq, num_shards},
      {"wrong prev fingerprint", base_fp, prev_fp ^ 1, seq, num_shards},
      {"wrong sequence number", base_fp, prev_fp, seq + 1, num_shards},
      {"wrong shard count", base_fp, prev_fp, seq, num_shards + 1},
  };
  for (const Mutation& mutation : mutations) {
    BinaryWriter writer;
    writer.WriteInt64(mutation.base);
    writer.WriteInt64(mutation.prev);
    writer.WriteInt64(mutation.seq);
    writer.WriteInt32(mutation.shards);
    Checkpoint mutated = delta;
    for (CheckpointSection& section : mutated.sections) {
      if (section.id == kCheckpointSectionDeltaManifest) {
        section.payload = writer.buffer();
      }
    }
    ASSERT_TRUE(AtomicWriteFile(Delta(1), CheckpointEncode(mutated)));
    ShardedStreamServer target(*model_, config_);
    EXPECT_FALSE(target.RestoreFromCheckpointChain(base_)) << mutation.name;
    EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_) << mutation.name;
  }
  ExpectPristineChainStillLoads();
}

TEST_F(DeltaChainFuzzTest, ReorderedChainIsRejected) {
  // Swap the two links on disk: delta 2's manifest says seq 2 / prev =
  // fp(delta 1), neither of which holds in slot 1.
  ASSERT_TRUE(AtomicWriteFile(Delta(1), delta2_bytes_));
  ASSERT_TRUE(AtomicWriteFile(Delta(2), delta1_bytes_));
  {
    ShardedStreamServer target(*model_, config_);
    EXPECT_FALSE(target.RestoreFromCheckpointChain(base_));
    EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_);
  }
  // Replaying the SAME link twice is just as dead: slot 2's copy claims
  // seq 1 and hangs off the base, not off itself.
  ASSERT_TRUE(AtomicWriteFile(Delta(1), delta1_bytes_));
  ASSERT_TRUE(AtomicWriteFile(Delta(2), delta1_bytes_));
  {
    ShardedStreamServer target(*model_, config_);
    EXPECT_FALSE(target.RestoreFromCheckpointChain(base_));
    EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_);
  }
  ExpectPristineChainStillLoads();
}

TEST_F(DeltaChainFuzzTest, DuplicateTombstoneIsRejected) {
  Checkpoint delta;
  ASSERT_TRUE(CheckpointDecode(delta1_bytes_, &delta));
  // Rebuild shard 0's delta payload value by value so the tombstone list
  // can be tampered with surgically; the engine tail rides along verbatim.
  size_t target_section = delta.sections.size();
  for (size_t i = 0; i < delta.sections.size(); ++i) {
    if (delta.sections[i].id != kCheckpointSectionShardDelta) continue;
    BinaryReader peek(delta.sections[i].payload);
    if (peek.ReadInt32() == 0) {
      target_section = i;
      break;
    }
  }
  ASSERT_LT(target_section, delta.sections.size());
  const std::string& payload = delta.sections[target_section].payload;

  BinaryReader reader(payload);
  BinaryWriter writer;
  writer.WriteInt32(reader.ReadInt32());  // shard id
  for (int i = 0; i < 4; ++i) writer.WriteInt32(reader.ReadInt32());  // config
  writer.WriteInt64(reader.ReadInt64());  // position
  writer.WriteInt32(reader.ReadInt32());  // window_items
  for (int i = 0; i < 7; ++i) writer.WriteInt64(reader.ReadInt64());  // stats
  writer.WriteInt32(reader.ReadInt32());  // windows_started
  const int32_t num_classes = reader.ReadInt32();
  writer.WriteInt32(num_classes);
  for (int32_t c = 0; c < num_classes; ++c) {
    writer.WriteInt64(reader.ReadInt64());
  }
  writer.WriteInt32(reader.ReadInt32());  // engine_reset
  const int32_t num_upserts = reader.ReadInt32();
  writer.WriteInt32(num_upserts);
  for (int32_t i = 0; i < num_upserts; ++i) {
    writer.WriteInt32(reader.ReadInt32());
    writer.WriteInt64(reader.ReadInt64());
  }
  const int32_t num_tombstones = reader.ReadInt32();
  ASSERT_TRUE(reader.ok());
  // The tight config guarantees closures between the base and delta 1.
  ASSERT_GE(num_tombstones, 1);
  std::vector<int32_t> tombstones(static_cast<size_t>(num_tombstones));
  for (int32_t& key : tombstones) key = reader.ReadInt32();
  ASSERT_TRUE(reader.ok());
  const std::string engine_tail =
      payload.substr(payload.size() - reader.remaining());

  // Control first: an untampered rebuild must be byte-identical, so the
  // mutated case below fails because of the duplicate and nothing else.
  {
    BinaryWriter control = writer;
    control.WriteInt32(num_tombstones);
    for (int32_t key : tombstones) control.WriteInt32(key);
    EXPECT_EQ(control.buffer() + engine_tail, payload);
  }

  // The same key twice: a double-close is corruption, not idempotent.
  writer.WriteInt32(num_tombstones + 1);
  for (int32_t key : tombstones) writer.WriteInt32(key);
  writer.WriteInt32(tombstones.back());
  delta.sections[target_section].payload = writer.buffer() + engine_tail;
  ASSERT_TRUE(AtomicWriteFile(Delta(1), CheckpointEncode(delta)));
  ShardedStreamServer target(*model_, config_);
  EXPECT_FALSE(target.RestoreFromCheckpointChain(base_));
  EXPECT_EQ(target.EncodeCheckpoint(), fresh_fingerprint_);
  ExpectPristineChainStillLoads();
}

}  // namespace
}  // namespace kvec
