#include "core/encoder.h"

#include <cmath>

#include "data/traffic_generator.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

TrafficGeneratorConfig SmallTraffic() {
  TrafficGeneratorConfig config;
  config.num_classes = 3;
  config.concurrency = 3;
  config.avg_flow_length = 10.0;
  config.min_flow_length = 4;
  return config;
}

KvecConfig SmallConfig(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 12;
  config.num_blocks = 2;
  config.ffn_hidden_dim = 16;
  config.dropout = 0.0f;
  return config;
}

TEST(KvrlEncoderTest, OutputShapes) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(1);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  Rng init_rng(2);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(3);
  EncodeResult result = encoder.Forward(
      episode, EpisodeIndex::Build(episode), fwd_rng, /*training=*/false);
  const int total = static_cast<int>(episode.items.size());
  EXPECT_EQ(result.embeddings.rows(), total);
  EXPECT_EQ(result.embeddings.cols(), 12);
  ASSERT_EQ(result.attention_weights.size(), 2u);
  EXPECT_EQ(result.attention_weights[0].rows(), total);
}

TEST(KvrlEncoderTest, AttentionRespectsMask) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(4);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  Rng init_rng(5);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(6);
  EncodeResult result = encoder.Forward(
      episode, EpisodeIndex::Build(episode), fwd_rng, /*training=*/false);
  const int total = static_cast<int>(episode.items.size());
  for (const Tensor& weights : result.attention_weights) {
    for (int i = 0; i < total; ++i) {
      for (int j = 0; j < total; ++j) {
        if (result.mask.mask.At(i, j) != 0.0f) {
          EXPECT_EQ(weights.At(i, j), 0.0f);
        }
      }
    }
  }
}

TEST(KvrlEncoderTest, PrefixConsistency) {
  // Row t of the full encoding equals row t of encoding the t+1-prefix:
  // the causal-mask property enabling one-pass training (DESIGN.md §4.1).
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(7);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  Rng init_rng(8);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(9);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EncodeResult full = encoder.Forward(episode, index, fwd_rng, false);

  // Prefix of 60% of the episode.
  const int prefix_length = static_cast<int>(episode.items.size() * 6 / 10);
  TangledSequence prefix;
  prefix.labels = episode.labels;
  prefix.items.assign(episode.items.begin(),
                      episode.items.begin() + prefix_length);
  EncodeResult partial =
      encoder.Forward(prefix, EpisodeIndex::Build(prefix), fwd_rng, false);
  for (int t = 0; t < prefix_length; ++t) {
    for (int c = 0; c < config.embed_dim; ++c) {
      EXPECT_NEAR(full.embeddings.At(t, c), partial.embeddings.At(t, c),
                  1e-3f)
          << "row " << t << " col " << c;
    }
  }
}

TEST(IncrementalEncoderTest, MatchesBatchEncoder) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(10);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  Rng init_rng(11);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(12);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EncodeResult batch = encoder.Forward(episode, index, fwd_rng, false);

  IncrementalEncoder incremental(encoder);
  CorrelationTracker tracker(config.correlation);
  for (size_t t = 0; t < episode.items.size(); ++t) {
    std::vector<int> visible = tracker.ObserveItem(episode.items[t]);
    std::vector<float> row = incremental.AppendItem(
        episode.items[t], index.position_in_key[t], visible);
    for (int c = 0; c < config.embed_dim; ++c) {
      ASSERT_NEAR(row[c], batch.embeddings.At(static_cast<int>(t), c), 2e-3f)
          << "item " << t << " col " << c;
    }
  }
}

TEST(IncrementalEncoderTest, MatchesBatchUnderAblations) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(13);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  config.correlation.use_value_correlation = false;
  config.use_membership_embedding = false;
  Rng init_rng(14);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(15);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EncodeResult batch = encoder.Forward(episode, index, fwd_rng, false);

  IncrementalEncoder incremental(encoder);
  CorrelationTracker tracker(config.correlation);
  for (size_t t = 0; t < episode.items.size(); ++t) {
    std::vector<int> visible = tracker.ObserveItem(episode.items[t]);
    std::vector<float> row = incremental.AppendItem(
        episode.items[t], index.position_in_key[t], visible);
    for (int c = 0; c < config.embed_dim; ++c) {
      ASSERT_NEAR(row[c], batch.embeddings.At(static_cast<int>(t), c), 2e-3f);
    }
  }
}

TEST(IncrementalEncoderTest, MatchesBatchWithMultipleHeads) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(30);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  config.num_heads = 3;  // embed_dim 12 -> head_dim 4
  Rng init_rng(31);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(32);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EncodeResult batch = encoder.Forward(episode, index, fwd_rng, false);

  IncrementalEncoder incremental(encoder);
  CorrelationTracker tracker(config.correlation);
  for (size_t t = 0; t < episode.items.size(); ++t) {
    std::vector<int> visible = tracker.ObserveItem(episode.items[t]);
    std::vector<float> row = incremental.AppendItem(
        episode.items[t], index.position_in_key[t], visible);
    for (int c = 0; c < config.embed_dim; ++c) {
      ASSERT_NEAR(row[c], batch.embeddings.At(static_cast<int>(t), c), 2e-3f)
          << "item " << t << " col " << c;
    }
  }
}

TEST(KvrlEncoderTest, MultiHeadPrefixConsistency) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(33);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  config.num_heads = 2;
  Rng init_rng(34);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(35);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  EncodeResult full = encoder.Forward(episode, index, fwd_rng, false);
  const int prefix_length = static_cast<int>(episode.items.size() / 2);
  TangledSequence prefix;
  prefix.labels = episode.labels;
  prefix.items.assign(episode.items.begin(),
                      episode.items.begin() + prefix_length);
  EncodeResult partial =
      encoder.Forward(prefix, EpisodeIndex::Build(prefix), fwd_rng, false);
  for (int t = 0; t < prefix_length; ++t) {
    for (int c = 0; c < config.embed_dim; ++c) {
      EXPECT_NEAR(full.embeddings.At(t, c), partial.embeddings.At(t, c),
                  1e-3f);
    }
  }
}

TEST(KvrlEncoderTest, GradientsReachAllParameters) {
  TrafficGenerator generator(SmallTraffic());
  Rng data_rng(16);
  TangledSequence episode = generator.GenerateEpisode(data_rng);
  KvecConfig config = SmallConfig(generator.spec());
  config.num_blocks = 1;
  Rng init_rng(17);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(18);
  encoder.ZeroGrad();
  ops::SumAll(encoder
                  .Forward(episode, EpisodeIndex::Build(episode), fwd_rng,
                           /*training=*/false)
                  .embeddings)
      .Backward();
  int params_with_grad = 0, params_total = 0;
  for (const Tensor& param : encoder.Parameters()) {
    ++params_total;
    float total = 0.0f;
    for (float g : param.grad()) total += std::fabs(g);
    if (total > 0.0f) ++params_with_grad;
  }
  // All but possibly unused ablation tables receive gradient.
  EXPECT_GE(params_with_grad, params_total - 2);
}

}  // namespace
}  // namespace kvec
