// Differential-replay harness for serving-state checkpoint/restore.
//
// The only trustworthy spec for "restore worked" is byte-identical event
// streams: run a tangled stream to a cut point, snapshot, restore into a
// fresh server, feed the identical suffix to both the uninterrupted and
// the restored server, and require the two StreamEvent sequences to be
// identical — keys, labels, causes, order, observed counts, and
// bit-identical confidences (serialisation is lossless and both replicas
// run the same code on the same machine). Cut points are parameterised
// over window-rotation, idle-timeout, and capacity-eviction boundaries,
// and the whole harness runs single-shard and sharded.
//
// CI additionally replays with KVEC_REPLAY_SEED set (three-seed matrix) so
// varied stream shapes are exercised on every push; see ReplaySeedFromEnv.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

std::vector<Item> ConcatStream(const Dataset& dataset) {
  std::vector<Item> stream;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      stream.push_back(item);
    }
    offset += 100;
  }
  return stream;
}

void ExpectIdenticalEvents(const std::vector<StreamEvent>& uninterrupted,
                           const std::vector<StreamEvent>& restored,
                           const std::string& context) {
  ASSERT_EQ(uninterrupted.size(), restored.size()) << context;
  for (size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(uninterrupted[i].key, restored[i].key) << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].predicted_label, restored[i].predicted_label)
        << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].cause, restored[i].cause)
        << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].observed_items, restored[i].observed_items)
        << context << " #" << i;
    // Bit-identical, not merely close: restore is lossless.
    EXPECT_EQ(uninterrupted[i].confidence, restored[i].confidence)
        << context << " #" << i;
  }
}

void ExpectIdenticalStats(const StreamServerStats& a,
                          const StreamServerStats& b,
                          const std::string& context) {
  EXPECT_EQ(a.items_processed, b.items_processed) << context;
  EXPECT_EQ(a.sequences_classified, b.sequences_classified) << context;
  EXPECT_EQ(a.policy_halts, b.policy_halts) << context;
  EXPECT_EQ(a.idle_timeouts, b.idle_timeouts) << context;
  EXPECT_EQ(a.capacity_evictions, b.capacity_evictions) << context;
  EXPECT_EQ(a.rotation_classifications, b.rotation_classifications) << context;
  EXPECT_EQ(a.flush_classifications, b.flush_classifications) << context;
  EXPECT_EQ(a.windows_started, b.windows_started) << context;
  EXPECT_EQ(a.class_counts, b.class_counts) << context;
}

// Cut points straddling the interesting boundaries of `config`: window
// rotation (max_window_items - 1 / exactly at / + 1), the very first item,
// mid-stream, and the last possible cut.
std::vector<size_t> BoundaryCuts(const StreamServerConfig& config,
                                 size_t stream_size) {
  std::vector<size_t> cuts = {1, stream_size / 2, stream_size - 1};
  const size_t window = static_cast<size_t>(config.max_window_items);
  if (window + 1 < stream_size) {
    cuts.push_back(window - 1);
    cuts.push_back(window);
    cuts.push_back(window + 1);
  }
  const size_t idle = static_cast<size_t>(config.idle_timeout);
  if (idle + 1 < stream_size) cuts.push_back(idle + 1);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

// Core differential replay for one (model, config, stream, cut): snapshot
// the uninterrupted server at `cut`, restore into a fresh server, feed the
// identical suffix to both, and require identical events, stats, and flush.
void ReplayFromCut(const KvecModel& model, const StreamServerConfig& config,
                   const std::vector<Item>& stream, size_t cut,
                   const std::string& context) {
  StreamServer uninterrupted(model, config);
  for (size_t i = 0; i < cut; ++i) uninterrupted.Observe(stream[i]);

  const std::string bytes = uninterrupted.EncodeCheckpoint();
  StreamServer restored(model, config);
  ASSERT_TRUE(restored.RestoreCheckpoint(bytes)) << context;
  EXPECT_EQ(restored.open_keys(), uninterrupted.open_keys()) << context;
  ExpectIdenticalStats(uninterrupted.stats(), restored.stats(), context);

  std::vector<StreamEvent> expected, actual;
  for (size_t i = cut; i < stream.size(); ++i) {
    for (const StreamEvent& event : uninterrupted.Observe(stream[i])) {
      expected.push_back(event);
    }
    for (const StreamEvent& event : restored.Observe(stream[i])) {
      actual.push_back(event);
    }
  }
  for (const StreamEvent& event : uninterrupted.Flush()) {
    expected.push_back(event);
  }
  for (const StreamEvent& event : restored.Flush()) actual.push_back(event);

  ExpectIdenticalEvents(expected, actual, context);
  ExpectIdenticalStats(uninterrupted.stats(), restored.stats(), context);
}

void RunSingleShardReplay(uint64_t seed) {
  Fixture fixture = TrainSmallModel(seed);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ASSERT_GT(stream.size(), 4u);

  // Rotation-heavy bounds and tight idle/capacity bounds: both regimes
  // must survive a restart at every boundary cut.
  StreamServerConfig rotation;
  rotation.max_window_items = 37;
  rotation.idle_timeout = 1 << 20;

  StreamServerConfig evicting;
  evicting.max_window_items = 51;
  evicting.idle_timeout = 9;
  evicting.idle_check_interval = 4;
  evicting.max_open_keys = 2;

  for (const StreamServerConfig& config : {rotation, evicting}) {
    for (size_t cut : BoundaryCuts(config, stream.size())) {
      ReplayFromCut(*fixture.model, config, stream, cut,
                    "seed " + std::to_string(seed) + " window " +
                        std::to_string(config.max_window_items) + " cut " +
                        std::to_string(cut));
    }
  }
}

void RunShardedReplay(uint64_t seed, int num_shards) {
  Fixture fixture = TrainSmallModel(seed);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = num_shards;
  config.shard.max_window_items = 29;
  config.shard.idle_timeout = 11;
  config.shard.idle_check_interval = 2;
  config.shard.max_open_keys = 4;

  const std::string context =
      "seed " + std::to_string(seed) + " shards " + std::to_string(num_shards);
  for (size_t cut : {size_t{1}, stream.size() / 3, stream.size() / 2,
                     stream.size() - 1}) {
    ShardedStreamServer uninterrupted(*fixture.model, config);
    for (size_t i = 0; i < cut; ++i) uninterrupted.Observe(stream[i]);

    const std::string bytes = uninterrupted.EncodeCheckpoint();
    ShardedStreamServer restored(*fixture.model, config);
    ASSERT_TRUE(restored.RestoreCheckpoint(bytes)) << context;
    EXPECT_EQ(restored.open_keys(), uninterrupted.open_keys()) << context;

    std::vector<StreamEvent> expected, actual;
    for (size_t i = cut; i < stream.size(); ++i) {
      for (const StreamEvent& event : uninterrupted.Observe(stream[i])) {
        expected.push_back(event);
      }
      for (const StreamEvent& event : restored.Observe(stream[i])) {
        actual.push_back(event);
      }
    }
    for (const StreamEvent& event : uninterrupted.Flush()) {
      expected.push_back(event);
    }
    for (const StreamEvent& event : restored.Flush()) actual.push_back(event);

    ExpectIdenticalEvents(expected, actual,
                          context + " cut " + std::to_string(cut));
    ExpectIdenticalStats(uninterrupted.stats(), restored.stats(), context);
    for (int s = 0; s < num_shards; ++s) {
      ExpectIdenticalStats(uninterrupted.shard_stats(s),
                           restored.shard_stats(s),
                           context + " shard " + std::to_string(s));
    }
  }
}

// ---- The seed × shard-count matrix required by the acceptance criteria:
// three stream seeds, single-shard plus two sharded layouts. ----

TEST(CheckpointReplayTest, SingleShardSeed81) { RunSingleShardReplay(81); }
TEST(CheckpointReplayTest, SingleShardSeed82) { RunSingleShardReplay(82); }
TEST(CheckpointReplayTest, SingleShardSeed83) { RunSingleShardReplay(83); }

TEST(CheckpointReplayTest, ShardedTwoShards) { RunShardedReplay(81, 2); }
TEST(CheckpointReplayTest, ShardedFourShards) { RunShardedReplay(82, 4); }

// CI's seed matrix: KVEC_REPLAY_SEED varies the stream shape without a
// rebuild. Skipped when the variable is unset (the fixed-seed tests above
// already run everywhere).
TEST(CheckpointReplayTest, ReplaySeedFromEnv) {
  const char* env_seed = std::getenv("KVEC_REPLAY_SEED");
  if (env_seed == nullptr) {
    GTEST_SKIP() << "KVEC_REPLAY_SEED not set";
  }
  const uint64_t seed = std::strtoull(env_seed, nullptr, 10);
  RunSingleShardReplay(seed);
  RunShardedReplay(seed, 3);
}

// ---- Checkpoint file round trip and cross-layout guards. ----

TEST(CheckpointReplayTest, FileRoundTripRestoresState) {
  Fixture fixture = TrainSmallModel(84);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  StreamServer server(*fixture.model, {});
  for (size_t i = 0; i < stream.size() / 2; ++i) server.Observe(stream[i]);

  const std::string path =
      ::testing::TempDir() + "/kvec_stream_server.ckpt";
  ASSERT_TRUE(server.SaveCheckpoint(path));
  StreamServer restored(*fixture.model, {});
  ASSERT_TRUE(restored.LoadCheckpoint(path));
  EXPECT_EQ(restored.open_keys(), server.open_keys());
  ExpectIdenticalStats(server.stats(), restored.stats(), "file round trip");
  std::remove(path.c_str());
}

TEST(CheckpointReplayTest, ShardCountMismatchIsRejected) {
  Fixture fixture = TrainSmallModel(85);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  ShardedStreamServer server(*fixture.model, config);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  for (size_t i = 0; i < 32 && i < stream.size(); ++i) {
    server.Observe(stream[i]);
  }
  const std::string bytes = server.EncodeCheckpoint();

  ShardedStreamServerConfig wrong = config;
  wrong.num_shards = 4;  // the key hash routes by shard count
  ShardedStreamServer mismatched(*fixture.model, wrong);
  EXPECT_FALSE(mismatched.RestoreCheckpoint(bytes));
  EXPECT_EQ(mismatched.stats().items_processed, 0);
  EXPECT_EQ(mismatched.open_keys(), 0);
}

TEST(CheckpointReplayTest, SingleShardBytesRejectedByShardedServer) {
  Fixture fixture = TrainSmallModel(85);
  StreamServer server(*fixture.model, {});
  const std::string bytes = server.EncodeCheckpoint();
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  ShardedStreamServer sharded(*fixture.model, config);
  EXPECT_FALSE(sharded.RestoreCheckpoint(bytes));  // no manifest section
  ShardedStreamServer single(*fixture.model, {});
  EXPECT_FALSE(single.RestoreCheckpoint(bytes));
}

TEST(CheckpointReplayTest, TrailingBytesInsideSectionAreRejected) {
  // The container framing cannot see bytes hidden after a valid snapshot
  // inside a section's declared length; Restore must reject them itself —
  // before committing, so the target stays untouched.
  Fixture fixture = TrainSmallModel(86);
  StreamServer server(*fixture.model, {});
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  for (size_t i = 0; i < 16 && i < stream.size(); ++i) {
    server.Observe(stream[i]);
  }
  Checkpoint checkpoint;
  ASSERT_TRUE(CheckpointDecode(server.EncodeCheckpoint(), &checkpoint));
  ASSERT_EQ(checkpoint.sections.size(), 1u);
  checkpoint.sections[0].payload.append("garbage");

  StreamServer target(*fixture.model, {});
  EXPECT_FALSE(target.RestoreCheckpoint(CheckpointEncode(checkpoint)));
  EXPECT_EQ(target.stats().items_processed, 0);
  EXPECT_EQ(target.open_keys(), 0);
}

TEST(CheckpointReplayTest, ModelShapeMismatchIsRejected) {
  Fixture fixture = TrainSmallModel(86);
  StreamServer server(*fixture.model, {});
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  for (size_t i = 0; i < 16 && i < stream.size(); ++i) {
    server.Observe(stream[i]);
  }
  const std::string bytes = server.EncodeCheckpoint();

  KvecConfig other_config = fixture.model->config();
  other_config.embed_dim = 8;  // different encoder geometry
  KvecModel other_model(other_config);
  StreamServer mismatched(other_model, {});
  EXPECT_FALSE(mismatched.RestoreCheckpoint(bytes));
  EXPECT_EQ(mismatched.stats().items_processed, 0);
}

}  // namespace
}  // namespace kvec
