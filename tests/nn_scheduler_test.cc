#include "nn/scheduler.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace kvec {
namespace {

Tensor Param() { return Tensor::FromData(1, 1, {0.0f}, true); }

TEST(ConstantLrTest, NeverChangesRate) {
  Adam adam({Param()}, 0.3f);
  ConstantLr schedule(&adam);
  for (int i = 0; i < 10; ++i) schedule.Step();
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.3f);
  EXPECT_EQ(schedule.step_count(), 10);
}

TEST(StepDecayLrTest, DecaysEveryStepSize) {
  Adam adam({Param()}, 1.0f);
  StepDecayLr schedule(&adam, /*step_size=*/3, /*gamma=*/0.5f);
  std::vector<float> rates;
  for (int i = 0; i < 9; ++i) {
    schedule.Step();
    rates.push_back(adam.learning_rate());
  }
  // Steps 1,2 -> 1.0; steps 3..5 -> 0.5; steps 6..8 -> 0.25; step 9 -> 0.125.
  EXPECT_FLOAT_EQ(rates[0], 1.0f);
  EXPECT_FLOAT_EQ(rates[1], 1.0f);
  EXPECT_FLOAT_EQ(rates[2], 0.5f);
  EXPECT_FLOAT_EQ(rates[5], 0.25f);
  EXPECT_FLOAT_EQ(rates[8], 0.125f);
}

TEST(ExponentialDecayLrTest, GeometricDecay) {
  Sgd sgd({Param()}, 2.0f);
  ExponentialDecayLr schedule(&sgd, 0.9f);
  schedule.Step();
  EXPECT_NEAR(sgd.learning_rate(), 2.0f * 0.9f, 1e-6f);
  schedule.Step();
  EXPECT_NEAR(sgd.learning_rate(), 2.0f * 0.81f, 1e-6f);
}

TEST(CosineAnnealingLrTest, StartsAtBaseEndsAtMin) {
  Adam adam({Param()}, 1.0f);
  CosineAnnealingLr schedule(&adam, /*total_steps=*/10, /*min_lr=*/0.1f);
  EXPECT_FLOAT_EQ(schedule.current_lr(), 1.0f);  // step 0
  for (int i = 0; i < 10; ++i) schedule.Step();
  EXPECT_NEAR(adam.learning_rate(), 0.1f, 1e-6f);
}

TEST(CosineAnnealingLrTest, HalfwayIsMidpoint) {
  Adam adam({Param()}, 1.0f);
  CosineAnnealingLr schedule(&adam, /*total_steps=*/10, /*min_lr=*/0.0f);
  for (int i = 0; i < 5; ++i) schedule.Step();
  // cos(pi/2) = 0 -> exactly half of base at the midpoint.
  EXPECT_NEAR(adam.learning_rate(), 0.5f, 1e-6f);
}

TEST(CosineAnnealingLrTest, MonotoneNonIncreasing) {
  Adam adam({Param()}, 1.0f);
  CosineAnnealingLr schedule(&adam, 20);
  float previous = schedule.current_lr();
  for (int i = 0; i < 25; ++i) {
    schedule.Step();
    EXPECT_LE(adam.learning_rate(), previous + 1e-7f);
    previous = adam.learning_rate();
  }
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.0f);  // clamped past total_steps
}

TEST(WarmupCosineLrTest, RampsThenAnneals) {
  Adam adam({Param()}, 1.0f);
  WarmupCosineLr schedule(&adam, /*warmup_steps=*/4, /*total_steps=*/12,
                          /*min_lr=*/0.0f);
  std::vector<float> rates;
  for (int i = 0; i < 12; ++i) {
    schedule.Step();
    rates.push_back(adam.learning_rate());
  }
  // Warmup: linear ramp 1/4, 2/4, 3/4 then the peak region.
  EXPECT_NEAR(rates[0], 0.25f, 1e-6f);
  EXPECT_NEAR(rates[1], 0.50f, 1e-6f);
  EXPECT_NEAR(rates[2], 0.75f, 1e-6f);
  EXPECT_NEAR(rates[3], 1.0f, 1e-6f);  // step 4 = end of warmup = base
  // Annealing is non-increasing afterwards and hits min at total_steps.
  for (size_t i = 4; i < rates.size(); ++i) {
    EXPECT_LE(rates[i], rates[i - 1] + 1e-7f);
  }
  EXPECT_NEAR(rates.back(), 0.0f, 1e-6f);
}

TEST(WarmupCosineLrTest, ZeroWarmupEqualsCosine) {
  Adam a({Param()}, 1.0f);
  Adam b({Param()}, 1.0f);
  WarmupCosineLr warmup(&a, 0, 10, 0.05f);
  CosineAnnealingLr cosine(&b, 10, 0.05f);
  for (int i = 0; i < 10; ++i) {
    warmup.Step();
    cosine.Step();
    EXPECT_NEAR(a.learning_rate(), b.learning_rate(), 1e-6f);
  }
}

TEST(SchedulerDeathTest, RejectsBadParameters) {
  Adam adam({Param()}, 1.0f);
  EXPECT_DEATH(StepDecayLr(&adam, 0), "step_size");
  EXPECT_DEATH(CosineAnnealingLr(&adam, 0), "total_steps");
  EXPECT_DEATH(WarmupCosineLr(&adam, 5, 5), "exceed warmup");
}

// Integration: training with a decaying schedule still converges, and the
// optimizer's final rate reflects the schedule.
TEST(SchedulerIntegrationTest, QuadraticWithCosineSchedule) {
  Tensor x = Tensor::FromData(1, 1, {5.0f}, /*requires_grad=*/true);
  Adam adam({x}, 0.2f);
  CosineAnnealingLr schedule(&adam, /*total_steps=*/200, /*min_lr=*/1e-3f);
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    x.impl()->EnsureGrad();
    x.impl()->grad = {2.0f * x.data()[0]};  // d/dx x^2
    adam.Step();
    schedule.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(adam.learning_rate(), 1e-3f, 1e-6f);
}

}  // namespace
}  // namespace kvec
