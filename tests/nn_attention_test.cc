#include "nn/attention.h"

#include <cmath>

#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

Tensor CausalMask(int t) {
  Tensor mask = Tensor::Full(t, t, 0.0f);
  for (int i = 0; i < t; ++i) {
    for (int j = i + 1; j < t; ++j) mask.Set(i, j, ops::kNegInf);
  }
  return mask;
}

TEST(MaskedSelfAttentionTest, OutputShapes) {
  Rng rng(1);
  MaskedSelfAttention attention(8, rng);
  Tensor x = nn::NormalInit(5, 8, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(5));
  EXPECT_EQ(result.output.rows(), 5);
  EXPECT_EQ(result.output.cols(), 8);
  EXPECT_EQ(result.weights.rows(), 5);
  EXPECT_EQ(result.weights.cols(), 5);
}

TEST(MaskedSelfAttentionTest, WeightsRowsSumToOne) {
  Rng rng(2);
  MaskedSelfAttention attention(4, rng);
  Tensor x = nn::NormalInit(6, 4, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(6));
  for (int r = 0; r < 6; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 6; ++c) total += result.weights.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(MaskedSelfAttentionTest, MaskedPositionsGetZeroWeight) {
  Rng rng(3);
  MaskedSelfAttention attention(4, rng);
  Tensor x = nn::NormalInit(6, 4, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(6));
  for (int r = 0; r < 6; ++r) {
    for (int c = r + 1; c < 6; ++c) {
      EXPECT_EQ(result.weights.At(r, c), 0.0f);
    }
  }
}

TEST(MaskedSelfAttentionTest, FirstRowAttendsOnlyToItself) {
  Rng rng(4);
  MaskedSelfAttention attention(4, rng);
  Tensor x = nn::NormalInit(3, 4, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(3));
  EXPECT_NEAR(result.weights.At(0, 0), 1.0f, 1e-6f);
}

TEST(MaskedSelfAttentionTest, CausalPrefixConsistency) {
  // Because masked rows only see earlier rows, encoding a prefix must give
  // the same rows as encoding the full input (the property the streaming
  // encoder relies on).
  Rng rng(5);
  MaskedSelfAttention attention(6, rng);
  Tensor full = nn::NormalInit(8, 6, 1.0f, rng);
  Tensor prefix = ops::SliceRows(full, 0, 5).Detach();
  AttentionResult full_result = attention.Forward(full, CausalMask(8));
  AttentionResult prefix_result = attention.Forward(prefix, CausalMask(5));
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_NEAR(full_result.output.At(r, c), prefix_result.output.At(r, c),
                  1e-4f);
    }
  }
}

TEST(AttentionBlockTest, OutputShapeAndFiniteness) {
  Rng rng(6);
  AttentionBlock block(8, 16, 0.1f, rng);
  Tensor x = nn::NormalInit(5, 8, 1.0f, rng);
  AttentionResult result =
      block.Forward(x, CausalMask(5), rng, /*training=*/false);
  EXPECT_EQ(result.output.rows(), 5);
  EXPECT_EQ(result.output.cols(), 8);
  for (float v : result.output.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(AttentionBlockTest, InferenceIsDeterministic) {
  Rng rng(7);
  AttentionBlock block(4, 8, 0.5f, rng);
  Tensor x = nn::NormalInit(4, 4, 1.0f, rng);
  Rng eval_rng1(1), eval_rng2(2);
  Tensor a =
      block.Forward(x, CausalMask(4), eval_rng1, /*training=*/false).output;
  Tensor b =
      block.Forward(x, CausalMask(4), eval_rng2, /*training=*/false).output;
  EXPECT_EQ(a.data(), b.data());
}

TEST(AttentionBlockTest, DropoutMakesTrainingStochastic) {
  Rng rng(8);
  AttentionBlock block(4, 8, 0.5f, rng);
  Tensor x = nn::NormalInit(4, 4, 1.0f, rng);
  Rng train_rng(9);
  Tensor a =
      block.Forward(x, CausalMask(4), train_rng, /*training=*/true).output;
  Tensor b =
      block.Forward(x, CausalMask(4), train_rng, /*training=*/true).output;
  EXPECT_NE(a.data(), b.data());
}

TEST(AttentionBlockTest, ParameterCount) {
  Rng rng(10);
  const int d = 8, h = 16;
  AttentionBlock block(d, h, 0.0f, rng);
  // Wq, Wk, Wv (d*d each, no bias) + FFN (d*h + h + h*d + d) + 2 LayerNorms
  // (2*d each).
  int64_t expected = 3 * d * d + (d * h + h + h * d + d) + 2 * (2 * d);
  EXPECT_EQ(block.ParameterCount(), expected);
}

TEST(AttentionGradTest, GradientsFlowThroughBlock) {
  Rng rng(11);
  AttentionBlock block(4, 8, 0.0f, rng);
  Tensor x = nn::NormalInit(3, 4, 0.5f, rng);
  std::vector<Tensor> inputs = block.Parameters();
  inputs.push_back(x);
  Rng fwd_rng(12);
  testing::ExpectGradientsMatch(
      inputs,
      [&]() {
        return ops::SumAll(ops::Tanh(
            block.Forward(x, CausalMask(3), fwd_rng, /*training=*/false)
                .output));
      },
      /*eps=*/1e-2f, /*tol=*/6e-2f);
}

// ---- Multi-head attention ----

class MultiHeadAttentionTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiHeadAttentionTest, OutputShapesAcrossHeadCounts) {
  const int heads = GetParam();
  Rng rng(20);
  MaskedSelfAttention attention(8, rng, heads);
  Tensor x = nn::NormalInit(5, 8, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(5));
  EXPECT_EQ(result.output.rows(), 5);
  EXPECT_EQ(result.output.cols(), 8);
  EXPECT_EQ(result.weights.rows(), 5);
  EXPECT_EQ(result.weights.cols(), 5);
  for (float v : result.output.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(MultiHeadAttentionTest, AveragedWeightsRowsSumToOne) {
  const int heads = GetParam();
  Rng rng(21);
  MaskedSelfAttention attention(8, rng, heads);
  Tensor x = nn::NormalInit(6, 8, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(6));
  for (int r = 0; r < 6; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 6; ++c) total += result.weights.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST_P(MultiHeadAttentionTest, MaskedPositionsStayZero) {
  const int heads = GetParam();
  Rng rng(22);
  MaskedSelfAttention attention(8, rng, heads);
  Tensor x = nn::NormalInit(6, 8, 1.0f, rng);
  AttentionResult result = attention.Forward(x, CausalMask(6));
  for (int r = 0; r < 6; ++r) {
    for (int c = r + 1; c < 6; ++c) {
      EXPECT_EQ(result.weights.At(r, c), 0.0f);
    }
  }
}

TEST_P(MultiHeadAttentionTest, CausalPrefixConsistency) {
  const int heads = GetParam();
  Rng rng(23);
  MaskedSelfAttention attention(8, rng, heads);
  Tensor full = nn::NormalInit(8, 8, 1.0f, rng);
  Tensor prefix = ops::SliceRows(full, 0, 5).Detach();
  AttentionResult full_result = attention.Forward(full, CausalMask(8));
  AttentionResult prefix_result = attention.Forward(prefix, CausalMask(5));
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(full_result.output.At(r, c), prefix_result.output.At(r, c),
                  1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HeadCounts, MultiHeadAttentionTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(MultiHeadAttentionTest, SingleHeadHasNoOutputProjection) {
  Rng rng(24);
  MaskedSelfAttention one(8, rng, 1);
  MaskedSelfAttention four(8, rng, 4);
  EXPECT_EQ(one.output_projection(), nullptr);
  ASSERT_NE(four.output_projection(), nullptr);
  // Parameter counts: 3 d^2 for single head; + d^2 for W_o with heads.
  EXPECT_EQ(one.ParameterCount(), 3 * 8 * 8);
  EXPECT_EQ(four.ParameterCount(), 4 * 8 * 8);
}

TEST(MultiHeadAttentionTest, GradientsFlowThroughHeads) {
  Rng rng(25);
  MaskedSelfAttention attention(4, rng, 2);
  Tensor x = nn::NormalInit(3, 4, 0.5f, rng);
  std::vector<Tensor> inputs = attention.Parameters();
  inputs.push_back(x);
  testing::ExpectGradientsMatch(
      inputs,
      [&]() {
        return ops::SumAll(
            ops::Tanh(attention.Forward(x, CausalMask(3)).output));
      },
      /*eps=*/1e-2f, /*tol=*/6e-2f);
}

TEST(MultiHeadAttentionDeathTest, RejectsIndivisibleHeadCount) {
  Rng rng(26);
  EXPECT_DEATH(MaskedSelfAttention(6, rng, 4), "not divisible");
}

TEST(MultiHeadAttentionTest, BlockForwardsWithHeads) {
  Rng rng(27);
  AttentionBlock block(8, 16, 0.0f, rng, /*num_heads=*/2);
  Tensor x = nn::NormalInit(5, 8, 1.0f, rng);
  Rng eval_rng(1);
  AttentionResult result =
      block.Forward(x, CausalMask(5), eval_rng, /*training=*/false);
  EXPECT_EQ(result.output.rows(), 5);
  EXPECT_EQ(result.output.cols(), 8);
  for (float v : result.output.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace kvec
