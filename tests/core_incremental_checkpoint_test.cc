// Crash-consistency differential harness for incremental checkpointing.
//
// The spec for "the delta chain works" is the same as PR-4's spec for
// "restore works", applied to a chain: run a tangled stream to a cut,
// write a base plus a chain of deltas along the way, restore base+chain
// into a fresh server, and require (a) the restored server's full
// checkpoint encoding to be BYTE-IDENTICAL to the uninterrupted server's
// at the cut, and (b) the two servers to emit bit-identical StreamEvent
// suffixes (keys, labels, causes, order, confidences) when fed the same
// remaining stream. The matrix runs three stream seeds, cut styles that
// straddle window-rotation / idle-timeout / capacity-eviction /
// compaction activity, 1/2/4 shards, and chain lengths 0/1/5.
//
// The `checkpoint.delta` fault case proves the failure contract: a failed
// delta write leaves the server serving, the chain state untouched, the
// last-good chain loadable, and the lost churn re-carried by the next
// successful delta.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"
#include "util/fault_injection.h"
#include "gtest/gtest.h"

namespace kvec {
namespace {

using IncState = ShardedStreamServer::IncrementalCheckpointState;

struct Fixture {
  Dataset dataset;
  std::unique_ptr<KvecModel> model;
};

Fixture TrainSmallModel(uint64_t seed) {
  TrafficGeneratorConfig generator_config;
  generator_config.num_classes = 2;
  generator_config.concurrency = 3;
  generator_config.avg_flow_length = 12.0;
  generator_config.min_flow_length = 6;
  generator_config.handshake_sharpness = 6.0;
  TrafficGenerator generator(generator_config);
  Fixture fixture;
  fixture.dataset = GenerateDataset(generator, {12, 2, 6}, seed);
  KvecConfig config = KvecConfig::ForSpec(fixture.dataset.spec);
  config.embed_dim = 12;
  config.state_dim = 16;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 16;
  config.epochs = 3;
  config.beta = 5e-3f;
  fixture.model = std::make_unique<KvecModel>(config);
  KvecTrainer trainer(fixture.model.get());
  trainer.Train(fixture.dataset.train);
  return fixture;
}

std::vector<Item> ConcatStream(const Dataset& dataset) {
  std::vector<Item> stream;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      stream.push_back(item);
    }
    offset += 100;
  }
  return stream;
}

void ExpectIdenticalEvents(const std::vector<StreamEvent>& uninterrupted,
                           const std::vector<StreamEvent>& restored,
                           const std::string& context) {
  ASSERT_EQ(uninterrupted.size(), restored.size()) << context;
  for (size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(uninterrupted[i].key, restored[i].key) << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].predicted_label, restored[i].predicted_label)
        << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].cause, restored[i].cause)
        << context << " #" << i;
    EXPECT_EQ(uninterrupted[i].observed_items, restored[i].observed_items)
        << context << " #" << i;
    // Bit-identical, not merely close: the delta chain is lossless.
    EXPECT_EQ(uninterrupted[i].confidence, restored[i].confidence)
        << context << " #" << i;
  }
}

void ExpectIdenticalStats(const StreamServerStats& a,
                          const StreamServerStats& b,
                          const std::string& context) {
  EXPECT_EQ(a.items_processed, b.items_processed) << context;
  EXPECT_EQ(a.sequences_classified, b.sequences_classified) << context;
  EXPECT_EQ(a.policy_halts, b.policy_halts) << context;
  EXPECT_EQ(a.idle_timeouts, b.idle_timeouts) << context;
  EXPECT_EQ(a.capacity_evictions, b.capacity_evictions) << context;
  EXPECT_EQ(a.rotation_classifications, b.rotation_classifications) << context;
  EXPECT_EQ(a.flush_classifications, b.flush_classifications) << context;
  EXPECT_EQ(a.windows_started, b.windows_started) << context;
  EXPECT_EQ(a.class_counts, b.class_counts) << context;
}

std::string ChainBase(const std::string& tag) {
  return ::testing::TempDir() + "/kvec_inc_" + tag + ".ckpt";
}

void UnlinkChain(const std::string& base) {
  for (int64_t seq = 1;; ++seq) {
    if (std::remove(ShardedStreamServer::DeltaPath(base, seq).c_str()) != 0) {
      break;
    }
  }
  std::remove(base.c_str());
}

// One differential replay: feed `stream[0..cut)` into the uninterrupted
// server, writing the base at the first segment boundary and one delta at
// each later boundary (chain_length deltas total, never auto-rebasing);
// chain-restore a fresh server and require byte-identical full encodings,
// then identical event suffixes and stats after replaying the rest.
void ReplayFromChain(const KvecModel& model,
                     const ShardedStreamServerConfig& config,
                     const std::vector<Item>& stream, size_t cut,
                     int chain_length, const std::string& context) {
  ASSERT_GT(cut, static_cast<size_t>(chain_length)) << context;
  const std::string base = ChainBase(std::to_string(
      std::hash<std::string>{}(context) & 0xffffff));
  UnlinkChain(base);

  ShardedStreamServer uninterrupted(model, config);
  IncState state;
  size_t fed = 0;
  for (int segment = 1; segment <= chain_length + 1; ++segment) {
    const size_t boundary =
        cut * static_cast<size_t>(segment) /
        static_cast<size_t>(chain_length + 1);
    for (; fed < boundary; ++fed) uninterrupted.Observe(stream[fed]);
    ASSERT_TRUE(
        uninterrupted.CheckpointIncremental(base, /*rebase_every=*/0, &state))
        << context << " segment " << segment;
  }
  ASSERT_EQ(fed, cut) << context;
  ASSERT_EQ(state.deltas_written, chain_length) << context;
  const std::string full_at_cut = uninterrupted.EncodeCheckpoint();

  ShardedStreamServer restored(model, config);
  ASSERT_TRUE(restored.RestoreFromCheckpointChain(base)) << context;
  // The chain must reconstruct the exact serialized state — byte for byte,
  // not merely equivalent.
  EXPECT_EQ(restored.EncodeCheckpoint(), full_at_cut) << context;
  EXPECT_EQ(restored.open_keys(), uninterrupted.open_keys()) << context;
  ExpectIdenticalStats(uninterrupted.stats(), restored.stats(), context);

  std::vector<StreamEvent> expected, actual;
  for (size_t i = cut; i < stream.size(); ++i) {
    for (const StreamEvent& event : uninterrupted.Observe(stream[i])) {
      expected.push_back(event);
    }
    for (const StreamEvent& event : restored.Observe(stream[i])) {
      actual.push_back(event);
    }
  }
  for (const StreamEvent& event : uninterrupted.Flush()) {
    expected.push_back(event);
  }
  for (const StreamEvent& event : restored.Flush()) actual.push_back(event);

  ExpectIdenticalEvents(expected, actual, context);
  ExpectIdenticalStats(uninterrupted.stats(), restored.stats(), context);
  for (int s = 0; s < config.num_shards; ++s) {
    ExpectIdenticalStats(uninterrupted.shard_stats(s), restored.shard_stats(s),
                         context + " shard " + std::to_string(s));
  }
  UnlinkChain(base);
}

// The seed matrix: per-shard configs whose bounds put the cut in the thick
// of a specific close path — window rotation, idle sweep + capacity
// eviction, or pool compaction — crossed with 1/2/4 shards and chain
// lengths 0/1/5.
void RunIncrementalMatrix(uint64_t seed) {
  Fixture fixture = TrainSmallModel(seed);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ASSERT_GT(stream.size(), 64u);

  StreamServerConfig rotation;
  rotation.max_window_items = 37;
  rotation.idle_timeout = 1 << 20;

  StreamServerConfig evicting;
  evicting.max_window_items = 51;
  evicting.idle_timeout = 9;
  evicting.idle_check_interval = 4;
  evicting.max_open_keys = 2;

  StreamServerConfig compacting;
  compacting.max_window_items = 41;
  compacting.idle_timeout = 16;
  compacting.idle_check_interval = 8;
  compacting.max_open_keys = 8;
  compacting.compaction_check_interval = 16;
  compacting.compaction_fragmentation_threshold = 1.01;
  compacting.compaction_min_bytes = 0;

  struct Style {
    const char* name;
    StreamServerConfig config;
    size_t cut;
  };
  const std::vector<Style> styles = {
      // One item past a rotation: the restored engine window is young and
      // the pre-rotation keys closed.
      {"rotation", rotation, static_cast<size_t>(rotation.max_window_items) + 1},
      // Just after an idle sweep fired with the capacity bound pinching.
      {"evicting", evicting, stream.size() / 2},
      // Deep enough that the fragmentation heuristic has compacted pools.
      {"compacting", compacting, (2 * stream.size()) / 3},
  };

  for (const Style& style : styles) {
    for (int shards : {1, 2, 4}) {
      for (int chain_length : {0, 1, 5}) {
        ShardedStreamServerConfig config;
        config.num_shards = shards;
        config.shard = style.config;
        ReplayFromChain(*fixture.model, config, stream, style.cut,
                        chain_length,
                        "seed " + std::to_string(seed) + " " + style.name +
                            " shards " + std::to_string(shards) + " chain " +
                            std::to_string(chain_length));
      }
    }
  }
}

TEST(IncrementalCheckpointTest, MatrixSeed91) { RunIncrementalMatrix(91); }
TEST(IncrementalCheckpointTest, MatrixSeed92) { RunIncrementalMatrix(92); }
TEST(IncrementalCheckpointTest, MatrixSeed93) { RunIncrementalMatrix(93); }

// CI's seed matrix: KVEC_REPLAY_SEED varies the stream shape without a
// rebuild (same variable the PR-4 replay harness uses, so one CI matrix
// covers both). Skipped when unset.
TEST(IncrementalCheckpointTest, IncrementalReplaySeedFromEnv) {
  const char* env_seed = std::getenv("KVEC_REPLAY_SEED");
  if (env_seed == nullptr) {
    GTEST_SKIP() << "KVEC_REPLAY_SEED not set";
  }
  RunIncrementalMatrix(std::strtoull(env_seed, nullptr, 10));
}

// The chain goes through the PR-6 worker seam: with shard-owned workers,
// delta snapshots run as control tasks on each shard's owner thread, one
// shard at a time. The restored state must match the writer's exactly,
// and a worker-mode restore must serve on.
TEST(IncrementalCheckpointTest, WorkerModeChainRestoresExactly) {
  Fixture fixture = TrainSmallModel(90);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  config.worker_threads = 2;  // one owned worker per shard
  const std::string base = ChainBase("worker");
  UnlinkChain(base);

  ShardedStreamServer writer(*fixture.model, config);
  IncState state;
  size_t fed = 0;
  for (int segment = 0; segment < 3; ++segment) {
    const size_t boundary = stream.size() * (segment + 1) / 4;
    for (; fed < boundary; ++fed) writer.Observe(stream[fed]);
    ASSERT_TRUE(writer.CheckpointIncremental(base, /*rebase_every=*/0, &state))
        << "segment " << segment;
  }
  EXPECT_EQ(state.deltas_written, 2);
  const std::string full_at_cut = writer.EncodeCheckpoint();

  ShardedStreamServer restored(*fixture.model, config);
  ASSERT_TRUE(restored.RestoreFromCheckpointChain(base));
  EXPECT_EQ(restored.EncodeCheckpoint(), full_at_cut);
  for (; fed < stream.size(); ++fed) restored.Observe(stream[fed]);
  restored.Flush();
  UnlinkChain(base);
}

// Rebasing folds the chain: after `rebase_every` deltas the next write
// must replace the base, unlink every old delta, and restart the sequence.
TEST(IncrementalCheckpointTest, RebaseFoldsTheChain) {
  Fixture fixture = TrainSmallModel(94);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  const std::string base = ChainBase("rebase");
  UnlinkChain(base);

  ShardedStreamServer server(*fixture.model, config);
  IncState state;
  size_t fed = 0;
  auto feed = [&](size_t count) {
    for (size_t i = 0; i < count && fed < stream.size(); ++i) {
      server.Observe(stream[fed++]);
    }
  };
  feed(32);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/2, &state));
  const uint64_t first_base = state.base_fingerprint;
  for (int64_t expect_seq : {1, 2}) {
    feed(16);
    ASSERT_TRUE(
        server.CheckpointIncremental(base, /*rebase_every=*/2, &state));
    EXPECT_EQ(state.deltas_written, expect_seq);
  }
  feed(16);
  // Third write after two deltas: a rebase, not delta 3.
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/2, &state));
  EXPECT_EQ(state.deltas_written, 0);
  EXPECT_NE(state.base_fingerprint, first_base);
  EXPECT_EQ(state.prev_fingerprint, state.base_fingerprint);
  // The old links are gone from disk and the fresh base stands alone.
  std::FILE* stale =
      std::fopen(ShardedStreamServer::DeltaPath(base, 1).c_str(), "rb");
  EXPECT_EQ(stale, nullptr);
  if (stale != nullptr) std::fclose(stale);

  ShardedStreamServer restored(*fixture.model, config);
  ASSERT_TRUE(restored.RestoreFromCheckpointChain(base));
  EXPECT_EQ(restored.EncodeCheckpoint(), server.EncodeCheckpoint());
  UnlinkChain(base);
}

// Restoring with a state continues the chain in place: the next write
// appends the next delta and a fresh restore still reconstructs exactly.
TEST(IncrementalCheckpointTest, RestoredStateContinuesTheChain) {
  Fixture fixture = TrainSmallModel(95);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  const std::string base = ChainBase("resume");
  UnlinkChain(base);

  ShardedStreamServer writer(*fixture.model, config);
  IncState state;
  size_t fed = 0;
  for (; fed < 40; ++fed) writer.Observe(stream[fed]);
  ASSERT_TRUE(writer.CheckpointIncremental(base, /*rebase_every=*/0, &state));
  for (; fed < 60; ++fed) writer.Observe(stream[fed]);
  ASSERT_TRUE(writer.CheckpointIncremental(base, /*rebase_every=*/0, &state));

  // A new process resumes the chain: restore WITH a state, serve on, and
  // append delta 2.
  ShardedStreamServer resumed(*fixture.model, config);
  IncState resumed_state;
  ASSERT_TRUE(resumed.RestoreFromCheckpointChain(base, &resumed_state));
  EXPECT_EQ(resumed_state.deltas_written, 1);
  EXPECT_EQ(resumed_state.base_fingerprint, state.base_fingerprint);
  EXPECT_EQ(resumed_state.prev_fingerprint, state.prev_fingerprint);
  for (; fed < 90 && fed < stream.size(); ++fed) resumed.Observe(stream[fed]);
  ASSERT_TRUE(
      resumed.CheckpointIncremental(base, /*rebase_every=*/0, &resumed_state));
  EXPECT_EQ(resumed_state.deltas_written, 2);

  ShardedStreamServer verifier(*fixture.model, config);
  ASSERT_TRUE(verifier.RestoreFromCheckpointChain(base));
  EXPECT_EQ(verifier.EncodeCheckpoint(), resumed.EncodeCheckpoint());
  UnlinkChain(base);
}

// The failure contract at the `checkpoint.delta` fault point: the write
// fails, the server keeps serving, the chain state and on-disk chain are
// untouched (still loadable at the last-good link), and the next
// successful delta re-carries the churn the failed one would have taken.
TEST(IncrementalCheckpointTest, FailedDeltaWriteLeavesChainLoadable) {
  Fixture fixture = TrainSmallModel(96);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  const std::string base = ChainBase("fault");
  UnlinkChain(base);

  ShardedStreamServer server(*fixture.model, config);
  IncState state;
  size_t fed = 0;
  for (; fed < 40; ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/0, &state));
  for (; fed < 60; ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/0, &state));
  const IncState good = state;
  const std::string full_at_last_good = server.EncodeCheckpoint();

  for (; fed < 80; ++fed) server.Observe(stream[fed]);
  FaultInjection::Arm("checkpoint.delta",
                      [](const char*) { return true; });
  EXPECT_FALSE(
      server.CheckpointIncremental(base, /*rebase_every=*/0, &state));
  FaultInjection::DisarmAll();
  EXPECT_GE(FaultInjection::FireCount("checkpoint.delta"), 1);
  // State untouched; no delta 2 leaked onto disk.
  EXPECT_EQ(state.deltas_written, good.deltas_written);
  EXPECT_EQ(state.prev_fingerprint, good.prev_fingerprint);
  std::FILE* leaked =
      std::fopen(ShardedStreamServer::DeltaPath(base, 2).c_str(), "rb");
  EXPECT_EQ(leaked, nullptr);
  if (leaked != nullptr) std::fclose(leaked);

  // The last-good chain still loads, to the last-good state.
  {
    ShardedStreamServer restored(*fixture.model, config);
    ASSERT_TRUE(restored.RestoreFromCheckpointChain(base));
    EXPECT_EQ(restored.EncodeCheckpoint(), full_at_last_good);
  }

  // The server kept serving through the failure, and the retry's delta
  // carries everything since the last COMMITTED baseline — including the
  // churn the failed write would have taken.
  for (; fed < 90 && fed < stream.size(); ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/0, &state));
  EXPECT_EQ(state.deltas_written, 2);
  ShardedStreamServer recovered(*fixture.model, config);
  ASSERT_TRUE(recovered.RestoreFromCheckpointChain(base));
  EXPECT_EQ(recovered.EncodeCheckpoint(), server.EncodeCheckpoint());
  UnlinkChain(base);
}

// A failed BASE write (rebase branch) must also fail safe: the old base
// stays loadable and the next attempt rebases again rather than appending
// deltas to a chain whose middle links were already unlinked.
TEST(IncrementalCheckpointTest, FailedRebaseForcesFreshBase) {
  Fixture fixture = TrainSmallModel(97);
  const std::vector<Item> stream = ConcatStream(fixture.dataset);
  ShardedStreamServerConfig config;
  config.num_shards = 2;
  const std::string base = ChainBase("rebase_fault");
  UnlinkChain(base);

  ShardedStreamServer server(*fixture.model, config);
  IncState state;
  size_t fed = 0;
  for (; fed < 40; ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/1, &state));
  for (; fed < 55; ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/1, &state));
  ASSERT_EQ(state.deltas_written, 1);

  for (; fed < 70; ++fed) server.Observe(stream[fed]);
  FaultInjection::Arm("checkpoint.save", [](const char*) { return true; });
  EXPECT_FALSE(
      server.CheckpointIncremental(base, /*rebase_every=*/1, &state));
  FaultInjection::DisarmAll();
  EXPECT_EQ(state.base_fingerprint, 0u);  // the next write must rebase

  // The old base alone still loads (the failed rebase unlinked delta 1
  // before failing — by design, never leaving a gapped chain).
  {
    ShardedStreamServer restored(*fixture.model, config);
    EXPECT_TRUE(restored.RestoreFromCheckpointChain(base));
  }

  for (; fed < 80 && fed < stream.size(); ++fed) server.Observe(stream[fed]);
  ASSERT_TRUE(server.CheckpointIncremental(base, /*rebase_every=*/1, &state));
  EXPECT_EQ(state.deltas_written, 0);  // a fresh base, not a delta
  ShardedStreamServer recovered(*fixture.model, config);
  ASSERT_TRUE(recovered.RestoreFromCheckpointChain(base));
  EXPECT_EQ(recovered.EncodeCheckpoint(), server.EncodeCheckpoint());
  UnlinkChain(base);
}

}  // namespace
}  // namespace kvec
