#include "nn/lstm_cell.h"

#include <cmath>

#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace kvec {
namespace {

TEST(LstmFusionCellTest, InitialStateIsZero) {
  Rng rng(1);
  LstmFusionCell cell(4, 6, rng);
  LstmState state = cell.InitialState();
  ASSERT_TRUE(state.defined());
  EXPECT_EQ(state.hidden.cols(), 6);
  EXPECT_EQ(state.cell.cols(), 6);
  for (float v : state.hidden.data()) EXPECT_EQ(v, 0.0f);
  for (float v : state.cell.data()) EXPECT_EQ(v, 0.0f);
}

TEST(LstmFusionCellTest, StepShapesAndBounds) {
  Rng rng(2);
  LstmFusionCell cell(4, 6, rng);
  LstmState state = cell.InitialState();
  Tensor input = nn::NormalInit(1, 4, 1.0f, rng);
  state = cell.Step(state, input);
  EXPECT_EQ(state.hidden.rows(), 1);
  EXPECT_EQ(state.hidden.cols(), 6);
  // s = o ⊙ tanh(C) is bounded by (-1, 1).
  for (float v : state.hidden.data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(LstmFusionCellTest, StateEvolvesWithInputs) {
  Rng rng(3);
  LstmFusionCell cell(3, 4, rng);
  LstmState state = cell.InitialState();
  Tensor a = nn::NormalInit(1, 3, 1.0f, rng);
  Tensor b = nn::NormalInit(1, 3, 1.0f, rng);
  LstmState after_a = cell.Step(state, a);
  LstmState after_ab = cell.Step(after_a, b);
  float diff = 0.0f;
  for (int c = 0; c < 4; ++c) {
    diff += std::fabs(after_ab.hidden.At(0, c) - after_a.hidden.At(0, c));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(LstmFusionCellTest, DifferentInputsGiveDifferentStates) {
  Rng rng(4);
  LstmFusionCell cell(3, 4, rng);
  Tensor a = nn::NormalInit(1, 3, 1.0f, rng);
  Tensor b = nn::NormalInit(1, 3, 1.0f, rng);
  LstmState sa = cell.Step(cell.InitialState(), a);
  LstmState sb = cell.Step(cell.InitialState(), b);
  float diff = 0.0f;
  for (int c = 0; c < 4; ++c) {
    diff += std::fabs(sa.hidden.At(0, c) - sb.hidden.At(0, c));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(LstmFusionCellTest, ForgetGateBiasInitializedOpen) {
  Rng rng(5);
  LstmFusionCell cell(3, 4, rng);
  std::vector<Tensor> params = cell.Parameters();
  // Parameters are (Wf, bf, Wi, bi, Wo, bo, Wc, bc); bf is index 1.
  const Tensor& forget_bias = params[1];
  for (float v : forget_bias.data()) EXPECT_EQ(v, 1.0f);
}

TEST(LstmFusionCellTest, ParameterCount) {
  Rng rng(6);
  const int in = 3, state = 4;
  LstmFusionCell cell(in, state, rng);
  EXPECT_EQ(cell.ParameterCount(), 4 * ((in + state) * state + state));
}

TEST(LstmFusionCellTest, GradientsFlowThroughTwoSteps) {
  Rng rng(7);
  LstmFusionCell cell(2, 3, rng);
  Tensor x1 = nn::NormalInit(1, 2, 1.0f, rng);
  Tensor x2 = nn::NormalInit(1, 2, 1.0f, rng);
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x1);
  inputs.push_back(x2);
  testing::ExpectGradientsMatch(inputs, [&]() {
    LstmState state = cell.InitialState();
    state = cell.Step(state, x1);
    state = cell.Step(state, x2);
    return ops::SumAll(state.hidden);
  });
}

TEST(LstmFusionCellTest, LongRollNumericallyStable) {
  Rng rng(8);
  LstmFusionCell cell(4, 8, rng);
  LstmState state = cell.InitialState();
  for (int t = 0; t < 200; ++t) {
    Tensor input = nn::NormalInit(1, 4, 1.0f, rng);
    state = cell.Step(state, input.Detach());
    state.hidden = state.hidden.Detach();
    state.cell = state.cell.Detach();
  }
  for (float v : state.hidden.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace kvec
