// Micro benchmarks of the KVRL encoder: batch encoding, mask construction,
// and the incremental streaming encoder (the ablation for DESIGN.md §4.1 —
// O(t·d) per arriving item vs re-encoding the whole prefix).
#include <benchmark/benchmark.h>

#include "core/encoder.h"
#include "core/model.h"
#include "data/traffic_generator.h"

namespace kvec {
namespace {

TrafficGeneratorConfig StreamConfig(int concurrency, double flow_length) {
  TrafficGeneratorConfig config;
  config.num_classes = 6;
  config.concurrency = concurrency;
  config.avg_flow_length = flow_length;
  config.min_flow_length = 8;
  return config;
}

KvecConfig EncoderConfig(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 24;
  config.num_blocks = 2;
  config.ffn_hidden_dim = 48;
  config.dropout = 0.0f;
  return config;
}

void BM_BuildEpisodeMask(benchmark::State& state) {
  TrafficGenerator generator(StreamConfig(4, state.range(0)));
  Rng rng(1);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = EncoderConfig(generator.spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildEpisodeMask(episode, config.correlation));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(episode.items.size()));
}
BENCHMARK(BM_BuildEpisodeMask)->Arg(20)->Arg(60);

void BM_BatchEncode(benchmark::State& state) {
  TrafficGenerator generator(StreamConfig(4, state.range(0)));
  Rng rng(2);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = EncoderConfig(generator.spec());
  Rng init_rng(3);
  KvrlEncoder encoder(config, init_rng);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  Rng fwd_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Forward(episode, index, fwd_rng, /*training=*/false));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(episode.items.size()));
}
BENCHMARK(BM_BatchEncode)->Arg(20)->Arg(60);

// Whole-stream cost of the incremental encoder (one pass, one row per
// item). Compare items/s against BM_NaiveStreamingEncode.
void BM_IncrementalStreamEncode(benchmark::State& state) {
  TrafficGenerator generator(StreamConfig(4, state.range(0)));
  Rng rng(5);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = EncoderConfig(generator.spec());
  Rng init_rng(6);
  KvrlEncoder encoder(config, init_rng);
  EpisodeIndex index = EpisodeIndex::Build(episode);
  for (auto _ : state) {
    IncrementalEncoder incremental(encoder);
    CorrelationTracker tracker(config.correlation);
    for (size_t t = 0; t < episode.items.size(); ++t) {
      std::vector<int> visible = tracker.ObserveItem(episode.items[t]);
      benchmark::DoNotOptimize(incremental.AppendItem(
          episode.items[t], index.position_in_key[t], visible));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(episode.items.size()));
}
BENCHMARK(BM_IncrementalStreamEncode)->Arg(20)->Arg(60);

// The naive alternative: re-encode the whole prefix after every arrival
// (what a system without the causal-mask insight would do).
void BM_NaiveStreamingEncode(benchmark::State& state) {
  TrafficGenerator generator(StreamConfig(4, state.range(0)));
  Rng rng(7);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = EncoderConfig(generator.spec());
  Rng init_rng(8);
  KvrlEncoder encoder(config, init_rng);
  Rng fwd_rng(9);
  for (auto _ : state) {
    TangledSequence prefix;
    prefix.labels = episode.labels;
    for (size_t t = 0; t < episode.items.size(); ++t) {
      prefix.items.push_back(episode.items[t]);
      benchmark::DoNotOptimize(
          encoder.Forward(prefix, EpisodeIndex::Build(prefix), fwd_rng,
                          /*training=*/false));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(episode.items.size()));
}
BENCHMARK(BM_NaiveStreamingEncode)->Arg(20);

}  // namespace
}  // namespace kvec
