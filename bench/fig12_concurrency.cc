// Reproduces Figure 12: effect of the number of concurrent key-value
// sequences K on KVEC's accuracy and harmonic mean (Traffic-FG).
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/presets.h"
#include "data/traffic_generator.h"
#include "exp/method.h"
#include "util/table.h"

int main() {
  using namespace kvec;
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Figure 12: effect of concurrency K on Traffic-FG (scale=%s) "
      "===\n",
      ScaleName(scale));
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  Table table({"K", "earliness(%)", "accuracy(%)", "hm"});
  for (int concurrency = 1; concurrency <= 5; ++concurrency) {
    // Rebuild the Traffic-FG stand-in with K concurrent flows per episode.
    TrafficGeneratorConfig generator_config;
    generator_config.name = "Traffic-FG";
    generator_config.num_classes = 12;
    generator_config.avg_flow_length =
        50.7 * (scale == ExperimentScale::kTiny ? 0.4 : 0.7) * 0.7;
    generator_config.min_flow_length = 8;
    generator_config.burst_continue_prob = 0.58;
    generator_config.concurrency = concurrency;
    generator_config.classes_per_episode = 2;
    generator_config.profile_seed = 1801;
    TrafficGenerator generator(generator_config);
    Dataset dataset = GenerateDataset(
        generator, PresetSplitCounts(PresetId::kTrafficFg, scale),
        /*seed=*/20240412);

    KvecConfig config = KvecConfig::ForSpec(dataset.spec);
    config.embed_dim = options.embed_dim;
    config.state_dim = options.state_dim;
    config.num_blocks = options.num_blocks;
    config.ffn_hidden_dim = options.ffn_hidden_dim;
    config.learning_rate = options.learning_rate;
    config.baseline_learning_rate = options.learning_rate;
    config.epochs = options.epochs;
    config.seed = options.seed;
    config.beta = 5e-3f;
    KvecModel model(config);
    KvecTrainer trainer(&model);
    trainer.Train(dataset.train);
    EvaluationResult result = trainer.Evaluate(dataset.test);
    table.AddRow({std::to_string(concurrency),
                  Table::FormatDouble(100 * result.summary.earliness, 1),
                  Table::FormatDouble(100 * result.summary.accuracy, 1),
                  Table::FormatDouble(result.summary.harmonic_mean, 3)});
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
