// Reproduces Figure 5: macro recall vs earliness (shared sweep cache).
#include "bench_common.h"

int main() {
  kvec::bench::PrintCurveFigure("Figure 5", "recall",
                                &kvec::SweepPoint::recall);
  return 0;
}
