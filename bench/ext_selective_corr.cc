// Extension ablation (paper §V-E RQ3 / future work): selective value
// correlation. The Fig. 12 discussion observes that larger concurrency K
// enriches early representations but injects noise late; the proposed
// remedy is a "more intelligent" use of inter-sequence correlations. This
// bench caps the number of cross-key value-correlated items per row
// (CorrelationOptions::max_value_correlations) on a high-concurrency
// Traffic-FG workload and reports accuracy/HM per cap. Expected shape: the
// capped variants recover most of the unlimited variant's early accuracy
// while degrading less at later halting positions.
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/presets.h"
#include "data/traffic_generator.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: selective value correlation on Traffic-FG, high "
      "concurrency (scale=%s) ===\n",
      ScaleName(scale));
  // Traffic-FG stand-in at K=6 concurrent flows, the regime where Fig. 12
  // shows inter-sequence noise hurting late-stage accuracy.
  TrafficGeneratorConfig generator_config;
  generator_config.name = "Traffic-FG";
  generator_config.num_classes = 12;
  generator_config.avg_flow_length =
      50.7 * (scale == ExperimentScale::kTiny ? 0.4 : 0.7) * 0.7;
  generator_config.min_flow_length = 8;
  generator_config.burst_continue_prob = 0.58;
  generator_config.concurrency = 6;
  generator_config.classes_per_episode = 2;
  generator_config.profile_seed = 1801;
  TrafficGenerator generator(generator_config);
  Dataset dataset =
      GenerateDataset(generator, PresetSplitCounts(PresetId::kTrafficFg, scale),
                      /*seed=*/20240612);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  const std::vector<int> caps = {0, 2, 4, 8, 16};  // 0 = unlimited (paper)
  const std::vector<double> betas = {0.0, 5e-3, 5e-2};

  Table table({"max_value_corr", "beta", "earliness(%)", "accuracy(%)", "hm"});
  for (int cap : caps) {
    for (double beta : betas) {
      KvecConfig config = KvecConfig::ForSpec(dataset.spec);
      config.embed_dim = options.embed_dim;
      config.state_dim = options.state_dim;
      config.num_blocks = options.num_blocks;
      config.ffn_hidden_dim = options.ffn_hidden_dim;
      config.learning_rate = options.learning_rate;
      config.baseline_learning_rate = options.learning_rate;
      config.epochs = options.epochs;
      config.seed = options.seed;
      config.beta = static_cast<float>(beta);
      config.correlation.max_value_correlations = cap;
      KvecModel model(config);
      KvecTrainer trainer(&model);
      trainer.Train(dataset.train);
      EvaluationResult result = trainer.Evaluate(dataset.test);
      table.AddRow({cap == 0 ? "unlimited" : Table::FormatDouble(cap, 0),
                    Table::FormatDouble(beta, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
