// Reproduces Figure 8: hyper-parameter sensitivity of KVEC on Traffic-FG.
//
// (a) sweep alpha with beta frozen at 1e-4: alpha moves accuracy, barely
//     earliness;
// (b) sweep beta with alpha frozen at 0.1: beta trades accuracy against
//     earliness (negative beta = later halting).
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

namespace {

using namespace kvec;

struct Point {
  double value;
  double accuracy;
  double earliness;
};

Point RunOnce(const Dataset& dataset, const MethodRunOptions& options,
              float alpha, float beta) {
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = options.embed_dim;
  config.state_dim = options.state_dim;
  config.num_blocks = options.num_blocks;
  config.ffn_hidden_dim = options.ffn_hidden_dim;
  config.learning_rate = options.learning_rate;
  config.baseline_learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  config.alpha = alpha;
  config.beta = beta;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);
  return {0.0, result.summary.accuracy, result.summary.earliness};
}

}  // namespace

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Figure 8: hyper-parameter sensitivity on Traffic-FG (scale=%s) "
      "===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, scale, /*seed=*/20240408);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  std::printf("\n--- (a) effect of alpha (beta = 1e-4) ---\n");
  Table alpha_table({"alpha", "accuracy(%)", "earliness(%)"});
  for (double alpha : {0.0, 1e-3, 1e-2, 1e-1, 1.0, 10.0}) {
    Point point = RunOnce(dataset, options, static_cast<float>(alpha), 1e-4f);
    alpha_table.AddRow({Table::FormatDouble(alpha, 4),
                        Table::FormatDouble(100 * point.accuracy, 1),
                        Table::FormatDouble(100 * point.earliness, 1)});
  }
  std::fputs(alpha_table.ToText().c_str(), stdout);

  std::printf("\n--- (b) effect of beta (alpha = 0.1) ---\n");
  Table beta_table({"beta", "accuracy(%)", "earliness(%)"});
  for (double beta : {-5e-2, -1e-2, 0.0, 1e-4, 5e-3, 5e-2, 2e-1, 5e-1}) {
    Point point = RunOnce(dataset, options, 0.1f, static_cast<float>(beta));
    beta_table.AddRow({Table::FormatDouble(beta, 4),
                       Table::FormatDouble(100 * point.accuracy, 1),
                       Table::FormatDouble(100 * point.earliness, 1)});
  }
  std::fputs(beta_table.ToText().c_str(), stdout);
  return 0;
}
