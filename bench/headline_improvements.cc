// Reproduces the paper's headline numbers (abstract / §V-B):
//
//   "KVEC improves the prediction accuracy by up to 4.7-17.5% under the
//    same prediction earliness condition, and improves the harmonic mean
//    of accuracy and earliness by up to 3.7-14.0%."
//
// §V-B computes the accuracy gains against SRN-EARLIEST specifically ("in
// comparison with the most competitive baseline SRN-EARLIEST") and the HM
// gains against the best among the other baselines. This bench reproduces
// both comparisons from the Figs. 3-7 sweeps: every method's metrics are
// interpolated onto a shared earliness grid, and the maximum early-regime
// accuracy gain vs SRN-EARLIEST plus the maximum/average HM gain vs the
// best baseline are reported. Absolute numbers depend on the simulated
// datasets; the sign and rough magnitude are the reproduction target.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace kvec;
using kvec::bench::CurveDatasets;
using kvec::bench::CurveSweep;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Headline: KVEC vs best baseline at equal earliness (scale=%s) "
      "===\n",
      ScaleName(scale));

  Table table({"dataset", "max acc gain vs SRN-EAR early(%)",
               "avg acc gain vs SRN-EAR(%)", "max hm gain vs best",
               "avg hm gain vs best"});
  for (PresetId id : CurveDatasets()) {
    std::vector<SweepPoint> sweep = CurveSweep(id, scale);
    std::vector<SweepPoint> kvec = PointsOfMethod(sweep, "KVEC");
    std::vector<SweepPoint> srn_earliest =
        PointsOfMethod(sweep, "SRN-EARLIEST");
    if (kvec.empty() || srn_earliest.empty()) continue;
    std::vector<std::vector<SweepPoint>> baselines;
    for (const char* name :
         {"SRN-EARLIEST", "SRN-Confidence", "SRN-Fixed", "EARLIEST"}) {
      std::vector<SweepPoint> points = PointsOfMethod(sweep, name);
      if (!points.empty()) baselines.push_back(std::move(points));
    }

    // Shared earliness grid: the early regime plus the rest of the curve.
    const std::vector<double> grid = {0.02, 0.04, 0.06, 0.08, 0.12,
                                      0.20, 0.30, 0.50, 0.80};
    double max_acc_gain_early = -1.0, acc_gain_sum = 0.0;
    double max_hm_gain = -1.0, hm_gain_sum = 0.0;
    for (double earliness : grid) {
      const double kvec_acc =
          InterpolateMetric(kvec, earliness, &SweepPoint::accuracy);
      const double kvec_hm =
          InterpolateMetric(kvec, earliness, &SweepPoint::harmonic_mean);
      // Accuracy: vs SRN-EARLIEST (the paper's §V-B comparison).
      const double acc_gain =
          kvec_acc -
          InterpolateMetric(srn_earliest, earliness, &SweepPoint::accuracy);
      // HM: vs the best of the other methods (the paper's Fig. 7 text).
      double best_hm = 0.0;
      for (const auto& baseline : baselines) {
        best_hm = std::max(best_hm,
                           InterpolateMetric(baseline, earliness,
                                             &SweepPoint::harmonic_mean));
      }
      const double hm_gain = kvec_hm - best_hm;
      acc_gain_sum += acc_gain;
      hm_gain_sum += hm_gain;
      if (earliness <= 0.08) {
        max_acc_gain_early = std::max(max_acc_gain_early, acc_gain);
      }
      max_hm_gain = std::max(max_hm_gain, hm_gain);
    }
    table.AddRow({PresetName(id),
                  Table::FormatDouble(100 * max_acc_gain_early, 1),
                  Table::FormatDouble(
                      100 * acc_gain_sum / static_cast<double>(grid.size()),
                      1),
                  Table::FormatDouble(max_hm_gain, 3),
                  Table::FormatDouble(
                      hm_gain_sum / static_cast<double>(grid.size()), 3)});
  }
  std::fputs(table.ToText().c_str(), stdout);
  std::printf(
      "\npaper (real datasets): accuracy gains vs SRN-EARLIEST of "
      "4.7/17.5/6.4%% (traffic) and 7.8%% (MovieLens); HM gains vs the "
      "best baseline of 2.9-14.0%%.\n");
  return 0;
}
