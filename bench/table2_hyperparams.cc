// Reproduces Table II: the earliness-accuracy trade-off hyper-parameter of
// each early-classification method, with the grid the harness sweeps.
#include <cstdio>
#include <sstream>

#include "exp/method.h"
#include "util/table.h"

int main() {
  using namespace kvec;
  std::printf("=== Table II: hyper-parameters of each method ===\n");
  Table table({"method", "hyperparameter", "sweep grid", "description"});
  for (const MethodSpec& method : AllMethods()) {
    std::ostringstream grid;
    for (size_t i = 0; i < method.grid.size(); ++i) {
      if (i > 0) grid << ", ";
      grid << method.grid[i];
    }
    std::string description;
    if (method.hyper_name == "beta" || method.hyper_name == "lambda") {
      description = "earliness-accuracy trade off";
    } else if (method.hyper_name == "tau") {
      description = "halting time threshold";
    } else {
      description = "halting confidence threshold";
    }
    table.AddRow({method.name,
                  method.name == "KVEC" ? "alpha=0.1, beta" : method.hyper_name,
                  grid.str(), description});
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
