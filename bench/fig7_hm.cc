// Reproduces Figure 7: harmonic mean of accuracy and (1 - earliness) vs
// earliness (shared sweep cache).
#include "bench_common.h"

int main() {
  kvec::bench::PrintCurveFigure("Figure 7", "hm",
                                &kvec::SweepPoint::harmonic_mean);
  return 0;
}
