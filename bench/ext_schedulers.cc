// Extension: learning-rate schedules for KVEC's joint objective.
//
// The paper trains at a fixed rate. On the scaled-down CPU runs the
// REINFORCE term (l2) is noisy early and the classification term (l1)
// benefits from a decaying tail, so schedules are worth measuring. This
// bench trains the same model under constant / cosine / warmup-cosine
// schedules on the Traffic-App stand-in.
#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: learning-rate schedules on Traffic-App (scale=%s) "
      "===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficApp, scale, /*seed=*/20240616);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  const std::vector<std::pair<std::string, KvecConfig::LrSchedule>> schedules =
      {{"constant (paper)", KvecConfig::LrSchedule::kConstant},
       {"cosine", KvecConfig::LrSchedule::kCosine},
       {"warmup+cosine", KvecConfig::LrSchedule::kWarmupCosine}};

  Table table({"schedule", "beta", "earliness(%)", "accuracy(%)", "hm"});
  for (const auto& [name, schedule] : schedules) {
    for (double beta : {5e-3, 5e-2}) {
      KvecConfig config = KvecConfig::ForSpec(dataset.spec);
      config.embed_dim = options.embed_dim;
      config.state_dim = options.state_dim;
      config.num_blocks = options.num_blocks;
      config.ffn_hidden_dim = options.ffn_hidden_dim;
      config.learning_rate = options.learning_rate;
      config.baseline_learning_rate = options.learning_rate;
      config.epochs = options.epochs;
      config.seed = options.seed;
      config.beta = static_cast<float>(beta);
      config.lr_schedule = schedule;
      config.min_learning_rate = options.learning_rate * 0.05f;
      KvecModel model(config);
      KvecTrainer trainer(&model);
      trainer.Train(dataset.train);
      EvaluationResult result = trainer.Evaluate(dataset.test);
      table.AddRow({name, Table::FormatDouble(beta, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
