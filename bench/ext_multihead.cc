// Extension: attention heads in the KVRL encoder.
//
// The paper's attention operator is single-head (no output projection);
// this bench measures whether splitting the same embedding width into
// 2 or 4 heads (standard multi-head attention with a learned W_o) changes
// the earliness-accuracy trade-off at our scale. Expected shape: small or
// no gain — the tangled-stream mask already structures the attention, and
// at d=24 the per-head dimension gets thin quickly.
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: attention heads on USTC-TFC2016 (scale=%s) ===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, scale, /*seed=*/20240617);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  Table table({"heads", "beta", "earliness(%)", "accuracy(%)", "hm"});
  for (int heads : {1, 2, 4}) {
    for (double beta : {5e-3, 5e-2}) {
      KvecConfig config = KvecConfig::ForSpec(dataset.spec);
      config.embed_dim = options.embed_dim;
      // Make the width divisible by every head count tested.
      config.embed_dim = (config.embed_dim / 4) * 4;
      config.state_dim = options.state_dim;
      config.num_blocks = options.num_blocks;
      config.ffn_hidden_dim = options.ffn_hidden_dim;
      config.learning_rate = options.learning_rate;
      config.baseline_learning_rate = options.learning_rate;
      config.epochs = options.epochs;
      config.seed = options.seed;
      config.beta = static_cast<float>(beta);
      config.num_heads = heads;
      KvecModel model(config);
      KvecTrainer trainer(&model);
      trainer.Train(dataset.train);
      EvaluationResult result = trainer.Evaluate(dataset.test);
      table.AddRow({std::to_string(heads), Table::FormatDouble(beta, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
