// Reproduces Table I: detailed statistics of each dataset.
//
// Columns mirror the paper: #keys, avg |S_k|, avg session length, #classes.
// Absolute key counts and lengths are scaled down (single-core budget); the
// *shape* — relative session lengths, class counts, length ordering — is
// the reproduction target.
#include <cstdio>

#include "data/presets.h"
#include "data/stats.h"
#include "util/table.h"

int main() {
  using namespace kvec;
  ExperimentScale scale = ScaleFromEnv();
  std::printf("=== Table I: dataset statistics (scale=%s) ===\n",
              ScaleName(scale));
  Table table({"dataset", "#keys", "avg |Sk|", "avg session len", "#classes",
               "paper avg |Sk|", "paper session len"});
  struct RowSpec {
    PresetId id;
    double paper_length;
    double paper_session;
  };
  const RowSpec rows[] = {
      {PresetId::kUstcTfc2016, 31.2, 8.3},
      {PresetId::kMovieLens1M, 163.5, 1.7},
      {PresetId::kTrafficFg, 50.7, 2.4},
      {PresetId::kTrafficApp, 57.5, 2.7},
      {PresetId::kSyntheticEarly, 100.0, 2.1},
      {PresetId::kSyntheticLate, 100.0, 2.1},
  };
  for (const RowSpec& row : rows) {
    Dataset dataset = MakePresetDataset(row.id, scale, /*seed=*/1);
    DatasetStats stats = ComputeDatasetStats(dataset);
    table.AddRow({PresetName(row.id), std::to_string(stats.num_keys),
                  Table::FormatDouble(stats.avg_sequence_length, 1),
                  Table::FormatDouble(stats.avg_session_length, 1),
                  std::to_string(stats.num_classes),
                  Table::FormatDouble(row.paper_length, 1),
                  Table::FormatDouble(row.paper_session, 1)});
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
