// Reproduces Figure 10: distribution of internal (same-key) vs external
// (cross-key, value-correlation) attention score at various halting
// positions on Traffic-FG, together with the accuracy at each earliness
// bucket.
//
// The paper's observation: external attention dominates early (little
// intra-sequence data, KVEC leans on inter-sequence correlation) and decays
// as more items arrive.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

int main() {
  using namespace kvec;
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Figure 10: internal/external attention vs earliness on "
      "Traffic-FG (scale=%s) ===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, scale, /*seed=*/20240410);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = options.embed_dim;
  config.state_dim = options.state_dim;
  config.num_blocks = options.num_blocks;
  config.ffn_hidden_dim = options.ffn_hidden_dim;
  config.learning_rate = options.learning_rate;
  config.baseline_learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  EvalOptions eval_options;
  eval_options.collect_attention = true;
  EvaluationResult result = trainer.Evaluate(dataset.test, eval_options);

  // Bucket the per-sequence attention points by earliness.
  const std::vector<double> edges = {0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.01};
  struct Bucket {
    double internal = 0.0, external = 0.0;
    int count = 0, correct = 0;
  };
  std::vector<Bucket> buckets(edges.size());
  for (size_t i = 0; i < result.attention.size(); ++i) {
    const AttentionPoint& point = result.attention[i];
    size_t bucket = 0;
    while (bucket + 1 < edges.size() && point.earliness > edges[bucket]) {
      ++bucket;
    }
    buckets[bucket].internal += point.internal_score;
    buckets[bucket].external += point.external_score;
    buckets[bucket].count += 1;
    const PredictionRecord& record = result.records[i];
    if (record.true_label == record.predicted_label) {
      buckets[bucket].correct += 1;
    }
  }

  Table table({"earliness bucket (<=%)", "#seqs", "internal attn",
               "external attn", "accuracy(%)"});
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].count == 0) continue;
    table.AddRow(
        {Table::FormatDouble(100 * edges[b], 0),
         std::to_string(buckets[b].count),
         Table::FormatDouble(buckets[b].internal / buckets[b].count, 3),
         Table::FormatDouble(buckets[b].external / buckets[b].count, 3),
         Table::FormatDouble(100.0 * buckets[b].correct / buckets[b].count,
                             1)});
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
