// Extension: robustness of a trained KVEC model to stream faults.
//
// A single model is trained on clean Traffic-FG-like data, then evaluated
// on perturbed test splits: dropped items (packet loss), corrupted session
// fields (payload corruption), truncation (capture cut short), and local
// reordering (multi-path jitter). Expected shape: graceful degradation with
// fault intensity; session-field corruption hurts most because the value
// correlation and the session structure both read that field.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/perturb.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: robustness of KVEC to stream faults on Traffic-FG "
      "(scale=%s) ===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, scale, /*seed=*/20240613);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = options.embed_dim;
  config.state_dim = options.state_dim;
  config.num_blocks = options.num_blocks;
  config.ffn_hidden_dim = options.ffn_hidden_dim;
  config.learning_rate = options.learning_rate;
  config.baseline_learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  config.beta = 5e-3f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);

  const int session_field = dataset.spec.session_field;
  const int session_vocab =
      dataset.spec.value_fields[session_field].vocab_size;

  struct Scenario {
    std::string name;
    std::function<TangledSequence(const TangledSequence&, Rng&)> transform;
  };
  const std::vector<Scenario> scenarios = {
      {"clean", [](const TangledSequence& e, Rng&) { return e; }},
      {"drop 10%",
       [](const TangledSequence& e, Rng& r) { return DropItems(e, 0.1, r); }},
      {"drop 30%",
       [](const TangledSequence& e, Rng& r) { return DropItems(e, 0.3, r); }},
      {"corrupt session 10%",
       [&](const TangledSequence& e, Rng& r) {
         return CorruptValues(e, session_field, session_vocab, 0.1, r);
       }},
      {"corrupt session 30%",
       [&](const TangledSequence& e, Rng& r) {
         return CorruptValues(e, session_field, session_vocab, 0.3, r);
       }},
      {"truncate to 8",
       [](const TangledSequence& e, Rng&) {
         return TruncateSequences(e, 8);
       }},
      {"jitter +-3",
       [](const TangledSequence& e, Rng& r) { return JitterOrder(e, 3, r); }},
  };

  Table table({"fault", "earliness(%)", "accuracy(%)", "f1", "hm"});
  for (const Scenario& scenario : scenarios) {
    Rng rng(20240613);
    std::vector<TangledSequence> perturbed =
        PerturbAll(dataset.test, [&](const TangledSequence& episode) {
          return scenario.transform(episode, rng);
        });
    EvaluationResult result = trainer.Evaluate(perturbed);
    table.AddRow({scenario.name,
                  Table::FormatDouble(100 * result.summary.earliness, 1),
                  Table::FormatDouble(100 * result.summary.accuracy, 1),
                  Table::FormatDouble(result.summary.macro_f1, 3),
                  Table::FormatDouble(result.summary.harmonic_mean, 3)});
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
