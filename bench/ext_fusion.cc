// Extension ablation: embedding fusion (paper §IV-B).
//
// The paper claims parameter-free fusion (addition, averaging) "often
// results in poor prediction results due to noise aggregation" and adopts an
// LSTM-style multi-gate cell. This bench trains KVEC with each fusion mode
// on the USTC-TFC2016 stand-in and reports the resulting
// accuracy/earliness/HM. Expected shape: kLstm dominates; kMean/kSum wash
// out the discriminative early items; kLast (no history) is the weakest on
// anything that needs more than one item.
#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: embedding-fusion ablation on USTC-TFC2016 (scale=%s) "
      "===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, scale, /*seed=*/20240614);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  const std::vector<std::pair<std::string, KvecConfig::FusionKind>> modes = {
      {"LSTM gates (paper)", KvecConfig::FusionKind::kLstm},
      {"mean", KvecConfig::FusionKind::kMean},
      {"sum", KvecConfig::FusionKind::kSum},
      {"last item", KvecConfig::FusionKind::kLast},
  };
  const std::vector<double> betas = {0.0, 5e-3, 5e-2};

  Table table({"fusion", "beta", "earliness(%)", "accuracy(%)", "hm"});
  for (const auto& [name, kind] : modes) {
    for (double beta : betas) {
      KvecConfig config = KvecConfig::ForSpec(dataset.spec);
      config.embed_dim = options.embed_dim;
      config.state_dim = options.state_dim;
      config.num_blocks = options.num_blocks;
      config.ffn_hidden_dim = options.ffn_hidden_dim;
      config.learning_rate = options.learning_rate;
      config.baseline_learning_rate = options.learning_rate;
      config.epochs = options.epochs;
      config.seed = options.seed;
      config.beta = static_cast<float>(beta);
      config.fusion = kind;
      KvecModel model(config);
      KvecTrainer trainer(&model);
      trainer.Train(dataset.train);
      EvaluationResult result = trainer.Evaluate(dataset.test);
      table.AddRow({name, Table::FormatDouble(beta, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
