// Reproduces Figure 6: macro F1 vs earliness (shared sweep cache).
#include "bench_common.h"

int main() {
  kvec::bench::PrintCurveFigure("Figure 6", "f1", &kvec::SweepPoint::f1);
  return 0;
}
