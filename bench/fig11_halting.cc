// Reproduces Figure 11: distribution of halting positions on the
// Synthetic-Traffic early-stop and late-stop subdatasets, comparing the
// ground-truth stop positions against KVEC and KVEC w/o value correlation.
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

namespace {

using namespace kvec;

// Halting-position histogram over earliness deciles.
std::vector<double> Histogram(const std::vector<double>& positions) {
  std::vector<double> histogram(10, 0.0);
  for (double p : positions) {
    int bucket = std::min(9, static_cast<int>(p * 10.0));
    histogram[bucket] += 1.0;
  }
  for (double& v : histogram) v /= std::max<size_t>(1, positions.size());
  return histogram;
}

// Trains KVEC at several earliness pressures and keeps the model with the
// best validation score (the paper tunes β the same way, §V-B). The score
// is accuracy with a light earliness tiebreak — accuracy − 0.1·earliness —
// i.e. "halt as early as possible *without losing accuracy*", which is the
// regime in which halting positions are informative about the planted stop
// signal. (Plain HM would structurally prefer degenerate first-item halting
// on the late-stop subdataset, where accurate classification requires
// waiting.)
std::vector<double> EvaluateHalts(const Dataset& dataset,
                                  const MethodRunOptions& options,
                                  bool value_correlation) {
  // Includes a halting-discouraging negative β (the paper's Fig. 8b range
  // extends to −0.05), which is the regime the late-stop subdataset needs.
  const std::vector<float> betas = {-2e-2f, 5e-3f, 2e-2f,
                                    5e-2f,  9e-2f, 1.2e-1f};
  double best_score = -1.0;
  std::vector<double> best_positions;
  for (float beta : betas) {
    KvecConfig config = KvecConfig::ForSpec(dataset.spec);
    config.embed_dim = options.embed_dim;
    config.state_dim = options.state_dim;
    config.num_blocks = options.num_blocks;
    config.ffn_hidden_dim = options.ffn_hidden_dim;
    config.learning_rate = options.learning_rate;
    config.baseline_learning_rate = options.learning_rate;
    config.epochs = options.epochs;
    config.seed = options.seed;
    config.beta = beta;
    config.correlation.use_value_correlation = value_correlation;
    KvecModel model(config);
    KvecTrainer trainer(&model);
    trainer.Train(dataset.train);
    const EvaluationSummary validation =
        trainer.Evaluate(dataset.validation).summary;
    const double score = validation.accuracy - 0.1 * validation.earliness;
    if (score <= best_score) continue;
    best_score = score;
    EvaluationResult result = trainer.Evaluate(dataset.test);
    best_positions.clear();
    for (const HaltingRecord& halt : result.halts) {
      best_positions.push_back(static_cast<double>(halt.halt_position) /
                               halt.sequence_length);
    }
  }
  return best_positions;
}

void PrintSubdataset(PresetId id, const char* title) {
  ExperimentScale scale = ScaleFromEnv();
  Dataset dataset = MakePresetDataset(id, scale, /*seed=*/20240411);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  std::vector<double> truth;
  for (const TangledSequence& episode : dataset.test) {
    for (const auto& [key, position] : episode.true_halt_positions) {
      truth.push_back(static_cast<double>(position) /
                      episode.KeyLength(key));
    }
  }
  std::vector<double> kvec_positions =
      EvaluateHalts(dataset, options, /*value_correlation=*/true);
  std::vector<double> ablated_positions =
      EvaluateHalts(dataset, options, /*value_correlation=*/false);

  std::printf("\n--- %s ---\n", title);
  Table table({"earliness decile", "true halts", "KVEC",
               "KVEC w/o value corr"});
  std::vector<double> truth_hist = Histogram(truth);
  std::vector<double> kvec_hist = Histogram(kvec_positions);
  std::vector<double> ablated_hist = Histogram(ablated_positions);
  for (int b = 0; b < 10; ++b) {
    char bucket[32];
    std::snprintf(bucket, sizeof(bucket), "%d-%d%%", b * 10, (b + 1) * 10);
    table.AddRow({bucket, Table::FormatDouble(truth_hist[b], 3),
                  Table::FormatDouble(kvec_hist[b], 3),
                  Table::FormatDouble(ablated_hist[b], 3)});
  }
  std::fputs(table.ToText().c_str(), stdout);
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 11: halting-position distributions on Synthetic-Traffic "
      "(scale=%s) ===\n",
      ScaleName(ScaleFromEnv()));
  PrintSubdataset(PresetId::kSyntheticEarly, "(a) early-stop subdataset");
  PrintSubdataset(PresetId::kSyntheticLate, "(b) late-stop subdataset");
  return 0;
}
