// Extended comparison: the paper's five methods plus the two classical
// Related-Work families the paper argues against but does not evaluate
// (prefix-based stability halting, feature-based indicator matching), on
// the USTC-TFC2016 stand-in.
//
// Expected shape: the classical methods are competitive only when the class
// signal is a literal token pattern; the learned methods dominate the
// earliness-accuracy frontier, with KVEC on top in the early regime (its
// advantage is the inter-sequence value correlation the others cannot use).
#include <cstdio>
#include <vector>

#include "data/presets.h"
#include "exp/method.h"
#include "exp/sweep.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: 7-method comparison on USTC-TFC2016 (scale=%s) ===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, scale, /*seed=*/20240611);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  Table table(
      {"method", "hyper", "earliness(%)", "accuracy(%)", "f1", "hm"});
  for (const MethodSpec& method : AllMethodsExtended()) {
    for (double hyper : method.grid) {
      EvaluationResult result = method.run(dataset, hyper, options);
      table.AddRow({method.name, Table::FormatDouble(hyper, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.macro_f1, 3),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
