// Serving-layer micro benchmarks: sharded throughput on a tangled stream,
// steady-state capacity eviction cost at large open-key counts, and the
// PR-6 shard-owned-worker mode (throughput scaling and overload shedding
// at saturation).
//
// Effects measured:
//  * BM_ShardedStreamThroughput — items/sec of ShardedStreamServer at 1-8
//    shards over a maximally tangled synthetic stream (hundreds of
//    concurrent keys sharing one session value). Historically sharding
//    helped even single-threaded because each shard's engine scanned only
//    its own open sessions; the PR-3 inverted correlation index removed
//    that scan, so single-core throughput now peaks at 1 shard and extra
//    shards pay for themselves only via the multi-core ObserveBatch
//    fan-out (see docs/SERVING.md and bench/micro_pipeline.cc's
//    BM_StreamServeEndToEnd).
//  * BM_CapacityEvictionSteadyState — per-item cost of StreamServer at the
//    capacity limit (every item evicts). With the (last_seen, key) index
//    this is O(log open_keys); the pre-index full scan was O(open_keys)
//    (12 us -> 1781 us per item from 1k to 100k open keys on the reference
//    machine; see docs/SERVING.md for before/after numbers).
//  * BM_ShardWorkerThroughput — end-to-end items/sec of the shard-owned
//    worker mode (Submit + Drain, kBlock backpressure) at 1/2/4/8 workers.
//    Scaling with worker count needs real cores: the committed numbers
//    come from a single-core container, where extra workers only add
//    handoff cost — rerun on a multi-core host to see the scaling curve.
//  * BM_ShardWorkerSaturation — overload behavior at full-speed offered
//    load with a deliberately tiny queue (depth 4) and kShedNewest: the
//    producer outruns the workers, and the custom counters report what the
//    overload layer did about it (shed_rate = items_shed/items_submitted,
//    offered_per_sec, items_per_second = processed throughput).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"

namespace kvec {
namespace {

// A tiny untrained model: these benchmarks measure the serving layer's
// bookkeeping (correlation scans, eviction, routing), so model quality is
// irrelevant and inference cost is kept small on purpose.
KvecModel MakeModel(bool value_correlation) {
  DatasetSpec spec;
  spec.name = "bench";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.use_value_correlation = value_correlation;
  // Cap attention fan-in and the join window so per-item inference stays
  // cheap; the O(open sessions) scan the benchmark targets is unaffected
  // by either cap (every open session is still inspected).
  config.correlation.max_value_correlations = 4;
  config.correlation.value_correlation_window = 16;
  return KvecModel(config);
}

// Round-robin over `num_keys` concurrent keys, all items carrying the same
// session value: every open session is a candidate match for every item,
// the worst case for the correlation scan.
std::vector<Item> MakeTangledStream(int num_keys, int total_items) {
  std::vector<Item> items;
  items.reserve(total_items);
  for (int i = 0; i < total_items; ++i) {
    Item item;
    item.key = i % num_keys;
    item.value = {0};
    item.time = i;
    items.push_back(item);
  }
  return items;
}

void BM_ShardedStreamThroughput(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  KvecModel model = MakeModel(/*value_correlation=*/true);
  const std::vector<Item> stream = MakeTangledStream(/*num_keys=*/8192,
                                                     /*total_items=*/8192);
  ShardedStreamServerConfig config;
  config.num_shards = num_shards;
  config.shard.max_window_items = 1 << 30;
  config.shard.idle_timeout = 1 << 30;
  config.shard.idle_check_interval = 1 << 30;
  config.shard.max_open_keys = 1 << 20;

  constexpr int kBatch = 256;
  for (auto _ : state) {
    ShardedStreamServer server(model, config);
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      const size_t end = std::min(stream.size(), begin + kBatch);
      std::vector<Item> batch(stream.begin() + begin, stream.begin() + end);
      benchmark::DoNotOptimize(server.ObserveBatch(batch));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ShardedStreamThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CapacityEvictionSteadyState(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  // Value correlation off: per-item engine cost is O(log keys), so the
  // timing isolates the eviction path.
  KvecModel model = MakeModel(/*value_correlation=*/false);
  StreamServerConfig config;
  config.max_open_keys = open_keys;
  config.max_window_items = 1 << 30;
  config.idle_timeout = 1 << 30;
  config.idle_check_interval = 1 << 30;
  StreamServer server(model, config);

  Item item;
  item.value = {0};
  int key = 0;
  for (int i = 0; i < open_keys; ++i) {
    item.key = key++;
    item.time = key;
    server.Observe(item);
  }
  // Steady state: each fresh key pushes the open set past the cap and
  // evicts the LRU key.
  for (auto _ : state) {
    item.key = key++;
    item.time = key;
    benchmark::DoNotOptimize(server.Observe(item));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapacityEvictionSteadyState)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Shared config for the worker-mode benchmarks: engine-side eviction and
// rotation disabled so the timing isolates the transport layer + inference.
ShardedStreamServerConfig WorkerConfig(int workers, int queue_depth,
                                       OverloadPolicy policy) {
  ShardedStreamServerConfig config;
  config.num_shards = workers;
  config.worker_threads = workers;
  config.queue_depth = queue_depth;
  config.overload_policy = policy;
  config.shard.max_window_items = 1 << 30;
  config.shard.idle_timeout = 1 << 30;
  config.shard.idle_check_interval = 1 << 30;
  config.shard.max_open_keys = 1 << 20;
  return config;
}

void BM_ShardWorkerThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  KvecModel model = MakeModel(/*value_correlation=*/true);
  const std::vector<Item> stream = MakeTangledStream(/*num_keys=*/8192,
                                                     /*total_items=*/8192);
  const ShardedStreamServerConfig config =
      WorkerConfig(workers, /*queue_depth=*/256, OverloadPolicy::kBlock);

  constexpr int kBatch = 256;
  for (auto _ : state) {
    ShardedStreamServer server(model, config);
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      const size_t end = std::min(stream.size(), begin + kBatch);
      server.Submit(
          std::vector<Item>(stream.begin() + begin, stream.begin() + end));
    }
    server.Drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ShardWorkerThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardWorkerSaturation(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  KvecModel model = MakeModel(/*value_correlation=*/true);
  const std::vector<Item> stream = MakeTangledStream(/*num_keys=*/8192,
                                                     /*total_items=*/8192);
  const ShardedStreamServerConfig config =
      WorkerConfig(workers, /*queue_depth=*/4, OverloadPolicy::kShedNewest);

  constexpr int kBatch = 64;
  int64_t submitted = 0;
  int64_t processed = 0;
  int64_t shed = 0;
  for (auto _ : state) {
    ShardedStreamServer server(model, config);
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      const size_t end = std::min(stream.size(), begin + kBatch);
      server.Submit(
          std::vector<Item>(stream.begin() + begin, stream.begin() + end));
    }
    server.Drain();
    const StreamServerStats stats = server.stats();
    submitted += stats.items_submitted;
    processed += stats.items_processed;
    shed += stats.items_shed;
  }
  state.SetItemsProcessed(processed);
  state.counters["shed_rate"] =
      submitted > 0 ? static_cast<double>(shed) / submitted : 0.0;
  state.counters["offered_per_sec"] = benchmark::Counter(
      static_cast<double>(submitted), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardWorkerSaturation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kvec
