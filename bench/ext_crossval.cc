// Extension: five-fold cross-validation of KVEC (the paper's evaluation
// protocol, §V-A.4) on the USTC-TFC2016 stand-in, reporting mean ± std of
// every metric. The figure binaries use a single split for runtime; this
// bench quantifies the fold-to-fold variance those point estimates carry.
#include <cstdio>

#include "data/presets.h"
#include "exp/cv.h"
#include "exp/method.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  const int folds = 5;
  std::printf(
      "=== Extension: %d-fold cross-validation of KVEC on USTC-TFC2016 "
      "(scale=%s) ===\n",
      folds, ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, scale, /*seed=*/20240610);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  Table table({"beta", "metric", "mean", "std"});
  for (double beta : {0.0, 5e-3, 5e-2}) {
    CrossValidationSummary cv =
        CrossValidate(KvecMethod(), beta, dataset, folds, options);
    auto row = [&](const char* name, double mean, double stddev) {
      table.AddRow({Table::FormatDouble(beta, 3), name,
                    Table::FormatDouble(mean, 4),
                    Table::FormatDouble(stddev, 4)});
    };
    row("earliness", cv.mean.earliness, cv.stddev.earliness);
    row("accuracy", cv.mean.accuracy, cv.stddev.accuracy);
    row("macro_f1", cv.mean.macro_f1, cv.stddev.macro_f1);
    row("harmonic_mean", cv.mean.harmonic_mean, cv.stddev.harmonic_mean);
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
