// Reproduces Figure 4: macro precision vs earliness (shared sweep cache).
#include "bench_common.h"

int main() {
  kvec::bench::PrintCurveFigure("Figure 4", "precision",
                                &kvec::SweepPoint::precision);
  return 0;
}
