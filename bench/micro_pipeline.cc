// Micro benchmarks of the end-to-end pipeline pieces: episode generation,
// one training step, evaluation, and streaming inference throughput.
#include <benchmark/benchmark.h>

#include "core/online.h"
#include "core/trainer.h"
#include "data/movielens_generator.h"
#include "data/traffic_generator.h"

namespace kvec {
namespace {

TrafficGeneratorConfig SmallTraffic() {
  TrafficGeneratorConfig config;
  config.num_classes = 6;
  config.concurrency = 4;
  config.avg_flow_length = 20.0;
  config.min_flow_length = 8;
  return config;
}

KvecConfig ModelConfig(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 32;
  return config;
}

void BM_TrafficEpisodeGeneration(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(1);
  int64_t items = 0;
  for (auto _ : state) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    items += static_cast<int64_t>(episode.items.size());
    benchmark::DoNotOptimize(episode);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_TrafficEpisodeGeneration);

void BM_MovieLensEpisodeGeneration(benchmark::State& state) {
  MovieLensGeneratorConfig config;
  config.concurrency = 4;
  config.avg_sequence_length = 40.0;
  MovieLensGenerator generator(config);
  Rng rng(2);
  int64_t items = 0;
  for (auto _ : state) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    items += static_cast<int64_t>(episode.items.size());
    benchmark::DoNotOptimize(episode);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MovieLensEpisodeGeneration);

void BM_TrainEpoch(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(3);
  std::vector<TangledSequence> episodes;
  for (int e = 0; e < 8; ++e) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  KvecTrainer trainer(&model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainEpoch(episodes));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TrainEpoch);

void BM_Evaluate(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(4);
  std::vector<TangledSequence> episodes;
  for (int e = 0; e < 8; ++e) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  KvecTrainer trainer(&model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Evaluate(episodes));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Evaluate);

void BM_OnlineInferencePerItem(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(5);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  int64_t items = 0;
  for (auto _ : state) {
    OnlineClassifier online(model);
    for (const Item& item : episode.items) {
      benchmark::DoNotOptimize(online.Observe(item));
    }
    items += static_cast<int64_t>(episode.items.size());
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_OnlineInferencePerItem);

}  // namespace
}  // namespace kvec
