// Micro benchmarks of the end-to-end pipeline pieces: episode generation,
// one training step, evaluation, and streaming inference throughput —
// including the PR-3 serving benchmarks (BENCH_PR3.json): end-to-end
// items/sec of the stream-serving path (single-item vs microbatched, 1-8
// shards, 8k-key tangled stream) and the per-item cost of the indexed
// correlation tracker as the open-key count grows.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/online.h"
#include "core/sharded_stream_server.h"
#include "core/trainer.h"
#include "data/movielens_generator.h"
#include "data/traffic_generator.h"

namespace kvec {
namespace {

TrafficGeneratorConfig SmallTraffic() {
  TrafficGeneratorConfig config;
  config.num_classes = 6;
  config.concurrency = 4;
  config.avg_flow_length = 20.0;
  config.min_flow_length = 8;
  return config;
}

KvecConfig ModelConfig(const DatasetSpec& spec) {
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 32;
  return config;
}

void BM_TrafficEpisodeGeneration(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(1);
  int64_t items = 0;
  for (auto _ : state) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    items += static_cast<int64_t>(episode.items.size());
    benchmark::DoNotOptimize(episode);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_TrafficEpisodeGeneration);

void BM_MovieLensEpisodeGeneration(benchmark::State& state) {
  MovieLensGeneratorConfig config;
  config.concurrency = 4;
  config.avg_sequence_length = 40.0;
  MovieLensGenerator generator(config);
  Rng rng(2);
  int64_t items = 0;
  for (auto _ : state) {
    TangledSequence episode = generator.GenerateEpisode(rng);
    items += static_cast<int64_t>(episode.items.size());
    benchmark::DoNotOptimize(episode);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MovieLensEpisodeGeneration);

void BM_TrainEpoch(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(3);
  std::vector<TangledSequence> episodes;
  for (int e = 0; e < 8; ++e) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  KvecTrainer trainer(&model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainEpoch(episodes));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TrainEpoch);

void BM_Evaluate(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(4);
  std::vector<TangledSequence> episodes;
  for (int e = 0; e < 8; ++e) {
    episodes.push_back(generator.GenerateEpisode(rng));
  }
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  KvecTrainer trainer(&model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Evaluate(episodes));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Evaluate);

void BM_OnlineInferencePerItem(benchmark::State& state) {
  TrafficGenerator generator(SmallTraffic());
  Rng rng(5);
  TangledSequence episode = generator.GenerateEpisode(rng);
  KvecConfig config = ModelConfig(generator.spec());
  KvecModel model(config);
  int64_t items = 0;
  for (auto _ : state) {
    OnlineClassifier online(model);
    for (const Item& item : episode.items) {
      benchmark::DoNotOptimize(online.Observe(item));
    }
    items += static_cast<int64_t>(episode.items.size());
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_OnlineInferencePerItem);

// ---- PR-3 serving benchmarks (BENCH_PR3.json) ---------------------------

// A tiny untrained model: the end-to-end serving benchmarks measure the
// serving layer (correlation index, arena caches, microbatched GEMMs,
// eviction bookkeeping), so model quality is irrelevant and inference cost
// is kept small on purpose. Mirrors bench/micro_stream_shard.cc.
KvecModel MakeServingModel() {
  DatasetSpec spec;
  spec.name = "bench";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.max_value_correlations = 4;
  config.correlation.value_correlation_window = 16;
  return KvecModel(config);
}

// Round-robin over `num_keys` concurrent keys, all items carrying the same
// session value: every open session is a candidate match for every item,
// the worst case for correlation matching.
std::vector<Item> MakeTangledStream(int num_keys, int total_items) {
  std::vector<Item> items;
  items.reserve(total_items);
  for (int i = 0; i < total_items; ++i) {
    Item item;
    item.key = i % num_keys;
    item.value = {0};
    item.time = i;
    items.push_back(item);
  }
  return items;
}

// End-to-end items/sec of the serving path on a maximally tangled 8k-key
// stream. Args: {num_shards, batch_size}; batch_size 1 drives the
// item-at-a-time Observe path, larger sizes the microbatched GEMM path.
// {1, 1} is the configuration the pre-PR baseline was measured with.
void BM_StreamServeEndToEnd(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  const int batch_size = static_cast<int>(state.range(1));
  KvecModel model = MakeServingModel();
  const std::vector<Item> stream = MakeTangledStream(/*num_keys=*/8192,
                                                     /*total_items=*/8192);
  ShardedStreamServerConfig config;
  config.num_shards = num_shards;
  config.shard.max_window_items = 1 << 30;
  config.shard.idle_timeout = 1 << 30;
  config.shard.idle_check_interval = 1 << 30;
  config.shard.max_open_keys = 1 << 20;

  for (auto _ : state) {
    ShardedStreamServer server(model, config);
    if (batch_size <= 1) {
      for (const Item& item : stream) {
        benchmark::DoNotOptimize(server.Observe(item));
      }
    } else {
      for (size_t begin = 0; begin < stream.size();
           begin += static_cast<size_t>(batch_size)) {
        const size_t end =
            std::min(stream.size(), begin + static_cast<size_t>(batch_size));
        std::vector<Item> batch(stream.begin() + begin, stream.begin() + end);
        benchmark::DoNotOptimize(server.ObserveBatch(batch));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_StreamServeEndToEnd)
    ->Args({1, 1})
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({8, 256})
    ->Unit(benchmark::kMillisecond);

// Steady-state per-item cost of CorrelationTracker::ObserveItem with
// `open_keys` open sessions. The inverted index walks only the sessions
// inside the recency window, so the cost must stay flat from 1k to 100k
// open keys (the pre-index tracker scanned every open session per item —
// linear). Sessions rotate every round (two alternating session values) so
// matched sessions stay short and the measurement isolates the lookup.
void BM_CorrelationObserve(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  CorrelationOptions options;
  options.use_key_correlation = false;  // isolate the value-matching path
  options.use_value_correlation = true;
  options.value_correlation_window = 64;
  options.max_value_correlations = 8;
  options.session_field = 0;
  CorrelationTracker tracker(options);

  Item item;
  item.value = {0};
  for (int i = 0; i < open_keys; ++i) {
    item.key = i;
    tracker.ObserveItem(item);
  }
  int next = 0;
  for (auto _ : state) {
    item.key = next % open_keys;
    item.value[0] = (next / open_keys) % 2;  // rotate sessions every round
    next = next + 1 == 2 * open_keys ? 0 : next + 1;
    benchmark::DoNotOptimize(tracker.ObserveItem(item));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CorrelationObserve)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace kvec
