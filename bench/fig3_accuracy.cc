// Reproduces Figure 3: accuracy vs earliness for all five methods on the
// four real-dataset stand-ins. Shares its training sweep with Figs. 4-7
// through the on-disk cache.
#include "bench_common.h"

int main() {
  kvec::bench::PrintCurveFigure("Figure 3", "accuracy",
                                &kvec::SweepPoint::accuracy);
  return 0;
}
