// Shared plumbing for the figure-reproduction binaries.
//
// Figures 3-7 project the same hyper-parameter sweep onto different
// metrics; the sweep is trained once per (dataset, scale) and cached on
// disk (kvec_bench_cache/), so running all five binaries costs one sweep.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "data/presets.h"
#include "exp/cache.h"
#include "exp/method.h"
#include "exp/sweep.h"
#include "util/table.h"

namespace kvec {
namespace bench {

inline const std::vector<PresetId>& CurveDatasets() {
  static const std::vector<PresetId> datasets = {
      PresetId::kUstcTfc2016, PresetId::kMovieLens1M, PresetId::kTrafficFg,
      PresetId::kTrafficApp};
  return datasets;
}

// Loads (or trains) the all-method sweep for one dataset.
inline std::vector<SweepPoint> CurveSweep(PresetId id,
                                          ExperimentScale scale) {
  SweepCache cache = SweepCache::Default();
  std::string key = std::string("sweep_") + PresetName(id) + "_" +
                    ScaleName(scale);
  return cache.LoadOrCompute(key, [&]() {
    std::fprintf(stderr, "[bench] training sweep for %s (%s scale)...\n",
                 PresetName(id), ScaleName(scale));
    Dataset dataset = MakePresetDataset(id, scale, /*seed=*/20240411);
    MethodRunOptions options = MethodRunOptions::ForScale(scale);
    return RunAllMethodSweeps(dataset, options);
  });
}

// Prints one figure: the chosen metric vs earliness for all methods on the
// four real-dataset stand-ins, in the layout of Figs. 3-7.
inline void PrintCurveFigure(const char* figure_name, const char* metric_name,
                             double SweepPoint::*metric) {
  ExperimentScale scale = ScaleFromEnv();
  std::printf("=== %s: %s vs earliness (scale=%s) ===\n", figure_name,
              metric_name, ScaleName(scale));
  for (PresetId id : CurveDatasets()) {
    std::vector<SweepPoint> points = CurveSweep(id, scale);
    std::printf("\n--- dataset: %s ---\n", PresetName(id));
    Table table({"method", "hyper", "earliness(%)", metric_name});
    for (const SweepPoint& point : points) {
      table.AddRow({point.method, Table::FormatDouble(point.hyper, 4),
                    Table::FormatDouble(100.0 * point.earliness, 2),
                    Table::FormatDouble(point.*metric, 4)});
    }
    std::fputs(table.ToText().c_str(), stdout);
  }
}

}  // namespace bench
}  // namespace kvec

