// Extension: confidence calibration of the early classifiers.
//
// SRN-Confidence's halting rule assumes the classifier's max-softmax is a
// trustworthy probability; this bench measures whether it is, for KVEC and
// the SRN baselines, on the USTC-TFC2016 stand-in. Reports the reliability
// table for KVEC and the ECE/MCE summary for every method. Expected shape:
// all small neural models are somewhat over-confident (positive
// confidence-minus-accuracy gaps in the high bins); the indicator matcher's
// mined precisions are closer to calibrated by construction.
#include <cstdio>

#include "data/presets.h"
#include "exp/method.h"
#include "metrics/calibration.h"
#include "util/table.h"

using namespace kvec;

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf(
      "=== Extension: confidence calibration on USTC-TFC2016 (scale=%s) "
      "===\n",
      ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kUstcTfc2016, scale, /*seed=*/20240615);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  Table table({"method", "hyper", "accuracy(%)", "ECE", "MCE"});
  bool printed_reliability = false;
  for (const MethodSpec& method : AllMethodsExtended()) {
    // One representative mid-grid point per method.
    const double hyper = method.grid[method.grid.size() / 2];
    EvaluationResult result = method.run(dataset, hyper, options);
    table.AddRow(
        {method.name, Table::FormatDouble(hyper, 3),
         Table::FormatDouble(100 * result.summary.accuracy, 1),
         Table::FormatDouble(ExpectedCalibrationError(result.records), 4),
         Table::FormatDouble(MaximumCalibrationError(result.records), 4)});
    if (!printed_reliability && method.name == "KVEC") {
      std::printf("\n--- KVEC reliability table ---\n%s\n",
                  CalibrationReport(result.records).c_str());
      printed_reliability = true;
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
