// Reproduces Figure 9: ablation study of KVEC on Traffic-FG.
//
// Variants: full KVEC, w/o key correlation, w/o value correlation, w/o
// time-related embeddings, w/o membership embedding. Each is trained at a
// few beta values to sample the accuracy/HM-vs-earliness curve.
#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "exp/method.h"
#include "util/table.h"

namespace {

using namespace kvec;

struct Variant {
  std::string name;
  bool key_correlation = true;
  bool value_correlation = true;
  bool time_embeddings = true;
  bool membership_embedding = true;
};

}  // namespace

int main() {
  ExperimentScale scale = ScaleFromEnv();
  std::printf("=== Figure 9: ablation study on Traffic-FG (scale=%s) ===\n",
              ScaleName(scale));
  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, scale, /*seed=*/20240409);
  MethodRunOptions options = MethodRunOptions::ForScale(scale);

  const std::vector<Variant> variants = {
      {"KVEC (ours)", true, true, true, true},
      {"w/o Key Correlation", false, true, true, true},
      {"w/o Value Correlation", true, false, true, true},
      {"w/o Time-related Embed.", true, true, false, true},
      {"w/o Membership Embed.", true, true, true, false},
  };
  const std::vector<double> betas = {0.0, 5e-3, 5e-2};

  Table table({"variant", "beta", "earliness(%)", "accuracy(%)", "hm"});
  for (const Variant& variant : variants) {
    for (double beta : betas) {
      KvecConfig config = KvecConfig::ForSpec(dataset.spec);
      config.embed_dim = options.embed_dim;
      config.state_dim = options.state_dim;
      config.num_blocks = options.num_blocks;
      config.ffn_hidden_dim = options.ffn_hidden_dim;
      config.learning_rate = options.learning_rate;
      config.baseline_learning_rate = options.learning_rate;
      config.epochs = options.epochs;
      config.seed = options.seed;
      config.beta = static_cast<float>(beta);
      config.correlation.use_key_correlation = variant.key_correlation;
      config.correlation.use_value_correlation = variant.value_correlation;
      config.use_time_embeddings = variant.time_embeddings;
      config.use_membership_embedding = variant.membership_embedding;
      KvecModel model(config);
      KvecTrainer trainer(&model);
      trainer.Train(dataset.train);
      EvaluationResult result = trainer.Evaluate(dataset.test);
      table.AddRow({variant.name, Table::FormatDouble(beta, 3),
                    Table::FormatDouble(100 * result.summary.earliness, 1),
                    Table::FormatDouble(100 * result.summary.accuracy, 1),
                    Table::FormatDouble(result.summary.harmonic_mean, 3)});
    }
  }
  std::fputs(table.ToText().c_str(), stdout);
  return 0;
}
