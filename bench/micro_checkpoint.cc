// Serving-state checkpoint micro benchmarks: save/load round-trip latency
// for a StreamServer carrying 8k open keys (the acceptance workload for
// the PR-4 checkpoint subsystem) plus the in-memory encode/restore halves
// separately, so a regression can be blamed on serialisation vs file I/O.
//
// The model is tiny and untrained: checkpoint cost is dominated by the
// serving-layer state (per-key fusion rows, encoder K/V arena, correlation
// index), which scales with open keys and window items, not with model
// quality.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/stream_server.h"

namespace kvec {
namespace {

KvecModel MakeModel() {
  DatasetSpec spec;
  spec.name = "bench";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.max_value_correlations = 4;
  config.correlation.value_correlation_window = 16;
  return KvecModel(config);
}

StreamServerConfig UnboundedConfig() {
  StreamServerConfig config;
  config.max_window_items = 1 << 30;
  config.idle_timeout = 1 << 30;
  config.idle_check_interval = 1 << 30;
  config.max_open_keys = 1 << 20;
  return config;
}

// Feeds fresh keys until `target_open` stay open (the untrained policy
// halts a fraction of them immediately, so more than target_open items are
// needed).
void FillOpenKeys(StreamServer* server, int target_open) {
  int key = 0;
  while (server->open_keys() < target_open && key < (1 << 20)) {
    Item item;
    item.key = key;
    item.value = {key % 3};
    item.time = key;
    ++key;
    server->Observe(item);
  }
}

void BM_CheckpointEncode(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);

  size_t bytes = 0;
  for (auto _ : state) {
    std::string checkpoint = server.EncodeCheckpoint();
    bytes = checkpoint.size();
    benchmark::DoNotOptimize(checkpoint);
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointEncode)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointRestore(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);
  const std::string bytes = server.EncodeCheckpoint();

  StreamServer target(model, UnboundedConfig());
  for (auto _ : state) {
    const bool restored = target.RestoreCheckpoint(bytes);
    if (!restored) state.SkipWithError("restore failed");
    benchmark::DoNotOptimize(restored);
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_CheckpointRestore)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// The acceptance metric: full save -> load round trip through a file for
// an 8k-open-key server.
void BM_CheckpointFileRoundTrip(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);
  const std::string path = "/tmp/kvec_bench_checkpoint.ckpt";

  StreamServer target(model, UnboundedConfig());
  for (auto _ : state) {
    if (!server.SaveCheckpoint(path) || !target.LoadCheckpoint(path)) {
      state.SkipWithError("round trip failed");
    }
  }
  std::remove(path.c_str());
  state.counters["open_keys"] = server.open_keys();
}
BENCHMARK(BM_CheckpointFileRoundTrip)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kvec
