// Serving-state checkpoint micro benchmarks: save/load round-trip latency
// for a StreamServer carrying 8k open keys (the acceptance workload for
// the PR-4 checkpoint subsystem) plus the in-memory encode/restore halves
// separately, so a regression can be blamed on serialisation vs file I/O.
//
// The model is tiny and untrained: checkpoint cost is dominated by the
// serving-layer state (per-key fusion rows, encoder K/V arena, correlation
// index), which scales with open keys and window items, not with model
// quality.
// PR 10 adds the incremental-checkpoint curves: delta encode under churn
// (cost proportional to dirty keys, not population), the full rebase
// comparator, and restore-from-chain latency by chain length. The
// acceptance line is delta encode at 1% churn >= 20x faster than a full
// write at 100k open keys (BENCH_PR10.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/stream_server.h"

namespace kvec {
namespace {

KvecModel MakeModel() {
  DatasetSpec spec;
  spec.name = "bench";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.max_value_correlations = 4;
  config.correlation.value_correlation_window = 16;
  return KvecModel(config);
}

StreamServerConfig UnboundedConfig() {
  StreamServerConfig config;
  config.max_window_items = 1 << 30;
  config.idle_timeout = 1 << 30;
  config.idle_check_interval = 1 << 30;
  config.max_open_keys = 1 << 20;
  return config;
}

// Feeds fresh keys until `target_open` stay open (the untrained policy
// halts a fraction of them immediately, so more than target_open items are
// needed).
void FillOpenKeys(StreamServer* server, int target_open) {
  int key = 0;
  while (server->open_keys() < target_open && key < (1 << 20)) {
    Item item;
    item.key = key;
    item.value = {key % 3};
    item.time = key;
    ++key;
    server->Observe(item);
  }
}

void BM_CheckpointEncode(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);

  size_t bytes = 0;
  for (auto _ : state) {
    std::string checkpoint = server.EncodeCheckpoint();
    bytes = checkpoint.size();
    benchmark::DoNotOptimize(checkpoint);
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointEncode)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointRestore(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);
  const std::string bytes = server.EncodeCheckpoint();

  StreamServer target(model, UnboundedConfig());
  for (auto _ : state) {
    const bool restored = target.RestoreCheckpoint(bytes);
    if (!restored) state.SkipWithError("restore failed");
    benchmark::DoNotOptimize(restored);
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_CheckpointRestore)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// The acceptance metric: full save -> load round trip through a file for
// an 8k-open-key server.
void BM_CheckpointFileRoundTrip(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  StreamServer server(model, UnboundedConfig());
  FillOpenKeys(&server, open_keys);
  const std::string path = "/tmp/kvec_bench_checkpoint.ckpt";

  StreamServer target(model, UnboundedConfig());
  for (auto _ : state) {
    if (!server.SaveCheckpoint(path) || !target.LoadCheckpoint(path)) {
      state.SkipWithError("round trip failed");
    }
  }
  std::remove(path.c_str());
  state.counters["open_keys"] = server.open_keys();
}
BENCHMARK(BM_CheckpointFileRoundTrip)->Arg(1 << 10)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// ---- Incremental checkpointing (PR 10) -----------------------------------

ShardedStreamServerConfig ShardedUnbounded() {
  ShardedStreamServerConfig config;
  config.num_shards = 1;
  config.shard = UnboundedConfig();
  return config;
}

void FillOpenKeysSharded(ShardedStreamServer* server, int target_open) {
  int key = 0;
  std::vector<Item> batch;
  while (server->open_keys() < target_open && key < (1 << 21)) {
    batch.clear();
    for (int i = 0; i < 2048; ++i) {
      Item item;
      item.key = key;
      item.value = {key % 3};
      item.time = key;
      ++key;
      batch.push_back(item);
    }
    server->ObserveBatch(batch);
  }
}

// Re-observes `count` already-seen keys: each touch dirties the key's
// serving entry, engine state, and correlation rows, which is exactly the
// churn a delta has to carry.
void ChurnKeys(ShardedStreamServer* server, int count, int* next, int limit,
               int64_t* clock) {
  std::vector<Item> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Item item;
    item.key = *next % limit;
    *next += 1;
    item.value = {item.key % 3};
    item.time = static_cast<double>((*clock)++);
    batch.push_back(item);
  }
  server->ObserveBatch(batch);
}

void UnlinkChain(const std::string& base) {
  for (int64_t seq = 1;; ++seq) {
    if (std::remove(ShardedStreamServer::DeltaPath(base, seq).c_str()) != 0) {
      break;
    }
  }
  std::remove(base.c_str());
}

int64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<int64_t>(in.tellg()) : 0;
}

// Delta write cost as a function of churn: range(0) open keys, range(1)
// percent of them re-touched between writes. The chain never rebases, so
// every iteration times exactly one delta encode + atomic file write.
void BM_DeltaCheckpointWrite(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  const int churn_keys =
      std::max<int>(1, open_keys * static_cast<int>(state.range(1)) / 100);
  KvecModel model = MakeModel();
  ShardedStreamServer server(model, ShardedUnbounded());
  FillOpenKeysSharded(&server, open_keys);
  const std::string base = "/tmp/kvec_bench_delta_chain.ckpt";
  UnlinkChain(base);
  ShardedStreamServer::IncrementalCheckpointState chain;
  if (!server.CheckpointIncremental(base, /*rebase_every=*/0, &chain)) {
    state.SkipWithError("base rebase failed");
    return;
  }
  int next = 0;
  int64_t clock = 1 << 21;
  for (auto _ : state) {
    state.PauseTiming();
    ChurnKeys(&server, churn_keys, &next, open_keys, &clock);
    state.ResumeTiming();
    if (!server.CheckpointIncremental(base, /*rebase_every=*/0, &chain)) {
      state.SkipWithError("delta write failed");
      break;
    }
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["churn_keys"] = churn_keys;
  state.counters["delta_bytes"] = static_cast<double>(
      FileBytes(ShardedStreamServer::DeltaPath(base, chain.deltas_written)));
  UnlinkChain(base);
}
BENCHMARK(BM_DeltaCheckpointWrite)
    ->Args({8192, 1})
    ->Args({100000, 1})
    ->Args({100000, 10})
    ->Unit(benchmark::kMillisecond);

// The rebase comparator: a fresh chain state forces the full-base branch
// every iteration, so this times a complete encode + atomic file write of
// the whole population — the denominator of the >= 20x acceptance ratio.
void BM_FullCheckpointWrite(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  ShardedStreamServer server(model, ShardedUnbounded());
  FillOpenKeysSharded(&server, open_keys);
  const std::string base = "/tmp/kvec_bench_full_chain.ckpt";
  UnlinkChain(base);
  for (auto _ : state) {
    ShardedStreamServer::IncrementalCheckpointState chain;
    if (!server.CheckpointIncremental(base, /*rebase_every=*/0, &chain)) {
      state.SkipWithError("full write failed");
      break;
    }
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["base_bytes"] = static_cast<double>(FileBytes(base));
  UnlinkChain(base);
}
BENCHMARK(BM_FullCheckpointWrite)
    ->Arg(8192)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Cold-start latency from a base plus range(1) deltas at 1% churn each:
// the price of a longer chain, i.e. what --rebase-every trades against the
// per-delta savings.
void BM_RestoreFromChain(benchmark::State& state) {
  const int open_keys = static_cast<int>(state.range(0));
  const int chain_length = static_cast<int>(state.range(1));
  const int churn_keys = std::max<int>(1, open_keys / 100);
  KvecModel model = MakeModel();
  ShardedStreamServer server(model, ShardedUnbounded());
  FillOpenKeysSharded(&server, open_keys);
  const std::string base = "/tmp/kvec_bench_restore_chain.ckpt";
  UnlinkChain(base);
  ShardedStreamServer::IncrementalCheckpointState chain;
  if (!server.CheckpointIncremental(base, /*rebase_every=*/0, &chain)) {
    state.SkipWithError("base rebase failed");
    return;
  }
  int next = 0;
  int64_t clock = 1 << 21;
  for (int d = 0; d < chain_length; ++d) {
    ChurnKeys(&server, churn_keys, &next, open_keys, &clock);
    if (!server.CheckpointIncremental(base, /*rebase_every=*/0, &chain)) {
      state.SkipWithError("delta write failed");
      return;
    }
  }
  ShardedStreamServer target(model, ShardedUnbounded());
  for (auto _ : state) {
    if (!target.RestoreFromCheckpointChain(base)) {
      state.SkipWithError("chain restore failed");
      break;
    }
  }
  state.counters["open_keys"] = server.open_keys();
  state.counters["chain_length"] = chain_length;
  UnlinkChain(base);
}
BENCHMARK(BM_RestoreFromChain)
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({8192, 5})
    ->Args({100000, 5})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kvec
