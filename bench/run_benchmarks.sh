#!/usr/bin/env bash
# Runs the performance-tracking benchmarks and emits
#   BENCH_PR1.json — tensor backend (matmul, masked softmax, incremental
#                    encoder step; the PR-1 kernels),
#   BENCH_PR3.json — streaming serving path (end-to-end items/sec single-item
#                    vs microbatched at 1-8 shards on an 8k-key tangled
#                    stream, and CorrelationTracker::ObserveItem cost at
#                    1k-100k open keys; the PR-3 pipeline),
#   BENCH_PR4.json — serving-state checkpoint/restore (encode, restore, and
#                    file round-trip latency at 1k/8k open keys; the PR-4
#                    checkpoint subsystem),
#   BENCH_PR6.json — shard-owned-worker serving (Submit+Drain items/sec at
#                    1/2/4/8 workers, and the saturation sweep's shed_rate /
#                    offered_per_sec under kShedNewest with a depth-4 queue;
#                    the PR-6 overload subsystem). Worker scaling needs real
#                    cores — note num_cpus in the context block when reading
#                    the committed numbers.
#   BENCH_PR8.json — TCP front end (loopback loadgen → framing →
#                    TcpIngestServer → Submit at 1/4 connections, with
#                    p50/p99/p999 batch-round-trip latency as user
#                    counters; the PR-8 network subsystem).
#   BENCH_PR9.json — bounded-memory serving (the `kvec soak` harness's
#                    memory-vs-open-keys curve at 25k/50k/100k open keys:
#                    peak steady-state RSS, upward drift vs the flatness
#                    band, shard-pool resident bytes, scratch high water,
#                    and compaction counts; the PR-9 memory subsystem).
#                    The soak CLI emits this shape itself via --curve, and
#                    the run FAILS if post-warm-up RSS trends upward.
#   BENCH_PR10.json — incremental checkpointing (delta write latency vs
#                    churn at 8k/100k open keys, the full rebase write as
#                    the comparator, and restore-from-chain latency by
#                    chain length; the PR-10 delta subsystem). The
#                    acceptance ratio — delta at 1% churn >= 20x faster
#                    than a full write at 100k open keys — is checked by
#                    the script after the run.
#
# Usage: bench/run_benchmarks.sh [build_dir] [out_pr1] [out_pr3] [out_pr4] [out_pr6] [out_pr8] [out_pr9] [out_pr10]
#   build_dir  defaults to ./build (must contain micro_ops / micro_encoder /
#              micro_pipeline / micro_checkpoint / micro_stream_shard /
#              micro_net, plus the kvec driver)
#   out_pr1    defaults to ./BENCH_PR1.json
#   out_pr3    defaults to ./BENCH_PR3.json
#   out_pr4    defaults to ./BENCH_PR4.json
#   out_pr6    defaults to ./BENCH_PR6.json
#   out_pr8    defaults to ./BENCH_PR8.json
#   out_pr9    defaults to ./BENCH_PR9.json
#   out_pr10   defaults to ./BENCH_PR10.json
#
# Threading: benchmarks honour KVEC_NUM_THREADS; the committed numbers are
# single-thread (KVEC_NUM_THREADS=1) so machines with different core counts
# stay comparable.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_PR1="${2:-BENCH_PR1.json}"
OUT_PR3="${3:-BENCH_PR3.json}"
OUT_PR4="${4:-BENCH_PR4.json}"
OUT_PR6="${5:-BENCH_PR6.json}"
OUT_PR8="${6:-BENCH_PR8.json}"
OUT_PR9="${7:-BENCH_PR9.json}"
OUT_PR10="${8:-BENCH_PR10.json}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

export KVEC_NUM_THREADS="${KVEC_NUM_THREADS:-1}"

merge_reports() {
  python3 - "$@" <<'EOF'
import json
import sys

merged = {"context": None, "benchmarks": {}}
for path in sys.argv[1:-1]:
    with open(path) as f:
        report = json.load(f)
    if merged["context"] is None:
        ctx = report.get("context", {})
        merged["context"] = {
            "date": ctx.get("date"),
            "host_name": ctx.get("host_name"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "kvec_num_threads": __import__("os").environ.get("KVEC_NUM_THREADS"),
        }
    # Standard per-run keys; anything else numeric is a user counter
    # (e.g. the saturation sweep's shed_rate / offered_per_sec).
    standard = {
        "name", "family_index", "per_family_instance_index", "run_name",
        "run_type", "repetitions", "repetition_index", "threads",
        "iterations", "real_time", "cpu_time", "time_unit",
        "items_per_second", "bytes_per_second", "aggregate_name",
        "aggregate_unit", "label",
    }
    for bench in report.get("benchmarks", []):
        entry = {
            "real_time_ns": bench["real_time"],
            "items_per_second": bench.get("items_per_second"),
        }
        for key, value in bench.items():
            if key not in standard and isinstance(value, (int, float)):
                entry[key] = value
        merged["benchmarks"][bench["name"]] = entry

with open(sys.argv[-1], "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[-1]}")
EOF
}

# ---- PR 1: tensor backend ----

"${BUILD_DIR}/micro_ops" \
  --benchmark_filter='BM_MatMul/|BM_MaskedSoftmax' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP_DIR}/ops.json" --benchmark_out_format=json

"${BUILD_DIR}/micro_encoder" \
  --benchmark_filter='BM_IncrementalStreamEncode' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP_DIR}/encoder.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/ops.json" "${TMP_DIR}/encoder.json" "${OUT_PR1}"

# ---- PR 3: streaming serving path ----

"${BUILD_DIR}/micro_pipeline" \
  --benchmark_filter='BM_StreamServeEndToEnd|BM_CorrelationObserve' \
  --benchmark_min_time=0.5 \
  --benchmark_out="${TMP_DIR}/serving.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/serving.json" "${OUT_PR3}"

# ---- PR 4: serving-state checkpoint/restore ----

"${BUILD_DIR}/micro_checkpoint" \
  --benchmark_filter='BM_Checkpoint' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP_DIR}/checkpoint.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/checkpoint.json" "${OUT_PR4}"

# ---- PR 6: shard-owned workers + overload shedding ----

"${BUILD_DIR}/micro_stream_shard" \
  --benchmark_filter='BM_ShardWorker' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP_DIR}/workers.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/workers.json" "${OUT_PR6}"

# ---- PR 8: TCP front end (loopback serve path) ----

"${BUILD_DIR}/micro_net" \
  --benchmark_filter='BM_LoopbackIngest' \
  --benchmark_min_time=0.5 \
  --benchmark_out="${TMP_DIR}/net.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/net.json" "${OUT_PR8}"

# ---- PR 9: bounded-memory serving (soak memory-vs-open-keys curve) ----
#
# Not a Google Benchmark binary: the soak harness drives the real sharded
# server and samples /proc RSS, so it writes the merged-report shape
# directly. The run doubles as an assertion — a non-flat RSS trend exits
# non-zero and fails the whole script. The soak fans ObserveBatch out over
# the process ThreadPool, so it ignores the single-thread pinning above by
# design; per-item cost comparisons live in BENCH_PR3/PR6, this file tracks
# memory, not throughput.

"${BUILD_DIR}/kvec" soak --keys 100000 --scales 0.25,0.5,1 \
  --curve "${OUT_PR9}" --json > /dev/null
echo "wrote ${OUT_PR9}"

# ---- PR 10: incremental checkpointing (delta chain) ----

"${BUILD_DIR}/micro_checkpoint" \
  --benchmark_filter='BM_DeltaCheckpointWrite|BM_FullCheckpointWrite|BM_RestoreFromChain' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP_DIR}/delta.json" --benchmark_out_format=json

merge_reports "${TMP_DIR}/delta.json" "${OUT_PR10}"

# The headline claim of the delta subsystem, asserted at report time so a
# regression cannot silently land a stale-looking BENCH_PR10.json.
python3 - "${OUT_PR10}" <<'PYEOF'
import json, sys
report = json.load(open(sys.argv[1]))["benchmarks"]
delta = report["BM_DeltaCheckpointWrite/100000/1"]["real_time_ns"]
full = report["BM_FullCheckpointWrite/100000"]["real_time_ns"]
ratio = full / delta
print(f"delta vs full checkpoint write at 100k keys / 1% churn: {ratio:.1f}x")
if ratio < 20.0:
    sys.exit(f"FAIL: delta speedup {ratio:.1f}x is below the 20x acceptance bar")
PYEOF
