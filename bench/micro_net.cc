// TCP front-end micro benchmark: end-to-end loopback ingest through the
// real stack — loadgen client(s) → framing → TcpIngestServer →
// ShardedStreamServer::Submit — at 1 and 4 connections. items_per_second
// is the headline; the p50/p99/p999 user counters come from the loadgen's
// HdrHistogram-style recorder, so the committed numbers carry tail
// latency, not just throughput.
//
// The model is tiny and untrained: the point is the network path and the
// framing/dispatch overhead around Submit, not inference quality. Each
// iteration is one full loadgen run (connect + hello + all batches), so
// connection setup is amortized over kItemsPerRun items exactly as a
// short-lived client would see it.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded_stream_server.h"
#include "net/loadgen.h"
#include "net/tcp_ingest_server.h"

namespace kvec {
namespace {

constexpr int kItemsPerRun = 4096;
constexpr int kBatchSize = 64;

KvecModel MakeModel() {
  DatasetSpec spec;
  spec.name = "bench";
  spec.value_fields = {{"field", 8}};
  spec.num_classes = 2;
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 64;
  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 8;
  config.state_dim = 8;
  config.num_blocks = 1;
  config.ffn_hidden_dim = 8;
  config.correlation.max_value_correlations = 4;
  config.correlation.value_correlation_window = 16;
  return KvecModel(config);
}

std::vector<Item> MakeStream(int count) {
  std::vector<Item> items;
  items.reserve(count);
  for (int i = 0; i < count; ++i) {
    Item item;
    item.key = i % 512;
    item.value = {i % 3};
    item.time = i;
    items.push_back(std::move(item));
  }
  return items;
}

void BM_LoopbackIngest(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  KvecModel model = MakeModel();
  ShardedStreamServerConfig sharded;
  sharded.num_shards = 2;
  ShardedStreamServer server(model, sharded);

  net::TcpIngestServerConfig net_config;
  net_config.port = 0;
  net_config.max_connections = connections + 1;
  net_config.num_value_fields = model.config().spec.num_value_fields();
  net_config.num_classes = model.config().spec.num_classes;
  net::TcpIngestServer tcp(&server, net_config);
  std::string error;
  if (!tcp.Start(&error)) {
    state.SkipWithError(("listen failed: " + error).c_str());
    return;
  }

  const std::vector<Item> items = MakeStream(kItemsPerRun);
  net::LoadgenConfig config;
  config.client.port = tcp.port();
  config.connections = connections;
  config.batch_size = kBatchSize;
  config.num_value_fields = net_config.num_value_fields;
  config.num_classes = net_config.num_classes;

  net::LatencySnapshot latency;
  for (auto _ : state) {
    net::LoadgenReport report;
    if (!net::RunLoadgen(config, items, &report, &error)) {
      state.SkipWithError(("loadgen failed: " + error).c_str());
      break;
    }
    if (report.items_acked != kItemsPerRun) {
      state.SkipWithError("not every item was acked");
      break;
    }
    latency = report.latency;
  }
  tcp.Shutdown();
  server.Drain();

  state.SetItemsProcessed(state.iterations() * kItemsPerRun);
  state.counters["connections"] = connections;
  state.counters["batch_items"] = kBatchSize;
  state.counters["p50_us"] = static_cast<double>(latency.p50_us);
  state.counters["p99_us"] = static_cast<double>(latency.p99_us);
  state.counters["p999_us"] = static_cast<double>(latency.p999_us);
}
BENCHMARK(BM_LoopbackIngest)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace kvec
