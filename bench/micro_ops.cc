// Micro benchmarks of the tensor operators on model-shaped workloads.
#include <benchmark/benchmark.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {
namespace {

Tensor RandomTensor(int rows, int cols, Rng& rng, bool grad = false) {
  Tensor t = Tensor::Zeros(rows, cols, grad);
  for (float& v : t.data()) v = static_cast<float>(rng.NextGaussian());
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = RandomTensor(n, n, rng);
  Tensor b = RandomTensor(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MaskedSoftmax(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor scores = RandomTensor(t, t, rng);
  Tensor mask = Tensor::Full(t, t, 0.0f);
  for (int i = 0; i < t; ++i) {
    for (int j = i + 1; j < t; ++j) mask.Set(i, j, ops::kNegInf);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MaskedSoftmax(scores, mask));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{t} * t);
}
BENCHMARK(BM_MaskedSoftmax)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 32;
  Rng rng(3);
  Tensor x = RandomTensor(t, d, rng);
  Tensor wq = RandomTensor(d, d, rng);
  Tensor wk = RandomTensor(d, d, rng);
  Tensor wv = RandomTensor(d, d, rng);
  Tensor mask = Tensor::Full(t, t, 0.0f);
  for (int i = 0; i < t; ++i) {
    for (int j = i + 1; j < t; ++j) mask.Set(i, j, ops::kNegInf);
  }
  for (auto _ : state) {
    Tensor q = ops::MatMul(x, wq);
    Tensor k = ops::MatMul(x, wk);
    Tensor v = ops::MatMul(x, wv);
    Tensor weights =
        ops::MaskedSoftmax(ops::Affine(ops::MatMulTransposeB(q, k),
                                       0.17678f, 0.0f),
                           mask);
    benchmark::DoNotOptimize(ops::MatMul(weights, v));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{t});
}
BENCHMARK(BM_AttentionForward)->Arg(64)->Arg(128)->Arg(256);

void BM_ForwardBackwardMlp(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(4);
  Tensor x = RandomTensor(8, d, rng);
  Tensor w1 = RandomTensor(d, d, rng, /*grad=*/true);
  Tensor w2 = RandomTensor(d, d, rng, /*grad=*/true);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    Tensor loss =
        ops::SumAll(ops::MatMul(ops::Relu(ops::MatMul(x, w1)), w2));
    loss.Backward();
    benchmark::DoNotOptimize(w1.grad().data());
  }
}
BENCHMARK(BM_ForwardBackwardMlp)->Arg(32)->Arg(64);

void BM_EmbeddingGather(benchmark::State& state) {
  Rng rng(5);
  Tensor table = RandomTensor(1024, 32, rng);
  std::vector<int> indices(256);
  for (int& id : indices) id = rng.NextInt(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::EmbeddingGather(table, indices));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EmbeddingGather);

void BM_CrossEntropy(benchmark::State& state) {
  Rng rng(6);
  Tensor logits = RandomTensor(64, 12, rng, /*grad=*/true);
  std::vector<int> labels(64);
  for (int& label : labels) label = rng.NextInt(12);
  for (auto _ : state) {
    logits.ZeroGrad();
    ops::CrossEntropy(logits, labels).Backward();
    benchmark::DoNotOptimize(logits.grad().data());
  }
}
BENCHMARK(BM_CrossEntropy);

}  // namespace
}  // namespace kvec
