// Scenario: encrypted-traffic classification (the paper's motivating
// networking workload).
//
// Trains KVEC on the Traffic-FG stand-in and compares it against the
// SRN-EARLIEST baseline under the same earliness budget, then prints the
// per-class breakdown. This is the experiment behind Fig. 3(c), condensed
// to one configuration.
//
// Build & run:   ./build/examples/traffic_early_classification
#include <cstdio>
#include <map>

#include "baselines/baseline_model.h"
#include "baselines/baseline_trainer.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "util/table.h"

int main() {
  using namespace kvec;

  Dataset dataset =
      MakePresetDataset(PresetId::kTrafficFg, ExperimentScale::kTiny, 7);
  std::printf("Traffic-FG stand-in: %d classes, %zu training episodes\n",
              dataset.spec.num_classes, dataset.train.size());

  // ---- KVEC ----
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 2e-2f;
  KvecModel kvec_model(config);
  KvecTrainer kvec_trainer(&kvec_model);
  kvec_trainer.Train(dataset.train);
  EvaluationResult kvec_result = kvec_trainer.Evaluate(dataset.test);

  // ---- SRN-EARLIEST baseline (per-flow transformer, no value corr.) ----
  BaselineConfig baseline_config;
  baseline_config.representation = RepresentationKind::kTransformer;
  baseline_config.halting = HaltingKind::kPolicy;
  baseline_config.base = config;
  BaselineModel baseline_model(baseline_config);
  BaselineTrainer baseline_trainer(&baseline_model);
  baseline_trainer.Train(dataset.train);
  EvaluationResult baseline_result = baseline_trainer.Evaluate(dataset.test);

  Table comparison(
      {"method", "accuracy(%)", "earliness(%)", "F1", "HM"});
  auto add = [&](const char* name, const EvaluationResult& result) {
    comparison.AddRow({name,
                       Table::FormatDouble(100 * result.summary.accuracy, 1),
                       Table::FormatDouble(100 * result.summary.earliness, 1),
                       Table::FormatDouble(result.summary.macro_f1, 3),
                       Table::FormatDouble(result.summary.harmonic_mean, 3)});
  };
  add("KVEC", kvec_result);
  add("SRN-EARLIEST", baseline_result);
  std::printf("\n");
  std::fputs(comparison.ToText().c_str(), stdout);

  // Per-class observation counts for KVEC: which app types halt earliest?
  std::map<int, std::pair<double, int>> per_class;  // label -> (sum n, cnt)
  for (const PredictionRecord& record : kvec_result.records) {
    auto& [sum, count] = per_class[record.true_label];
    sum += static_cast<double>(record.observed_items) /
           record.sequence_length;
    count += 1;
  }
  std::printf("\nKVEC mean observed fraction per true class:\n");
  for (const auto& [label, stats] : per_class) {
    std::printf("  class %2d: %.1f%% of the flow (%d flows)\n", label,
                100.0 * stats.first / stats.second, stats.second);
  }
  return 0;
}
