// Scenario: a router serving a high-concurrency tangled stream across
// shards.
//
// bounded_server shows the bounds a single serving process needs;
// this example shows the scale-up: ShardedStreamServer partitions the key
// space across N independent StreamServer shards (hash routing, a mutex
// and a full engine per shard) and ingests batches via ObserveBatch, which
// hands each shard a contiguous microbatch in parallel. Per-shard engines
// track only their own keys (bounded memory per shard), and the per-shard
// mutexes let concurrent callers proceed in parallel on multi-core
// hardware. On a single core expect the ratio near (or below) 1x: since
// the correlation tracker's inverted index removed the per-item session
// scan, sharding buys wall-clock parallelism and isolation, not
// single-thread speed (see docs/SERVING.md).
//
// The demo trains a small model, replays the test episodes through a
// 1-shard and a 4-shard server, and prints the merged stats plus the
// per-shard breakdown and the measured throughput ratio.
//
// Build & run:   ./build/example_sharded_router
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "core/sharded_stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"

int main() {
  using namespace kvec;

  // ---- Offline: train a small model on synthetic traffic. ----
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 4;
  data_config.concurrency = 6;  // heavily tangled episodes
  data_config.avg_flow_length = 12.0;
  data_config.min_flow_length = 6;
  data_config.handshake_sharpness = 5.0;
  TrafficGenerator generator(data_config);
  // A large test split: interleaved below, it yields hundreds of flows
  // live at once, the regime sharding is for.
  SplitCounts counts;
  counts.train = 40;
  counts.validation = 2;
  counts.test = 48;
  Dataset dataset = GenerateDataset(generator, counts, /*seed=*/1717);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 1e-2f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  std::printf("trained model (%lld parameters)\n",
              static_cast<long long>(model.ParameterCount()));

  // ---- The live stream: all test episodes interleaved round-robin (keys
  // made global), so every episode's flows are live at once — a router
  // sees many tenants concurrently, not one episode at a time. ----
  std::vector<Item> stream;
  std::map<int, int> truth;  // global key -> true label
  size_t longest = 0;
  for (const TangledSequence& episode : dataset.test) {
    longest = std::max(longest, episode.items.size());
  }
  for (size_t position = 0; position < longest; ++position) {
    int offset = 0;
    for (const TangledSequence& episode : dataset.test) {
      if (position < episode.items.size()) {
        Item item = episode.items[position];
        const int global_key = item.key + offset;
        truth[global_key] = episode.labels.at(item.key);
        item.key = global_key;
        stream.push_back(item);
      }
      offset += 1000;
    }
  }

  // ---- Online: serve the same stream at 1 shard and at 4 shards. ----
  constexpr int kBatch = 128;
  double elapsed_ms[2] = {0, 0};
  const int shard_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ShardedStreamServerConfig server_config;
    server_config.num_shards = shard_counts[run];
    server_config.shard.max_window_items = 8192;
    // Idle timeouts tick in per-shard positions; keep the timeout above
    // the whole stream so both runs serve identical open-flow populations.
    server_config.shard.idle_timeout = 8192;
    server_config.shard.max_open_keys = 1024;
    ShardedStreamServer server(model, server_config);

    int correct = 0;
    const auto start = std::chrono::steady_clock::now();
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      const size_t end = std::min(stream.size(), begin + kBatch);
      std::vector<Item> batch(stream.begin() + begin, stream.begin() + end);
      for (const StreamEvent& event : server.ObserveBatch(batch)) {
        if (event.predicted_label == truth[event.key]) ++correct;
      }
    }
    for (const StreamEvent& event : server.Flush()) {
      if (event.predicted_label == truth[event.key]) ++correct;
    }
    elapsed_ms[run] = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    const StreamServerStats stats = server.stats();
    std::printf(
        "\n%d shard(s): %lld items, %lld verdicts (%.1f%% correct), "
        "%.1f ms\n",
        server.num_shards(), static_cast<long long>(stats.items_processed),
        static_cast<long long>(stats.sequences_classified),
        100.0 * correct / static_cast<double>(stats.sequences_classified),
        elapsed_ms[run]);
    std::printf(
        "  causes: %lld policy, %lld idle, %lld capacity, %lld rotation, "
        "%lld flush\n",
        static_cast<long long>(stats.policy_halts),
        static_cast<long long>(stats.idle_timeouts),
        static_cast<long long>(stats.capacity_evictions),
        static_cast<long long>(stats.rotation_classifications),
        static_cast<long long>(stats.flush_classifications));
    for (int s = 0; s < server.num_shards(); ++s) {
      const StreamServerStats shard = server.shard_stats(s);
      std::printf("  shard %d: %6lld items, %5lld verdicts, %d window(s)\n",
                  s, static_cast<long long>(shard.items_processed),
                  static_cast<long long>(shard.sequences_classified),
                  shard.windows_started);
    }
  }
  std::printf(
      "\nthroughput ratio at %d shards: %.2fx "
      "(expect ~1x on a single core; shards pay off with real cores)\n",
      shard_counts[1], elapsed_ms[0] / elapsed_ms[1]);
  return 0;
}
