// Scenario: a live "router" classifying flows packet by packet with the
// streaming inference engine (OnlineClassifier + IncrementalEncoder).
//
// This is the deployment shape the paper motivates: as packets of many
// concurrent flows arrive interleaved, the router must decide each flow's
// application type as soon as the halting policy is confident, then stop
// spending cycles on that flow. The engine re-uses cached attention state
// so each arriving item costs O(t·d) instead of re-encoding the stream.
//
// The second half demos batched observation: a NIC hands the router
// packets in bursts, ObserveBatch serves each burst through one GEMM per
// encoder block, and the verdicts (and their order) are identical to the
// packet-at-a-time loop — the batch is processed in stream order and
// events are returned per item.
//
// Build & run:   ./build/examples/streaming_router
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/online.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"

int main() {
  using namespace kvec;

  // Train a small model offline.
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 5;
  data_config.concurrency = 4;
  data_config.avg_flow_length = 14.0;
  data_config.min_flow_length = 7;
  data_config.handshake_sharpness = 5.0;
  TrafficGenerator generator(data_config);
  Dataset dataset = GenerateDataset(generator, SplitCounts::FromTotal(50),
                                    /*seed=*/99);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 2e-2f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);
  std::printf("trained router model (%lld parameters)\n\n",
              static_cast<long long>(model.ParameterCount()));

  // Deploy: feed one live tangled stream item by item.
  const TangledSequence& stream = dataset.test.front();
  OnlineClassifier router(model);
  int decided = 0, correct = 0;
  for (size_t t = 0; t < stream.items.size(); ++t) {
    const Item& packet = stream.items[t];
    OnlineDecision decision = router.Observe(packet);
    if (decision.halted_now) {
      ++decided;
      bool ok = decision.predicted_label == stream.labels.at(packet.key);
      correct += ok ? 1 : 0;
      std::printf(
          "t=%3zu  flow %d CLASSIFIED as app %d after %d packets "
          "(p_halt=%.2f) %s\n",
          t, packet.key, decision.predicted_label, decision.observed_items,
          decision.halt_probability, ok ? "[correct]" : "[wrong]");
    }
  }
  // Flows still open when the capture ends are force-classified.
  for (const auto& [flow, label] : stream.labels) {
    if (!router.IsHalted(flow)) {
      int predicted = router.ForceClassify(flow);
      ++decided;
      correct += (predicted == label) ? 1 : 0;
      std::printf("stream end: flow %d force-classified as app %d %s\n",
                  flow, predicted,
                  predicted == label ? "[correct]" : "[wrong]");
    }
  }
  std::printf("\n%d/%d flows classified correctly on this stream\n", correct,
              decided);

  // ---- Batched observation: the same stream, served burst by burst. ----
  // StreamServer::ObserveBatch processes the burst in stream order and
  // returns the events each item triggered, concatenated — the exact
  // sequence the packet-at-a-time loop above would emit.
  std::printf("\nreplaying the capture in bursts of 32 packets:\n");
  StreamServer batched_router(model, StreamServerConfig{});
  constexpr size_t kBurst = 32;
  int batched_decided = 0, batched_correct = 0;
  for (size_t begin = 0; begin < stream.items.size(); begin += kBurst) {
    const size_t end = std::min(stream.items.size(), begin + kBurst);
    std::vector<Item> burst(stream.items.begin() + begin,
                            stream.items.begin() + end);
    for (const StreamEvent& event : batched_router.ObserveBatch(burst)) {
      ++batched_decided;
      bool ok = event.predicted_label == stream.labels.at(event.key);
      batched_correct += ok ? 1 : 0;
      std::printf("burst@%3zu  flow %d -> app %d after %d packets %s\n",
                  begin, event.key, event.predicted_label,
                  event.observed_items, ok ? "[correct]" : "[wrong]");
    }
  }
  for (const StreamEvent& event : batched_router.Flush()) {
    ++batched_decided;
    batched_correct +=
        (event.predicted_label == stream.labels.at(event.key)) ? 1 : 0;
  }
  std::printf(
      "batched replay: %d/%d flows correct (verdicts match the per-packet "
      "loop)\n",
      batched_correct, batched_decided);
  return 0;
}
