// Scenario: a serving process survives a deploy without dropping state.
//
// A router has been classifying flows for a while: sessions are open,
// encoder K/V caches are warm, the correlation index knows which flows
// share sessions. A crash or rolling deploy would normally lose all of it
// — every open flow would restart cold and its accumulated evidence would
// be gone. The checkpoint subsystem closes that gap:
//
//   1. serve the first half of a capture,
//   2. SaveCheckpoint to disk and destroy the server ("kill -9"),
//   3. construct a fresh server and LoadCheckpoint,
//   4. serve the second half.
//
// The demo also runs a reference server over the uninterrupted stream and
// verifies the restarted process emitted the *identical* verdict sequence
// — the differential-replay invariant pinned by
// tests/core_checkpoint_replay_test.cc, here across a process-lifetime
// boundary (the restored server shares no memory with the killed one).
//
// Build & run:   ./build/example_snapshot_restart
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"

int main() {
  using namespace kvec;

  // Train a small model offline (any trained KvecModel works; the
  // checkpoint stores serving state, not weights — persist those with
  // KvecModel::SaveToFile).
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 4;
  data_config.concurrency = 4;
  data_config.avg_flow_length = 14.0;
  data_config.min_flow_length = 7;
  data_config.handshake_sharpness = 5.0;
  TrafficGenerator generator(data_config);
  Dataset dataset = GenerateDataset(generator, SplitCounts::FromTotal(40),
                                    /*seed=*/17);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 5;
  config.beta = 2e-2f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  trainer.Train(dataset.train);

  // One long tangled capture.
  std::vector<Item> capture;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      item.key += offset;
      capture.push_back(item);
    }
    offset += 100;
  }
  const size_t cut = capture.size() / 2;
  std::printf("capture: %zu packets, deploy lands after packet %zu\n\n",
              capture.size(), cut);

  StreamServerConfig serve_config;
  serve_config.max_window_items = 96;
  serve_config.idle_timeout = 64;
  serve_config.idle_check_interval = 8;

  // Reference: one process serves the whole capture uninterrupted.
  StreamServer reference(model, serve_config);
  std::vector<StreamEvent> reference_events;
  for (const Item& item : capture) {
    for (const StreamEvent& event : reference.Observe(item)) {
      reference_events.push_back(event);
    }
  }
  for (const StreamEvent& event : reference.Flush()) {
    reference_events.push_back(event);
  }

  // ---- Process generation 1: serve, checkpoint, die. ----
  const std::string checkpoint_path = "/tmp/kvec_snapshot_restart.ckpt";
  std::vector<StreamEvent> restarted_events;
  {
    auto server = std::make_unique<StreamServer>(model, serve_config);
    for (size_t i = 0; i < cut; ++i) {
      for (const StreamEvent& event : server->Observe(capture[i])) {
        restarted_events.push_back(event);
      }
    }
    if (!server->SaveCheckpoint(checkpoint_path)) {
      std::printf("checkpoint save failed\n");
      return 1;
    }
    std::printf(
        "gen-1 process: served %zu packets, %d flows open, checkpoint "
        "saved -> killed\n",
        cut, server->open_keys());
    // server destroyed here: the "process" is gone.
  }

  // ---- Process generation 2: cold start, warm restore, continue. ----
  {
    auto server = std::make_unique<StreamServer>(model, serve_config);
    if (!server->LoadCheckpoint(checkpoint_path)) {
      std::printf("checkpoint load failed\n");
      return 1;
    }
    std::printf(
        "gen-2 process: restored %d open flows (%lld packets of history), "
        "resuming at packet %zu\n",
        server->open_keys(),
        static_cast<long long>(server->stats().items_processed), cut);
    for (size_t i = cut; i < capture.size(); ++i) {
      for (const StreamEvent& event : server->Observe(capture[i])) {
        restarted_events.push_back(event);
      }
    }
    for (const StreamEvent& event : server->Flush()) {
      restarted_events.push_back(event);
    }
  }

  // ---- Differential check: the restart must be invisible downstream. ----
  bool identical = reference_events.size() == restarted_events.size();
  for (size_t i = 0; identical && i < reference_events.size(); ++i) {
    identical = reference_events[i].key == restarted_events[i].key &&
                reference_events[i].predicted_label ==
                    restarted_events[i].predicted_label &&
                reference_events[i].cause == restarted_events[i].cause &&
                reference_events[i].observed_items ==
                    restarted_events[i].observed_items;
  }
  std::printf(
      "\nuninterrupted run: %zu verdicts; killed+restarted run: %zu "
      "verdicts\n",
      reference_events.size(), restarted_events.size());
  std::printf(identical
                  ? "verdict sequences are IDENTICAL — the deploy was "
                    "invisible to consumers\n"
                  : "verdict sequences DIVERGED — restore bug\n");
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}
