// Quickstart: train KVEC on a synthetic tangled key-value stream and
// classify sequences early.
//
//   1. generate a tangled key-value dataset (here: simulated network flows)
//   2. configure and train a KvecModel
//   3. evaluate accuracy/earliness on held-out streams
//   4. save and restore the model
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"

int main() {
  using namespace kvec;

  // ---- 1. Data: tangled streams of 4 concurrent flows, 6 classes. ----
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 6;
  data_config.concurrency = 4;
  data_config.avg_flow_length = 16.0;
  data_config.min_flow_length = 8;
  TrafficGenerator generator(data_config);
  Dataset dataset = GenerateDataset(generator, SplitCounts::FromTotal(60),
                                    /*seed=*/2024);
  std::printf("dataset: %zu train / %zu val / %zu test episodes\n",
              dataset.train.size(), dataset.validation.size(),
              dataset.test.size());

  // ---- 2. Model: defaults sized by the dataset spec. ----
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 5e-3f;  // earliness pressure: larger = earlier decisions
  KvecModel model(config);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.ParameterCount()));

  // ---- 3. Train and evaluate. ----
  KvecTrainer trainer(&model);
  std::vector<TrainEpochStats> history = trainer.Train(dataset.train);
  for (size_t epoch = 0; epoch < history.size(); ++epoch) {
    std::printf("epoch %zu: loss=%.3f train_acc=%.2f train_earliness=%.2f\n",
                epoch + 1, history[epoch].total_loss,
                history[epoch].train_accuracy,
                history[epoch].train_earliness);
  }
  EvaluationResult result = trainer.Evaluate(dataset.test);
  std::printf(
      "\ntest: accuracy=%.1f%% earliness=%.1f%% (HM=%.3f) over %d "
      "sequences\n",
      100 * result.summary.accuracy, 100 * result.summary.earliness,
      result.summary.harmonic_mean, result.summary.num_sequences);

  // ---- 4. Checkpoint round trip. ----
  const char* path = "/tmp/kvec_quickstart_model.bin";
  if (model.SaveToFile(path)) {
    KvecModel restored(config);
    if (restored.LoadFromFile(path)) {
      std::printf("checkpoint saved to %s and restored successfully\n", path);
    }
  }
  return 0;
}
