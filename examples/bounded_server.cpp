// Scenario: a long-lived classification service with bounded memory.
//
// streaming_router shows the exact streaming engine; this example shows
// what a *deployment* wraps around it. StreamServer adds the three bounds a
// service needs to run for days — window rotation (caps the encoder cache),
// idle timeouts (flows that end without a FIN), and a hard cap on
// concurrently open flows — and emits exactly one verdict per flow, tagged
// with what triggered it.
//
// The example also demonstrates checkpointing: the model is trained once,
// saved, and the server loads the checkpoint the way a fleet of inference
// processes would.
//
// Build & run:   ./build/examples/bounded_server
#include <cstdio>
#include <map>
#include <string>

#include "core/model.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/traffic_generator.h"

namespace {

const char* CauseName(kvec::StreamEvent::Cause cause) {
  switch (cause) {
    case kvec::StreamEvent::Cause::kPolicyHalt:
      return "policy halt";
    case kvec::StreamEvent::Cause::kIdleTimeout:
      return "idle timeout";
    case kvec::StreamEvent::Cause::kCapacityEviction:
      return "capacity eviction";
    case kvec::StreamEvent::Cause::kWindowRotation:
      return "window rotation";
    case kvec::StreamEvent::Cause::kFlush:
      return "flush";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace kvec;

  // ---- Offline: train and checkpoint a model. ----
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 4;
  data_config.concurrency = 4;
  data_config.avg_flow_length = 12.0;
  data_config.min_flow_length = 6;
  data_config.handshake_sharpness = 5.0;
  TrafficGenerator generator(data_config);
  Dataset dataset = GenerateDataset(generator, SplitCounts::FromTotal(60),
                                    /*seed=*/4242);
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 1e-2f;
  {
    KvecModel trainee(config);
    KvecTrainer trainer(&trainee);
    trainer.Train(dataset.train);
    if (!trainee.SaveToFile("/tmp/kvec_bounded_server.ckpt")) {
      std::fprintf(stderr, "failed to write checkpoint\n");
      return 1;
    }
    std::printf("trained and checkpointed model (%lld parameters)\n",
                static_cast<long long>(trainee.ParameterCount()));
  }

  // ---- Online: a serving process loads the checkpoint. ----
  KvecModel model(config);
  if (!model.LoadFromFile("/tmp/kvec_bounded_server.ckpt")) {
    std::fprintf(stderr, "failed to load checkpoint\n");
    return 1;
  }

  StreamServerConfig server_config;
  server_config.max_window_items = 600;  // small, to show rotations
  server_config.idle_timeout = 200;
  server_config.max_open_keys = 64;
  StreamServer server(model, server_config);

  // Concatenate the test episodes into one long stream (remapping keys so
  // they stay globally unique) and serve it.
  std::map<int, int> truth;  // global key -> true label
  int correct = 0;
  std::map<std::string, int> by_cause;
  int offset = 0;
  for (const TangledSequence& episode : dataset.test) {
    for (Item item : episode.items) {
      const int global_key = item.key + offset;
      truth[global_key] = episode.labels.at(item.key);
      item.key = global_key;
      for (const StreamEvent& event : server.Observe(item)) {
        ++by_cause[CauseName(event.cause)];
        if (event.predicted_label == truth[event.key]) ++correct;
      }
    }
    offset += 1000;
  }
  for (const StreamEvent& event : server.Flush()) {
    ++by_cause[CauseName(event.cause)];
    if (event.predicted_label == truth[event.key]) ++correct;
  }

  const StreamServerStats& stats = server.stats();
  std::printf("\nserved %lld items, %lld verdicts (%.1f%% correct)\n",
              static_cast<long long>(stats.items_processed),
              static_cast<long long>(stats.sequences_classified),
              100.0 * correct /
                  static_cast<double>(stats.sequences_classified));
  std::printf("engine windows started: %d\n", stats.windows_started);
  std::printf("verdicts by cause:\n");
  for (const auto& [cause, count] : by_cause) {
    std::printf("  %-18s %d\n", cause.c_str(), count);
  }
  std::printf("class distribution of verdicts:\n");
  for (size_t c = 0; c < stats.class_counts.size(); ++c) {
    std::printf("  class %zu: %lld\n", c,
                static_cast<long long>(stats.class_counts[c]));
  }
  return 0;
}
