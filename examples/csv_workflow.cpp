// Scenario: bring your own data.
//
// Real deployments don't use our simulators — they have traces. This
// example shows the full CSV workflow:
//   1. export a corpus to the documented CSV layout (here we use a
//      generated corpus as the stand-in for "your data"),
//   2. load it back with data/io.h,
//   3. describe a DatasetSpec for it and train KVEC with validation-based
//      model selection,
//   4. print a per-class classification report.
//
// Build & run:   ./build/examples/csv_workflow
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/traffic_generator.h"
#include "metrics/metrics.h"

int main() {
  using namespace kvec;

  // ---- 1. Export (pretend this CSV came from your packet capture). ----
  TrafficGeneratorConfig data_config;
  data_config.num_classes = 4;
  data_config.concurrency = 3;
  data_config.avg_flow_length = 14.0;
  data_config.min_flow_length = 7;
  TrafficGenerator generator(data_config);
  Dataset generated = GenerateDataset(generator, SplitCounts::FromTotal(60),
                                      /*seed=*/123);
  const char* train_csv = "/tmp/kvec_train.csv";
  const char* val_csv = "/tmp/kvec_val.csv";
  const char* test_csv = "/tmp/kvec_test.csv";
  SaveTangledSequences(generated.train, 2, train_csv);
  SaveTangledSequences(generated.validation, 2, val_csv);
  SaveTangledSequences(generated.test, 2, test_csv);
  std::printf("exported corpus to %s / %s / %s\n", train_csv, val_csv,
              test_csv);

  // ---- 2. Load from CSV (the entry point for real traces). ----
  std::vector<TangledSequence> train, validation, test;
  if (!LoadTangledSequences(train_csv, &train) ||
      !LoadTangledSequences(val_csv, &validation) ||
      !LoadTangledSequences(test_csv, &test)) {
    std::fprintf(stderr, "failed to load CSV corpus\n");
    return 1;
  }
  std::printf("loaded %zu / %zu / %zu episodes from CSV\n", train.size(),
              validation.size(), test.size());

  // ---- 3. Describe the data and train. ----
  DatasetSpec spec;
  spec.name = "my-csv-traffic";
  spec.value_fields = {{"size_bucket", 16}, {"direction", 2}};
  spec.session_field = 1;  // sessions = direction bursts
  spec.num_classes = 4;
  spec.max_keys_per_episode = 4;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 256;

  KvecConfig config = KvecConfig::ForSpec(spec);
  config.embed_dim = 16;
  config.state_dim = 24;
  config.num_blocks = 1;
  config.epochs = 6;
  config.beta = 1e-2f;
  KvecModel model(config);
  KvecTrainer trainer(&model);
  int best_epoch = -1;
  trainer.TrainWithValidation(train, validation, &best_epoch);
  std::printf("trained; best validation epoch = %d\n", best_epoch + 1);

  // ---- 4. Evaluate with a per-class report. ----
  EvaluationResult result = trainer.Evaluate(test);
  std::printf("\ntest accuracy %.1f%% at earliness %.1f%% (HM %.3f)\n\n",
              100 * result.summary.accuracy,
              100 * result.summary.earliness,
              result.summary.harmonic_mean);
  std::fputs(ClassificationReport(result.records, spec.num_classes).c_str(),
             stdout);
  return 0;
}
