// Scenario: e-commerce/recommendation user profiling (the paper's second
// motivating workload).
//
// Streams of user-movie rating events from several concurrent users are
// tangled together; KVEC predicts each user's profile label (gender in
// MovieLens-1M) from as few events as possible. Demonstrates the effect of
// the earliness knob beta on the same data.
//
// Build & run:   ./build/examples/user_profiling
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/presets.h"
#include "util/table.h"

int main() {
  using namespace kvec;

  Dataset dataset =
      MakePresetDataset(PresetId::kMovieLens1M, ExperimentScale::kTiny, 8);
  std::printf(
      "MovieLens-1M stand-in: %zu train episodes, value fields = (movie, "
      "genre, rating), sessions = same-genre runs\n",
      dataset.train.size());

  Table table({"beta", "accuracy(%)", "earliness(%)", "HM",
               "mean items observed"});
  for (float beta : {-1e-2f, 0.0f, 1e-2f, 1e-1f}) {
    KvecConfig config = KvecConfig::ForSpec(dataset.spec);
    config.embed_dim = 16;
    config.state_dim = 24;
    config.num_blocks = 1;
    config.epochs = 6;
    config.beta = beta;
    KvecModel model(config);
    KvecTrainer trainer(&model);
    trainer.Train(dataset.train);
    EvaluationResult result = trainer.Evaluate(dataset.test);
    double mean_observed = 0.0;
    for (const PredictionRecord& record : result.records) {
      mean_observed += record.observed_items;
    }
    if (!result.records.empty()) mean_observed /= result.records.size();
    table.AddRow({Table::FormatDouble(beta, 3),
                  Table::FormatDouble(100 * result.summary.accuracy, 1),
                  Table::FormatDouble(100 * result.summary.earliness, 1),
                  Table::FormatDouble(result.summary.harmonic_mean, 3),
                  Table::FormatDouble(mean_observed, 1)});
  }
  std::printf("\nearliness-accuracy trade-off as beta grows:\n");
  std::fputs(table.ToText().c_str(), stdout);
  std::printf(
      "\nlarger beta -> the halting policy stops after fewer rating events "
      "(profile available sooner);\nnegative beta -> waits for more "
      "evidence.\n");
  return 0;
}
