// The `kvec` driver binary — one subcommand-based CLI over the whole
// pipeline (generate → train → eval/sweep → serve/loadgen), built on the
// support library in src/cli/. All logic lives there so tests/cli_test.cc
// can drive the identical dispatch path in-process.
#include "cli/subcommands.h"

int main(int argc, char** argv) { return kvec::cli::KvecMain(argc, argv); }
