# Empty dependencies file for fig4_precision.
# This may be replaced when dependencies are built.
