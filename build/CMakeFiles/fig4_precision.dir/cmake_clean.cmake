file(REMOVE_RECURSE
  "CMakeFiles/fig4_precision.dir/bench/fig4_precision.cc.o"
  "CMakeFiles/fig4_precision.dir/bench/fig4_precision.cc.o.d"
  "fig4_precision"
  "fig4_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
