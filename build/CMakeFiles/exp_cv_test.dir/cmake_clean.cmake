file(REMOVE_RECURSE
  "CMakeFiles/exp_cv_test.dir/tests/exp_cv_test.cc.o"
  "CMakeFiles/exp_cv_test.dir/tests/exp_cv_test.cc.o.d"
  "exp_cv_test"
  "exp_cv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
