# Empty dependencies file for exp_cv_test.
# This may be replaced when dependencies are built.
