# Empty dependencies file for example_traffic_early_classification.
# This may be replaced when dependencies are built.
