file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_early_classification.dir/examples/traffic_early_classification.cpp.o"
  "CMakeFiles/example_traffic_early_classification.dir/examples/traffic_early_classification.cpp.o.d"
  "example_traffic_early_classification"
  "example_traffic_early_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_early_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
