file(REMOVE_RECURSE
  "CMakeFiles/core_heads_test.dir/tests/core_heads_test.cc.o"
  "CMakeFiles/core_heads_test.dir/tests/core_heads_test.cc.o.d"
  "core_heads_test"
  "core_heads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
