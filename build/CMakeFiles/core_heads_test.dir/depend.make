# Empty dependencies file for core_heads_test.
# This may be replaced when dependencies are built.
