# Empty dependencies file for fig12_concurrency.
# This may be replaced when dependencies are built.
