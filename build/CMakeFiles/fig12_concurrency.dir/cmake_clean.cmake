file(REMOVE_RECURSE
  "CMakeFiles/fig12_concurrency.dir/bench/fig12_concurrency.cc.o"
  "CMakeFiles/fig12_concurrency.dir/bench/fig12_concurrency.cc.o.d"
  "fig12_concurrency"
  "fig12_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
