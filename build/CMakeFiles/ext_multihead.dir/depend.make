# Empty dependencies file for ext_multihead.
# This may be replaced when dependencies are built.
