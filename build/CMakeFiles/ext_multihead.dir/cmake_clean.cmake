file(REMOVE_RECURSE
  "CMakeFiles/ext_multihead.dir/bench/ext_multihead.cc.o"
  "CMakeFiles/ext_multihead.dir/bench/ext_multihead.cc.o.d"
  "ext_multihead"
  "ext_multihead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multihead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
