# Empty dependencies file for example_bounded_server.
# This may be replaced when dependencies are built.
