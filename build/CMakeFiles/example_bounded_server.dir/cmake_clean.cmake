file(REMOVE_RECURSE
  "CMakeFiles/example_bounded_server.dir/examples/bounded_server.cpp.o"
  "CMakeFiles/example_bounded_server.dir/examples/bounded_server.cpp.o.d"
  "example_bounded_server"
  "example_bounded_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bounded_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
