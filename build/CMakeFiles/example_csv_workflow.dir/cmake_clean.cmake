file(REMOVE_RECURSE
  "CMakeFiles/example_csv_workflow.dir/examples/csv_workflow.cpp.o"
  "CMakeFiles/example_csv_workflow.dir/examples/csv_workflow.cpp.o.d"
  "example_csv_workflow"
  "example_csv_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_csv_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
