# Empty dependencies file for example_csv_workflow.
# This may be replaced when dependencies are built.
