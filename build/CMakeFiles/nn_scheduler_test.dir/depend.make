# Empty dependencies file for nn_scheduler_test.
# This may be replaced when dependencies are built.
