file(REMOVE_RECURSE
  "CMakeFiles/nn_scheduler_test.dir/tests/nn_scheduler_test.cc.o"
  "CMakeFiles/nn_scheduler_test.dir/tests/nn_scheduler_test.cc.o.d"
  "nn_scheduler_test"
  "nn_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
