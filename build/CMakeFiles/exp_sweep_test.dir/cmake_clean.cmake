file(REMOVE_RECURSE
  "CMakeFiles/exp_sweep_test.dir/tests/exp_sweep_test.cc.o"
  "CMakeFiles/exp_sweep_test.dir/tests/exp_sweep_test.cc.o.d"
  "exp_sweep_test"
  "exp_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
