# Empty dependencies file for ext_schedulers.
# This may be replaced when dependencies are built.
