file(REMOVE_RECURSE
  "CMakeFiles/ext_schedulers.dir/bench/ext_schedulers.cc.o"
  "CMakeFiles/ext_schedulers.dir/bench/ext_schedulers.cc.o.d"
  "ext_schedulers"
  "ext_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
