file(REMOVE_RECURSE
  "CMakeFiles/example_user_profiling.dir/examples/user_profiling.cpp.o"
  "CMakeFiles/example_user_profiling.dir/examples/user_profiling.cpp.o.d"
  "example_user_profiling"
  "example_user_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_user_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
