# Empty dependencies file for example_user_profiling.
# This may be replaced when dependencies are built.
