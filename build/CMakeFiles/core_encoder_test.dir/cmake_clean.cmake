file(REMOVE_RECURSE
  "CMakeFiles/core_encoder_test.dir/tests/core_encoder_test.cc.o"
  "CMakeFiles/core_encoder_test.dir/tests/core_encoder_test.cc.o.d"
  "core_encoder_test"
  "core_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
