# Empty dependencies file for data_session_test.
# This may be replaced when dependencies are built.
