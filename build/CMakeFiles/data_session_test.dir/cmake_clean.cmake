file(REMOVE_RECURSE
  "CMakeFiles/data_session_test.dir/tests/data_session_test.cc.o"
  "CMakeFiles/data_session_test.dir/tests/data_session_test.cc.o.d"
  "data_session_test"
  "data_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
