# Empty dependencies file for metrics_calibration_test.
# This may be replaced when dependencies are built.
