file(REMOVE_RECURSE
  "CMakeFiles/metrics_calibration_test.dir/tests/metrics_calibration_test.cc.o"
  "CMakeFiles/metrics_calibration_test.dir/tests/metrics_calibration_test.cc.o.d"
  "metrics_calibration_test"
  "metrics_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
