# Empty dependencies file for fig5_recall.
# This may be replaced when dependencies are built.
