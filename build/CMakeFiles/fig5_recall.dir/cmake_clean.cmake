file(REMOVE_RECURSE
  "CMakeFiles/fig5_recall.dir/bench/fig5_recall.cc.o"
  "CMakeFiles/fig5_recall.dir/bench/fig5_recall.cc.o.d"
  "fig5_recall"
  "fig5_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
