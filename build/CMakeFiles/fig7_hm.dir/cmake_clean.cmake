file(REMOVE_RECURSE
  "CMakeFiles/fig7_hm.dir/bench/fig7_hm.cc.o"
  "CMakeFiles/fig7_hm.dir/bench/fig7_hm.cc.o.d"
  "fig7_hm"
  "fig7_hm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
