# Empty dependencies file for fig7_hm.
# This may be replaced when dependencies are built.
