# Empty dependencies file for ext_crossval.
# This may be replaced when dependencies are built.
