file(REMOVE_RECURSE
  "CMakeFiles/ext_crossval.dir/bench/ext_crossval.cc.o"
  "CMakeFiles/ext_crossval.dir/bench/ext_crossval.cc.o.d"
  "ext_crossval"
  "ext_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
