file(REMOVE_RECURSE
  "CMakeFiles/inference_mode_test.dir/tests/inference_mode_test.cc.o"
  "CMakeFiles/inference_mode_test.dir/tests/inference_mode_test.cc.o.d"
  "inference_mode_test"
  "inference_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
