# Empty dependencies file for inference_mode_test.
# This may be replaced when dependencies are built.
