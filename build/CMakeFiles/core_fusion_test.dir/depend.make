# Empty dependencies file for core_fusion_test.
# This may be replaced when dependencies are built.
