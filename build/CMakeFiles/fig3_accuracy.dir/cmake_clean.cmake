file(REMOVE_RECURSE
  "CMakeFiles/fig3_accuracy.dir/bench/fig3_accuracy.cc.o"
  "CMakeFiles/fig3_accuracy.dir/bench/fig3_accuracy.cc.o.d"
  "fig3_accuracy"
  "fig3_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
