# Empty dependencies file for fig3_accuracy.
# This may be replaced when dependencies are built.
