# Empty dependencies file for headline_improvements.
# This may be replaced when dependencies are built.
