file(REMOVE_RECURSE
  "CMakeFiles/headline_improvements.dir/bench/headline_improvements.cc.o"
  "CMakeFiles/headline_improvements.dir/bench/headline_improvements.cc.o.d"
  "headline_improvements"
  "headline_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
