file(REMOVE_RECURSE
  "CMakeFiles/core_stream_server_test.dir/tests/core_stream_server_test.cc.o"
  "CMakeFiles/core_stream_server_test.dir/tests/core_stream_server_test.cc.o.d"
  "core_stream_server_test"
  "core_stream_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stream_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
