# Empty dependencies file for core_stream_server_test.
# This may be replaced when dependencies are built.
