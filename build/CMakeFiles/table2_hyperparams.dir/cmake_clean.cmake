file(REMOVE_RECURSE
  "CMakeFiles/table2_hyperparams.dir/bench/table2_hyperparams.cc.o"
  "CMakeFiles/table2_hyperparams.dir/bench/table2_hyperparams.cc.o.d"
  "table2_hyperparams"
  "table2_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
