# Empty dependencies file for table2_hyperparams.
# This may be replaced when dependencies are built.
