# Empty dependencies file for micro_encoder.
# This may be replaced when dependencies are built.
