file(REMOVE_RECURSE
  "CMakeFiles/micro_encoder.dir/bench/micro_encoder.cc.o"
  "CMakeFiles/micro_encoder.dir/bench/micro_encoder.cc.o.d"
  "micro_encoder"
  "micro_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
