# Empty dependencies file for fig11_halting.
# This may be replaced when dependencies are built.
