file(REMOVE_RECURSE
  "CMakeFiles/fig11_halting.dir/bench/fig11_halting.cc.o"
  "CMakeFiles/fig11_halting.dir/bench/fig11_halting.cc.o.d"
  "fig11_halting"
  "fig11_halting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_halting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
