file(REMOVE_RECURSE
  "CMakeFiles/core_correlation_test.dir/tests/core_correlation_test.cc.o"
  "CMakeFiles/core_correlation_test.dir/tests/core_correlation_test.cc.o.d"
  "core_correlation_test"
  "core_correlation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
