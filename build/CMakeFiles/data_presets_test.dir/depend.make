# Empty dependencies file for data_presets_test.
# This may be replaced when dependencies are built.
