file(REMOVE_RECURSE
  "CMakeFiles/data_presets_test.dir/tests/data_presets_test.cc.o"
  "CMakeFiles/data_presets_test.dir/tests/data_presets_test.cc.o.d"
  "data_presets_test"
  "data_presets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
