file(REMOVE_RECURSE
  "CMakeFiles/core_input_embedding_test.dir/tests/core_input_embedding_test.cc.o"
  "CMakeFiles/core_input_embedding_test.dir/tests/core_input_embedding_test.cc.o.d"
  "core_input_embedding_test"
  "core_input_embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_input_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
