# Empty dependencies file for core_input_embedding_test.
# This may be replaced when dependencies are built.
