# Empty dependencies file for fig6_f1.
# This may be replaced when dependencies are built.
