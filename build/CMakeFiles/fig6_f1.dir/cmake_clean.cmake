file(REMOVE_RECURSE
  "CMakeFiles/fig6_f1.dir/bench/fig6_f1.cc.o"
  "CMakeFiles/fig6_f1.dir/bench/fig6_f1.cc.o.d"
  "fig6_f1"
  "fig6_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
