# Empty dependencies file for baselines_classic_test.
# This may be replaced when dependencies are built.
