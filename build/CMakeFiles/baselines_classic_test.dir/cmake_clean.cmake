file(REMOVE_RECURSE
  "CMakeFiles/baselines_classic_test.dir/tests/baselines_classic_test.cc.o"
  "CMakeFiles/baselines_classic_test.dir/tests/baselines_classic_test.cc.o.d"
  "baselines_classic_test"
  "baselines_classic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
