# Empty dependencies file for ext_fusion.
# This may be replaced when dependencies are built.
