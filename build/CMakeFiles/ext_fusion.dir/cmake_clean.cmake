file(REMOVE_RECURSE
  "CMakeFiles/ext_fusion.dir/bench/ext_fusion.cc.o"
  "CMakeFiles/ext_fusion.dir/bench/ext_fusion.cc.o.d"
  "ext_fusion"
  "ext_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
