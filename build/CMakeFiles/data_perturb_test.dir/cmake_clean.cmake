file(REMOVE_RECURSE
  "CMakeFiles/data_perturb_test.dir/tests/data_perturb_test.cc.o"
  "CMakeFiles/data_perturb_test.dir/tests/data_perturb_test.cc.o.d"
  "data_perturb_test"
  "data_perturb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_perturb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
