# Empty dependencies file for data_perturb_test.
# This may be replaced when dependencies are built.
