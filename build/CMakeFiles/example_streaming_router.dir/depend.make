# Empty dependencies file for example_streaming_router.
# This may be replaced when dependencies are built.
