file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_router.dir/examples/streaming_router.cpp.o"
  "CMakeFiles/example_streaming_router.dir/examples/streaming_router.cpp.o.d"
  "example_streaming_router"
  "example_streaming_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
