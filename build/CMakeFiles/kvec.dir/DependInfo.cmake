
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_model.cc" "CMakeFiles/kvec.dir/src/baselines/baseline_model.cc.o" "gcc" "CMakeFiles/kvec.dir/src/baselines/baseline_model.cc.o.d"
  "/root/repo/src/baselines/baseline_trainer.cc" "CMakeFiles/kvec.dir/src/baselines/baseline_trainer.cc.o" "gcc" "CMakeFiles/kvec.dir/src/baselines/baseline_trainer.cc.o.d"
  "/root/repo/src/baselines/indicator_matcher.cc" "CMakeFiles/kvec.dir/src/baselines/indicator_matcher.cc.o" "gcc" "CMakeFiles/kvec.dir/src/baselines/indicator_matcher.cc.o.d"
  "/root/repo/src/baselines/prefix_ects.cc" "CMakeFiles/kvec.dir/src/baselines/prefix_ects.cc.o" "gcc" "CMakeFiles/kvec.dir/src/baselines/prefix_ects.cc.o.d"
  "/root/repo/src/core/config.cc" "CMakeFiles/kvec.dir/src/core/config.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/config.cc.o.d"
  "/root/repo/src/core/correlation.cc" "CMakeFiles/kvec.dir/src/core/correlation.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/correlation.cc.o.d"
  "/root/repo/src/core/encoder.cc" "CMakeFiles/kvec.dir/src/core/encoder.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/encoder.cc.o.d"
  "/root/repo/src/core/fusion.cc" "CMakeFiles/kvec.dir/src/core/fusion.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/fusion.cc.o.d"
  "/root/repo/src/core/heads.cc" "CMakeFiles/kvec.dir/src/core/heads.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/heads.cc.o.d"
  "/root/repo/src/core/input_embedding.cc" "CMakeFiles/kvec.dir/src/core/input_embedding.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/input_embedding.cc.o.d"
  "/root/repo/src/core/model.cc" "CMakeFiles/kvec.dir/src/core/model.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/model.cc.o.d"
  "/root/repo/src/core/online.cc" "CMakeFiles/kvec.dir/src/core/online.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/online.cc.o.d"
  "/root/repo/src/core/stream_server.cc" "CMakeFiles/kvec.dir/src/core/stream_server.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/stream_server.cc.o.d"
  "/root/repo/src/core/trainer.cc" "CMakeFiles/kvec.dir/src/core/trainer.cc.o" "gcc" "CMakeFiles/kvec.dir/src/core/trainer.cc.o.d"
  "/root/repo/src/data/generator.cc" "CMakeFiles/kvec.dir/src/data/generator.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "CMakeFiles/kvec.dir/src/data/io.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/io.cc.o.d"
  "/root/repo/src/data/movielens_generator.cc" "CMakeFiles/kvec.dir/src/data/movielens_generator.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/movielens_generator.cc.o.d"
  "/root/repo/src/data/perturb.cc" "CMakeFiles/kvec.dir/src/data/perturb.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/perturb.cc.o.d"
  "/root/repo/src/data/presets.cc" "CMakeFiles/kvec.dir/src/data/presets.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/presets.cc.o.d"
  "/root/repo/src/data/session.cc" "CMakeFiles/kvec.dir/src/data/session.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/session.cc.o.d"
  "/root/repo/src/data/stats.cc" "CMakeFiles/kvec.dir/src/data/stats.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/stats.cc.o.d"
  "/root/repo/src/data/stop_signal_generator.cc" "CMakeFiles/kvec.dir/src/data/stop_signal_generator.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/stop_signal_generator.cc.o.d"
  "/root/repo/src/data/traffic_generator.cc" "CMakeFiles/kvec.dir/src/data/traffic_generator.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/traffic_generator.cc.o.d"
  "/root/repo/src/data/types.cc" "CMakeFiles/kvec.dir/src/data/types.cc.o" "gcc" "CMakeFiles/kvec.dir/src/data/types.cc.o.d"
  "/root/repo/src/exp/cache.cc" "CMakeFiles/kvec.dir/src/exp/cache.cc.o" "gcc" "CMakeFiles/kvec.dir/src/exp/cache.cc.o.d"
  "/root/repo/src/exp/cv.cc" "CMakeFiles/kvec.dir/src/exp/cv.cc.o" "gcc" "CMakeFiles/kvec.dir/src/exp/cv.cc.o.d"
  "/root/repo/src/exp/method.cc" "CMakeFiles/kvec.dir/src/exp/method.cc.o" "gcc" "CMakeFiles/kvec.dir/src/exp/method.cc.o.d"
  "/root/repo/src/exp/sweep.cc" "CMakeFiles/kvec.dir/src/exp/sweep.cc.o" "gcc" "CMakeFiles/kvec.dir/src/exp/sweep.cc.o.d"
  "/root/repo/src/metrics/calibration.cc" "CMakeFiles/kvec.dir/src/metrics/calibration.cc.o" "gcc" "CMakeFiles/kvec.dir/src/metrics/calibration.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "CMakeFiles/kvec.dir/src/metrics/metrics.cc.o" "gcc" "CMakeFiles/kvec.dir/src/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/attention.cc" "CMakeFiles/kvec.dir/src/nn/attention.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/attention.cc.o.d"
  "/root/repo/src/nn/init.cc" "CMakeFiles/kvec.dir/src/nn/init.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "CMakeFiles/kvec.dir/src/nn/layers.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/layers.cc.o.d"
  "/root/repo/src/nn/lstm_cell.cc" "CMakeFiles/kvec.dir/src/nn/lstm_cell.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/lstm_cell.cc.o.d"
  "/root/repo/src/nn/module.cc" "CMakeFiles/kvec.dir/src/nn/module.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "CMakeFiles/kvec.dir/src/nn/optimizer.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/scheduler.cc" "CMakeFiles/kvec.dir/src/nn/scheduler.cc.o" "gcc" "CMakeFiles/kvec.dir/src/nn/scheduler.cc.o.d"
  "/root/repo/src/tensor/buffer_pool.cc" "CMakeFiles/kvec.dir/src/tensor/buffer_pool.cc.o" "gcc" "CMakeFiles/kvec.dir/src/tensor/buffer_pool.cc.o.d"
  "/root/repo/src/tensor/kernels.cc" "CMakeFiles/kvec.dir/src/tensor/kernels.cc.o" "gcc" "CMakeFiles/kvec.dir/src/tensor/kernels.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/kvec.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/kvec.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/kvec.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/kvec.dir/src/tensor/tensor.cc.o.d"
  "/root/repo/src/util/check.cc" "CMakeFiles/kvec.dir/src/util/check.cc.o" "gcc" "CMakeFiles/kvec.dir/src/util/check.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/kvec.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/kvec.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/serialize.cc" "CMakeFiles/kvec.dir/src/util/serialize.cc.o" "gcc" "CMakeFiles/kvec.dir/src/util/serialize.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/kvec.dir/src/util/table.cc.o" "gcc" "CMakeFiles/kvec.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/kvec.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/kvec.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
