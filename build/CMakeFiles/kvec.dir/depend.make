# Empty dependencies file for kvec.
# This may be replaced when dependencies are built.
