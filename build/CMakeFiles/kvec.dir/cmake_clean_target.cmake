file(REMOVE_RECURSE
  "libkvec.a"
)
