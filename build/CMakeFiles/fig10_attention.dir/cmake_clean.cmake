file(REMOVE_RECURSE
  "CMakeFiles/fig10_attention.dir/bench/fig10_attention.cc.o"
  "CMakeFiles/fig10_attention.dir/bench/fig10_attention.cc.o.d"
  "fig10_attention"
  "fig10_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
