# Empty dependencies file for fig10_attention.
# This may be replaced when dependencies are built.
