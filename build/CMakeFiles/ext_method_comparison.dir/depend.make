# Empty dependencies file for ext_method_comparison.
# This may be replaced when dependencies are built.
