file(REMOVE_RECURSE
  "CMakeFiles/ext_method_comparison.dir/bench/ext_method_comparison.cc.o"
  "CMakeFiles/ext_method_comparison.dir/bench/ext_method_comparison.cc.o.d"
  "ext_method_comparison"
  "ext_method_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_method_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
