# Empty dependencies file for ext_selective_corr.
# This may be replaced when dependencies are built.
