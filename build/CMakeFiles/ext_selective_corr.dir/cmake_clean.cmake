file(REMOVE_RECURSE
  "CMakeFiles/ext_selective_corr.dir/bench/ext_selective_corr.cc.o"
  "CMakeFiles/ext_selective_corr.dir/bench/ext_selective_corr.cc.o.d"
  "ext_selective_corr"
  "ext_selective_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selective_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
