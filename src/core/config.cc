#include "core/config.h"

#include "util/check.h"

namespace kvec {

KvecConfig KvecConfig::ForSpec(const DatasetSpec& spec) {
  KVEC_CHECK_GT(spec.num_classes, 0);
  KVEC_CHECK_GT(spec.max_keys_per_episode, 0);
  KVEC_CHECK_GT(spec.max_sequence_length, 0);
  KVEC_CHECK_GT(spec.max_episode_length, 0);
  KVEC_CHECK(!spec.value_fields.empty());
  KvecConfig config;
  config.spec = spec;
  config.correlation.session_field = spec.session_field;
  return config;
}

}  // namespace kvec
