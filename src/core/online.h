// Streaming inference engine: classify key-value sequences of a live
// tangled stream, one item — or one microbatch — at a time.
//
// This is the deployment-shaped API of the library (e.g., a router deciding
// per-flow application types as packets arrive). It combines
//  * a CorrelationTracker (streaming visibility sets),
//  * an IncrementalEncoder (O(t·d) per item instead of re-encoding), and
//  * the frozen fusion / policy / classifier heads of a trained KvecModel.
// Matches KvecTrainer::Evaluate's deterministic halting (Halt iff
// π(s) > 0.5); equivalence is covered by integration tests.
//
// Observation is split into two stages so callers can microbatch:
//  * EncodeBatch — correlation tracking + incremental encoding for B
//    consecutive stream items, driving the encoder's projections through
//    one GEMM per block instead of B row-vector multiplies. Every item is
//    encoded (halted keys included: their items shape the visibility sets
//    of live keys).
//  * DecideObserved — per item, folds the encoded row into its key's
//    fusion state and runs the halting policy / classifier.
// Observe == EncodeBatch of one item + DecideObserved, and ObserveBatch is
// stream-order equivalent to B Observe calls (pinned by
// core_batch_equivalence_test.cc). StreamServer interleaves the two stages
// with its own bookkeeping to keep eviction semantics identical.
//
// Threading: NOT thread-safe — every call mutates the stream clock, the
// correlation index, and the encoder caches. Run one engine per serving
// thread; ShardedStreamServer does exactly that (one engine per shard
// behind a per-shard mutex) while all engines share one frozen model.
// Complexity: O(t_visible · d) per item for encoding (incremental, never
// re-encodes history) plus O(matches + log) correlation tracking — see
// core/correlation.h. Memory grows with every observed item until the
// owner rotates the engine (StreamServer's max_window_items bound).
#pragma once

#include <memory>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "core/correlation.h"
#include "core/encoder.h"
#include "core/model.h"

namespace kvec {

// The engine's verdict on one observed item.
struct OnlineDecision {
  int key = 0;
  bool halted_now = false;       // this item triggered the halt of its key
  bool already_halted = false;   // key was halted earlier; item ignored
  int predicted_label = -1;      // valid once halted
  double halt_probability = 0.0;
  double confidence = 0.0;  // classifier max-softmax, set on halt
  int observed_items = 0;   // n_k so far
};

class OnlineClassifier {
 public:
  // `model` must outlive the classifier and should be trained; the engine
  // never updates parameters. `memory` backs the long-lived per-key state
  // (key-state map nodes and the correlation tracker's containers);
  // StreamServer passes its shard's ShardPool, standalone users get the
  // default resource. The resource must outlive the classifier.
  explicit OnlineClassifier(
      const KvecModel& model,
      std::pmr::memory_resource* memory = std::pmr::get_default_resource());

  // Feeds the next item of the tangled stream (chronological order).
  OnlineDecision Observe(const Item& item);

  // Batched ingest: equivalent to calling Observe on each item in order
  // (items must be in stream order), but the encoder runs the whole batch
  // through blocked GEMMs. Returns one decision per item, in order.
  std::vector<OnlineDecision> ObserveBatch(const std::vector<Item>& items);

  // ---- Two-stage API (used by StreamServer; see file comment). ----

  // Stage 1: tracks + encodes `count` consecutive stream items, writing
  // their final-block embedding rows to `rows` ([count, embed_dim],
  // row-major). Advances per-key positions and the stream clock.
  void EncodeBatch(const Item* items, int count, std::vector<float>* rows);

  // Stage 2: folds `row` (length embed_dim, from EncodeBatch) into `key`'s
  // fusion state and evaluates halting, exactly as Observe does. Must be
  // called once per encoded item, in stream order.
  OnlineDecision DecideObserved(int key, const float* row);

  // Forces classification of a still-open key from its current state
  // (e.g., when the flow terminates). Returns -1 if the key was never seen.
  // When `confidence` is non-null it receives the classifier's max-softmax
  // probability (0 if the key was never seen).
  int ForceClassify(int key, double* confidence = nullptr);

  // Observed-item count of a key (0 if never seen).
  int ObservedItems(int key) const;

  bool IsHalted(int key) const;
  int num_items_observed() const { return num_items_; }
  int embed_dim() const { return model_.config().embed_dim; }

  // Serving-state checkpointing: the stream clock, the correlation
  // tracker, the encoder's K/V caches, and every per-key fusion state.
  // Restore must be given an engine built over the same model (dimensions
  // and correlation options are validated; weights are the caller's
  // responsibility, exactly as with KvecModel::LoadFromFile). Fails closed:
  // returns false with *this untouched on corrupt or mismatched bytes.
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader);

  // Delta checkpointing (docs/SERVING.md "Incremental checkpoints"): the
  // engine-side state of exactly the keys in `dirty_sorted` (strictly
  // ascending stream keys mutated since the base snapshot), the correlation
  // tracker's delta for the same keys, and the encoder's appended K/V rows
  // since `base_items`. The caller passes base_items = 0 after a window
  // rotation (the delta then carries the whole young window). ApplyDelta
  // expects *this to hold exactly the base state (its item clock must equal
  // the delta's base_items echo) and upserts on top; it fails closed on
  // corrupt bytes but may leave *this partially updated — callers stage
  // into a scratch engine and discard on failure, exactly like the chain
  // loader's staged-servers pattern.
  void SnapshotDelta(BinaryWriter* writer, const std::vector<int>& dirty_sorted,
                     int base_items) const;
  bool ApplyDelta(BinaryReader* reader);

  // Rebuilds the per-key map and tracker containers into `memory` (leaving
  // the old resource empty) and tight-repacks the encoder's K/V arena.
  // Observable behaviour is unchanged — shard compaction's correctness
  // contract (bit-identical events, byte-identical checkpoints) rests on
  // every snapshot path already being canonical-order.
  void Repool(std::pmr::memory_resource* memory);

  // Returns the encoder's batch scratch arena to its reset point; the
  // serving loop calls this after each drained microbatch.
  void ResetEncodeScratch();

  // ---- Memory accounting (see StreamServerStats) ----
  size_t encoder_resident_bytes() const;  // K/V arena + scratch reserved
  size_t scratch_high_water() const;

 private:
  struct KeyState {
    FusionState state;
    bool halted = false;
    int observed = 0;
    int position_in_key = 0;
    int predicted = -1;
  };
  // pmr allocators do not propagate on assignment, so rebinding the map to
  // a fresh pool (Repool) means reconstructing it; owning it through a
  // pointer makes that a swap.
  using KeyStateMap = std::pmr::unordered_map<int, KeyState>;

  // One per-key record of the snapshot byte stream (shared by the full and
  // delta paths so the two formats cannot drift).
  void WriteKeyState(BinaryWriter* writer, int key,
                     const KeyState& state) const;
  bool ReadKeyState(BinaryReader* reader, int* key, KeyState* state) const;

  const KvecModel& model_;
  std::pmr::memory_resource* memory_;
  IncrementalEncoder incremental_;
  CorrelationTracker tracker_;
  std::unique_ptr<KeyStateMap> keys_;
  int num_items_ = 0;
  // EncodeBatch scratch, reused across calls.
  std::vector<std::vector<int>> visible_scratch_;
  std::vector<int> position_scratch_;
};

}  // namespace kvec

