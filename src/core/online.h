// Streaming inference engine: classify key-value sequences of a live
// tangled stream, one item at a time.
//
// This is the deployment-shaped API of the library (e.g., a router deciding
// per-flow application types as packets arrive). It combines
//  * a CorrelationTracker (streaming visibility sets),
//  * an IncrementalEncoder (O(t·d) per item instead of re-encoding), and
//  * the frozen fusion / policy / classifier heads of a trained KvecModel.
// Matches KvecTrainer::Evaluate's deterministic halting (Halt iff
// π(s) > 0.5); equivalence is covered by integration tests.
#ifndef KVEC_CORE_ONLINE_H_
#define KVEC_CORE_ONLINE_H_

#include <map>
#include <vector>

#include "core/correlation.h"
#include "core/encoder.h"
#include "core/model.h"

namespace kvec {

// The engine's verdict on one observed item.
struct OnlineDecision {
  int key = 0;
  bool halted_now = false;       // this item triggered the halt of its key
  bool already_halted = false;   // key was halted earlier; item ignored
  int predicted_label = -1;      // valid once halted
  double halt_probability = 0.0;
  double confidence = 0.0;  // classifier max-softmax, set on halt
  int observed_items = 0;   // n_k so far
};

class OnlineClassifier {
 public:
  // `model` must outlive the classifier and should be trained; the engine
  // never updates parameters.
  explicit OnlineClassifier(const KvecModel& model);

  // Feeds the next item of the tangled stream (chronological order).
  OnlineDecision Observe(const Item& item);

  // Forces classification of a still-open key from its current state
  // (e.g., when the flow terminates). Returns -1 if the key was never seen.
  // When `confidence` is non-null it receives the classifier's max-softmax
  // probability (0 if the key was never seen).
  int ForceClassify(int key, double* confidence = nullptr);

  // Observed-item count of a key (0 if never seen).
  int ObservedItems(int key) const;

  bool IsHalted(int key) const;
  int num_items_observed() const { return num_items_; }

 private:
  struct KeyState {
    FusionState state;
    bool halted = false;
    int observed = 0;
    int position_in_key = 0;
    int predicted = -1;
  };

  const KvecModel& model_;
  IncrementalEncoder incremental_;
  CorrelationTracker tracker_;
  std::map<int, KeyState> keys_;
  int num_items_ = 0;
};

}  // namespace kvec

#endif  // KVEC_CORE_ONLINE_H_
