#include "core/heads.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

EctlPolicy::EctlPolicy(int state_dim, Rng& rng)
    : linear_(state_dim, 1, rng) {}

Tensor EctlPolicy::HaltProbability(const Tensor& state) const {
  return ops::Sigmoid(linear_.Forward(state));
}

void EctlPolicy::CollectParameters(std::vector<Tensor>* out) {
  linear_.CollectParameters(out);
}

BaselineNetwork::BaselineNetwork(int state_dim, int hidden_dim, Rng& rng)
    : mlp_({state_dim, hidden_dim, 1}, rng) {}

Tensor BaselineNetwork::Forward(const Tensor& state) const {
  return mlp_.Forward(state);
}

void BaselineNetwork::CollectParameters(std::vector<Tensor>* out) {
  mlp_.CollectParameters(out);
}

SequenceClassifier::SequenceClassifier(int state_dim, int num_classes,
                                       Rng& rng)
    : linear_(state_dim, num_classes, rng) {}

Tensor SequenceClassifier::Logits(const Tensor& state) const {
  return linear_.Forward(state);
}

void SequenceClassifier::CollectParameters(std::vector<Tensor>* out) {
  linear_.CollectParameters(out);
}

double MaxSoftmaxProbability(const Tensor& logits) {
  KVEC_CHECK_EQ(logits.rows(), 1);
  double max_logit = -1e30;
  for (float v : logits.data()) max_logit = std::max<double>(max_logit, v);
  double total = 0.0, best = 0.0;
  for (float v : logits.data()) {
    const double e = std::exp(v - max_logit);
    total += e;
    best = std::max(best, e);
  }
  return best / total;
}

}  // namespace kvec
