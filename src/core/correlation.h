// Item-correlation tracking and the dynamic mask matrix M(t) (paper §IV-B).
//
// Two items of a tangled sequence are correlated when
//   * key correlation:   e.k == e'.k, or
//   * value correlation: there is a key k such that ⟨k, e.v⟩ and ⟨k, e'.v⟩
//     would fall in the same *session* of S_k (a maximal, uninterrupted run
//     of items agreeing on the session field).
//
// `CorrelationTracker` implements the streaming interpretation: when item i
// arrives it is correlated (a) with all earlier items of its own key and
// (b) with the items of any key's currently *open* session whose session-
// field value matches item i's and whose last item arrived at most
// `value_correlation_window` stream positions ago ("uninterrupted in time").
//
// Value matching is served by an inverted index: for each session value the
// tracker keeps the open sessions currently carrying that value, ordered by
// the stream position of their most recent item. An arriving item walks its
// value's bucket newest-first and stops at the first session outside the
// recency window, so the per-item cost is O(own-key items + matches +
// log sessions-sharing-the-value) — independent of the total number of open
// sessions. The pre-index implementation scanned every open session per
// item, which is exactly what a busy server with 10⁵ open keys cannot
// afford (see bench/micro_pipeline.cc, BM_CorrelationObserve).
//
// The same tracker drives both the batch mask builder used in training and
// the online inference engine, so the two cannot drift apart:
// BuildEpisodeMask is a loop over ObserveItem and therefore exercises the
// identical index.
//
// Threading: NOT thread-safe; a tracker belongs to exactly one engine
// (OnlineClassifier) and is mutated on every ObserveItem. Independent
// trackers on different threads never share state.
//
// Memory: every container — the per-key item lists, the open sessions
// (including their index vectors), and the inverted index — allocates from
// the memory_resource passed at construction. Serving hands in the shard's
// ShardPool so session churn recycles pool nodes; training and tests use
// the default resource. Repool() rebuilds the whole state into a fresh
// resource (shard compaction).
#pragma once

#include <map>
#include <memory>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "data/types.h"
#include "tensor/tensor.h"
#include "util/serialize.h"

namespace kvec {

class CorrelationTracker {
 public:
  explicit CorrelationTracker(
      const CorrelationOptions& options,
      std::pmr::memory_resource* memory = std::pmr::get_default_resource());

  // Registers the next stream item and returns the indices of *earlier*
  // items visible to it (its own index is always implicitly visible).
  // Indices are global stream positions, strictly increasing calls.
  // Same-key indices come first (ascending); cross-key value-correlated
  // indices follow, also ascending — a canonical order, so batched and
  // item-at-a-time consumers see identical sets in identical order.
  std::vector<int> ObserveItem(const Item& item);

  int num_observed() const { return next_index_; }

  // Serving-state checkpointing. Snapshot writes a canonical (key-sorted)
  // byte stream; Restore parses it into a tracker constructed with the
  // same options and rebuilds the inverted index from the open sessions.
  // Restore fails closed: on truncated/corrupt bytes, an options mismatch,
  // or structurally impossible indices it returns false and leaves *this
  // untouched.
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader);

  // Delta checkpointing (docs/SERVING.md "Incremental checkpoints").
  // Per-key state only ever changes when that key's item is observed, so a
  // delta carries the *current* state of exactly the keys in
  // `dirty_sorted` (strictly ascending): the item-index list and the open
  // session, each behind a presence flag. ApplyDelta upserts those keys
  // into a tracker already holding the base state — replacing their lists
  // and repositioning their sessions in the inverted index — and adopts
  // the delta's stream clock. `expected_next_index`, when non-negative,
  // must match the delta's clock (the caller cross-checks against the
  // engine's item count). ApplyDelta fails closed on corrupt bytes but may
  // leave *this partially updated — callers stage into a scratch tracker
  // (the chain loader's staged-servers pattern) and discard on failure.
  void SnapshotDelta(BinaryWriter* writer,
                     const std::vector<int>& dirty_sorted) const;
  bool ApplyDelta(BinaryReader* reader, int expected_next_index = -1);

  // Rebuilds every container into `memory` and adopts it for all future
  // allocations. Observable state is unchanged (the canonical key-sorted
  // Snapshot cannot tell the difference); the point is that the old
  // resource is left with zero live blocks so the caller can drop it.
  void Repool(std::pmr::memory_resource* memory);

 private:
  // Allocator-aware so pmr maps propagate their resource into the per-
  // session index vector (uses-allocator construction).
  struct OpenSession {
    using allocator_type = std::pmr::polymorphic_allocator<int>;
    OpenSession() = default;
    explicit OpenSession(const allocator_type& alloc) : item_indices(alloc) {}
    OpenSession(const OpenSession& other, const allocator_type& alloc)
        : session_value(other.session_value),
          item_indices(other.item_indices, alloc),
          last_index(other.last_index) {}
    OpenSession(OpenSession&& other, const allocator_type& alloc)
        : session_value(other.session_value),
          item_indices(std::move(other.item_indices), alloc),
          last_index(other.last_index) {}
    OpenSession(const OpenSession&) = default;
    OpenSession(OpenSession&&) = default;
    OpenSession& operator=(const OpenSession&) = default;
    OpenSession& operator=(OpenSession&&) = default;

    int session_value = -1;
    std::pmr::vector<int> item_indices;  // members of the open session
    int last_index = -1;
  };

  // All pool-backed containers live behind one pointer: pmr allocators do
  // not propagate on assignment, so moving state into a different pool
  // means *reconstructing* the containers — swap the struct wholesale.
  struct State {
    explicit State(std::pmr::memory_resource* memory)
        : key_items(memory), open_sessions(memory), by_value(memory) {}
    // Hot per-item lookups: iteration order is not load-bearing, so these
    // are hash maps (the ordered walk lives in by_value below).
    std::pmr::unordered_map<int, std::pmr::vector<int>> key_items;
    std::pmr::unordered_map<int, OpenSession> open_sessions;
    // Inverted index: session value -> (last_index -> key) over the open
    // sessions currently carrying that value. last_index is unique (one
    // item per stream position), and the map order is recency order, so the
    // window cutoff is a newest-first walk stopping at the first stale
    // session.
    std::pmr::unordered_map<int, std::pmr::map<int, int>> by_value;
  };

  // Collects the cross-key value matches for an item with `session_value`
  // arriving at stream position `index`, appending to `visible`.
  void AppendValueMatches(int own_key, int session_value, int index,
                          std::vector<int>* visible) const;

  CorrelationOptions options_;
  int next_index_ = 0;
  std::pmr::memory_resource* memory_;
  std::unique_ptr<State> state_;
};

// The dynamic mask matrix over a whole episode.
struct EpisodeMask {
  // [T,T] tensor with 0 where item j is visible to item i (j <= i) and
  // ops::kNegInf elsewhere; constant (no gradient).
  Tensor mask;
  // For attention instrumentation (Fig. 10): visible[i] lists the stream
  // positions j < i visible to i.
  std::vector<std::vector<int>> visible;
};

// Builds M(T) for `episode` under `options`.
EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options);

}  // namespace kvec

