// Item-correlation tracking and the dynamic mask matrix M(t) (paper §IV-B).
//
// Two items of a tangled sequence are correlated when
//   * key correlation:   e.k == e'.k, or
//   * value correlation: there is a key k such that ⟨k, e.v⟩ and ⟨k, e'.v⟩
//     would fall in the same *session* of S_k (a maximal, uninterrupted run
//     of items agreeing on the session field).
//
// `CorrelationTracker` implements the streaming interpretation: when item i
// arrives it is correlated (a) with all earlier items of its own key and
// (b) with the items of any key's currently *open* session whose session-
// field value matches item i's and whose last item arrived at most
// `value_correlation_window` stream positions ago ("uninterrupted in time").
//
// Value matching is served by an inverted index: for each session value the
// tracker keeps the open sessions currently carrying that value, ordered by
// the stream position of their most recent item. An arriving item walks its
// value's bucket newest-first and stops at the first session outside the
// recency window, so the per-item cost is O(own-key items + matches +
// log sessions-sharing-the-value) — independent of the total number of open
// sessions. The pre-index implementation scanned every open session per
// item, which is exactly what a busy server with 10⁵ open keys cannot
// afford (see bench/micro_pipeline.cc, BM_CorrelationObserve).
//
// The same tracker drives both the batch mask builder used in training and
// the online inference engine, so the two cannot drift apart:
// BuildEpisodeMask is a loop over ObserveItem and therefore exercises the
// identical index.
//
// Threading: NOT thread-safe; a tracker belongs to exactly one engine
// (OnlineClassifier) and is mutated on every ObserveItem. Independent
// trackers on different threads never share state.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "data/types.h"
#include "tensor/tensor.h"
#include "util/serialize.h"

namespace kvec {

class CorrelationTracker {
 public:
  explicit CorrelationTracker(const CorrelationOptions& options);

  // Registers the next stream item and returns the indices of *earlier*
  // items visible to it (its own index is always implicitly visible).
  // Indices are global stream positions, strictly increasing calls.
  // Same-key indices come first (ascending); cross-key value-correlated
  // indices follow, also ascending — a canonical order, so batched and
  // item-at-a-time consumers see identical sets in identical order.
  std::vector<int> ObserveItem(const Item& item);

  int num_observed() const { return next_index_; }

  // Serving-state checkpointing. Snapshot writes a canonical (key-sorted)
  // byte stream; Restore parses it into a tracker constructed with the
  // same options and rebuilds the inverted index from the open sessions.
  // Restore fails closed: on truncated/corrupt bytes, an options mismatch,
  // or structurally impossible indices it returns false and leaves *this
  // untouched.
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader);

 private:
  struct OpenSession {
    int session_value = -1;
    std::vector<int> item_indices;  // members of the open session
    int last_index = -1;
  };

  // Collects the cross-key value matches for an item with `session_value`
  // arriving at stream position `index`, appending to `visible`.
  void AppendValueMatches(int own_key, int session_value, int index,
                          std::vector<int>* visible) const;

  CorrelationOptions options_;
  int next_index_ = 0;
  // Hot per-item lookups: iteration order is not load-bearing, so these are
  // hash maps (the ordered walk lives in by_value_ below).
  std::unordered_map<int, std::vector<int>> key_items_;  // key -> items
  std::unordered_map<int, OpenSession> open_sessions_;   // key -> session
  // Inverted index: session value -> (last_index -> key) over the open
  // sessions currently carrying that value. last_index is unique (one item
  // per stream position), and the map order is recency order, so the window
  // cutoff is a newest-first walk that stops at the first stale session.
  std::unordered_map<int, std::map<int, int>> by_value_;
};

// The dynamic mask matrix over a whole episode.
struct EpisodeMask {
  // [T,T] tensor with 0 where item j is visible to item i (j <= i) and
  // ops::kNegInf elsewhere; constant (no gradient).
  Tensor mask;
  // For attention instrumentation (Fig. 10): visible[i] lists the stream
  // positions j < i visible to i.
  std::vector<std::vector<int>> visible;
};

// Builds M(T) for `episode` under `options`.
EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options);

}  // namespace kvec

