// Item-correlation tracking and the dynamic mask matrix M(t) (paper §IV-B).
//
// Two items of a tangled sequence are correlated when
//   * key correlation:   e.k == e'.k, or
//   * value correlation: there is a key k such that ⟨k, e.v⟩ and ⟨k, e'.v⟩
//     would fall in the same *session* of S_k (a maximal, uninterrupted run
//     of items agreeing on the session field).
//
// `CorrelationTracker` implements the streaming interpretation: when item i
// arrives it is correlated (a) with all earlier items of its own key and
// (b) with the items of any key's currently *open* session whose session-
// field value matches item i's and whose last item arrived at most
// `value_correlation_window` stream positions ago ("uninterrupted in time").
//
// The same tracker drives both the batch mask builder used in training and
// the online inference engine, so the two cannot drift apart.
#ifndef KVEC_CORE_CORRELATION_H_
#define KVEC_CORE_CORRELATION_H_

#include <map>
#include <vector>

#include "core/config.h"
#include "data/types.h"
#include "tensor/tensor.h"

namespace kvec {

class CorrelationTracker {
 public:
  explicit CorrelationTracker(const CorrelationOptions& options);

  // Registers the next stream item and returns the indices of *earlier*
  // items visible to it (its own index is always implicitly visible).
  // Indices are global stream positions, strictly increasing calls.
  std::vector<int> ObserveItem(const Item& item);

  int num_observed() const { return next_index_; }

 private:
  struct OpenSession {
    int session_value = -1;
    std::vector<int> item_indices;  // members of the open session
    int last_index = -1;
  };

  CorrelationOptions options_;
  int next_index_ = 0;
  std::map<int, std::vector<int>> key_items_;  // key -> item indices
  std::map<int, OpenSession> open_sessions_;   // key -> current session
};

// The dynamic mask matrix over a whole episode.
struct EpisodeMask {
  // [T,T] tensor with 0 where item j is visible to item i (j <= i) and
  // ops::kNegInf elsewhere; constant (no gradient).
  Tensor mask;
  // For attention instrumentation (Fig. 10): visible[i] lists the stream
  // positions j < i visible to i.
  std::vector<std::vector<int>> visible;
};

// Builds M(T) for `episode` under `options`.
EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options);

}  // namespace kvec

#endif  // KVEC_CORE_CORRELATION_H_
