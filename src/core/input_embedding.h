// Input embedding of KVRL (paper §IV-B): the preliminary hidden vector of
// each item is the sum of
//   * value embeddings    — one learned table per value field, summed;
//   * membership embedding — which key-value sequence the item belongs to;
//   * relative position embedding — the item's index within its sequence;
//   * time embedding      — the item's arrival order in the tangled stream.
// The latter three can be disabled for the ablation study (Fig. 9).
#pragma once

#include <vector>

#include "core/config.h"
#include "data/types.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace kvec {

// Precomputed per-item indices of one episode; shared by the embedding
// layer, the trainer, and the instrumentation.
struct EpisodeIndex {
  std::vector<int> keys;           // item -> key id
  std::vector<int> position_in_key;  // item -> 0-based index within S_k
  std::vector<int> key_lengths_so_far_unused;  // reserved

  static EpisodeIndex Build(const TangledSequence& episode);
};

class InputEmbedding : public Module {
 public:
  InputEmbedding(const KvecConfig& config, Rng& rng);

  // [T, embed_dim] matrix E(T)_0 for the whole episode.
  Tensor Forward(const TangledSequence& episode,
                 const EpisodeIndex& index) const;

  // Streaming variant: adds the input-embedding row of a single item (at
  // stream position `time_index`, `position_in_key` within its sequence)
  // into `row` (length embed_dim). Raw math, no autograd; used by
  // IncrementalEncoder and kept equivalent to Forward by tests.
  void AccumulateItemRow(const Item& item, int position_in_key,
                         int time_index, std::vector<float>* row) const;

  // Same, writing into a raw row of a caller-owned [B, embed_dim] matrix —
  // the batched streaming path fills its input panel without per-item
  // vectors.
  void AccumulateItemRow(const Item& item, int position_in_key,
                         int time_index, float* row) const;

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  KvecConfig config_;
  std::vector<Embedding> value_embeddings_;  // one per value field
  Embedding membership_embedding_;
  Embedding position_embedding_;
  Embedding time_embedding_;
};

}  // namespace kvec

