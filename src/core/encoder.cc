#include "core/encoder.h"

#include <cmath>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

KvrlEncoder::KvrlEncoder(const KvecConfig& config, Rng& rng)
    : config_(config), input_(config, rng) {
  KVEC_CHECK_GT(config.num_blocks, 0);
  blocks_.reserve(config.num_blocks);
  for (int i = 0; i < config.num_blocks; ++i) {
    blocks_.emplace_back(config.embed_dim, config.ffn_hidden_dim,
                         config.dropout, rng, config.num_heads);
  }
}

EncodeResult KvrlEncoder::Forward(const TangledSequence& episode,
                                  const EpisodeIndex& index, Rng& rng,
                                  bool training) const {
  EncodeResult result;
  result.mask = BuildEpisodeMask(episode, config_.correlation);
  Tensor h = input_.Forward(episode, index);
  result.attention_weights.reserve(blocks_.size());
  for (const AttentionBlock& block : blocks_) {
    AttentionResult block_result =
        block.Forward(h, result.mask.mask, rng, training);
    h = block_result.output;
    result.attention_weights.push_back(block_result.weights);
  }
  result.embeddings = h;
  return result;
}

void KvrlEncoder::CollectParameters(std::vector<Tensor>* out) {
  input_.CollectParameters(out);
  for (AttentionBlock& block : blocks_) block.CollectParameters(out);
}

IncrementalEncoder::IncrementalEncoder(const KvrlEncoder& encoder)
    : encoder_(encoder),
      dim_(encoder.config().embed_dim),
      caches_(encoder.blocks().size()) {}

void IncrementalEncoder::LinearRow(const std::vector<float>& x,
                                   const Tensor& weight, const Tensor& bias,
                                   std::vector<float>* y) {
  const int in = weight.rows(), out = weight.cols();
  KVEC_DCHECK(static_cast<int>(x.size()) == in);
  y->resize(out);
  kernels::VecMat(x.data(), weight.data().data(), y->data(), in, out,
                  /*accumulate=*/false);
  if (bias.defined()) {
    const float* b = bias.data().data();
    for (int j = 0; j < out; ++j) (*y)[j] += b[j];
  }
}

void IncrementalEncoder::LayerNormRow(const Tensor& gamma, const Tensor& beta,
                                      std::vector<float>* x) {
  const int n = static_cast<int>(x->size());
  float mean = 0.0f;
  for (float v : *x) mean += v;
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (float v : *x) var += (v - mean) * (v - mean);
  var /= static_cast<float>(n);
  const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
  for (int i = 0; i < n; ++i) {
    (*x)[i] = gamma.data()[i] * ((*x)[i] - mean) * inv_std + beta.data()[i];
  }
}

std::vector<float> IncrementalEncoder::AppendItem(
    const Item& item, int position_in_key, const std::vector<int>& visible) {
  const int t = num_items_++;

  // ---- Input embedding row: sum of the four embedding families. This
  // mirrors InputEmbedding::Forward for a single item; the batch-vs-
  // incremental equivalence test keeps the two in sync. ----
  std::vector<float> x(dim_, 0.0f);
  encoder_.input_embedding().AccumulateItemRow(item, position_in_key, t, &x);

  // ---- Attention blocks. ----
  std::vector<float> q(dim_), k(dim_), v(dim_);
  std::vector<float> attended(dim_), h(dim_), f(dim_), hidden;
  for (size_t b = 0; b < encoder_.blocks().size(); ++b) {
    const AttentionBlock& block = encoder_.blocks()[b];
    BlockCache& cache = caches_[b];

    const MaskedSelfAttention& attention = block.attention();
    LinearRow(x, attention.query().weight(), Tensor(), &q);
    LinearRow(x, attention.key().weight(), Tensor(), &k);
    LinearRow(x, attention.value().weight(), Tensor(), &v);
    cache.keys.insert(cache.keys.end(), k.begin(), k.end());
    cache.values.insert(cache.values.end(), v.begin(), v.end());

    // Scores over the visible set plus self, independently per head (the
    // heads read disjoint column slices of q/k/v).
    std::vector<int> targets = visible;
    targets.push_back(t);
    const int num_heads = attention.num_heads();
    const int head_dim = attention.head_dim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
    attended.assign(dim_, 0.0f);
    std::vector<float> scores(targets.size());
    for (int head = 0; head < num_heads; ++head) {
      const int begin = head * head_dim;
      float max_score = -1e30f;
      for (size_t s = 0; s < targets.size(); ++s) {
        const float* kj =
            cache.keys.data() + static_cast<size_t>(targets[s]) * dim_ + begin;
        scores[s] = kernels::Dot(q.data() + begin, kj, head_dim) * scale;
        max_score = std::max(max_score, scores[s]);
      }
      float total = 0.0f;
      for (float& s : scores) {
        s = std::exp(s - max_score);
        total += s;
      }
      for (size_t s = 0; s < targets.size(); ++s) {
        const float w = scores[s] / total;
        const float* vj = cache.values.data() +
                          static_cast<size_t>(targets[s]) * dim_ + begin;
        for (int c = 0; c < head_dim; ++c) attended[begin + c] += w * vj[c];
      }
    }
    if (attention.output_projection() != nullptr) {
      std::vector<float> mixed;
      LinearRow(attended, attention.output_projection()->weight(), Tensor(),
                &mixed);
      attended = mixed;
    }

    // Residual + LN, FFN, residual + LN (no dropout at inference).
    h = x;
    for (int c = 0; c < dim_; ++c) h[c] += attended[c];
    LayerNormRow(block.norm_attention().gamma(), block.norm_attention().beta(),
                 &h);
    LinearRow(h, block.ffn().first().weight(), block.ffn().first().bias(),
              &hidden);
    for (float& value : hidden) value = value > 0.0f ? value : 0.0f;
    LinearRow(hidden, block.ffn().second().weight(),
              block.ffn().second().bias(), &f);
    for (int c = 0; c < dim_; ++c) f[c] += h[c];
    LayerNormRow(block.norm_ffn().gamma(), block.norm_ffn().beta(), &f);

    cache.outputs.insert(cache.outputs.end(), f.begin(), f.end());
    x = f;
  }
  return x;
}

}  // namespace kvec
