#include "core/encoder.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

KvrlEncoder::KvrlEncoder(const KvecConfig& config, Rng& rng)
    : config_(config), input_(config, rng) {
  KVEC_CHECK_GT(config.num_blocks, 0);
  blocks_.reserve(config.num_blocks);
  for (int i = 0; i < config.num_blocks; ++i) {
    blocks_.emplace_back(config.embed_dim, config.ffn_hidden_dim,
                         config.dropout, rng, config.num_heads);
  }
}

EncodeResult KvrlEncoder::Forward(const TangledSequence& episode,
                                  const EpisodeIndex& index, Rng& rng,
                                  bool training) const {
  EncodeResult result;
  result.mask = BuildEpisodeMask(episode, config_.correlation);
  Tensor h = input_.Forward(episode, index);
  result.attention_weights.reserve(blocks_.size());
  for (const AttentionBlock& block : blocks_) {
    AttentionResult block_result =
        block.Forward(h, result.mask.mask, rng, training);
    h = block_result.output;
    result.attention_weights.push_back(block_result.weights);
  }
  result.embeddings = h;
  return result;
}

void KvrlEncoder::CollectParameters(std::vector<Tensor>* out) {
  input_.CollectParameters(out);
  for (AttentionBlock& block : blocks_) block.CollectParameters(out);
}

// ---- IncrementalEncoder --------------------------------------------------

IncrementalEncoder::PooledBuffer::~PooledBuffer() {
  BufferPool::Global().Release(std::move(buffer_));
}

float* IncrementalEncoder::PooledBuffer::Ensure(size_t n) {
  if (buffer_.size() < n) {
    BufferPool::Global().Release(std::move(buffer_));
    buffer_ = BufferPool::Global().AcquireUninitialized(n);
  }
  return buffer_.data();
}

IncrementalEncoder::IncrementalEncoder(const KvrlEncoder& encoder)
    : encoder_(encoder),
      dim_(encoder.config().embed_dim),
      head_dim_(encoder.blocks().front().attention().head_dim()),
      num_heads_(encoder.blocks().front().attention().num_heads()) {}

IncrementalEncoder::~IncrementalEncoder() {
  BufferPool::Global().Release(std::move(arena_));
}

float* IncrementalEncoder::KeyPanel(int block, int head) {
  const size_t block_stride = 2 * static_cast<size_t>(capacity_) * dim_;
  return arena_.data() + block * block_stride +
         static_cast<size_t>(head) * capacity_ * head_dim_;
}

float* IncrementalEncoder::ValuePanel(int block, int head) {
  const size_t block_stride = 2 * static_cast<size_t>(capacity_) * dim_;
  return arena_.data() + block * block_stride +
         static_cast<size_t>(capacity_) * dim_ +
         static_cast<size_t>(head) * capacity_ * head_dim_;
}

void IncrementalEncoder::RepackArena(int new_capacity) {
  KVEC_DCHECK(new_capacity >= num_items_);
  const int num_blocks = static_cast<int>(encoder_.blocks().size());
  std::vector<float> fresh = BufferPool::Global().AcquireUninitialized(
      2 * static_cast<size_t>(num_blocks) * new_capacity * dim_);
  if (num_items_ > 0) {
    // Move the live [num_items_, head_dim] panels into the new layout.
    const size_t old_block_stride = 2 * static_cast<size_t>(capacity_) * dim_;
    const size_t new_block_stride =
        2 * static_cast<size_t>(new_capacity) * dim_;
    const size_t live = static_cast<size_t>(num_items_) * head_dim_;
    for (int b = 0; b < num_blocks; ++b) {
      for (int h = 0; h < num_heads_; ++h) {
        // Keys.
        std::memcpy(fresh.data() + b * new_block_stride +
                        static_cast<size_t>(h) * new_capacity * head_dim_,
                    arena_.data() + b * old_block_stride +
                        static_cast<size_t>(h) * capacity_ * head_dim_,
                    live * sizeof(float));
        // Values.
        std::memcpy(fresh.data() + b * new_block_stride +
                        static_cast<size_t>(new_capacity) * dim_ +
                        static_cast<size_t>(h) * new_capacity * head_dim_,
                    arena_.data() + b * old_block_stride +
                        static_cast<size_t>(capacity_) * dim_ +
                        static_cast<size_t>(h) * capacity_ * head_dim_,
                    live * sizeof(float));
      }
    }
  }
  BufferPool::Global().Release(std::move(arena_));
  arena_ = std::move(fresh);
  capacity_ = new_capacity;
}

void IncrementalEncoder::EnsureCapacity(int min_items) {
  if (capacity_ >= min_items) return;
  int new_capacity = std::max(capacity_ * 2, 64);
  while (new_capacity < min_items) new_capacity *= 2;
  RepackArena(new_capacity);
}

void IncrementalEncoder::ShrinkToFit() {
  if (capacity_ == 0) return;
  // Same geometric ladder EnsureCapacity climbs, so a shrink lands on a
  // capacity growth would also have produced (keeps sizes pool-friendly).
  int tight = 64;
  while (tight < num_items_) tight *= 2;
  if (tight >= capacity_) return;
  RepackArena(tight);
}

void IncrementalEncoder::ScatterKv(int block, int t, const float* k,
                                   const float* v) {
  for (int h = 0; h < num_heads_; ++h) {
    std::memcpy(KeyPanel(block, h) + static_cast<size_t>(t) * head_dim_,
                k + h * head_dim_, head_dim_ * sizeof(float));
    std::memcpy(ValuePanel(block, h) + static_cast<size_t>(t) * head_dim_,
                v + h * head_dim_, head_dim_ * sizeof(float));
  }
}

void IncrementalEncoder::LinearRow(const std::vector<float>& x,
                                   const Tensor& weight, const Tensor& bias,
                                   std::vector<float>* y) {
  const int in = weight.rows(), out = weight.cols();
  KVEC_DCHECK(static_cast<int>(x.size()) >= in);
  if (static_cast<int>(y->size()) < out) y->resize(out);
  kernels::VecMat(x.data(), weight.data().data(), y->data(), in, out,
                  /*accumulate=*/false);
  if (bias.defined()) {
    const float* b = bias.data().data();
    for (int j = 0; j < out; ++j) (*y)[j] += b[j];
  }
}

void IncrementalEncoder::LayerNormRow(const Tensor& gamma, const Tensor& beta,
                                      float* x, int n) {
  float mean = 0.0f;
  for (int i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (int i = 0; i < n; ++i) var += (x[i] - mean) * (x[i] - mean);
  var /= static_cast<float>(n);
  const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
  const float* g = gamma.data().data();
  const float* be = beta.data().data();
  for (int i = 0; i < n; ++i) {
    x[i] = g[i] * (x[i] - mean) * inv_std + be[i];
  }
}

void IncrementalEncoder::AttendRow(int block,
                                   const MaskedSelfAttention& attention,
                                   const float* q,
                                   const std::vector<int>& targets,
                                   float* out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const size_t count = targets.size();
  if (scores_.size() < count) scores_.resize(count);
  // Per head: the K/V panels are contiguous [t, head_dim] blocks, so each
  // gathered row is one sequential head_dim-long read.
  for (int head = 0; head < num_heads_; ++head) {
    const float* kp = KeyPanel(block, head);
    const float* vp = ValuePanel(block, head);
    const float* qh = q + head * head_dim_;
    float max_score = -1e30f;
    for (size_t s = 0; s < count; ++s) {
      scores_[s] = kernels::Dot(
                       qh, kp + static_cast<size_t>(targets[s]) * head_dim_,
                       head_dim_) *
                   scale;
      max_score = std::max(max_score, scores_[s]);
    }
    float total = 0.0f;
    for (size_t s = 0; s < count; ++s) {
      scores_[s] = std::exp(scores_[s] - max_score);
      total += scores_[s];
    }
    float* oh = out + head * head_dim_;
    std::fill(oh, oh + head_dim_, 0.0f);
    for (size_t s = 0; s < count; ++s) {
      const float w = scores_[s] / total;
      const float* vj = vp + static_cast<size_t>(targets[s]) * head_dim_;
      for (int c = 0; c < head_dim_; ++c) oh[c] += w * vj[c];
    }
  }
}

void IncrementalEncoder::Snapshot(BinaryWriter* writer) const {
  const int num_blocks = static_cast<int>(encoder_.blocks().size());
  writer->WriteInt32(dim_);
  writer->WriteInt32(head_dim_);
  writer->WriteInt32(num_heads_);
  writer->WriteInt32(num_blocks);
  writer->WriteInt32(num_items_);
  const size_t live = static_cast<size_t>(num_items_) * head_dim_;
  const size_t block_stride = 2 * static_cast<size_t>(capacity_) * dim_;
  for (int b = 0; b < num_blocks; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      const float* keys = arena_.data() + b * block_stride +
                          static_cast<size_t>(h) * capacity_ * head_dim_;
      const float* values = keys + static_cast<size_t>(capacity_) * dim_;
      writer->WriteFloats(keys, live);
      writer->WriteFloats(values, live);
    }
  }
}

bool IncrementalEncoder::Restore(BinaryReader* reader, int expected_items) {
  const int num_blocks = static_cast<int>(encoder_.blocks().size());
  const int dim = reader->ReadInt32();
  const int head_dim = reader->ReadInt32();
  const int num_heads = reader->ReadInt32();
  const int blocks = reader->ReadInt32();
  const int num_items = reader->ReadInt32();
  if (!reader->ok() || dim != dim_ || head_dim != head_dim_ ||
      num_heads != num_heads_ || blocks != num_blocks || num_items < 0 ||
      (expected_items >= 0 && num_items != expected_items)) {
    return false;
  }
  // Stage all panels before touching the arena: a truncated stream must not
  // leave a half-restored cache behind.
  const size_t live = static_cast<size_t>(num_items) * head_dim_;
  std::vector<std::vector<float>> panels;
  panels.reserve(static_cast<size_t>(num_blocks) * num_heads_ * 2);
  for (int i = 0; i < num_blocks * num_heads_ * 2; ++i) {
    panels.push_back(reader->ReadFloatVector());
    if (!reader->ok() || panels.back().size() != live) return false;
  }

  if (num_items > 0) EnsureCapacity(num_items);
  num_items_ = num_items;
  size_t next = 0;
  for (int b = 0; b < num_blocks; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      if (live > 0) {
        std::memcpy(KeyPanel(b, h), panels[next].data(),
                    live * sizeof(float));
        std::memcpy(ValuePanel(b, h), panels[next + 1].data(),
                    live * sizeof(float));
      }
      next += 2;
    }
  }
  return true;
}

void IncrementalEncoder::SnapshotTail(BinaryWriter* writer,
                                      int base_items) const {
  KVEC_DCHECK(base_items >= 0 && base_items <= num_items_);
  const int num_blocks = static_cast<int>(encoder_.blocks().size());
  writer->WriteInt32(dim_);
  writer->WriteInt32(head_dim_);
  writer->WriteInt32(num_heads_);
  writer->WriteInt32(num_blocks);
  writer->WriteInt32(base_items);
  writer->WriteInt32(num_items_);
  const size_t skip = static_cast<size_t>(base_items) * head_dim_;
  const size_t tail = static_cast<size_t>(num_items_ - base_items) * head_dim_;
  const size_t block_stride = 2 * static_cast<size_t>(capacity_) * dim_;
  for (int b = 0; b < num_blocks; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      const float* keys = arena_.data() + b * block_stride +
                          static_cast<size_t>(h) * capacity_ * head_dim_;
      const float* values = keys + static_cast<size_t>(capacity_) * dim_;
      writer->WriteFloats(keys + skip, tail);
      writer->WriteFloats(values + skip, tail);
    }
  }
}

bool IncrementalEncoder::RestoreTail(BinaryReader* reader,
                                     int expected_items) {
  const int num_blocks = static_cast<int>(encoder_.blocks().size());
  const int dim = reader->ReadInt32();
  const int head_dim = reader->ReadInt32();
  const int num_heads = reader->ReadInt32();
  const int blocks = reader->ReadInt32();
  const int base_items = reader->ReadInt32();
  const int num_items = reader->ReadInt32();
  if (!reader->ok() || dim != dim_ || head_dim != head_dim_ ||
      num_heads != num_heads_ || blocks != num_blocks ||
      base_items != num_items_ || num_items < base_items ||
      (expected_items >= 0 && num_items != expected_items)) {
    return false;
  }
  const size_t tail = static_cast<size_t>(num_items - base_items) * head_dim_;
  std::vector<std::vector<float>> panels;
  panels.reserve(static_cast<size_t>(num_blocks) * num_heads_ * 2);
  for (int i = 0; i < num_blocks * num_heads_ * 2; ++i) {
    panels.push_back(reader->ReadFloatVector());
    if (!reader->ok() || panels.back().size() != tail) return false;
  }

  if (num_items > 0) EnsureCapacity(num_items);
  const size_t skip = static_cast<size_t>(base_items) * head_dim_;
  size_t next = 0;
  for (int b = 0; b < num_blocks; ++b) {
    for (int h = 0; h < num_heads_; ++h) {
      if (tail > 0) {
        std::memcpy(KeyPanel(b, h) + skip, panels[next].data(),
                    tail * sizeof(float));
        std::memcpy(ValuePanel(b, h) + skip, panels[next + 1].data(),
                    tail * sizeof(float));
      }
      next += 2;
    }
  }
  num_items_ = num_items;
  return true;
}

std::vector<float> IncrementalEncoder::AppendItem(
    const Item& item, int position_in_key, const std::vector<int>& visible) {
  const int t = num_items_;
  EnsureCapacity(t + 1);
  num_items_ = t + 1;

  // ---- Input embedding row: sum of the four embedding families. This
  // mirrors InputEmbedding::Forward for a single item; the batch-vs-
  // incremental equivalence test keeps the two in sync. ----
  float* x = x_.Ensure(dim_);
  std::fill(x, x + dim_, 0.0f);
  encoder_.input_embedding().AccumulateItemRow(item, position_in_key, t, x);

  // ---- Attention blocks. ----
  targets_.assign(visible.begin(), visible.end());
  targets_.push_back(t);
  for (size_t b = 0; b < encoder_.blocks().size(); ++b) {
    const AttentionBlock& block = encoder_.blocks()[b];
    const MaskedSelfAttention& attention = block.attention();

    LinearRow(x_.vec(), attention.query().weight(), Tensor(), &q_.vec());
    LinearRow(x_.vec(), attention.key().weight(), Tensor(), &k_.vec());
    LinearRow(x_.vec(), attention.value().weight(), Tensor(), &v_.vec());
    ScatterKv(static_cast<int>(b), t, k_.data(), v_.data());

    // Scores over the visible set plus self, independently per head (the
    // heads read disjoint panels of the arena).
    float* attended = attended_.Ensure(dim_);
    AttendRow(static_cast<int>(b), attention, q_.data(), targets_, attended);
    if (attention.output_projection() != nullptr) {
      LinearRow(attended_.vec(), attention.output_projection()->weight(),
                Tensor(), &mixed_.vec());
      attended = mixed_.data();
    }

    // Residual + LN, FFN, residual + LN (no dropout at inference).
    float* h = h_.Ensure(dim_);
    for (int c = 0; c < dim_; ++c) h[c] = x[c] + attended[c];
    LayerNormRow(block.norm_attention().gamma(), block.norm_attention().beta(),
                 h, dim_);
    LinearRow(h_.vec(), block.ffn().first().weight(),
              block.ffn().first().bias(), &hidden_.vec());
    const int ffn_dim = block.ffn().first().weight().cols();
    float* hidden = hidden_.data();
    for (int c = 0; c < ffn_dim; ++c) {
      hidden[c] = hidden[c] > 0.0f ? hidden[c] : 0.0f;
    }
    LinearRow(hidden_.vec(), block.ffn().second().weight(),
              block.ffn().second().bias(), &f_.vec());
    float* f = f_.data();
    for (int c = 0; c < dim_; ++c) f[c] += h[c];
    LayerNormRow(block.norm_ffn().gamma(), block.norm_ffn().beta(), f, dim_);

    std::memcpy(x, f, dim_ * sizeof(float));
  }
  return std::vector<float>(x, x + dim_);
}

void IncrementalEncoder::AppendBatch(const Item* items,
                                     const int* positions_in_key,
                                     const std::vector<int>* visibles,
                                     int batch, std::vector<float>* rows) {
  KVEC_CHECK_GT(batch, 0);
  const int t0 = num_items_;
  EnsureCapacity(t0 + batch);
  num_items_ = t0 + batch;
  const int d = dim_;
  const size_t panel = static_cast<size_t>(batch) * d;

  // All batch panels are bump allocations from the per-engine scratch
  // arena; nothing here survives the call (the owner also calls
  // ResetScratch() after the microbatch drains).
  scratch_.Reset();

  int max_ffn_dim = 0;
  for (const AttentionBlock& block : encoder_.blocks()) {
    max_ffn_dim = std::max(max_ffn_dim, block.ffn().first().weight().cols());
  }

  float* x = scratch_.AllocArray<float>(panel);
  float* q = scratch_.AllocArray<float>(panel);
  float* k = scratch_.AllocArray<float>(panel);
  float* v = scratch_.AllocArray<float>(panel);
  float* att_panel = scratch_.AllocArray<float>(panel);
  float* mixed_panel = scratch_.AllocArray<float>(panel);
  float* h = scratch_.AllocArray<float>(panel);
  float* hidden = scratch_.AllocArray<float>(
      static_cast<size_t>(batch) * std::max(max_ffn_dim, 1));
  float* f = scratch_.AllocArray<float>(panel);

  // ---- Input embedding rows, stacked into X [batch, d]. ----
  std::fill(x, x + panel, 0.0f);
  for (int i = 0; i < batch; ++i) {
    encoder_.input_embedding().AccumulateItemRow(
        items[i], positions_in_key[i], t0 + i, x + static_cast<size_t>(i) * d);
  }

  // ---- Attention blocks: one GemmNN per projection per block instead of
  // `batch` VecMats; attention gathers and layer norms stay per-row. ----
  for (size_t b = 0; b < encoder_.blocks().size(); ++b) {
    const AttentionBlock& block = encoder_.blocks()[b];
    const MaskedSelfAttention& attention = block.attention();
    kernels::GemmNN(x, attention.query().weight().data().data(), q, batch, d,
                    d, /*accumulate=*/false);
    kernels::GemmNN(x, attention.key().weight().data().data(), k, batch, d, d,
                    /*accumulate=*/false);
    kernels::GemmNN(x, attention.value().weight().data().data(), v, batch, d,
                    d, /*accumulate=*/false);
    // Cache every row before any attention runs: later batch items may have
    // earlier ones in their visible sets.
    for (int i = 0; i < batch; ++i) {
      ScatterKv(static_cast<int>(b), t0 + i, k + static_cast<size_t>(i) * d,
                v + static_cast<size_t>(i) * d);
    }

    float* att = att_panel;
    for (int i = 0; i < batch; ++i) {
      targets_.assign(visibles[i].begin(), visibles[i].end());
      targets_.push_back(t0 + i);
      AttendRow(static_cast<int>(b), attention, q + static_cast<size_t>(i) * d,
                targets_, att + static_cast<size_t>(i) * d);
    }
    if (attention.output_projection() != nullptr) {
      kernels::GemmNN(att, attention.output_projection()->weight().data().data(),
                      mixed_panel, batch, d, d, /*accumulate=*/false);
      att = mixed_panel;
    }

    // Residual + LN, FFN (batched GEMMs), residual + LN.
    for (size_t e = 0; e < panel; ++e) h[e] = x[e] + att[e];
    for (int i = 0; i < batch; ++i) {
      LayerNormRow(block.norm_attention().gamma(),
                   block.norm_attention().beta(),
                   h + static_cast<size_t>(i) * d, d);
    }

    const Linear& ffn1 = block.ffn().first();
    const Linear& ffn2 = block.ffn().second();
    const int ffn_dim = ffn1.weight().cols();
    const size_t hidden_panel = static_cast<size_t>(batch) * ffn_dim;
    kernels::GemmNN(h, ffn1.weight().data().data(), hidden, batch, d, ffn_dim,
                    /*accumulate=*/false);
    if (ffn1.bias().defined()) {
      kernels::AddBiasRows(hidden, ffn1.bias().data().data(), batch, ffn_dim);
    }
    for (size_t e = 0; e < hidden_panel; ++e) {
      hidden[e] = hidden[e] > 0.0f ? hidden[e] : 0.0f;
    }
    kernels::GemmNN(hidden, ffn2.weight().data().data(), f, batch, ffn_dim, d,
                    /*accumulate=*/false);
    if (ffn2.bias().defined()) {
      kernels::AddBiasRows(f, ffn2.bias().data().data(), batch, d);
    }
    for (size_t e = 0; e < panel; ++e) f[e] += h[e];
    for (int i = 0; i < batch; ++i) {
      LayerNormRow(block.norm_ffn().gamma(), block.norm_ffn().beta(),
                   f + static_cast<size_t>(i) * d, d);
    }

    // The block's output panel is the next block's input panel.
    std::swap(x, f);
  }

  rows->assign(x, x + panel);
}

}  // namespace kvec
