// Concurrent stream serving: N StreamServer shards behind a key hash.
//
// One StreamServer is inherently serial — every item mutates one engine,
// one open-key map, one stats block. ShardedStreamServer partitions the
// key space across `num_shards` independent shards, each owning a full
// StreamServer (engine + open-key state + stats) behind a per-shard mutex:
//
//   * throughput — items of different shards are served in parallel;
//     ObserveBatch fans a batch out across shards on the global ThreadPool
//     (one contiguous microbatch per shard), and concurrent callers of
//     Observe/ObserveBatch only contend when their keys hash to the same
//     shard.
//   * memory bounds — each shard's engine tracks ~1/num_shards of the open
//     keys, so per-engine caches and visibility sets shrink
//     proportionally. (Before the correlation tracker grew its inverted
//     index, this also made sharding faster single-threaded by shrinking
//     the per-item session scan; with the indexed tracker the scan is gone
//     and single-core throughput peaks at 1 shard — sharding is now purely
//     a parallelism and isolation tool. See bench/micro_pipeline.cc.)
//
// The trade-off, stated once here and assumed everywhere: cross-shard
// value correlations are cut. Two keys that hash to different shards never
// see each other's sessions, exactly as if they had been served by
// separate processes. Keys whose correlations matter should hash together
// (the partitioning is by key only, so this matches the paper's deployment
// where a flow's items always carry the same key). Within a shard the
// semantics are identical to StreamServer: feed the same sub-stream to a
// standalone StreamServer and you get the same verdicts (covered by
// core_sharded_stream_server_test.cc).
//
// Bounds are per shard: global capacity is num_shards * max_open_keys and
// idle timeouts / window rotations are measured in per-shard stream
// positions (a shard's clock only advances when it receives an item).
#ifndef KVEC_CORE_SHARDED_STREAM_SERVER_H_
#define KVEC_CORE_SHARDED_STREAM_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/stream_server.h"

namespace kvec {

struct ShardedStreamServerConfig {
  int num_shards = 8;
  // Per-shard bounds, applied to each shard's StreamServer independently.
  StreamServerConfig shard;
};

class ShardedStreamServer {
 public:
  // `model` must be trained and outlive the server. Builds `num_shards`
  // independent engines.
  ShardedStreamServer(const KvecModel& model,
                      const ShardedStreamServerConfig& config);

  // The shard an item with this key is routed to (deterministic hash).
  int ShardOf(int key) const;

  // Routes the item to its shard and serves it there. Thread-safe: callers
  // on different shards proceed in parallel, same-shard callers serialize
  // on the shard mutex.
  std::vector<StreamEvent> Observe(const Item& item);

  // Batched ingest: fans `items` out to their shards via the global
  // ThreadPool, handing each shard its sub-batch as one contiguous
  // microbatch (StreamServer::ObserveBatch — arrival order within the
  // shard preserved, encoder projections batched through GEMM). Returned
  // events are grouped by shard (shard 0's events first), in emission
  // order within a shard. Thread-safe.
  std::vector<StreamEvent> ObserveBatch(const std::vector<Item>& items);

  // Force-classifies all still-open keys on every shard.
  std::vector<StreamEvent> Flush();

  // Merged view across shards: counters and class_counts are summed;
  // windows_started is the total across shards (each shard starts at 1).
  StreamServerStats stats() const;

  // One shard's own stats (copied under its mutex).
  StreamServerStats shard_stats(int shard) const;

  int open_keys() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // ---- Checkpoint / warm restart (docs/SERVING.md). ----
  //
  // The checkpoint is a manifest section (shard count — restore fails on a
  // mismatch, since the key hash routes by shard count) plus one section
  // per shard holding that shard's full StreamServer snapshot. Each shard
  // is snapshotted under its own mutex; for a cross-shard-consistent
  // checkpoint, quiesce ingest first (concurrent Observe calls would land
  // in some shards' snapshots and not others).
  //
  // Restore stages every shard in a fresh StreamServer and swaps all of
  // them in only when the whole checkpoint parsed — a corrupt byte in any
  // shard leaves the server untouched.
  std::string EncodeCheckpoint() const;
  bool RestoreCheckpoint(const std::string& bytes);
  bool SaveCheckpoint(const std::string& path) const;
  bool LoadCheckpoint(const std::string& path);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unique_ptr<StreamServer> server;  // guarded by mutex
  };

  // Shared bodies of the four checkpoint entry points.
  Checkpoint BuildCheckpoint() const;
  bool RestoreFromCheckpoint(const Checkpoint& checkpoint);

  const KvecModel& model_;
  ShardedStreamServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kvec

#endif  // KVEC_CORE_SHARDED_STREAM_SERVER_H_
