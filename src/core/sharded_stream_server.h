// Concurrent stream serving: N StreamServer shards behind a key hash.
//
// One StreamServer is inherently serial — every item mutates one engine,
// one open-key map, one stats block. ShardedStreamServer partitions the
// key space across `num_shards` independent shards, each owning a full
// StreamServer (engine + open-key state + stats), in one of two execution
// modes:
//
//   * synchronous (worker_threads = 0, the default) — callers run the
//     shard engines in place, serialized on a per-shard mutex;
//     ObserveBatch fans a batch out across shards on the global
//     ThreadPool. Deterministic and byte-identical to the historical
//     behavior: the replay/golden/equivalence tests run this mode.
//   * shard-owned workers (worker_threads = num_shards) — each shard owns
//     one worker thread plus a bounded MPSC task queue
//     (util/bounded_queue.h). ALL shard-state mutation happens on the
//     owning worker, so the hot update path takes no shard lock; queries
//     (stats, flush, checkpoint snapshot) route to the owning shard as
//     control tasks and are answered at a batch boundary, never mid-batch.
//     Overload is a first-class condition: when a shard's queue is full,
//     `overload_policy` decides whether the producer blocks
//     (backpressure), the new batch is dropped, or the oldest queued batch
//     is dropped — every dropped batch/item is counted in the
//     batches_shed/items_shed stats, never lost silently.
//
// Async ingest has two shapes. `Submit` is fire-and-forget: it routes the
// batch, enqueues per-shard sub-batches under the overload policy, and
// returns immediately; events surface through `config.on_events` on the
// worker threads. `Observe`/`ObserveBatch`/`Flush` keep their synchronous
// signatures in both modes — in async mode they run as control tasks the
// caller waits on, so their event sequences match the synchronous mode
// exactly (they bypass the overload policy; only Submit can shed).
//
// The trade-off, stated once here and assumed everywhere: cross-shard
// value correlations are cut. Two keys that hash to different shards never
// see each other's sessions, exactly as if they had been served by
// separate processes. Keys whose correlations matter should hash together
// (the partitioning is by key only, so this matches the paper's deployment
// where a flow's items always carry the same key). Within a shard the
// semantics are identical to StreamServer: feed the same sub-stream to a
// standalone StreamServer and you get the same verdicts (covered by
// core_sharded_stream_server_test.cc).
//
// Bounds are per shard: global capacity is num_shards * max_open_keys and
// idle timeouts / window rotations are measured in per-shard stream
// positions (a shard's clock only advances when it receives an item).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stream_server.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {

struct ShardedStreamServerConfig {
  int num_shards = 8;
  // 0 = synchronous mode; num_shards = one owned worker thread per shard.
  // Other values are rejected (the model is one worker per shard — scale
  // workers by scaling shards).
  int worker_threads = 0;
  // Per-shard bounded task-queue capacity, in tasks (async mode only).
  int queue_depth = 256;
  // What a full shard queue does to a Submit batch (async mode only).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  // Event sink for Submit-ingested batches. Async mode: invoked on the
  // owning worker thread after each processed batch, concurrently across
  // shards — the sink must be thread-safe. Sync mode: invoked inline from
  // Submit. Events returned by Observe/ObserveBatch/Flush do NOT pass
  // through the sink (the caller already holds them).
  std::function<void(int shard, const std::vector<StreamEvent>& events)>
      on_events;
  // Per-shard bounds, applied to each shard's StreamServer independently.
  StreamServerConfig shard;
};

class ShardedStreamServer {
 public:
  // `model` must be trained and outlive the server. Builds `num_shards`
  // independent engines and, in async mode, starts the shard workers.
  ShardedStreamServer(const KvecModel& model,
                      const ShardedStreamServerConfig& config);

  // Graceful shutdown: closes the queues, drains every already-accepted
  // task, then joins the workers. Accepted work is never dropped.
  ~ShardedStreamServer();

  ShardedStreamServer(const ShardedStreamServer&) = delete;
  ShardedStreamServer& operator=(const ShardedStreamServer&) = delete;

  // The shard an item with this key is routed to (deterministic hash).
  int ShardOf(int key) const;

  // Synchronous-semantics ingest: returns the item's events. Thread-safe
  // in both modes; in async mode it rides the task queue as a waited-on
  // control task (never shed).
  std::vector<StreamEvent> Observe(const Item& item);

  // Batched ingest with synchronous semantics: fans `items` out to their
  // shards (sync mode: global ThreadPool; async mode: the shard workers),
  // handing each shard its sub-batch as one contiguous microbatch
  // (StreamServer::ObserveBatch — arrival order within the shard
  // preserved, encoder projections batched through GEMM). Returned events
  // are grouped by shard (shard 0's events first), in emission order
  // within a shard. Thread-safe; never shed.
  std::vector<StreamEvent> ObserveBatch(const std::vector<Item>& items);

  // Fire-and-forget ingest, the overload-policy path. Routes `items` and
  // enqueues one sub-batch per shard under `overload_policy`:
  //   kBlock      — waits for queue space (backpressure);
  //   kShedNewest — a full queue drops the incoming sub-batch;
  //   kShedOldest — a full queue drops its oldest queued batch instead.
  // Every accepted item is eventually processed (visible via on_events and
  // stats); every dropped one is counted. After Drain() the overload
  // invariant holds: items_submitted == items_processed + items_shed.
  // Sync mode: runs inline (nothing to shed) with events to on_events.
  // Returns how many items this call caused to be shed (0 = nothing
  // dropped): the incoming sub-batches under kShedNewest, older queued
  // batches under kShedOldest. This is what lets the TCP front end answer
  // OVERLOADED per batch instead of discovering drops later in aggregate
  // stats.
  int64_t Submit(const std::vector<Item>& items);

  // Blocks until every task enqueued before this call has been processed.
  // Sync mode: no-op. Does not stop concurrent producers — quiescing is
  // the caller's protocol (stop submitting, then Drain).
  void Drain();

  // Force-classifies all still-open keys on every shard (waited-on control
  // task in async mode; drains each shard's queue first by FIFO order).
  std::vector<StreamEvent> Flush();

  // Merged view across shards: counters and class_counts are summed;
  // windows_started is the total across shards (each shard starts at 1);
  // items_submitted/batches_shed/items_shed aggregate the transport-layer
  // counters. The snapshot is coherent: sync mode holds ALL shard mutexes
  // while copying (no shard can be mid-batch); async mode answers through
  // each shard's task queue at a batch boundary.
  StreamServerStats stats() const;

  // One shard's own stats (same snapshot discipline as stats()).
  StreamServerStats shard_stats(int shard) const;

  // Forces a pool compaction on every shard (StreamServer::Compact), one
  // shard at a time through the owner seam — shard s rebuilds its pool
  // while every other shard keeps serving, so it composes with the
  // overload policies the same way checkpoint encode does. Returns how
  // many shards actually compacted (the `compaction.run` fault point can
  // suppress individual shards). The heuristic pass needs no call here:
  // each shard's own serving loop triggers it.
  int CompactAll();

  int open_keys() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool asynchronous() const { return config_.worker_threads > 0; }

  // ---- Checkpoint / warm restart (docs/SERVING.md). ----
  //
  // The checkpoint is a manifest section (shard count — restore fails on a
  // mismatch, since the key hash routes by shard count) plus one section
  // per shard holding that shard's full StreamServer snapshot. Sync mode
  // snapshots each shard under its mutex; async mode snapshots on the
  // owning worker behind everything already queued (quiesce =
  // drain-then-snapshot per shard). For a cross-shard-consistent
  // checkpoint, stop submitting first (concurrent ingest would land in
  // some shards' snapshots and not others).
  //
  // Restore stages every shard in a fresh StreamServer and swaps all of
  // them in only when the whole checkpoint parsed — a corrupt byte in any
  // shard leaves the server untouched. Restore also re-baselines the
  // transport counters (items_submitted := restored items_processed, shed
  // counters zeroed) so the overload invariant keeps holding after a warm
  // restart.
  std::string EncodeCheckpoint() const;
  bool RestoreCheckpoint(const std::string& bytes);
  bool SaveCheckpoint(const std::string& path) const;
  bool LoadCheckpoint(const std::string& path);

  // ---- Incremental checkpoints: delta chains (docs/SERVING.md). ----
  //
  // On-disk layout: a full version-1 base at `base_path` plus consecutive
  // version-2 delta files at `base_path + ".delta.1"`, ".delta.2", ...
  // Each delta's manifest stores the base's fingerprint, the previous
  // link's fingerprint, and its own sequence number, so the loader can
  // reject a delta cut against a different base, a reordered chain, or a
  // gap — any non-linking file fails the whole load, target untouched.
  struct IncrementalCheckpointState {
    int64_t deltas_written = 0;     // links currently after the base
    uint64_t base_fingerprint = 0;  // 0 = no base written/loaded yet
    uint64_t prev_fingerprint = 0;  // newest link (the base, initially)
  };

  // The on-disk name of chain link `seq` (1-based) for `base_path`.
  static std::string DeltaPath(const std::string& base_path, int64_t seq);

  // Appends one link to the chain at `base_path`: a delta carrying only
  // the keys mutated since the previous link, or — when no base exists
  // yet, or `rebase_every` > 0 deltas have accumulated — a fresh full
  // base (the rebase bounds both restore time and on-disk chain length).
  // Shards are serialized ONE AT A TIME through the worker seam, so the
  // rest of the fleet keeps serving during a snapshot; dirty bits are
  // cleared only after the bytes are durably on disk (a failed write —
  // see the `checkpoint.delta` fault point — leaves the server serving,
  // every dirty bit intact, and the previous chain loadable). A rebase
  // unlinks old deltas newest-first before atomically replacing the base,
  // so every crash point leaves a loadable chain on disk.
  bool CheckpointIncremental(const std::string& base_path, int rebase_every,
                             IncrementalCheckpointState* state);

  // Restores base + every consecutive delta, staged per shard and
  // committed all-or-nothing (same discipline as RestoreCheckpoint); any
  // undecodable or non-linking delta fails the load with the server
  // untouched. Passing `state` declares the intent to keep appending to
  // the chain: dirty tracking is re-armed at the restored state and
  // `state` is filled; a null `state` is a plain warm restart (tracking
  // stays disarmed so the dirty map cannot grow on a server that never
  // checkpoints again).
  bool RestoreFromCheckpointChain(const std::string& base_path,
                                  IncrementalCheckpointState* state = nullptr);

 private:
  // One queue entry: an item batch (fn empty) or a control task.
  struct ShardTask {
    std::vector<Item> items;
    std::function<void(StreamServer&)> fn;
  };

  struct Shard {
    // Sync mode: every access to `server` holds this mutex, and the
    // KVEC_GUARDED_BY below makes clang -Wthread-safety reject any that
    // does not. Async mode: the mutex is idle — `server` is owned by the
    // shard's worker thread and reached only through WorkerOwnedServer /
    // InstallServer, the two audited ownership-transfer points.
    mutable Mutex mutex;
    std::unique_ptr<StreamServer> server KVEC_GUARDED_BY(mutex);
    std::unique_ptr<BoundedQueue<ShardTask>> queue;  // async mode only
    std::thread worker;                              // async mode only
    // Transport-layer counters. Producers bump submitted/shed (Submit may
    // shed on the producer thread); stats snapshots read them. Atomics:
    // deliberately outside the mutex so the Submit hot path never locks.
    std::atomic<int64_t> items_submitted{0};
    std::atomic<int64_t> batches_shed{0};
    std::atomic<int64_t> items_shed{0};
  };

  void WorkerLoop(Shard* shard, int shard_index);
  // Posts `fn` to every shard (async: non-sheddable control task; sync:
  // runs under the shard mutex) and blocks until all shards ran it.
  void RunOnAllShards(const std::function<void(int, StreamServer&)>& fn) const;
  // Same seam for ONE shard: runs `fn` on the owning worker (async) or
  // under the shard mutex (sync) and blocks until it ran. Checkpoint
  // encode and CompactAll iterate this so only one shard is paused at a
  // time while the rest of the fleet keeps serving.
  void RunOnShard(int shard,
                  const std::function<void(StreamServer&)>& fn) const;
  // Charges `count` dropped items against `shard`'s shed counters.
  static void CountShed(Shard* shard, int64_t batches, int64_t items);

  // The synchronous-mode ingest body: requires the shard mutex, which is
  // what pins "callers run the shard engines in place, serialized on a
  // per-shard mutex" at compile time — delete the KVEC_REQUIRES and the
  // clang -Wthread-safety build fails on the guarded access inside.
  static std::vector<StreamEvent> ObserveBatchLocked(
      Shard& shard, const std::vector<Item>& items) KVEC_REQUIRES(shard.mutex);

  // Ownership-transfer point 1 (async mode): the worker's view of its own
  // shard. Safe without the mutex because (a) `server` is written before
  // the worker thread is spawned (constructor) or through InstallServer on
  // this same worker (restore), and (b) the queue's internal mutex gives
  // the worker a happens-before edge with every producer. Justification
  // for the escape hatch: TSA has no notion of thread ownership.
  static StreamServer& WorkerOwnedServer(Shard& shard)
      KVEC_NO_THREAD_SAFETY_ANALYSIS;

  // Ownership-transfer point 2 (checkpoint restore commit): swaps a staged
  // server in. Runs either under the shard mutex (sync mode, via
  // RunOnAllShards) or on the owning worker (async mode) — both exclusive,
  // but expressed as "lock OR ownership", which TSA cannot state.
  static void InstallServer(Shard& shard,
                            std::unique_ptr<StreamServer> server)
      KVEC_NO_THREAD_SAFETY_ANALYSIS;

  // Copies the transport atomics into an engine-stats snapshot the caller
  // already owns (no lock needed: the counters are atomics by design).
  static StreamServerStats MergeTransportCounters(const Shard& shard,
                                                  StreamServerStats stats);

  // The sync-mode coherent stats snapshot: acquires EVERY shard mutex in
  // index order, copies, releases. A dynamically-sized, loop-acquired lock
  // set is outside what TSA can model, so this one function opts out;
  // safety argument: index order is the only multi-mutex order in this
  // class, so no cycle is possible, and the loop releases exactly what it
  // acquired.
  std::vector<StreamServerStats> SnapshotAllShardsLocked() const
      KVEC_NO_THREAD_SAFETY_ANALYSIS;

  // Shared bodies of the four checkpoint entry points.
  Checkpoint BuildCheckpoint() const;
  bool RestoreFromCheckpoint(const Checkpoint& checkpoint);
  // Restore split in two so the chain loader can apply deltas between the
  // staging and the commit: Stage parses a full checkpoint into fresh
  // per-shard servers (no live state touched), Commit swaps them all in
  // and re-baselines the transport counters.
  bool StageFromCheckpoint(const Checkpoint& checkpoint,
                           std::vector<std::unique_ptr<StreamServer>>* staged);
  void CommitStaged(std::vector<std::unique_ptr<StreamServer>>* staged);

  const KvecModel& model_;
  ShardedStreamServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kvec
