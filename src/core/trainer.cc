#include "core/trainer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>

#include "nn/scheduler.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {
namespace {

// Builds the per-epoch learning-rate schedule requested by the config.
std::unique_ptr<LrScheduler> MakeSchedule(const KvecConfig& config,
                                          Optimizer* optimizer) {
  switch (config.lr_schedule) {
    case KvecConfig::LrSchedule::kCosine:
      return std::make_unique<CosineAnnealingLr>(optimizer, config.epochs,
                                                 config.min_learning_rate);
    case KvecConfig::LrSchedule::kWarmupCosine:
      return std::make_unique<WarmupCosineLr>(
          optimizer, std::min(config.warmup_epochs, config.epochs - 1),
          config.epochs, config.min_learning_rate);
    case KvecConfig::LrSchedule::kConstant:
      break;
  }
  return std::make_unique<ConstantLr>(optimizer);
}

// Per-key rollout bookkeeping shared by training and evaluation.
struct KeyRollout {
  FusionState state;
  bool halted = false;
  int observed = 0;              // n_k
  int halt_stream_position = -1;  // global index of the item that halted S_k
  int predicted = -1;
  Tensor logits;
  // Training-only step records:
  std::vector<Tensor> halt_probs;
  std::vector<int> actions;  // 1 = Halt
  std::vector<Tensor> baseline_values;
};

float ClampProbability(float p) { return std::clamp(p, 1e-4f, 1.0f - 1e-4f); }

}  // namespace

KvecTrainer::KvecTrainer(KvecModel* model)
    : model_(model),
      main_optimizer_(model->MainParameters(),
                      model->config().learning_rate),
      baseline_optimizer_(model->BaselineParameters(),
                          model->config().baseline_learning_rate),
      rng_(model->config().seed ^ 0x7261696e65724bULL) {}

TrainEpochStats KvecTrainer::TrainEpoch(
    const std::vector<TangledSequence>& episodes) {
  KVEC_CHECK(!episodes.empty());
  const KvecConfig& config = model_->config();
  TrainEpochStats stats;
  int64_t halted_sequences = 0, correct_sequences = 0;
  double earliness_sum = 0.0;

  std::vector<int> order(episodes.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(order);

  for (int episode_id : order) {
    const TangledSequence& episode = episodes[episode_id];
    if (episode.items.empty()) continue;
    EpisodeIndex index = EpisodeIndex::Build(episode);
    EncodeResult encode =
        model_->encoder().Forward(episode, index, rng_, /*training=*/true);

    std::map<int, KeyRollout> rollouts;
    const int total = static_cast<int>(episode.items.size());
    for (int t = 0; t < total; ++t) {
      const int key = episode.items[t].key;
      KeyRollout& rollout = rollouts[key];
      if (rollout.halted) continue;
      if (!rollout.state.defined()) {
        rollout.state = model_->fusion().InitialState();
      }
      Tensor item_embedding = ops::SliceRow(encode.embeddings, t);
      rollout.state = model_->fusion().Step(rollout.state, item_embedding);
      ++rollout.observed;

      Tensor halt_prob =
          model_->policy().HaltProbability(rollout.state.hidden);
      rollout.halt_probs.push_back(halt_prob);
      rollout.baseline_values.push_back(
          model_->baseline().Forward(rollout.state.hidden.Detach()));

      const float p = ClampProbability(halt_prob.ScalarValue());
      const int action = rng_.NextBernoulli(p) ? 1 : 0;
      rollout.actions.push_back(action);
      if (action == 1) {
        rollout.logits = model_->classifier().Logits(rollout.state.hidden);
        rollout.predicted = ops::ArgMaxRow(rollout.logits, 0);
        rollout.halted = true;
        rollout.halt_stream_position = t;
      }
    }
    // Sequences that never halted are classified on their final state (the
    // stream ended; treat it as an implicit halt, see DESIGN.md §4.5).
    for (auto& [key, rollout] : rollouts) {
      if (!rollout.halted && rollout.observed > 0) {
        rollout.logits = model_->classifier().Logits(rollout.state.hidden);
        rollout.predicted = ops::ArgMaxRow(rollout.logits, 0);
      }
    }

    // ---- Assemble the three losses. ----
    std::vector<Tensor> logits_rows;
    std::vector<int> labels;
    std::vector<Tensor> policy_terms;   // -(R_i - b_i) log P(a_i | s_i)
    std::vector<Tensor> earliness_terms;  // -log P(Halt | s_i)
    std::vector<Tensor> baseline_rows;
    std::vector<float> baseline_targets;

    for (auto& [key, rollout] : rollouts) {
      if (rollout.observed == 0) continue;
      const int label = episode.labels.at(key);
      logits_rows.push_back(rollout.logits);
      labels.push_back(label);

      const float reward = (rollout.predicted == label) ? 1.0f : -1.0f;
      const int n = rollout.observed;
      for (int i = 0; i < n; ++i) {
        // Paper: R(i) = Σ_{s=i+1..n} r(s); with constant per-step reward
        // this is (n - (i+1)) * r (0 for the final action).
        const float cumulative = static_cast<float>(n - (i + 1)) * reward;
        const float advantage =
            cumulative - rollout.baseline_values[i].ScalarValue();
        const Tensor& p = rollout.halt_probs[i];
        Tensor log_prob = rollout.actions[i] == 1
                              ? ops::Log(p)
                              : ops::Log(ops::Affine(p, -1.0f, 1.0f));
        policy_terms.push_back(ops::Affine(log_prob, -advantage, 0.0f));
        earliness_terms.push_back(ops::Affine(ops::Log(p), -1.0f, 0.0f));
        baseline_rows.push_back(rollout.baseline_values[i]);
        baseline_targets.push_back(cumulative);
      }

      ++halted_sequences;
      if (rollout.predicted == label) ++correct_sequences;
      earliness_sum += static_cast<double>(n) / episode.KeyLength(key);
    }
    if (logits_rows.empty()) continue;

    const float inv_keys = 1.0f / static_cast<float>(logits_rows.size());
    Tensor l1 = ops::CrossEntropy(ops::StackRows(logits_rows), labels);
    Tensor l2 = ops::AddN(policy_terms);
    Tensor l3 = ops::AddN(earliness_terms);
    Tensor total_loss = ops::Affine(
        ops::AddN({l1, ops::Affine(l2, config.alpha, 0.0f),
                   ops::Affine(l3, config.beta, 0.0f)}),
        inv_keys, 0.0f);

    main_optimizer_.ZeroGrad();
    total_loss.Backward();
    ClipGradNorm(main_optimizer_.params(), config.grad_clip);
    main_optimizer_.Step();

    // θ_b: regression of the baseline onto the realised cumulative rewards.
    Tensor baseline_loss =
        ops::MseLoss(ops::StackRows(baseline_rows), baseline_targets);
    baseline_optimizer_.ZeroGrad();
    baseline_loss.Backward();
    ClipGradNorm(baseline_optimizer_.params(), config.grad_clip);
    baseline_optimizer_.Step();

    stats.total_loss += total_loss.ScalarValue();
    stats.classification_loss += l1.ScalarValue() * inv_keys;
    stats.policy_loss += l2.ScalarValue() * inv_keys;
    stats.earliness_loss += l3.ScalarValue() * inv_keys;
    stats.baseline_loss += baseline_loss.ScalarValue();
    stats.episodes += 1;
  }

  if (stats.episodes > 0) {
    stats.total_loss /= stats.episodes;
    stats.classification_loss /= stats.episodes;
    stats.policy_loss /= stats.episodes;
    stats.earliness_loss /= stats.episodes;
    stats.baseline_loss /= stats.episodes;
  }
  if (halted_sequences > 0) {
    stats.train_accuracy =
        static_cast<double>(correct_sequences) / halted_sequences;
    stats.train_earliness = earliness_sum / halted_sequences;
  }
  return stats;
}

std::vector<TrainEpochStats> KvecTrainer::Train(
    const std::vector<TangledSequence>& episodes) {
  std::vector<TrainEpochStats> history;
  history.reserve(model_->config().epochs);
  std::unique_ptr<LrScheduler> schedule =
      MakeSchedule(model_->config(), &main_optimizer_);
  for (int epoch = 0; epoch < model_->config().epochs; ++epoch) {
    // Stepping before the epoch makes warmup effective from epoch 0
    // (ComputeLr(1) is the first warmup rate).
    schedule->Step();
    history.push_back(TrainEpoch(episodes));
  }
  return history;
}

std::vector<TrainEpochStats> KvecTrainer::TrainWithValidation(
    const std::vector<TangledSequence>& train_episodes,
    const std::vector<TangledSequence>& validation_episodes,
    int* best_epoch) {
  KVEC_CHECK(!validation_episodes.empty());
  std::vector<TrainEpochStats> history;
  history.reserve(model_->config().epochs);
  std::unique_ptr<LrScheduler> schedule =
      MakeSchedule(model_->config(), &main_optimizer_);
  double best_hm = -1.0;
  int best = -1;
  std::string best_snapshot;
  for (int epoch = 0; epoch < model_->config().epochs; ++epoch) {
    schedule->Step();
    history.push_back(TrainEpoch(train_episodes));
    EvaluationResult validation = Evaluate(validation_episodes);
    if (validation.summary.harmonic_mean > best_hm) {
      best_hm = validation.summary.harmonic_mean;
      best = epoch;
      BinaryWriter writer;
      model_->SaveParameters(&writer);
      best_snapshot = writer.buffer();
    }
  }
  if (!best_snapshot.empty()) {
    BinaryReader reader(best_snapshot);
    KVEC_CHECK(model_->LoadParameters(&reader))
        << "failed to restore best validation snapshot";
  }
  if (best_epoch != nullptr) *best_epoch = best;
  return history;
}

EvaluationResult KvecTrainer::Evaluate(
    const std::vector<TangledSequence>& episodes, const EvalOptions& options) {
  EvaluationResult result;
  const KvecConfig& config = model_->config();

  for (const TangledSequence& episode : episodes) {
    if (episode.items.empty()) continue;
    EpisodeIndex index = EpisodeIndex::Build(episode);
    EncodeResult encode =
        model_->encoder().Forward(episode, index, rng_, /*training=*/false);

    std::map<int, KeyRollout> rollouts;
    const int total = static_cast<int>(episode.items.size());
    for (int t = 0; t < total; ++t) {
      const int key = episode.items[t].key;
      KeyRollout& rollout = rollouts[key];
      if (rollout.halted) continue;
      if (!rollout.state.defined()) {
        rollout.state = model_->fusion().InitialState();
      }
      Tensor item_embedding = ops::SliceRow(encode.embeddings, t);
      rollout.state = model_->fusion().Step(rollout.state, item_embedding);
      ++rollout.observed;
      rollout.halt_stream_position = t;
      Tensor halt_prob =
          model_->policy().HaltProbability(rollout.state.hidden);
      if (halt_prob.ScalarValue() > 0.5f) {
        rollout.logits = model_->classifier().Logits(rollout.state.hidden);
        rollout.predicted = ops::ArgMaxRow(rollout.logits, 0);
        rollout.halted = true;
      }
      // Cut the graph: evaluation needs no gradients and long sequences
      // would otherwise retain every intermediate.
      rollout.state.DetachInPlace();
    }
    for (auto& [key, rollout] : rollouts) {
      if (rollout.observed == 0) continue;
      if (!rollout.halted) {
        rollout.logits = model_->classifier().Logits(rollout.state.hidden);
        rollout.predicted = ops::ArgMaxRow(rollout.logits, 0);
      }
      const int length = episode.KeyLength(key);
      PredictionRecord record;
      record.true_label = episode.labels.at(key);
      record.predicted_label = rollout.predicted;
      record.observed_items = rollout.observed;
      record.sequence_length = length;
      record.confidence = MaxSoftmaxProbability(rollout.logits);
      result.records.push_back(record);

      HaltingRecord halt;
      halt.key = key;
      halt.halt_position = rollout.observed;
      halt.sequence_length = length;
      auto truth = episode.true_halt_positions.find(key);
      halt.true_halt_position =
          truth == episode.true_halt_positions.end() ? 0 : truth->second;
      result.halts.push_back(halt);

      if (options.collect_attention) {
        // Average over the attended rows of this sequence (up to its halt)
        // and over blocks: attention mass on same-key items (internal) vs
        // other-key items (external).
        double internal = 0.0, external = 0.0;
        int rows = 0;
        for (int t = 0; t <= rollout.halt_stream_position; ++t) {
          if (index.keys[t] != key) continue;
          for (const Tensor& weights : encode.attention_weights) {
            for (int j = 0; j <= t; ++j) {
              const float w = weights.At(t, j);
              if (w <= 0.0f) continue;
              if (index.keys[j] == key) {
                internal += w;
              } else {
                external += w;
              }
            }
            ++rows;
          }
        }
        if (rows > 0) {
          AttentionPoint point;
          point.earliness = static_cast<double>(rollout.observed) / length;
          point.internal_score = internal / rows;
          point.external_score = external / rows;
          result.attention.push_back(point);
        }
      }
    }
  }
  result.summary = ::kvec::Evaluate(result.records, config.spec.num_classes);
  return result;
}

}  // namespace kvec
