#include "core/stream_server.h"

#include <algorithm>

#include "tensor/tensor.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace kvec {

void StreamServerStats::Merge(const StreamServerStats& other) {
  items_processed += other.items_processed;
  sequences_classified += other.sequences_classified;
  policy_halts += other.policy_halts;
  idle_timeouts += other.idle_timeouts;
  capacity_evictions += other.capacity_evictions;
  rotation_classifications += other.rotation_classifications;
  flush_classifications += other.flush_classifications;
  windows_started += other.windows_started;
  if (class_counts.size() < other.class_counts.size()) {
    class_counts.resize(other.class_counts.size(), 0);
  }
  for (size_t c = 0; c < other.class_counts.size(); ++c) {
    class_counts[c] += other.class_counts[c];
  }
  items_submitted += other.items_submitted;
  batches_shed += other.batches_shed;
  items_shed += other.items_shed;
  bytes_resident += other.bytes_resident;
  pool_blocks += other.pool_blocks;
  scratch_high_water += other.scratch_high_water;
  compactions += other.compactions;
}

StreamServer::StreamServer(const KvecModel& model,
                           const StreamServerConfig& config)
    : model_(model),
      config_(config),
      pool_(std::make_unique<ShardPool>()),
      engine_(std::make_unique<OnlineClassifier>(model, pool_->resource())),
      index_(std::make_unique<KeyIndex>(pool_->resource())) {
  KVEC_CHECK_GT(config_.max_window_items, 0);
  KVEC_CHECK_GT(config_.idle_timeout, 0);
  KVEC_CHECK_GT(config_.idle_check_interval, 0);
  KVEC_CHECK_GT(config_.max_open_keys, 0);
  stats_.class_counts.assign(model.config().spec.num_classes, 0);
}

void StreamServer::RecordEvent(const StreamEvent& event) {
  ++stats_.sequences_classified;
  if (event.predicted_label >= 0 &&
      event.predicted_label < static_cast<int>(stats_.class_counts.size())) {
    ++stats_.class_counts[event.predicted_label];
  }
  switch (event.cause) {
    case StreamEvent::Cause::kPolicyHalt:
      ++stats_.policy_halts;
      break;
    case StreamEvent::Cause::kIdleTimeout:
      ++stats_.idle_timeouts;
      break;
    case StreamEvent::Cause::kCapacityEviction:
      ++stats_.capacity_evictions;
      break;
    case StreamEvent::Cause::kWindowRotation:
      ++stats_.rotation_classifications;
      break;
    case StreamEvent::Cause::kFlush:
      ++stats_.flush_classifications;
      break;
  }
}

void StreamServer::CloseKey(OpenKeyMap::iterator it) {
  index_->by_last_seen.erase({it->second.last_seen, it->first});
  index_->open.erase(it);
}

void StreamServer::CloseKey(int key) {
  auto it = index_->open.find(key);
  if (it != index_->open.end()) CloseKey(it);
}

void StreamServer::ForceClose(int key, StreamEvent::Cause cause,
                              std::vector<StreamEvent>* events) {
  auto it = index_->open.find(key);
  if (it == index_->open.end()) return;
  // ForceClassify mutates the key's engine state (halted/predicted) and
  // the close drops it from the serving index — both must reach the next
  // delta (as an engine upsert and a tombstone respectively).
  MarkDirty(key);
  StreamEvent event;
  event.key = key;
  event.cause = cause;
  event.observed_items = engine_->ObservedItems(key);
  event.predicted_label = engine_->ForceClassify(key, &event.confidence);
  CloseKey(it);
  RecordEvent(event);
  events->push_back(event);
}

void StreamServer::RotateWindow(std::vector<StreamEvent>* events) {
  // Close everything still open under the old engine, then rebuild it.
  std::vector<int> keys;
  keys.reserve(index_->open.size());
  for (const auto& [key, state] : index_->open) keys.push_back(key);
  for (int key : keys) {
    ForceClose(key, StreamEvent::Cause::kWindowRotation, events);
  }
  engine_ = std::make_unique<OnlineClassifier>(model_, pool_->resource());
  window_items_ = 0;
  ++stats_.windows_started;
}

void StreamServer::EvictIdle(std::vector<StreamEvent>* events) {
  // Oldest-first walk of the recency index: stop at the first key still
  // inside its idle window. O(evicted), not O(open keys).
  while (!index_->by_last_seen.empty() &&
         position_ - index_->by_last_seen.begin()->first >= config_.idle_timeout) {
    ForceClose(index_->by_last_seen.begin()->second, StreamEvent::Cause::kIdleTimeout,
               events);
  }
}

void StreamServer::Bookkeep(const Item& item, const OnlineDecision& decision,
                            std::vector<StreamEvent>* events) {
  ++position_;
  ++window_items_;
  ++stats_.items_processed;
  // Every observed item mutates its key's engine state (tracker lists,
  // per-key position, fusion step) even when the key is already halted.
  MarkDirty(item.key);

  if (decision.already_halted) {
    // The engine still tracks the item (its visibility matters for other
    // keys), but the key's verdict was already emitted. The idle sweep
    // below must still run: these items advance the clock like any other.
  } else if (decision.halted_now) {
    CloseKey(item.key);
    StreamEvent event;
    event.key = item.key;
    event.predicted_label = decision.predicted_label;
    event.observed_items = decision.observed_items;
    event.confidence = decision.confidence;
    event.cause = StreamEvent::Cause::kPolicyHalt;
    RecordEvent(event);
    events->push_back(event);
  } else {
    auto [it, inserted] = index_->open.try_emplace(item.key);
    if (!inserted) index_->by_last_seen.erase({it->second.last_seen, item.key});
    it->second.last_seen = position_;
    index_->by_last_seen.insert({position_, item.key});
    if (static_cast<int>(index_->open.size()) > config_.max_open_keys) {
      // Evict the least recently active key: the front of the recency index.
      ForceClose(index_->by_last_seen.begin()->second,
                 StreamEvent::Cause::kCapacityEviction, events);
    }
  }

  if (position_ % config_.idle_check_interval == 0) EvictIdle(events);
}

std::vector<StreamEvent> StreamServer::Observe(const Item& item) {
  // Belt and braces with OnlineClassifier's own guard: everything the
  // serving loop does (engine steps, forced closes, rotations) runs tapeless.
  InferenceMode inference_guard;
  std::vector<StreamEvent> events;
  if (window_items_ >= config_.max_window_items) RotateWindow(&events);

  OnlineDecision decision = engine_->Observe(item);
  Bookkeep(item, decision, &events);
  MaybeCompact(1);
  return events;
}

std::vector<StreamEvent> StreamServer::ObserveBatch(
    const std::vector<Item>& items) {
  InferenceMode inference_guard;
  std::vector<StreamEvent> events;
  const int total = static_cast<int>(items.size());
  const int embed = engine_->embed_dim();
  std::vector<float> rows;
  int begin = 0;
  while (begin < total) {
    if (window_items_ >= config_.max_window_items) RotateWindow(&events);
    // Encode up to the next rotation boundary in one microbatch. Encoding
    // ahead of the per-item bookkeeping below is safe: the encoder stage
    // depends only on the item stream (never on halts or evictions), and
    // rotations — which do reset the encoder — land exactly on chunk
    // boundaries because the window clock ticks once per item.
    const int chunk = std::min(total - begin,
                               config_.max_window_items - window_items_);
    engine_->EncodeBatch(items.data() + begin, chunk, &rows);
    for (int i = 0; i < chunk; ++i) {
      const Item& item = items[begin + i];
      OnlineDecision decision = engine_->DecideObserved(
          item.key, rows.data() + static_cast<size_t>(i) * embed);
      Bookkeep(item, decision, &events);
    }
    // The microbatch is drained: rewind the encoder's scratch arena so a
    // rare giant batch does not pin its high-water reservation forever.
    engine_->ResetEncodeScratch();
    MaybeCompact(chunk);
    begin += chunk;
  }
  return events;
}

bool StreamServer::Compact() {
  // Failable point: tests suppress the heuristic here, or stall a worker
  // mid-compaction to compose with the overload policies.
  if (KVEC_FAULT_POINT("compaction.run")) return false;
  auto pool = std::make_unique<ShardPool>();
  // Order matters. (1) Move the engine's state into the fresh pool while
  // both pools are alive; (2) rebuild the open-key index (uses-allocator
  // copies land in the fresh pool); (3) drop the old index, then (4) the
  // old pool — destruction of pool-backed containers must precede their
  // pool's.
  engine_->Repool(pool->resource());
  auto index = std::make_unique<KeyIndex>(pool->resource());
  for (const auto& entry : index_->open) index->open.insert(entry);
  for (const auto& entry : index_->by_last_seen) {
    index->by_last_seen.insert(entry);
  }
  index_ = std::move(index);
  pool_ = std::move(pool);
  ++stats_.compactions;
  items_since_compaction_check_ = 0;
  return true;
}

void StreamServer::MaybeCompact(int items) {
  if (config_.compaction_check_interval <= 0) return;
  items_since_compaction_check_ += items;
  if (items_since_compaction_check_ < config_.compaction_check_interval) {
    return;
  }
  items_since_compaction_check_ = 0;
  if (static_cast<int64_t>(pool_->bytes_resident()) <
      config_.compaction_min_bytes) {
    return;
  }
  if (pool_->fragmentation() < config_.compaction_fragmentation_threshold) {
    return;
  }
  Compact();
}

void StreamServer::RefreshMemoryStats() const {
  stats_.bytes_resident = static_cast<int64_t>(pool_->bytes_resident() +
                                               engine_->encoder_resident_bytes());
  stats_.pool_blocks = static_cast<int64_t>(pool_->blocks_resident());
  // High-water over the server's lifetime, not the current engine's — a
  // window rotation replaces the engine (and its scratch arena) wholesale.
  stats_.scratch_high_water =
      std::max(stats_.scratch_high_water,
               static_cast<int64_t>(engine_->scratch_high_water()));
}

const StreamServerStats& StreamServer::stats() const {
  RefreshMemoryStats();
  return stats_;
}

void StreamServer::Snapshot(BinaryWriter* writer) const {
  writer->WriteInt32(config_.max_window_items);
  writer->WriteInt32(config_.idle_timeout);
  writer->WriteInt32(config_.idle_check_interval);
  writer->WriteInt32(config_.max_open_keys);

  writer->WriteInt64(position_);
  writer->WriteInt32(window_items_);

  writer->WriteInt64(stats_.items_processed);
  writer->WriteInt64(stats_.sequences_classified);
  writer->WriteInt64(stats_.policy_halts);
  writer->WriteInt64(stats_.idle_timeouts);
  writer->WriteInt64(stats_.capacity_evictions);
  writer->WriteInt64(stats_.rotation_classifications);
  writer->WriteInt64(stats_.flush_classifications);
  writer->WriteInt32(stats_.windows_started);
  writer->WriteInt32(static_cast<int32_t>(stats_.class_counts.size()));
  for (int64_t count : stats_.class_counts) writer->WriteInt64(count);
  // The transport-layer counters (items_submitted / batches_shed /
  // items_shed) are intentionally absent: they belong to the sharded
  // ingest layer's process lifetime, not to serving state, and leaving
  // them out keeps the v1 snapshot layout byte-identical.

  writer->WriteInt32(static_cast<int32_t>(index_->open.size()));
  for (const auto& [key, state] : index_->open) {  // std::map: canonical order
    writer->WriteInt32(key);
    writer->WriteInt64(state.last_seen);
  }

  // Engine last: Restore stages everything above in temporaries and only
  // builds the (fresh) engine once the bookkeeping sections parsed.
  engine_->Snapshot(writer);
}

bool StreamServer::Restore(BinaryReader* reader) {
  StreamServerConfig config;
  config.max_window_items = reader->ReadInt32();
  config.idle_timeout = reader->ReadInt32();
  config.idle_check_interval = reader->ReadInt32();
  config.max_open_keys = reader->ReadInt32();
  if (!reader->ok() || config.max_window_items <= 0 ||
      config.idle_timeout <= 0 || config.idle_check_interval <= 0 ||
      config.max_open_keys <= 0) {
    return false;
  }

  const int64_t position = reader->ReadInt64();
  const int window_items = reader->ReadInt32();
  if (!reader->ok() || position < 0 || window_items < 0 ||
      window_items > config.max_window_items) {
    return false;
  }

  StreamServerStats stats;
  stats.items_processed = reader->ReadInt64();
  stats.sequences_classified = reader->ReadInt64();
  stats.policy_halts = reader->ReadInt64();
  stats.idle_timeouts = reader->ReadInt64();
  stats.capacity_evictions = reader->ReadInt64();
  stats.rotation_classifications = reader->ReadInt64();
  stats.flush_classifications = reader->ReadInt64();
  stats.windows_started = reader->ReadInt32();
  const int32_t num_classes = reader->ReadInt32();
  if (!reader->ok() ||
      num_classes != model_.config().spec.num_classes) {
    return false;
  }
  stats.class_counts.resize(num_classes);
  for (int32_t c = 0; c < num_classes; ++c) {
    stats.class_counts[c] = reader->ReadInt64();
  }

  // Staged into the live shard pool (the pool just grows while the old
  // state still exists; a failed restore leaves only recyclable pool
  // space behind, which the next compaction reclaims).
  auto index = std::make_unique<KeyIndex>(pool_->resource());
  const int32_t num_open = reader->ReadInt32();
  if (!reader->ok() || num_open < 0 ||
      static_cast<size_t>(num_open) > reader->remaining() / 8 ||
      num_open > config.max_open_keys) {
    return false;
  }
  for (int32_t i = 0; i < num_open && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    OpenKey state;
    state.last_seen = reader->ReadInt64();
    if (!reader->ok() || state.last_seen < 0 || state.last_seen > position) {
      return false;
    }
    if (!index->open.emplace(key, state).second) return false;
    index->by_last_seen.insert({state.last_seen, key});
  }
  if (!reader->ok()) return false;

  // A fresh engine keeps the current one intact if the engine section is
  // the part that turns out to be corrupt.
  auto engine = std::make_unique<OnlineClassifier>(model_, pool_->resource());
  if (!engine->Restore(reader)) return false;
  // The snapshot is the last thing in its section: bytes after it are
  // corruption the container framing cannot see. Checked before the
  // commit below so a tainted checkpoint leaves *this untouched.
  if (!reader->AtEnd()) return false;

  // The compaction knobs and lifetime counter are process-local (never
  // serialized; see StreamServerConfig): a restore keeps the live values.
  config.compaction_check_interval = config_.compaction_check_interval;
  config.compaction_fragmentation_threshold =
      config_.compaction_fragmentation_threshold;
  config.compaction_min_bytes = config_.compaction_min_bytes;
  stats.compactions = stats_.compactions;
  stats.scratch_high_water = stats_.scratch_high_water;

  config_ = config;
  position_ = position;
  window_items_ = window_items;
  stats_ = std::move(stats);
  index_ = std::move(index);
  engine_ = std::move(engine);
  items_since_compaction_check_ = 0;
  // A full restore invalidates any delta baseline: the restored state is a
  // new world. The chain loader re-arms tracking after its commit.
  dirty_tracking_ = false;
  dirty_keys_.clear();
  pending_baseline_ = false;
  return true;
}

void StreamServer::StageDeltaBaseline() {
  pending_epoch_ = dirty_epoch_++;
  pending_engine_items_ = engine_->num_items_observed();
  pending_windows_started_ = stats_.windows_started;
  pending_baseline_ = true;
}

void StreamServer::CommitDeltaBaseline() {
  if (!pending_baseline_) return;
  for (auto it = dirty_keys_.begin(); it != dirty_keys_.end();) {
    // Keys re-dirtied after the staged snapshot carry a later epoch and
    // must survive into the next delta.
    if (it->second <= pending_epoch_) {
      it = dirty_keys_.erase(it);
    } else {
      ++it;
    }
  }
  base_engine_items_ = pending_engine_items_;
  base_windows_started_ = pending_windows_started_;
  pending_baseline_ = false;
  dirty_tracking_ = true;
}

void StreamServer::SnapshotDelta(BinaryWriter* writer) {
  StageDeltaBaseline();

  std::vector<int> dirty_sorted;
  dirty_sorted.reserve(dirty_keys_.size());
  for (const auto& [key, epoch] : dirty_keys_) dirty_sorted.push_back(key);
  std::sort(dirty_sorted.begin(), dirty_sorted.end());

  // Config echo: a delta must never apply to a server with different
  // serving semantics (same four knobs the full snapshot carries).
  writer->WriteInt32(config_.max_window_items);
  writer->WriteInt32(config_.idle_timeout);
  writer->WriteInt32(config_.idle_check_interval);
  writer->WriteInt32(config_.max_open_keys);

  writer->WriteInt64(position_);
  writer->WriteInt32(window_items_);

  // Stats travel whole (they are a handful of scalars; the churn-
  // proportional savings are in the per-key payloads below).
  writer->WriteInt64(stats_.items_processed);
  writer->WriteInt64(stats_.sequences_classified);
  writer->WriteInt64(stats_.policy_halts);
  writer->WriteInt64(stats_.idle_timeouts);
  writer->WriteInt64(stats_.capacity_evictions);
  writer->WriteInt64(stats_.rotation_classifications);
  writer->WriteInt64(stats_.flush_classifications);
  writer->WriteInt32(stats_.windows_started);
  writer->WriteInt32(static_cast<int32_t>(stats_.class_counts.size()));
  for (int64_t count : stats_.class_counts) writer->WriteInt64(count);

  // When the engine was rebuilt since the base (window rotation), the
  // receiver rebuilds a fresh engine too and the encoder tail starts at 0.
  const bool engine_reset = stats_.windows_started != base_windows_started_;
  writer->WriteInt32(engine_reset ? 1 : 0);
  const int base_items = engine_reset ? 0 : base_engine_items_;

  // Serving-index upserts: dirty keys still open (canonical ascending).
  std::vector<int> open_dirty;
  std::vector<int> tombstones;
  for (int key : dirty_sorted) {
    if (index_->open.count(key)) {
      open_dirty.push_back(key);
    } else {
      tombstones.push_back(key);
    }
  }
  writer->WriteInt32(static_cast<int32_t>(open_dirty.size()));
  for (int key : open_dirty) {
    writer->WriteInt32(key);
    writer->WriteInt64(index_->open.at(key).last_seen);
  }
  // Tombstones: dirty keys no longer open (closed, evicted, or rotated
  // away since the base).
  writer->WriteInt32(static_cast<int32_t>(tombstones.size()));
  for (int key : tombstones) writer->WriteInt32(key);

  engine_->SnapshotDelta(writer, dirty_sorted, base_items);
}

bool StreamServer::ApplyDelta(BinaryReader* reader) {
  const int max_window_items = reader->ReadInt32();
  const int idle_timeout = reader->ReadInt32();
  const int idle_check_interval = reader->ReadInt32();
  const int max_open_keys = reader->ReadInt32();
  if (!reader->ok() || max_window_items != config_.max_window_items ||
      idle_timeout != config_.idle_timeout ||
      idle_check_interval != config_.idle_check_interval ||
      max_open_keys != config_.max_open_keys) {
    return false;
  }

  const int64_t position = reader->ReadInt64();
  const int window_items = reader->ReadInt32();
  if (!reader->ok() || position < position_ || window_items < 0 ||
      window_items > config_.max_window_items) {
    return false;
  }

  StreamServerStats stats;
  stats.items_processed = reader->ReadInt64();
  stats.sequences_classified = reader->ReadInt64();
  stats.policy_halts = reader->ReadInt64();
  stats.idle_timeouts = reader->ReadInt64();
  stats.capacity_evictions = reader->ReadInt64();
  stats.rotation_classifications = reader->ReadInt64();
  stats.flush_classifications = reader->ReadInt64();
  stats.windows_started = reader->ReadInt32();
  const int32_t num_classes = reader->ReadInt32();
  if (!reader->ok() || num_classes != model_.config().spec.num_classes) {
    return false;
  }
  stats.class_counts.resize(num_classes);
  for (int32_t c = 0; c < num_classes; ++c) {
    stats.class_counts[c] = reader->ReadInt64();
  }
  if (!reader->ok() || stats.windows_started < stats_.windows_started) {
    return false;
  }

  const int engine_reset = reader->ReadInt32();
  if (!reader->ok() || (engine_reset != 0 && engine_reset != 1)) return false;

  const int32_t num_upserts = reader->ReadInt32();
  if (!reader->ok() || num_upserts < 0 ||
      static_cast<size_t>(num_upserts) > reader->remaining() / 8) {
    return false;
  }
  int prev_key = -1;
  for (int32_t i = 0; i < num_upserts && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    const int64_t last_seen = reader->ReadInt64();
    if (!reader->ok() || (i > 0 && key <= prev_key) || last_seen < 0 ||
        last_seen > position) {
      return false;
    }
    prev_key = key;
    auto [it, inserted] = index_->open.try_emplace(key);
    if (!inserted) {
      index_->by_last_seen.erase({it->second.last_seen, key});
    }
    it->second.last_seen = last_seen;
    index_->by_last_seen.insert({last_seen, key});
  }

  const int32_t num_tombstones = reader->ReadInt32();
  if (!reader->ok() || num_tombstones < 0 ||
      static_cast<size_t>(num_tombstones) > reader->remaining() / 8) {
    return false;
  }
  prev_key = -1;
  for (int32_t i = 0; i < num_tombstones && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    // Strictly ascending is the canonical encoding; a duplicate (or
    // reordered) tombstone list is corruption, not a double-close.
    if (!reader->ok() || (i > 0 && key <= prev_key)) return false;
    prev_key = key;
    CloseKey(key);
  }
  if (static_cast<int>(index_->open.size()) > config_.max_open_keys) {
    return false;
  }

  if (engine_reset != 0) {
    // Mirrors RotateWindow on the writer: a fresh engine over the live
    // pool, whose delta then carries the whole young window from item 0.
    engine_ = std::make_unique<OnlineClassifier>(model_, pool_->resource());
  }
  if (!engine_->ApplyDelta(reader)) return false;
  if (!reader->AtEnd()) return false;

  // Same process-local carve-outs as Restore.
  stats.compactions = stats_.compactions;
  stats.scratch_high_water = stats_.scratch_high_water;
  stats.bytes_resident = stats_.bytes_resident;
  stats.pool_blocks = stats_.pool_blocks;

  position_ = position;
  window_items_ = window_items;
  stats_ = std::move(stats);
  items_since_compaction_check_ = 0;
  return true;
}

Checkpoint StreamServer::BuildCheckpoint() const {
  Checkpoint checkpoint;
  BinaryWriter writer;
  Snapshot(&writer);
  checkpoint.sections.push_back(
      {kCheckpointSectionStreamServer, writer.buffer()});
  return checkpoint;
}

bool StreamServer::RestoreFromCheckpoint(const Checkpoint& checkpoint) {
  // Delta containers (version 2) carry partial state and only make sense
  // relative to a staged base; a full restore must refuse them.
  if (checkpoint.version != kCheckpointFormatVersion) return false;
  const CheckpointSection* section =
      checkpoint.Find(kCheckpointSectionStreamServer);
  if (section == nullptr) return false;
  BinaryReader reader(section->payload);
  return Restore(&reader);
}

std::string StreamServer::EncodeCheckpoint() const {
  return CheckpointEncode(BuildCheckpoint());
}

bool StreamServer::RestoreCheckpoint(const std::string& bytes) {
  Checkpoint checkpoint;
  return CheckpointDecode(bytes, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

bool StreamServer::SaveCheckpoint(const std::string& path) const {
  return CheckpointSave(path, BuildCheckpoint());
}

bool StreamServer::LoadCheckpoint(const std::string& path) {
  Checkpoint checkpoint;
  return CheckpointLoad(path, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

std::vector<StreamEvent> StreamServer::Flush() {
  std::vector<StreamEvent> events;
  std::vector<int> keys;
  keys.reserve(index_->open.size());
  for (const auto& [key, state] : index_->open) keys.push_back(key);
  for (int key : keys) ForceClose(key, StreamEvent::Cause::kFlush, &events);
  return events;
}

}  // namespace kvec
