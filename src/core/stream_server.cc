#include "core/stream_server.h"

#include "tensor/tensor.h"
#include "util/check.h"

namespace kvec {

StreamServer::StreamServer(const KvecModel& model,
                           const StreamServerConfig& config)
    : model_(model),
      config_(config),
      engine_(std::make_unique<OnlineClassifier>(model)) {
  KVEC_CHECK_GT(config_.max_window_items, 0);
  KVEC_CHECK_GT(config_.idle_timeout, 0);
  KVEC_CHECK_GT(config_.idle_check_interval, 0);
  KVEC_CHECK_GT(config_.max_open_keys, 0);
  stats_.class_counts.assign(model.config().spec.num_classes, 0);
}

void StreamServer::RecordEvent(const StreamEvent& event) {
  ++stats_.sequences_classified;
  if (event.predicted_label >= 0 &&
      event.predicted_label < static_cast<int>(stats_.class_counts.size())) {
    ++stats_.class_counts[event.predicted_label];
  }
  switch (event.cause) {
    case StreamEvent::Cause::kPolicyHalt:
      ++stats_.policy_halts;
      break;
    case StreamEvent::Cause::kIdleTimeout:
      ++stats_.idle_timeouts;
      break;
    case StreamEvent::Cause::kCapacityEviction:
      ++stats_.capacity_evictions;
      break;
    case StreamEvent::Cause::kWindowRotation:
      ++stats_.rotation_classifications;
      break;
    case StreamEvent::Cause::kFlush:
      ++stats_.flush_classifications;
      break;
  }
}

void StreamServer::CloseKey(OpenKeyMap::iterator it) {
  by_last_seen_.erase({it->second.last_seen, it->first});
  open_.erase(it);
}

void StreamServer::CloseKey(int key) {
  auto it = open_.find(key);
  if (it != open_.end()) CloseKey(it);
}

void StreamServer::ForceClose(int key, StreamEvent::Cause cause,
                              std::vector<StreamEvent>* events) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  StreamEvent event;
  event.key = key;
  event.cause = cause;
  event.observed_items = engine_->ObservedItems(key);
  event.predicted_label = engine_->ForceClassify(key, &event.confidence);
  CloseKey(it);
  RecordEvent(event);
  events->push_back(event);
}

void StreamServer::RotateWindow(std::vector<StreamEvent>* events) {
  // Close everything still open under the old engine, then rebuild it.
  std::vector<int> keys;
  keys.reserve(open_.size());
  for (const auto& [key, state] : open_) keys.push_back(key);
  for (int key : keys) {
    ForceClose(key, StreamEvent::Cause::kWindowRotation, events);
  }
  engine_ = std::make_unique<OnlineClassifier>(model_);
  window_items_ = 0;
  ++stats_.windows_started;
}

void StreamServer::EvictIdle(std::vector<StreamEvent>* events) {
  // Oldest-first walk of the recency index: stop at the first key still
  // inside its idle window. O(evicted), not O(open keys).
  while (!by_last_seen_.empty() &&
         position_ - by_last_seen_.begin()->first >= config_.idle_timeout) {
    ForceClose(by_last_seen_.begin()->second, StreamEvent::Cause::kIdleTimeout,
               events);
  }
}

void StreamServer::Bookkeep(const Item& item, const OnlineDecision& decision,
                            std::vector<StreamEvent>* events) {
  ++position_;
  ++window_items_;
  ++stats_.items_processed;

  if (decision.already_halted) {
    // The engine still tracks the item (its visibility matters for other
    // keys), but the key's verdict was already emitted. The idle sweep
    // below must still run: these items advance the clock like any other.
  } else if (decision.halted_now) {
    CloseKey(item.key);
    StreamEvent event;
    event.key = item.key;
    event.predicted_label = decision.predicted_label;
    event.observed_items = decision.observed_items;
    event.confidence = decision.confidence;
    event.cause = StreamEvent::Cause::kPolicyHalt;
    RecordEvent(event);
    events->push_back(event);
  } else {
    auto [it, inserted] = open_.try_emplace(item.key);
    if (!inserted) by_last_seen_.erase({it->second.last_seen, item.key});
    it->second.last_seen = position_;
    by_last_seen_.insert({position_, item.key});
    if (static_cast<int>(open_.size()) > config_.max_open_keys) {
      // Evict the least recently active key: the front of the recency index.
      ForceClose(by_last_seen_.begin()->second,
                 StreamEvent::Cause::kCapacityEviction, events);
    }
  }

  if (position_ % config_.idle_check_interval == 0) EvictIdle(events);
}

std::vector<StreamEvent> StreamServer::Observe(const Item& item) {
  // Belt and braces with OnlineClassifier's own guard: everything the
  // serving loop does (engine steps, forced closes, rotations) runs tapeless.
  InferenceMode inference_guard;
  std::vector<StreamEvent> events;
  if (window_items_ >= config_.max_window_items) RotateWindow(&events);

  OnlineDecision decision = engine_->Observe(item);
  Bookkeep(item, decision, &events);
  return events;
}

std::vector<StreamEvent> StreamServer::ObserveBatch(
    const std::vector<Item>& items) {
  InferenceMode inference_guard;
  std::vector<StreamEvent> events;
  const int total = static_cast<int>(items.size());
  const int embed = engine_->embed_dim();
  std::vector<float> rows;
  int begin = 0;
  while (begin < total) {
    if (window_items_ >= config_.max_window_items) RotateWindow(&events);
    // Encode up to the next rotation boundary in one microbatch. Encoding
    // ahead of the per-item bookkeeping below is safe: the encoder stage
    // depends only on the item stream (never on halts or evictions), and
    // rotations — which do reset the encoder — land exactly on chunk
    // boundaries because the window clock ticks once per item.
    const int chunk = std::min(total - begin,
                               config_.max_window_items - window_items_);
    engine_->EncodeBatch(items.data() + begin, chunk, &rows);
    for (int i = 0; i < chunk; ++i) {
      const Item& item = items[begin + i];
      OnlineDecision decision = engine_->DecideObserved(
          item.key, rows.data() + static_cast<size_t>(i) * embed);
      Bookkeep(item, decision, &events);
    }
    begin += chunk;
  }
  return events;
}

std::vector<StreamEvent> StreamServer::Flush() {
  std::vector<StreamEvent> events;
  std::vector<int> keys;
  keys.reserve(open_.size());
  for (const auto& [key, state] : open_) keys.push_back(key);
  for (int key : keys) ForceClose(key, StreamEvent::Cause::kFlush, &events);
  return events;
}

}  // namespace kvec
