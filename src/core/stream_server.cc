#include "core/stream_server.h"

#include <algorithm>

#include "tensor/tensor.h"
#include "util/check.h"

namespace kvec {

StreamServer::StreamServer(const KvecModel& model,
                           const StreamServerConfig& config)
    : model_(model),
      config_(config),
      engine_(std::make_unique<OnlineClassifier>(model)) {
  KVEC_CHECK_GT(config_.max_window_items, 0);
  KVEC_CHECK_GT(config_.idle_timeout, 0);
  KVEC_CHECK_GT(config_.idle_check_interval, 0);
  KVEC_CHECK_GT(config_.max_open_keys, 0);
  stats_.class_counts.assign(model.config().spec.num_classes, 0);
}

void StreamServer::RecordEvent(const StreamEvent& event) {
  ++stats_.sequences_classified;
  if (event.predicted_label >= 0 &&
      event.predicted_label < static_cast<int>(stats_.class_counts.size())) {
    ++stats_.class_counts[event.predicted_label];
  }
  switch (event.cause) {
    case StreamEvent::Cause::kPolicyHalt:
      ++stats_.policy_halts;
      break;
    case StreamEvent::Cause::kIdleTimeout:
      ++stats_.idle_timeouts;
      break;
    case StreamEvent::Cause::kCapacityEviction:
      ++stats_.capacity_evictions;
      break;
    case StreamEvent::Cause::kWindowRotation:
      ++stats_.rotation_classifications;
      break;
    case StreamEvent::Cause::kFlush:
      break;
  }
}

void StreamServer::ForceClose(int key, StreamEvent::Cause cause,
                              std::vector<StreamEvent>* events) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  StreamEvent event;
  event.key = key;
  event.cause = cause;
  event.observed_items = engine_->ObservedItems(key);
  event.predicted_label = engine_->ForceClassify(key, &event.confidence);
  open_.erase(it);
  RecordEvent(event);
  events->push_back(event);
}

void StreamServer::RotateWindow(std::vector<StreamEvent>* events) {
  // Close everything still open under the old engine, then rebuild it.
  std::vector<int> keys;
  keys.reserve(open_.size());
  for (const auto& [key, state] : open_) keys.push_back(key);
  for (int key : keys) {
    ForceClose(key, StreamEvent::Cause::kWindowRotation, events);
  }
  engine_ = std::make_unique<OnlineClassifier>(model_);
  window_items_ = 0;
  ++stats_.windows_started;
}

void StreamServer::EvictIdle(std::vector<StreamEvent>* events) {
  std::vector<int> idle;
  for (const auto& [key, state] : open_) {
    if (position_ - state.last_seen > config_.idle_timeout) {
      idle.push_back(key);
    }
  }
  for (int key : idle) {
    ForceClose(key, StreamEvent::Cause::kIdleTimeout, events);
  }
}

std::vector<StreamEvent> StreamServer::Observe(const Item& item) {
  // Belt and braces with OnlineClassifier's own guard: everything the
  // serving loop does (engine steps, forced closes, rotations) runs tapeless.
  InferenceMode inference_guard;
  std::vector<StreamEvent> events;
  if (window_items_ >= config_.max_window_items) RotateWindow(&events);

  OnlineDecision decision = engine_->Observe(item);
  ++position_;
  ++window_items_;
  ++stats_.items_processed;

  if (decision.already_halted) {
    // The engine still tracks the item (its visibility matters for other
    // keys), but the key's verdict was already emitted.
    return events;
  }
  if (decision.halted_now) {
    open_.erase(item.key);
    StreamEvent event;
    event.key = item.key;
    event.predicted_label = decision.predicted_label;
    event.observed_items = decision.observed_items;
    event.confidence = decision.confidence;
    event.cause = StreamEvent::Cause::kPolicyHalt;
    RecordEvent(event);
    events.push_back(event);
  } else {
    open_[item.key].last_seen = position_;
    if (static_cast<int>(open_.size()) > config_.max_open_keys) {
      // Evict the least recently active key.
      auto lru = std::min_element(open_.begin(), open_.end(),
                                  [](const auto& a, const auto& b) {
                                    return a.second.last_seen <
                                           b.second.last_seen;
                                  });
      ForceClose(lru->first, StreamEvent::Cause::kCapacityEviction, &events);
    }
  }

  if (position_ % config_.idle_check_interval == 0) EvictIdle(&events);
  return events;
}

std::vector<StreamEvent> StreamServer::Flush() {
  std::vector<StreamEvent> events;
  std::vector<int> keys;
  keys.reserve(open_.size());
  for (const auto& [key, state] : open_) keys.push_back(key);
  for (int key : keys) ForceClose(key, StreamEvent::Cause::kFlush, &events);
  return events;
}

}  // namespace kvec
