#include "core/input_embedding.h"

#include <algorithm>
#include <map>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

EpisodeIndex EpisodeIndex::Build(const TangledSequence& episode) {
  EpisodeIndex index;
  index.keys.reserve(episode.items.size());
  index.position_in_key.reserve(episode.items.size());
  std::map<int, int> counts;
  for (const Item& item : episode.items) {
    index.keys.push_back(item.key);
    index.position_in_key.push_back(counts[item.key]++);
  }
  return index;
}

InputEmbedding::InputEmbedding(const KvecConfig& config, Rng& rng)
    : config_(config),
      membership_embedding_(config.spec.max_keys_per_episode,
                            config.embed_dim, rng),
      position_embedding_(config.spec.max_sequence_length, config.embed_dim,
                          rng),
      time_embedding_(config.spec.max_episode_length, config.embed_dim, rng) {
  value_embeddings_.reserve(config.spec.value_fields.size());
  for (const ValueField& field : config.spec.value_fields) {
    value_embeddings_.emplace_back(field.vocab_size, config.embed_dim, rng);
  }
}

Tensor InputEmbedding::Forward(const TangledSequence& episode,
                               const EpisodeIndex& index) const {
  const int total = static_cast<int>(episode.items.size());
  KVEC_CHECK_GT(total, 0);
  KVEC_CHECK_EQ(index.keys.size(), episode.items.size());

  std::vector<Tensor> terms;
  // Value embeddings: one gather per value field.
  for (size_t field = 0; field < value_embeddings_.size(); ++field) {
    std::vector<int> ids(total);
    for (int i = 0; i < total; ++i) {
      ids[i] = episode.items[i].value[field];
    }
    terms.push_back(value_embeddings_[field].Forward(ids));
  }
  if (config_.use_membership_embedding) {
    std::vector<int> ids(total);
    for (int i = 0; i < total; ++i) {
      ids[i] = std::min(index.keys[i],
                        config_.spec.max_keys_per_episode - 1);
    }
    terms.push_back(membership_embedding_.Forward(ids));
  }
  if (config_.use_time_embeddings) {
    std::vector<int> position_ids(total);
    std::vector<int> time_ids(total);
    for (int i = 0; i < total; ++i) {
      position_ids[i] = std::min(index.position_in_key[i],
                                 config_.spec.max_sequence_length - 1);
      time_ids[i] = std::min(i, config_.spec.max_episode_length - 1);
    }
    terms.push_back(position_embedding_.Forward(position_ids));
    terms.push_back(time_embedding_.Forward(time_ids));
  }
  return ops::AddN(terms);
}

void InputEmbedding::AccumulateItemRow(const Item& item, int position_in_key,
                                       int time_index,
                                       std::vector<float>* row) const {
  KVEC_CHECK_EQ(static_cast<int>(row->size()), config_.embed_dim);
  AccumulateItemRow(item, position_in_key, time_index, row->data());
}

void InputEmbedding::AccumulateItemRow(const Item& item, int position_in_key,
                                       int time_index, float* row) const {
  const int d = config_.embed_dim;
  auto add_table_row = [&](const Embedding& embedding, int id) {
    KVEC_CHECK_GE(id, 0);
    KVEC_CHECK_LT(id, embedding.vocab_size());
    const float* src =
        embedding.table().data().data() + static_cast<size_t>(id) * d;
    for (int c = 0; c < d; ++c) row[c] += src[c];
  };
  for (size_t field = 0; field < value_embeddings_.size(); ++field) {
    add_table_row(value_embeddings_[field], item.value[field]);
  }
  if (config_.use_membership_embedding) {
    add_table_row(membership_embedding_,
                  std::min(item.key, config_.spec.max_keys_per_episode - 1));
  }
  if (config_.use_time_embeddings) {
    add_table_row(position_embedding_,
                  std::min(position_in_key,
                           config_.spec.max_sequence_length - 1));
    add_table_row(time_embedding_,
                  std::min(time_index, config_.spec.max_episode_length - 1));
  }
}

void InputEmbedding::CollectParameters(std::vector<Tensor>* out) {
  for (Embedding& embedding : value_embeddings_) {
    embedding.CollectParameters(out);
  }
  membership_embedding_.CollectParameters(out);
  position_embedding_.CollectParameters(out);
  time_embedding_.CollectParameters(out);
}

}  // namespace kvec
