#include "core/fusion.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

void FusionState::DetachInPlace() {
  // Tensors that don't require grad never carry parents/backward_fn
  // (MakeOpOutput's invariant), so states produced under InferenceMode are
  // already detached and keep their storage — copying them would defeat the
  // zero-allocation serving path.
  if (hidden.defined() && hidden.requires_grad()) hidden = hidden.Detach();
  if (cell.defined() && cell.requires_grad()) cell = cell.Detach();
}

EmbeddingFusion::EmbeddingFusion(const KvecConfig& config, Rng& rng)
    : kind_(config.fusion),
      embed_dim_(config.embed_dim),
      state_dim_(config.state_dim) {
  KVEC_CHECK_GT(embed_dim_, 0);
  if (kind_ == KvecConfig::FusionKind::kLstm) {
    KVEC_CHECK_GT(state_dim_, 0);
    lstm_ = std::make_unique<LstmFusionCell>(embed_dim_, state_dim_, rng);
  }
}

int EmbeddingFusion::output_dim() const {
  return kind_ == KvecConfig::FusionKind::kLstm ? state_dim_ : embed_dim_;
}

FusionState EmbeddingFusion::InitialState() const {
  FusionState state;
  if (kind_ == KvecConfig::FusionKind::kLstm) {
    LstmState lstm_state = lstm_->InitialState();
    state.hidden = lstm_state.hidden;
    state.cell = lstm_state.cell;
  } else {
    state.hidden = Tensor::Zeros(1, embed_dim_);
    if (kind_ == KvecConfig::FusionKind::kMean) {
      state.cell = Tensor::Zeros(1, embed_dim_);  // running sum
    }
  }
  return state;
}

FusionState EmbeddingFusion::Step(const FusionState& previous,
                                  const Tensor& item_embedding) const {
  KVEC_CHECK(previous.defined());
  KVEC_CHECK_EQ(item_embedding.cols(), embed_dim_);
  FusionState next;
  next.count = previous.count + 1;
  switch (kind_) {
    case KvecConfig::FusionKind::kLstm: {
      LstmState in{previous.hidden, previous.cell};
      LstmState out = lstm_->Step(in, item_embedding);
      next.hidden = out.hidden;
      next.cell = out.cell;
      break;
    }
    case KvecConfig::FusionKind::kSum:
      next.hidden = ops::Add(previous.hidden, item_embedding);
      break;
    case KvecConfig::FusionKind::kMean:
      next.cell = ops::Add(previous.cell, item_embedding);
      next.hidden = ops::Affine(
          next.cell, 1.0f / static_cast<float>(next.count), 0.0f);
      break;
    case KvecConfig::FusionKind::kLast:
      next.hidden = item_embedding;
      break;
  }
  return next;
}

void EmbeddingFusion::CollectParameters(std::vector<Tensor>* out) {
  if (lstm_ != nullptr) lstm_->CollectParameters(out);
}

}  // namespace kvec
