#include "core/online.h"

#include <algorithm>
#include <utility>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

OnlineClassifier::OnlineClassifier(const KvecModel& model,
                                   std::pmr::memory_resource* memory)
    : model_(model),
      memory_(memory),
      incremental_(model.encoder()),
      tracker_(model.config().correlation, memory),
      keys_(std::make_unique<KeyStateMap>(memory)) {}

void OnlineClassifier::Repool(std::pmr::memory_resource* memory) {
  tracker_.Repool(memory);
  auto fresh = std::make_unique<KeyStateMap>(memory);
  fresh->reserve(keys_->size());
  // KeyState's tensors are shared handles into BufferPool storage — the
  // copy moves the map nodes into the new pool, not the float data.
  for (const auto& [key, state] : *keys_) fresh->emplace(key, state);
  keys_ = std::move(fresh);
  memory_ = memory;
  incremental_.ShrinkToFit();
}

void OnlineClassifier::ResetEncodeScratch() { incremental_.ResetScratch(); }

size_t OnlineClassifier::encoder_resident_bytes() const {
  return incremental_.resident_bytes();
}

size_t OnlineClassifier::scratch_high_water() const {
  return incremental_.scratch_high_water();
}

void OnlineClassifier::EncodeBatch(const Item* items, int count,
                                   std::vector<float>* rows) {
  KVEC_CHECK_GT(count, 0);
  // The tracker must see every stream item — even those of halted keys —
  // so the visibility sets of live keys stay identical to training.
  if (static_cast<int>(visible_scratch_.size()) < count) {
    visible_scratch_.resize(count);
  }
  position_scratch_.resize(count);
  for (int i = 0; i < count; ++i) {
    visible_scratch_[i] = tracker_.ObserveItem(items[i]);
    position_scratch_[i] = (*keys_)[items[i].key].position_in_key++;
  }
  if (count == 1) {
    // Single-item fast path: the row-vector VecMat pipeline, no GEMM setup.
    *rows = incremental_.AppendItem(items[0], position_scratch_[0],
                                    visible_scratch_[0]);
  } else {
    incremental_.AppendBatch(items, position_scratch_.data(),
                             visible_scratch_.data(), count, rows);
  }
  num_items_ += count;
}

OnlineDecision OnlineClassifier::DecideObserved(int key, const float* row) {
  // Pure serving: no op below may record tape nodes, so the fusion step and
  // head evaluations build zero graph (no Detach() cleanup required).
  InferenceMode inference_guard;
  OnlineDecision decision;
  decision.key = key;

  KeyState& key_state = keys_->at(key);  // created by EncodeBatch
  if (key_state.halted) {
    decision.already_halted = true;
    decision.predicted_label = key_state.predicted;
    decision.observed_items = key_state.observed;
    return decision;
  }
  if (!key_state.state.defined()) {
    key_state.state = model_.fusion().InitialState();
  }

  const int embed = embed_dim();
  Tensor embedding =
      Tensor::FromData(1, embed, std::vector<float>(row, row + embed));
  key_state.state = model_.fusion().Step(key_state.state, embedding);
  // No gradients at inference: cut the graph so state does not accumulate.
  key_state.state.DetachInPlace();
  ++key_state.observed;

  Tensor halt_prob = model_.policy().HaltProbability(key_state.state.hidden);
  decision.halt_probability = halt_prob.ScalarValue();
  decision.observed_items = key_state.observed;
  if (decision.halt_probability > 0.5) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    key_state.predicted = ops::ArgMaxRow(logits, 0);
    key_state.halted = true;
    decision.halted_now = true;
    decision.predicted_label = key_state.predicted;
    decision.confidence = MaxSoftmaxProbability(logits);
  }
  return decision;
}

OnlineDecision OnlineClassifier::Observe(const Item& item) {
  InferenceMode inference_guard;
  std::vector<float> row;
  EncodeBatch(&item, 1, &row);
  return DecideObserved(item.key, row.data());
}

std::vector<OnlineDecision> OnlineClassifier::ObserveBatch(
    const std::vector<Item>& items) {
  InferenceMode inference_guard;
  std::vector<OnlineDecision> decisions;
  if (items.empty()) return decisions;
  decisions.reserve(items.size());
  std::vector<float> rows;
  EncodeBatch(items.data(), static_cast<int>(items.size()), &rows);
  const int embed = embed_dim();
  for (size_t i = 0; i < items.size(); ++i) {
    decisions.push_back(
        DecideObserved(items[i].key, rows.data() + i * embed));
  }
  return decisions;
}

int OnlineClassifier::ForceClassify(int key, double* confidence) {
  InferenceMode inference_guard;
  auto it = keys_->find(key);
  if (it == keys_->end() || it->second.observed == 0) {
    if (confidence != nullptr) *confidence = 0.0;
    return -1;
  }
  KeyState& key_state = it->second;
  if (!key_state.halted || confidence != nullptr) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    if (!key_state.halted) {
      key_state.predicted = ops::ArgMaxRow(logits, 0);
      key_state.halted = true;
    }
    if (confidence != nullptr) *confidence = MaxSoftmaxProbability(logits);
  }
  return key_state.predicted;
}

namespace {

void WriteStateTensor(BinaryWriter* writer, const Tensor& tensor) {
  writer->WriteInt32(tensor.rows());
  writer->WriteInt32(tensor.cols());
  writer->WriteFloatVector(tensor.data());
}

// Fusion states are always single rows; anything else is corruption.
bool ReadStateTensor(BinaryReader* reader, int expected_cols, Tensor* out) {
  const int rows = reader->ReadInt32();
  const int cols = reader->ReadInt32();
  std::vector<float> data = reader->ReadFloatVector();
  if (!reader->ok() || rows != 1 || cols != expected_cols ||
      data.size() != static_cast<size_t>(expected_cols)) {
    return false;
  }
  *out = Tensor::FromData(rows, cols, std::move(data));
  return true;
}

}  // namespace

void OnlineClassifier::WriteKeyState(BinaryWriter* writer, int key,
                                     const KeyState& state) const {
  writer->WriteInt32(key);
  writer->WriteInt32(state.halted ? 1 : 0);
  writer->WriteInt32(state.observed);
  writer->WriteInt32(state.position_in_key);
  writer->WriteInt32(state.predicted);
  writer->WriteInt32(state.state.count);
  writer->WriteInt32(state.state.hidden.defined() ? 1 : 0);
  if (state.state.hidden.defined()) {
    WriteStateTensor(writer, state.state.hidden);
  }
  writer->WriteInt32(state.state.cell.defined() ? 1 : 0);
  if (state.state.cell.defined()) {
    WriteStateTensor(writer, state.state.cell);
  }
}

bool OnlineClassifier::ReadKeyState(BinaryReader* reader, int* key,
                                    KeyState* state) const {
  const KvecConfig& config = model_.config();
  const int hidden_dim = model_.fusion().output_dim();
  const int cell_dim = config.fusion == KvecConfig::FusionKind::kLstm
                           ? config.state_dim
                           : config.embed_dim;
  *key = reader->ReadInt32();
  state->halted = reader->ReadInt32() != 0;
  state->observed = reader->ReadInt32();
  state->position_in_key = reader->ReadInt32();
  state->predicted = reader->ReadInt32();
  state->state.count = reader->ReadInt32();
  if (!reader->ok() || state->observed < 0 ||
      state->position_in_key < state->observed || state->state.count < 0 ||
      state->predicted < -1 || state->predicted >= config.spec.num_classes) {
    return false;
  }
  if (reader->ReadInt32() != 0) {
    if (!ReadStateTensor(reader, hidden_dim, &state->state.hidden)) {
      return false;
    }
  }
  if (reader->ReadInt32() != 0) {
    if (!ReadStateTensor(reader, cell_dim, &state->state.cell)) return false;
  }
  // ForceClassify and Step both dereference the hidden state of any key
  // with observed items; a checkpoint without one is corrupt.
  if (state->observed > 0 && !state->state.hidden.defined()) return false;
  return true;
}

void OnlineClassifier::Snapshot(BinaryWriter* writer) const {
  writer->WriteInt32(num_items_);
  tracker_.Snapshot(writer);

  std::vector<int> sorted_keys;
  sorted_keys.reserve(keys_->size());
  for (const auto& [key, state] : *keys_) sorted_keys.push_back(key);
  std::sort(sorted_keys.begin(), sorted_keys.end());
  writer->WriteInt32(static_cast<int32_t>(sorted_keys.size()));
  for (int key : sorted_keys) {
    WriteKeyState(writer, key, keys_->at(key));
  }

  // The encoder arena goes last so Restore can stage everything else in
  // temporaries and only mutate members once all sections parsed.
  incremental_.Snapshot(writer);
}

bool OnlineClassifier::Restore(BinaryReader* reader) {
  const KvecConfig& config = model_.config();

  const int num_items = reader->ReadInt32();
  if (!reader->ok() || num_items < 0) return false;

  CorrelationTracker tracker(config.correlation, memory_);
  if (!tracker.Restore(reader)) return false;
  if (tracker.num_observed() != num_items) return false;

  // Staged into the engine's own resource; committed by a pointer swap.
  auto keys = std::make_unique<KeyStateMap>(memory_);
  const int32_t num_keys = reader->ReadInt32();
  if (!reader->ok() || num_keys < 0 ||
      static_cast<size_t>(num_keys) > reader->remaining() / 8) {
    return false;
  }
  keys->reserve(num_keys);
  for (int32_t i = 0; i < num_keys && reader->ok(); ++i) {
    int key = 0;
    KeyState state;
    if (!ReadKeyState(reader, &key, &state)) return false;
    if (!keys->emplace(key, std::move(state)).second) return false;
  }
  if (!reader->ok()) return false;

  // The encoder is the only member mutated before the commit point below,
  // and its Restore is itself all-or-nothing (with the item count
  // cross-checked against this section's clock), so a failure anywhere
  // leaves *this untouched.
  if (!incremental_.Restore(reader, num_items)) return false;

  num_items_ = num_items;
  tracker_ = std::move(tracker);
  keys_ = std::move(keys);
  return true;
}

void OnlineClassifier::SnapshotDelta(BinaryWriter* writer,
                                     const std::vector<int>& dirty_sorted,
                                     int base_items) const {
  writer->WriteInt32(num_items_);
  writer->WriteInt32(base_items);
  tracker_.SnapshotDelta(writer, dirty_sorted);

  // Dirty keys that reached the engine this window (a key can be dirtied
  // purely in the serving index — e.g. evicted before its first item of a
  // fresh window — without a KeyState).
  std::vector<int> present;
  present.reserve(dirty_sorted.size());
  for (int key : dirty_sorted) {
    if (keys_->count(key)) present.push_back(key);
  }
  writer->WriteInt32(static_cast<int32_t>(present.size()));
  for (int key : present) {
    WriteKeyState(writer, key, keys_->at(key));
  }

  incremental_.SnapshotTail(writer, base_items);
}

bool OnlineClassifier::ApplyDelta(BinaryReader* reader) {
  const int num_items = reader->ReadInt32();
  const int base_items = reader->ReadInt32();
  // The receiver must hold exactly the base the delta was cut against.
  if (!reader->ok() || num_items < base_items || base_items != num_items_) {
    return false;
  }
  if (!tracker_.ApplyDelta(reader, num_items)) return false;

  const int32_t num_keys = reader->ReadInt32();
  if (!reader->ok() || num_keys < 0 ||
      static_cast<size_t>(num_keys) > reader->remaining() / 8) {
    return false;
  }
  int prev_key = -1;
  bool first = true;
  for (int32_t i = 0; i < num_keys && reader->ok(); ++i) {
    int key = 0;
    KeyState state;
    if (!ReadKeyState(reader, &key, &state)) return false;
    if (!first && key <= prev_key) return false;  // canonical ascending
    first = false;
    prev_key = key;
    (*keys_)[key] = std::move(state);
  }
  if (!reader->ok()) return false;

  if (!incremental_.RestoreTail(reader, num_items)) return false;
  num_items_ = num_items;
  return true;
}

int OnlineClassifier::ObservedItems(int key) const {
  auto it = keys_->find(key);
  return it == keys_->end() ? 0 : it->second.observed;
}

bool OnlineClassifier::IsHalted(int key) const {
  auto it = keys_->find(key);
  return it != keys_->end() && it->second.halted;
}

}  // namespace kvec
