#include "core/online.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

OnlineClassifier::OnlineClassifier(const KvecModel& model)
    : model_(model),
      incremental_(model.encoder()),
      tracker_(model.config().correlation) {}

void OnlineClassifier::EncodeBatch(const Item* items, int count,
                                   std::vector<float>* rows) {
  KVEC_CHECK_GT(count, 0);
  // The tracker must see every stream item — even those of halted keys —
  // so the visibility sets of live keys stay identical to training.
  if (static_cast<int>(visible_scratch_.size()) < count) {
    visible_scratch_.resize(count);
  }
  position_scratch_.resize(count);
  for (int i = 0; i < count; ++i) {
    visible_scratch_[i] = tracker_.ObserveItem(items[i]);
    position_scratch_[i] = keys_[items[i].key].position_in_key++;
  }
  if (count == 1) {
    // Single-item fast path: the row-vector VecMat pipeline, no GEMM setup.
    *rows = incremental_.AppendItem(items[0], position_scratch_[0],
                                    visible_scratch_[0]);
  } else {
    incremental_.AppendBatch(items, position_scratch_.data(),
                             visible_scratch_.data(), count, rows);
  }
  num_items_ += count;
}

OnlineDecision OnlineClassifier::DecideObserved(int key, const float* row) {
  // Pure serving: no op below may record tape nodes, so the fusion step and
  // head evaluations build zero graph (no Detach() cleanup required).
  InferenceMode inference_guard;
  OnlineDecision decision;
  decision.key = key;

  KeyState& key_state = keys_.at(key);  // created by EncodeBatch
  if (key_state.halted) {
    decision.already_halted = true;
    decision.predicted_label = key_state.predicted;
    decision.observed_items = key_state.observed;
    return decision;
  }
  if (!key_state.state.defined()) {
    key_state.state = model_.fusion().InitialState();
  }

  const int embed = embed_dim();
  Tensor embedding =
      Tensor::FromData(1, embed, std::vector<float>(row, row + embed));
  key_state.state = model_.fusion().Step(key_state.state, embedding);
  // No gradients at inference: cut the graph so state does not accumulate.
  key_state.state.DetachInPlace();
  ++key_state.observed;

  Tensor halt_prob = model_.policy().HaltProbability(key_state.state.hidden);
  decision.halt_probability = halt_prob.ScalarValue();
  decision.observed_items = key_state.observed;
  if (decision.halt_probability > 0.5) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    key_state.predicted = ops::ArgMaxRow(logits, 0);
    key_state.halted = true;
    decision.halted_now = true;
    decision.predicted_label = key_state.predicted;
    decision.confidence = MaxSoftmaxProbability(logits);
  }
  return decision;
}

OnlineDecision OnlineClassifier::Observe(const Item& item) {
  InferenceMode inference_guard;
  std::vector<float> row;
  EncodeBatch(&item, 1, &row);
  return DecideObserved(item.key, row.data());
}

std::vector<OnlineDecision> OnlineClassifier::ObserveBatch(
    const std::vector<Item>& items) {
  InferenceMode inference_guard;
  std::vector<OnlineDecision> decisions;
  if (items.empty()) return decisions;
  decisions.reserve(items.size());
  std::vector<float> rows;
  EncodeBatch(items.data(), static_cast<int>(items.size()), &rows);
  const int embed = embed_dim();
  for (size_t i = 0; i < items.size(); ++i) {
    decisions.push_back(
        DecideObserved(items[i].key, rows.data() + i * embed));
  }
  return decisions;
}

int OnlineClassifier::ForceClassify(int key, double* confidence) {
  InferenceMode inference_guard;
  auto it = keys_.find(key);
  if (it == keys_.end() || it->second.observed == 0) {
    if (confidence != nullptr) *confidence = 0.0;
    return -1;
  }
  KeyState& key_state = it->second;
  if (!key_state.halted || confidence != nullptr) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    if (!key_state.halted) {
      key_state.predicted = ops::ArgMaxRow(logits, 0);
      key_state.halted = true;
    }
    if (confidence != nullptr) *confidence = MaxSoftmaxProbability(logits);
  }
  return key_state.predicted;
}

int OnlineClassifier::ObservedItems(int key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.observed;
}

bool OnlineClassifier::IsHalted(int key) const {
  auto it = keys_.find(key);
  return it != keys_.end() && it->second.halted;
}

}  // namespace kvec
