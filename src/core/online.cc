#include "core/online.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

OnlineClassifier::OnlineClassifier(const KvecModel& model)
    : model_(model),
      incremental_(model.encoder()),
      tracker_(model.config().correlation) {}

OnlineDecision OnlineClassifier::Observe(const Item& item) {
  // Pure serving: no op below may record tape nodes, so the fusion step and
  // head evaluations build zero graph (no Detach() cleanup required).
  InferenceMode inference_guard;
  OnlineDecision decision;
  decision.key = item.key;

  // The tracker must see every stream item — even those of halted keys —
  // so the visibility sets of live keys stay identical to training.
  std::vector<int> visible = tracker_.ObserveItem(item);
  KeyState& key_state = keys_[item.key];
  const int position_in_key = key_state.position_in_key++;
  std::vector<float> embedding_row =
      incremental_.AppendItem(item, position_in_key, visible);
  ++num_items_;

  if (key_state.halted) {
    decision.already_halted = true;
    decision.predicted_label = key_state.predicted;
    decision.observed_items = key_state.observed;
    return decision;
  }
  if (!key_state.state.defined()) {
    key_state.state = model_.fusion().InitialState();
  }

  const int embed_dim = static_cast<int>(embedding_row.size());
  Tensor embedding = Tensor::FromData(1, embed_dim, std::move(embedding_row));
  key_state.state = model_.fusion().Step(key_state.state, embedding);
  // No gradients at inference: cut the graph so state does not accumulate.
  key_state.state.DetachInPlace();
  ++key_state.observed;

  Tensor halt_prob = model_.policy().HaltProbability(key_state.state.hidden);
  decision.halt_probability = halt_prob.ScalarValue();
  decision.observed_items = key_state.observed;
  if (decision.halt_probability > 0.5) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    key_state.predicted = ops::ArgMaxRow(logits, 0);
    key_state.halted = true;
    decision.halted_now = true;
    decision.predicted_label = key_state.predicted;
    decision.confidence = MaxSoftmaxProbability(logits);
  }
  return decision;
}

int OnlineClassifier::ForceClassify(int key, double* confidence) {
  InferenceMode inference_guard;
  auto it = keys_.find(key);
  if (it == keys_.end() || it->second.observed == 0) {
    if (confidence != nullptr) *confidence = 0.0;
    return -1;
  }
  KeyState& key_state = it->second;
  if (!key_state.halted || confidence != nullptr) {
    Tensor logits = model_.classifier().Logits(key_state.state.hidden);
    if (!key_state.halted) {
      key_state.predicted = ops::ArgMaxRow(logits, 0);
      key_state.halted = true;
    }
    if (confidence != nullptr) *confidence = MaxSoftmaxProbability(logits);
  }
  return key_state.predicted;
}

int OnlineClassifier::ObservedItems(int key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.observed;
}

bool OnlineClassifier::IsHalted(int key) const {
  auto it = keys_.find(key);
  return it != keys_.end() && it->second.halted;
}

}  // namespace kvec
