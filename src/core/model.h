// The complete KVEC model (paper Fig. 2): KVRL encoder + LSTM fusion cell +
// ECTL halting policy + baseline + classifier.
//
// Threading: construction and parameter updates (training, LoadFromFile)
// are single-threaded — exactly one writer, no concurrent readers. Once
// the parameters are frozen, any number of threads may read the model
// concurrently; this is what lets every shard of a ShardedStreamServer
// share one `const KvecModel&`.
//
// Checkpointing: SaveToFile/LoadFromFile persist the *parameter values
// only*, in registration order, shapes included — not the config. The
// loader must construct the model from an identical KvecConfig first
// (LoadFromFile fails closed on any shape mismatch). The `kvec` CLI's
// model bundles (src/cli/model_io.h) wrap exactly this stream together
// with the serialised config to make the artifact self-describing.
// Serving-side state (open sessions, encoder caches) is checkpointed
// separately by StreamServer; see docs/SERVING.md.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/fusion.h"
#include "core/heads.h"
#include "nn/module.h"

namespace kvec {

class KvecModel : public Module {
 public:
  explicit KvecModel(const KvecConfig& config);

  const KvecConfig& config() const { return config_; }

  const KvrlEncoder& encoder() const { return encoder_; }
  const EmbeddingFusion& fusion() const { return fusion_; }
  const EctlPolicy& policy() const { return policy_; }
  const BaselineNetwork& baseline() const { return baseline_; }
  const SequenceClassifier& classifier() const { return classifier_; }

  // All parameters (θ and θ_b); used by checkpointing.
  void CollectParameters(std::vector<Tensor>* out) override;

  // θ  — encoder + fusion + policy + classifier (Algorithm 1, line 18).
  std::vector<Tensor> MainParameters();
  // θ_b — the baseline network only (Algorithm 1, line 19).
  std::vector<Tensor> BaselineParameters();

  // Checkpointing convenience; returns false on failure.
  bool SaveToFile(const std::string& path);
  bool LoadFromFile(const std::string& path);

 private:
  KvecConfig config_;
  Rng init_rng_;
  KvrlEncoder encoder_;
  EmbeddingFusion fusion_;
  EctlPolicy policy_;
  BaselineNetwork baseline_;
  SequenceClassifier classifier_;
};

}  // namespace kvec

