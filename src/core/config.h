// Configuration of the KVEC model and its training loop.
#pragma once

#include <cstdint>

#include "data/types.h"

namespace kvec {

// Which correlations the dynamic mask matrix encodes. The ablation study
// (Fig. 9) toggles these.
struct CorrelationOptions {
  bool use_key_correlation = true;
  bool use_value_correlation = true;
  // "Uninterrupted in time" for cross-key session matching: an open session
  // is joinable only if its most recent item is at most this many stream
  // positions in the past.
  int value_correlation_window = 64;
  int session_field = 0;  // copied from the DatasetSpec

  // Selective value correlation (the extension the paper's §V-E RQ3
  // discussion calls for): cap the number of cross-key value-correlated
  // items visible to any one item. 0 = unlimited (the paper's behaviour).
  // When positive, only the most *recent* `max_value_correlations` matches
  // stay visible — recency is the cheapest relevance proxy in a stream and
  // bounds the inter-sequence noise that grows with concurrency K
  // (Fig. 12); see the ext_selective_corr bench.
  int max_value_correlations = 0;
};

struct KvecConfig {
  // ---- Model dimensions (paper defaults are d=128/64, 6/2 blocks; we scale
  // down for single-core CPU training, see DESIGN.md §1). ----
  int embed_dim = 32;    // d: item embedding width
  int state_dim = 48;    // LSTM fusion cell width (paper: 256)
  int num_blocks = 2;    // stacked attention blocks
  int num_heads = 1;     // attention heads (1 = the paper's operator)
  int ffn_hidden_dim = 64;
  float dropout = 0.1f;
  int baseline_hidden_dim = 32;

  // ---- Vocabulary sizes (filled from the DatasetSpec). ----
  DatasetSpec spec;

  // ---- Input-embedding ablations (Fig. 9). ----
  bool use_membership_embedding = true;
  bool use_time_embeddings = true;  // relative position + time embedding

  CorrelationOptions correlation;

  // Embedding fusion (§IV-B): the paper's gated LSTM-style cell, or the
  // parameter-free alternatives it argues against — ablatable via the
  // ext_fusion bench.
  enum class FusionKind { kLstm, kSum, kMean, kLast };
  FusionKind fusion = FusionKind::kLstm;

  // ---- Training (§IV-E). ----
  float alpha = 0.1f;  // weight of the REINFORCE surrogate l2
  float beta = 1e-3f;  // weight of the earliness pressure l3 (may be < 0)
  float learning_rate = 1e-3f;
  float baseline_learning_rate = 1e-3f;
  int epochs = 15;
  float grad_clip = 5.0f;
  uint64_t seed = 42;

  // Learning-rate schedule applied per epoch to the main optimizer (the
  // paper trains at a fixed rate; kConstant reproduces that).
  enum class LrSchedule { kConstant, kCosine, kWarmupCosine };
  LrSchedule lr_schedule = LrSchedule::kConstant;
  int warmup_epochs = 2;          // used by kWarmupCosine
  float min_learning_rate = 0.0f;  // annealing floor

  // Builds a config sized for `spec` with the defaults above.
  static KvecConfig ForSpec(const DatasetSpec& spec);
};

}  // namespace kvec

