#include "core/correlation.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

CorrelationTracker::CorrelationTracker(const CorrelationOptions& options)
    : options_(options) {
  KVEC_CHECK_GE(options_.session_field, 0);
  KVEC_CHECK_GT(options_.value_correlation_window, 0);
}

void CorrelationTracker::AppendValueMatches(int own_key, int session_value,
                                            int index,
                                            std::vector<int>* visible) const {
  auto bucket_it = by_value_.find(session_value);
  if (bucket_it == by_value_.end()) return;
  const std::map<int, int>& bucket = bucket_it->second;

  std::vector<int> cross;  // value-correlated items of *other* keys
  // Newest-first walk; every session past the first stale one is staler
  // still (the bucket is ordered by last_index), so the walk touches only
  // sessions inside the window.
  for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
    if (index - it->first > options_.value_correlation_window) break;
    if (it->second == own_key) continue;  // same key is key correlation
    const OpenSession& session = open_sessions_.at(it->second);
    cross.insert(cross.end(), session.item_indices.begin(),
                 session.item_indices.end());
  }
  // Canonical ascending order (the pre-index tracker emitted sessions in
  // key order; sorting makes the order deterministic and keeps the capped
  // and uncapped paths consistent).
  std::sort(cross.begin(), cross.end());
  if (options_.max_value_correlations > 0 &&
      static_cast<int>(cross.size()) > options_.max_value_correlations) {
    // Keep only the most recent matches (largest stream positions).
    cross.erase(cross.begin(), cross.end() - options_.max_value_correlations);
  }
  visible->insert(visible->end(), cross.begin(), cross.end());
}

std::vector<int> CorrelationTracker::ObserveItem(const Item& item) {
  const int index = next_index_++;
  KVEC_CHECK_LT(options_.session_field,
                static_cast<int>(item.value.size()));
  const int session_value = item.value[options_.session_field];

  std::vector<int> visible;

  if (options_.use_key_correlation) {
    auto it = key_items_.find(item.key);
    if (it != key_items_.end()) {
      visible.insert(visible.end(), it->second.begin(), it->second.end());
    }
  }

  if (options_.use_value_correlation) {
    AppendValueMatches(item.key, session_value, index, &visible);
  }

  // Update this key's open session *after* computing visibility so an item
  // never reports itself.
  key_items_[item.key].push_back(index);
  OpenSession& session = open_sessions_[item.key];
  const bool session_rotates =
      session.item_indices.empty() || session.session_value != session_value;
  // Reposition the session in the inverted index: drop the stale
  // (last_index -> key) entry — from the old value's bucket if the session
  // value changed — and re-insert under the new recency.
  if (session.last_index >= 0) {
    auto old_bucket = by_value_.find(session.session_value);
    if (old_bucket != by_value_.end()) {
      old_bucket->second.erase(session.last_index);
      if (old_bucket->second.empty()) by_value_.erase(old_bucket);
    }
  }
  if (session_rotates) {
    session.session_value = session_value;
    session.item_indices.clear();
  }
  session.item_indices.push_back(index);
  session.last_index = index;
  by_value_[session_value].emplace(index, item.key);

  return visible;
}

EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options) {
  const int total = static_cast<int>(episode.items.size());
  KVEC_CHECK_GT(total, 0);
  EpisodeMask result;
  result.mask = Tensor::Full(total, total, ops::kNegInf);
  result.visible.resize(total);
  CorrelationTracker tracker(options);
  for (int i = 0; i < total; ++i) {
    result.visible[i] = tracker.ObserveItem(episode.items[i]);
    result.mask.Set(i, i, 0.0f);  // M_ii = 0
    for (int j : result.visible[i]) {
      KVEC_DCHECK(j < i);
      result.mask.Set(i, j, 0.0f);
    }
  }
  return result;
}

}  // namespace kvec
