#include "core/correlation.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

CorrelationTracker::CorrelationTracker(const CorrelationOptions& options)
    : options_(options) {
  KVEC_CHECK_GE(options_.session_field, 0);
  KVEC_CHECK_GT(options_.value_correlation_window, 0);
}

std::vector<int> CorrelationTracker::ObserveItem(const Item& item) {
  const int index = next_index_++;
  KVEC_CHECK_LT(options_.session_field,
                static_cast<int>(item.value.size()));
  const int session_value = item.value[options_.session_field];

  std::vector<int> visible;

  if (options_.use_key_correlation) {
    auto it = key_items_.find(item.key);
    if (it != key_items_.end()) {
      visible.insert(visible.end(), it->second.begin(), it->second.end());
    }
  }

  if (options_.use_value_correlation) {
    std::vector<int> cross;  // value-correlated items of *other* keys
    for (const auto& [key, session] : open_sessions_) {
      if (key == item.key) continue;  // same key is key correlation
      if (session.session_value != session_value) continue;
      if (index - session.last_index > options_.value_correlation_window) {
        continue;  // interrupted in time
      }
      cross.insert(cross.end(), session.item_indices.begin(),
                   session.item_indices.end());
    }
    if (options_.max_value_correlations > 0 &&
        static_cast<int>(cross.size()) > options_.max_value_correlations) {
      // Keep only the most recent matches (largest stream positions).
      std::sort(cross.begin(), cross.end());
      cross.erase(cross.begin(),
                  cross.end() - options_.max_value_correlations);
    }
    visible.insert(visible.end(), cross.begin(), cross.end());
  }

  // Update this key's open session *after* computing visibility so an item
  // never reports itself.
  key_items_[item.key].push_back(index);
  OpenSession& session = open_sessions_[item.key];
  if (session.item_indices.empty() || session.session_value != session_value) {
    session.session_value = session_value;
    session.item_indices.clear();
  }
  session.item_indices.push_back(index);
  session.last_index = index;

  return visible;
}

EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options) {
  const int total = static_cast<int>(episode.items.size());
  KVEC_CHECK_GT(total, 0);
  EpisodeMask result;
  result.mask = Tensor::Full(total, total, ops::kNegInf);
  result.visible.resize(total);
  CorrelationTracker tracker(options);
  for (int i = 0; i < total; ++i) {
    result.visible[i] = tracker.ObserveItem(episode.items[i]);
    result.mask.Set(i, i, 0.0f);  // M_ii = 0
    for (int j : result.visible[i]) {
      KVEC_DCHECK(j < i);
      result.mask.Set(i, j, 0.0f);
    }
  }
  return result;
}

}  // namespace kvec
