#include "core/correlation.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

CorrelationTracker::CorrelationTracker(const CorrelationOptions& options,
                                       std::pmr::memory_resource* memory)
    : options_(options),
      memory_(memory),
      state_(std::make_unique<State>(memory)) {
  KVEC_CHECK_GE(options_.session_field, 0);
  KVEC_CHECK_GT(options_.value_correlation_window, 0);
}

void CorrelationTracker::Repool(std::pmr::memory_resource* memory) {
  auto fresh = std::make_unique<State>(memory);
  fresh->key_items.reserve(state_->key_items.size());
  for (const auto& [key, items] : state_->key_items) {
    fresh->key_items.emplace(key, items);
  }
  fresh->open_sessions.reserve(state_->open_sessions.size());
  for (const auto& [key, session] : state_->open_sessions) {
    fresh->open_sessions.emplace(key, session);
  }
  fresh->by_value.reserve(state_->by_value.size());
  for (const auto& [value, bucket] : state_->by_value) {
    fresh->by_value.emplace(value, bucket);
  }
  // Destroy the old containers while their resource is still alive, then
  // adopt the new one.
  state_ = std::move(fresh);
  memory_ = memory;
}

void CorrelationTracker::AppendValueMatches(int own_key, int session_value,
                                            int index,
                                            std::vector<int>* visible) const {
  auto bucket_it = state_->by_value.find(session_value);
  if (bucket_it == state_->by_value.end()) return;
  const std::pmr::map<int, int>& bucket = bucket_it->second;

  std::vector<int> cross;  // value-correlated items of *other* keys
  // Newest-first walk; every session past the first stale one is staler
  // still (the bucket is ordered by last_index), so the walk touches only
  // sessions inside the window.
  for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
    if (index - it->first > options_.value_correlation_window) break;
    if (it->second == own_key) continue;  // same key is key correlation
    const OpenSession& session = state_->open_sessions.at(it->second);
    cross.insert(cross.end(), session.item_indices.begin(),
                 session.item_indices.end());
  }
  // Canonical ascending order (the pre-index tracker emitted sessions in
  // key order; sorting makes the order deterministic and keeps the capped
  // and uncapped paths consistent).
  std::sort(cross.begin(), cross.end());
  if (options_.max_value_correlations > 0 &&
      static_cast<int>(cross.size()) > options_.max_value_correlations) {
    // Keep only the most recent matches (largest stream positions).
    cross.erase(cross.begin(), cross.end() - options_.max_value_correlations);
  }
  visible->insert(visible->end(), cross.begin(), cross.end());
}

std::vector<int> CorrelationTracker::ObserveItem(const Item& item) {
  const int index = next_index_++;
  KVEC_CHECK_LT(options_.session_field,
                static_cast<int>(item.value.size()));
  const int session_value = item.value[options_.session_field];

  std::vector<int> visible;

  if (options_.use_key_correlation) {
    auto it = state_->key_items.find(item.key);
    if (it != state_->key_items.end()) {
      visible.insert(visible.end(), it->second.begin(), it->second.end());
    }
  }

  if (options_.use_value_correlation) {
    AppendValueMatches(item.key, session_value, index, &visible);
  }

  // Update this key's open session *after* computing visibility so an item
  // never reports itself.
  state_->key_items[item.key].push_back(index);
  OpenSession& session = state_->open_sessions[item.key];
  const bool session_rotates =
      session.item_indices.empty() || session.session_value != session_value;
  // Reposition the session in the inverted index: drop the stale
  // (last_index -> key) entry — from the old value's bucket if the session
  // value changed — and re-insert under the new recency.
  if (session.last_index >= 0) {
    auto old_bucket = state_->by_value.find(session.session_value);
    if (old_bucket != state_->by_value.end()) {
      old_bucket->second.erase(session.last_index);
      if (old_bucket->second.empty()) state_->by_value.erase(old_bucket);
    }
  }
  if (session_rotates) {
    session.session_value = session_value;
    session.item_indices.clear();
  }
  session.item_indices.push_back(index);
  session.last_index = index;
  state_->by_value[session_value].emplace(index, item.key);

  return visible;
}

void CorrelationTracker::Snapshot(BinaryWriter* writer) const {
  // Echo the options so a checkpoint can never be restored into a tracker
  // with different correlation semantics.
  writer->WriteInt32(options_.use_key_correlation ? 1 : 0);
  writer->WriteInt32(options_.use_value_correlation ? 1 : 0);
  writer->WriteInt32(options_.value_correlation_window);
  writer->WriteInt32(options_.session_field);
  writer->WriteInt32(options_.max_value_correlations);
  writer->WriteInt32(next_index_);

  // Key-sorted iteration makes the byte stream canonical (unordered_map
  // order depends on insertion history, which a restored tracker does not
  // share).
  std::vector<int> keys;
  keys.reserve(state_->key_items.size());
  for (const auto& [key, items] : state_->key_items) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteInt32(static_cast<int32_t>(keys.size()));
  for (int key : keys) {
    const auto& items = state_->key_items.at(key);
    writer->WriteInt32(key);
    writer->WriteInts(items.data(), items.size());
  }

  keys.clear();
  for (const auto& [key, session] : state_->open_sessions) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteInt32(static_cast<int32_t>(keys.size()));
  for (int key : keys) {
    const OpenSession& session = state_->open_sessions.at(key);
    writer->WriteInt32(key);
    writer->WriteInt32(session.session_value);
    writer->WriteInt32(session.last_index);
    writer->WriteInts(session.item_indices.data(),
                      session.item_indices.size());
  }
}

bool CorrelationTracker::Restore(BinaryReader* reader) {
  // One tagged int32 costs 8 bytes: bounds every count below so a corrupted
  // prefix cannot spin a long loop over an already-failed reader.
  const auto plausible_count = [reader](int32_t count) {
    return count >= 0 && static_cast<size_t>(count) <= reader->remaining() / 8;
  };

  const bool use_key = reader->ReadInt32() != 0;
  const bool use_value = reader->ReadInt32() != 0;
  const int window = reader->ReadInt32();
  const int session_field = reader->ReadInt32();
  const int max_correlations = reader->ReadInt32();
  if (!reader->ok() || use_key != options_.use_key_correlation ||
      use_value != options_.use_value_correlation ||
      window != options_.value_correlation_window ||
      session_field != options_.session_field ||
      max_correlations != options_.max_value_correlations) {
    return false;
  }

  const int next_index = reader->ReadInt32();
  if (!reader->ok() || next_index < 0) return false;

  // Staged into the tracker's own resource; committed by a pointer swap.
  auto staged = std::make_unique<State>(memory_);
  const int32_t num_keys = reader->ReadInt32();
  if (!reader->ok() || !plausible_count(num_keys)) return false;
  staged->key_items.reserve(num_keys);
  for (int32_t i = 0; i < num_keys && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    std::vector<int> items = reader->ReadIntVector();
    for (int index : items) {
      if (index < 0 || index >= next_index) return false;
    }
    auto [slot, inserted] = staged->key_items.try_emplace(key);
    if (!inserted) return false;
    slot->second.assign(items.begin(), items.end());
  }

  const int32_t num_sessions = reader->ReadInt32();
  if (!reader->ok() || !plausible_count(num_sessions)) return false;
  staged->open_sessions.reserve(num_sessions);
  for (int32_t i = 0; i < num_sessions && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    const int session_value = reader->ReadInt32();
    const int last_index = reader->ReadInt32();
    std::vector<int> item_indices = reader->ReadIntVector();
    if (!reader->ok()) return false;
    if (last_index < -1 || last_index >= next_index) return false;
    for (int index : item_indices) {
      if (index < 0 || index >= next_index) return false;
    }
    // Rebuild the inverted index: one recency entry per indexed session.
    if (last_index >= 0) {
      if (!staged->by_value[session_value].emplace(last_index, key).second) {
        return false;  // two sessions cannot share a stream position
      }
    }
    auto [slot, inserted] = staged->open_sessions.try_emplace(key);
    if (!inserted) return false;
    slot->second.session_value = session_value;
    slot->second.last_index = last_index;
    slot->second.item_indices.assign(item_indices.begin(),
                                     item_indices.end());
  }
  if (!reader->ok()) return false;

  next_index_ = next_index;
  state_ = std::move(staged);
  return true;
}

void CorrelationTracker::SnapshotDelta(
    BinaryWriter* writer, const std::vector<int>& dirty_sorted) const {
  writer->WriteInt32(next_index_);
  // Only dirty keys that actually carry tracker state are serialised (a
  // key can be dirtied by a force-close without ever reaching the
  // tracker's maps in this window).
  std::vector<int> present;
  present.reserve(dirty_sorted.size());
  for (int key : dirty_sorted) {
    if (state_->key_items.count(key) || state_->open_sessions.count(key)) {
      present.push_back(key);
    }
  }
  writer->WriteInt32(static_cast<int32_t>(present.size()));
  for (int key : present) {
    writer->WriteInt32(key);
    auto items_it = state_->key_items.find(key);
    writer->WriteInt32(items_it != state_->key_items.end() ? 1 : 0);
    if (items_it != state_->key_items.end()) {
      writer->WriteInts(items_it->second.data(), items_it->second.size());
    }
    auto session_it = state_->open_sessions.find(key);
    writer->WriteInt32(session_it != state_->open_sessions.end() ? 1 : 0);
    if (session_it != state_->open_sessions.end()) {
      const OpenSession& session = session_it->second;
      writer->WriteInt32(session.session_value);
      writer->WriteInt32(session.last_index);
      writer->WriteInts(session.item_indices.data(),
                        session.item_indices.size());
    }
  }
}

bool CorrelationTracker::ApplyDelta(BinaryReader* reader,
                                    int expected_next_index) {
  const int next_index = reader->ReadInt32();
  if (!reader->ok() || next_index < next_index_ ||
      (expected_next_index >= 0 && next_index != expected_next_index)) {
    return false;
  }
  const int32_t num_keys = reader->ReadInt32();
  if (!reader->ok() || num_keys < 0 ||
      static_cast<size_t>(num_keys) > reader->remaining() / 8) {
    return false;
  }
  int prev_key = -1;
  bool first = true;
  for (int32_t i = 0; i < num_keys && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    if (!reader->ok() || (!first && key <= prev_key)) return false;
    first = false;
    prev_key = key;

    const bool has_items = reader->ReadInt32() != 0;
    if (has_items) {
      std::vector<int> items = reader->ReadIntVector();
      if (!reader->ok()) return false;
      for (int index : items) {
        if (index < 0 || index >= next_index) return false;
      }
      auto& slot = state_->key_items[key];
      slot.assign(items.begin(), items.end());
    }

    const bool has_session = reader->ReadInt32() != 0;
    if (has_session) {
      const int session_value = reader->ReadInt32();
      const int last_index = reader->ReadInt32();
      std::vector<int> item_indices = reader->ReadIntVector();
      if (!reader->ok()) return false;
      if (last_index < -1 || last_index >= next_index) return false;
      for (int index : item_indices) {
        if (index < 0 || index >= next_index) return false;
      }
      // Reposition in the inverted index: drop the key's old recency entry
      // (if the base had one), then insert the new one.
      OpenSession& session = state_->open_sessions[key];
      if (session.last_index >= 0) {
        auto old_bucket = state_->by_value.find(session.session_value);
        if (old_bucket != state_->by_value.end()) {
          old_bucket->second.erase(session.last_index);
          if (old_bucket->second.empty()) state_->by_value.erase(old_bucket);
        }
      }
      session.session_value = session_value;
      session.last_index = last_index;
      session.item_indices.assign(item_indices.begin(), item_indices.end());
      if (last_index >= 0) {
        if (!state_->by_value[session_value].emplace(last_index, key).second) {
          return false;  // two sessions cannot share a stream position
        }
      }
    }
  }
  if (!reader->ok()) return false;
  next_index_ = next_index;
  return true;
}

EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options) {
  const int total = static_cast<int>(episode.items.size());
  KVEC_CHECK_GT(total, 0);
  EpisodeMask result;
  result.mask = Tensor::Full(total, total, ops::kNegInf);
  result.visible.resize(total);
  CorrelationTracker tracker(options);
  for (int i = 0; i < total; ++i) {
    result.visible[i] = tracker.ObserveItem(episode.items[i]);
    result.mask.Set(i, i, 0.0f);  // M_ii = 0
    for (int j : result.visible[i]) {
      KVEC_DCHECK(j < i);
      result.mask.Set(i, j, 0.0f);
    }
  }
  return result;
}

}  // namespace kvec
