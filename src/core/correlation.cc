#include "core/correlation.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

CorrelationTracker::CorrelationTracker(const CorrelationOptions& options)
    : options_(options) {
  KVEC_CHECK_GE(options_.session_field, 0);
  KVEC_CHECK_GT(options_.value_correlation_window, 0);
}

void CorrelationTracker::AppendValueMatches(int own_key, int session_value,
                                            int index,
                                            std::vector<int>* visible) const {
  auto bucket_it = by_value_.find(session_value);
  if (bucket_it == by_value_.end()) return;
  const std::map<int, int>& bucket = bucket_it->second;

  std::vector<int> cross;  // value-correlated items of *other* keys
  // Newest-first walk; every session past the first stale one is staler
  // still (the bucket is ordered by last_index), so the walk touches only
  // sessions inside the window.
  for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
    if (index - it->first > options_.value_correlation_window) break;
    if (it->second == own_key) continue;  // same key is key correlation
    const OpenSession& session = open_sessions_.at(it->second);
    cross.insert(cross.end(), session.item_indices.begin(),
                 session.item_indices.end());
  }
  // Canonical ascending order (the pre-index tracker emitted sessions in
  // key order; sorting makes the order deterministic and keeps the capped
  // and uncapped paths consistent).
  std::sort(cross.begin(), cross.end());
  if (options_.max_value_correlations > 0 &&
      static_cast<int>(cross.size()) > options_.max_value_correlations) {
    // Keep only the most recent matches (largest stream positions).
    cross.erase(cross.begin(), cross.end() - options_.max_value_correlations);
  }
  visible->insert(visible->end(), cross.begin(), cross.end());
}

std::vector<int> CorrelationTracker::ObserveItem(const Item& item) {
  const int index = next_index_++;
  KVEC_CHECK_LT(options_.session_field,
                static_cast<int>(item.value.size()));
  const int session_value = item.value[options_.session_field];

  std::vector<int> visible;

  if (options_.use_key_correlation) {
    auto it = key_items_.find(item.key);
    if (it != key_items_.end()) {
      visible.insert(visible.end(), it->second.begin(), it->second.end());
    }
  }

  if (options_.use_value_correlation) {
    AppendValueMatches(item.key, session_value, index, &visible);
  }

  // Update this key's open session *after* computing visibility so an item
  // never reports itself.
  key_items_[item.key].push_back(index);
  OpenSession& session = open_sessions_[item.key];
  const bool session_rotates =
      session.item_indices.empty() || session.session_value != session_value;
  // Reposition the session in the inverted index: drop the stale
  // (last_index -> key) entry — from the old value's bucket if the session
  // value changed — and re-insert under the new recency.
  if (session.last_index >= 0) {
    auto old_bucket = by_value_.find(session.session_value);
    if (old_bucket != by_value_.end()) {
      old_bucket->second.erase(session.last_index);
      if (old_bucket->second.empty()) by_value_.erase(old_bucket);
    }
  }
  if (session_rotates) {
    session.session_value = session_value;
    session.item_indices.clear();
  }
  session.item_indices.push_back(index);
  session.last_index = index;
  by_value_[session_value].emplace(index, item.key);

  return visible;
}

void CorrelationTracker::Snapshot(BinaryWriter* writer) const {
  // Echo the options so a checkpoint can never be restored into a tracker
  // with different correlation semantics.
  writer->WriteInt32(options_.use_key_correlation ? 1 : 0);
  writer->WriteInt32(options_.use_value_correlation ? 1 : 0);
  writer->WriteInt32(options_.value_correlation_window);
  writer->WriteInt32(options_.session_field);
  writer->WriteInt32(options_.max_value_correlations);
  writer->WriteInt32(next_index_);

  // Key-sorted iteration makes the byte stream canonical (unordered_map
  // order depends on insertion history, which a restored tracker does not
  // share).
  std::vector<int> keys;
  keys.reserve(key_items_.size());
  for (const auto& [key, items] : key_items_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteInt32(static_cast<int32_t>(keys.size()));
  for (int key : keys) {
    writer->WriteInt32(key);
    writer->WriteIntVector(key_items_.at(key));
  }

  keys.clear();
  for (const auto& [key, session] : open_sessions_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteInt32(static_cast<int32_t>(keys.size()));
  for (int key : keys) {
    const OpenSession& session = open_sessions_.at(key);
    writer->WriteInt32(key);
    writer->WriteInt32(session.session_value);
    writer->WriteInt32(session.last_index);
    writer->WriteIntVector(session.item_indices);
  }
}

bool CorrelationTracker::Restore(BinaryReader* reader) {
  // One tagged int32 costs 8 bytes: bounds every count below so a corrupted
  // prefix cannot spin a long loop over an already-failed reader.
  const auto plausible_count = [reader](int32_t count) {
    return count >= 0 && static_cast<size_t>(count) <= reader->remaining() / 8;
  };

  const bool use_key = reader->ReadInt32() != 0;
  const bool use_value = reader->ReadInt32() != 0;
  const int window = reader->ReadInt32();
  const int session_field = reader->ReadInt32();
  const int max_correlations = reader->ReadInt32();
  if (!reader->ok() || use_key != options_.use_key_correlation ||
      use_value != options_.use_value_correlation ||
      window != options_.value_correlation_window ||
      session_field != options_.session_field ||
      max_correlations != options_.max_value_correlations) {
    return false;
  }

  const int next_index = reader->ReadInt32();
  if (!reader->ok() || next_index < 0) return false;

  std::unordered_map<int, std::vector<int>> key_items;
  const int32_t num_keys = reader->ReadInt32();
  if (!reader->ok() || !plausible_count(num_keys)) return false;
  key_items.reserve(num_keys);
  for (int32_t i = 0; i < num_keys && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    std::vector<int> items = reader->ReadIntVector();
    for (int index : items) {
      if (index < 0 || index >= next_index) return false;
    }
    if (!key_items.emplace(key, std::move(items)).second) return false;
  }

  std::unordered_map<int, OpenSession> open_sessions;
  std::unordered_map<int, std::map<int, int>> by_value;
  const int32_t num_sessions = reader->ReadInt32();
  if (!reader->ok() || !plausible_count(num_sessions)) return false;
  open_sessions.reserve(num_sessions);
  for (int32_t i = 0; i < num_sessions && reader->ok(); ++i) {
    const int key = reader->ReadInt32();
    OpenSession session;
    session.session_value = reader->ReadInt32();
    session.last_index = reader->ReadInt32();
    session.item_indices = reader->ReadIntVector();
    if (!reader->ok()) return false;
    if (session.last_index < -1 || session.last_index >= next_index) {
      return false;
    }
    for (int index : session.item_indices) {
      if (index < 0 || index >= next_index) return false;
    }
    // Rebuild the inverted index: one recency entry per indexed session.
    if (session.last_index >= 0) {
      if (!by_value[session.session_value]
               .emplace(session.last_index, key)
               .second) {
        return false;  // two sessions cannot share a stream position
      }
    }
    if (!open_sessions.emplace(key, std::move(session)).second) return false;
  }
  if (!reader->ok()) return false;

  next_index_ = next_index;
  key_items_ = std::move(key_items);
  open_sessions_ = std::move(open_sessions);
  by_value_ = std::move(by_value);
  return true;
}

EpisodeMask BuildEpisodeMask(const TangledSequence& episode,
                             const CorrelationOptions& options) {
  const int total = static_cast<int>(episode.items.size());
  KVEC_CHECK_GT(total, 0);
  EpisodeMask result;
  result.mask = Tensor::Full(total, total, ops::kNegInf);
  result.visible.resize(total);
  CorrelationTracker tracker(options);
  for (int i = 0; i < total; ++i) {
    result.visible[i] = tracker.ObserveItem(episode.items[i]);
    result.mask.Set(i, i, 0.0f);  // M_ii = 0
    for (int j : result.visible[i]) {
      KVEC_DCHECK(j < i);
      result.mask.Set(i, j, 0.0f);
    }
  }
  return result;
}

}  // namespace kvec
