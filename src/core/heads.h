// The decision heads on top of the sequence representation s(t)_k:
//  * EctlPolicy        — halting policy π(s) = σ(w·s + b)      (paper §IV-C)
//  * BaselineNetwork   — state-value baseline b(s; θ_b)         (paper §IV-E)
//  * SequenceClassifier — softmax classifier over C labels      (paper §IV-D)
#pragma once

#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {

class EctlPolicy : public Module {
 public:
  EctlPolicy(int state_dim, Rng& rng);

  // P(a = Halt | s) as a [1,1] tensor in (0,1).
  Tensor HaltProbability(const Tensor& state) const;

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  Linear linear_;
};

class BaselineNetwork : public Module {
 public:
  BaselineNetwork(int state_dim, int hidden_dim, Rng& rng);

  // Estimated cumulative reward of `state` ([1,1]). Callers must pass a
  // detached state so the baseline regression does not backpropagate into
  // the representation (Algorithm 1 updates θ_b independently).
  Tensor Forward(const Tensor& state) const;

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  Mlp mlp_;
};

class SequenceClassifier : public Module {
 public:
  SequenceClassifier(int state_dim, int num_classes, Rng& rng);

  // Unnormalised class scores ([1,C]); softmax is folded into the loss.
  Tensor Logits(const Tensor& state) const;

  int num_classes() const { return linear_.out_features(); }

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  Linear linear_;
};

// softmax(logits)[argmax]: the classifier's confidence in its prediction.
// `logits` is a [1,C] row; no graph is recorded.
double MaxSoftmaxProbability(const Tensor& logits);

}  // namespace kvec

