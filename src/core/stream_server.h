// Bounded-memory stream serving on top of OnlineClassifier.
//
// OnlineClassifier is exact but unbounded: its incremental-encoder caches
// grow with every stream item and its per-key states are never evicted. A
// long-running deployment (a router classifying flows for days) needs
// bounds. StreamServer adds three:
//
//   * window rotation — after `max_window_items` items the whole engine is
//     rebuilt, discarding the encoder caches. Keys still open are
//     force-classified first. Cross-window value correlations are lost;
//     that is the price of O(window) memory and it is measured by the
//     stream-server tests (the window should comfortably exceed the
//     value-correlation window, after which nothing is lost).
//   * idle timeout — a key that has not produced an item for
//     `idle_timeout` stream positions is force-classified and evicted
//     (flow ended without a FIN, user went away).
//   * capacity eviction — when more than `max_open_keys` keys are open,
//     the least recently active one is force-classified.
//
// Both evictions are driven by a last-seen index (an ordered set of
// (last_seen, key) pairs mirroring the open map), so capacity eviction is
// O(log open_keys) per item and an idle sweep is O(evicted), never a full
// scan of the open set.
//
// Every classification (policy halt or forced) is emitted as a
// StreamEvent, with the cause recorded, so downstream consumers see one
// verdict per key-value sequence.
//
// Threading: NOT thread-safe — one server serves one stream from one
// thread. For concurrent ingest wrap shards in ShardedStreamServer,
// which serialises same-shard callers on a per-shard mutex.
//
// Memory: all long-lived per-key state — the open-key map, the recency
// index, the engine's key-state map, and the correlation containers —
// allocates from a per-server ShardPool (std::pmr::unsynchronized_pool_
// resource), so eviction/insert churn recycles pool nodes instead of
// hitting the global allocator. A fragmentation heuristic (pool bytes
// resident vs live) periodically triggers Compact(), which rebuilds the
// state into a fresh pool and returns the old pool's chunks to the OS in
// one sweep. Compaction is semantics-free: a server that compacts
// mid-stream emits bit-identical StreamEvents and byte-identical
// checkpoints versus one that never compacts (pinned by
// tests/core_compaction_test.cc). docs/SERVING.md "Memory management"
// covers the lifecycle and knobs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <memory_resource>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/online.h"
#include "util/arena.h"
#include "util/serialize.h"

namespace kvec {

// Checkpoint-container section ids (kCheckpointSection*) live in the
// registry in util/serialize.h.

struct StreamServerConfig {
  // Engine rebuild period, in stream items. Should be much larger than the
  // model's value-correlation window so rotations rarely cut correlations.
  int max_window_items = 4096;
  // Evict a key once `idle_timeout` stream positions have passed since its
  // last item, i.e. when position - last_seen >= idle_timeout. A key last
  // seen at position p survives items p+1 .. p+idle_timeout-1 and is
  // evicted by the check at position p+idle_timeout.
  int idle_timeout = 512;
  // Idle keys are swept every `idle_check_interval` items, so eviction can
  // lag the deadline by up to idle_check_interval-1 positions. The sweep
  // walks the last-seen index oldest-first and is O(evicted), so 1 is an
  // acceptable setting; the default stays coarse for deployments that want
  // evictions batched.
  int idle_check_interval = 32;
  // Maximum concurrently open keys before LRU eviction.
  int max_open_keys = 1024;

  // ---- Compaction (process-local; deliberately NOT serialized into
  // checkpoints — Restore keeps the live server's values, so operators can
  // retune without invalidating checkpoints and the v1 layout stays
  // byte-identical). ----
  //
  // Run the fragmentation check every `compaction_check_interval` observed
  // items; <= 0 disables automatic compaction (explicit Compact() calls
  // still work).
  int compaction_check_interval = 4096;
  // Compact when pool bytes_resident / bytes_live exceeds this ratio ...
  double compaction_fragmentation_threshold = 2.0;
  // ... and the pool holds at least this many resident bytes (small pools
  // are never worth rebuilding).
  int64_t compaction_min_bytes = 4 << 20;
};

struct StreamEvent {
  enum class Cause {
    kPolicyHalt,         // the ECTL policy halted the key
    kIdleTimeout,        // evicted after idle_timeout
    kCapacityEviction,   // evicted to respect max_open_keys
    kWindowRotation,     // force-classified at an engine rebuild
    kFlush,              // force-classified by Flush()
  };

  int key = 0;
  int predicted_label = -1;
  int observed_items = 0;
  double confidence = 0.0;
  Cause cause = Cause::kPolicyHalt;
};

struct StreamServerStats {
  int64_t items_processed = 0;
  int64_t sequences_classified = 0;
  // Per-cause verdict counters; they partition sequences_classified.
  int64_t policy_halts = 0;
  int64_t idle_timeouts = 0;
  int64_t capacity_evictions = 0;
  int64_t rotation_classifications = 0;
  int64_t flush_classifications = 0;
  int windows_started = 1;
  std::vector<int64_t> class_counts;  // predictions per class

  // ---- Transport-layer (submission/overload) counters. ----
  //
  // Maintained by ShardedStreamServer's ingest layer, not by the serving
  // loop: a bare StreamServer leaves them 0, and they are deliberately NOT
  // part of the checkpoint snapshot (they describe the life of a process,
  // not serving state — and the v1 golden layout stays byte-identical).
  // Within one server lifetime the overload invariant holds:
  //   items_submitted == items_processed + items_shed.
  int64_t items_submitted = 0;  // items offered to Observe/ObserveBatch/Submit
  int64_t batches_shed = 0;     // batches dropped by a shed overload policy
  int64_t items_shed = 0;       // items inside those dropped batches

  // ---- Memory counters. ----
  //
  // Gauges refreshed from the shard pool / encoder on every stats() read,
  // plus a lifetime compaction counter. Like the transport counters they
  // are NOT serialized (process-lifetime observability, and the v1
  // checkpoint layout stays byte-identical). Merge() sums them, so a
  // sharded server's view reports fleet-total resident bytes.
  int64_t bytes_resident = 0;      // shard pool + encoder arena + scratch
  int64_t pool_blocks = 0;         // chunks the pool holds from the OS
  int64_t scratch_high_water = 0;  // batch scratch arena high-water bytes
  int64_t compactions = 0;         // Compact() runs (heuristic or forced)

  // Accumulates `other` into this view: counters and class_counts are
  // summed (class_counts widened as needed); windows_started adds up, so
  // start a merged view from windows_started = 0.
  void Merge(const StreamServerStats& other);
};

class StreamServer {
 public:
  // `model` must be trained and outlive the server.
  StreamServer(const KvecModel& model, const StreamServerConfig& config);

  // Feeds the next stream item; returns every classification event it
  // triggered (the item's own policy halt, plus any evictions/rotation).
  // Runs entirely under InferenceMode: no autograd tape is built.
  std::vector<StreamEvent> Observe(const Item& item);

  // Batched ingest: processes `items` in stream order and returns the
  // concatenation of the per-item event lists — the same StreamEvent
  // sequence (keys, labels, causes, order) that len(items) Observe calls
  // would have produced (pinned by core_batch_equivalence_test.cc). The
  // encoder runs each microbatch through blocked GEMMs, splitting only at
  // window-rotation boundaries; eviction bookkeeping stays per item.
  // Note the exactness rests on GemmNN and VecMat sharing the same
  // per-row accumulation kernel; should the GEMM layer ever reorder
  // per-row accumulation, batched embeddings may drift by ~1 ulp and a
  // halt probability sitting exactly on the 0.5 threshold could flip.
  std::vector<StreamEvent> ObserveBatch(const std::vector<Item>& items);

  // Serving-API alias for Observe.
  std::vector<StreamEvent> Push(const Item& item) { return Observe(item); }

  // Force-classifies all still-open keys (end of stream).
  std::vector<StreamEvent> Flush();

  // Rebuilds all pool-backed state (open-key index, engine key states,
  // correlation containers) into a fresh ShardPool, tight-packs the
  // encoder's K/V arena, and releases the old pool's chunks. Observable
  // behaviour is unchanged: subsequent events and checkpoints are
  // identical to a never-compacted server. Called automatically by the
  // fragmentation heuristic (see StreamServerConfig); safe to force at any
  // item boundary. Returns false when the `compaction.run` fault point
  // suppressed the run.
  bool Compact();

  // Refreshes the memory gauges before returning (compactions/counters are
  // maintained incrementally; the gauges mirror live pool state).
  const StreamServerStats& stats() const;
  int open_keys() const { return static_cast<int>(index_->open.size()); }

  // ---- Checkpoint / warm restart (docs/SERVING.md). ----
  //
  // Snapshot captures everything the serving loop owns — config, stream
  // clocks, stats, the open-key map — plus the engine (correlation index,
  // encoder K/V arena, per-key fusion states). Restoring into a server
  // built over the same model yields a server whose subsequent StreamEvent
  // sequence is identical to an uninterrupted run on the same input
  // (pinned by tests/core_checkpoint_replay_test.cc).
  //
  // Restore fails closed: on truncated, corrupted, or model-mismatched
  // bytes it returns false and the server is untouched (pinned by the
  // corruption-fuzz test). The recency index is rebuilt from the open map
  // rather than serialized. The snapshot must be the reader's final
  // content (it always is in a checkpoint section); trailing bytes are
  // treated as corruption.
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader);

  // Convenience wrappers around the checkpoint container: one
  // kCheckpointSectionStreamServer section framed with magic + version.
  std::string EncodeCheckpoint() const;
  bool RestoreCheckpoint(const std::string& bytes);
  bool SaveCheckpoint(const std::string& path) const;
  bool LoadCheckpoint(const std::string& path);

  // ---- Incremental (delta) checkpointing (docs/SERVING.md). ----
  //
  // The server tracks which keys were mutated since the last committed
  // snapshot (observe, policy halt, eviction, rotation — every path that
  // touches a key's serving or engine state marks it dirty), and
  // SnapshotDelta serialises only those keys: the serving-index upserts
  // for dirty keys still open, tombstones for dirty keys no longer open,
  // the engine-side per-key deltas, and the encoder K/V rows appended
  // since the base. Cost is proportional to churn, not population.
  //
  // The snapshot/commit pair is two-phase so a failed delta write cannot
  // lose dirty bits: SnapshotDelta *stages* a clear (remembering the
  // current dirty epoch); CommitDeltaBaseline applies it once the bytes
  // are durable, erasing only entries at or below the staged epoch — a
  // key re-dirtied between the two calls carries a later epoch and stays
  // dirty. If the write fails, simply never commit: the next delta
  // re-carries everything. Tracking is armed by the first
  // StageDeltaBaseline + CommitDeltaBaseline pair (a full-checkpoint
  // baseline); until then MarkDirty is a no-op, so servers that never
  // checkpoint incrementally pay nothing and the dirty map cannot grow.
  //
  // ApplyDelta expects *this to hold exactly the predecessor state of the
  // chain (validated via the engine's item-clock echo); it fails closed
  // on corrupt bytes but may leave *this partially updated, so callers
  // stage into fresh servers and commit all-or-nothing
  // (ShardedStreamServer::RestoreFromCheckpointChain). A full Restore
  // disarms dirty tracking; the chain loader re-arms it after commit.
  void SnapshotDelta(BinaryWriter* writer);
  bool ApplyDelta(BinaryReader* reader);
  // Stages the dirty-clear + baselines matching the state being snapshot
  // right now. SnapshotDelta stages implicitly; full-checkpoint callers
  // (the rebase path) call this next to Snapshot() in the same control
  // task so the baseline is atomic with the bytes.
  void StageDeltaBaseline();
  void CommitDeltaBaseline();

 private:
  struct OpenKey {
    int64_t last_seen = 0;  // global stream position of the latest item
  };

  // Emits a forced classification for `key` and drops it from the open set.
  void ForceClose(int key, StreamEvent::Cause cause,
                  std::vector<StreamEvent>* events);
  void RotateWindow(std::vector<StreamEvent>* events);
  void EvictIdle(std::vector<StreamEvent>* events);
  void RecordEvent(const StreamEvent& event);
  // Post-decision bookkeeping shared by Observe and ObserveBatch: advances
  // the clocks, emits/halts/evicts for one observed item.
  void Bookkeep(const Item& item, const OnlineDecision& decision,
                std::vector<StreamEvent>* events);

  using OpenKeyMap = std::pmr::map<int, OpenKey>;

  // The pool-backed serving index. pmr allocators do not propagate on
  // assignment, so rebinding to a fresh pool (Compact) means
  // reconstructing the containers; grouping them in one struct behind a
  // pointer makes the rebuild an allocate-copy-swap.
  struct KeyIndex {
    explicit KeyIndex(std::pmr::memory_resource* memory)
        : open(memory), by_last_seen(memory) {}

    OpenKeyMap open;  // keys fed to the engine, not yet closed
    // Mirror of open ordered by recency: one (last_seen, key) entry per
    // open key. begin() is the LRU candidate; idle sweeps walk it
    // oldest-first.
    std::pmr::set<std::pair<int64_t, int>> by_last_seen;
  };

  // Shared bodies of the four checkpoint entry points.
  Checkpoint BuildCheckpoint() const;
  bool RestoreFromCheckpoint(const Checkpoint& checkpoint);

  // Remove a key from open and by_last_seen together — the only place
  // the two structures' mirror invariant is maintained on the close path.
  void CloseKey(OpenKeyMap::iterator it);
  void CloseKey(int key);  // no-op if not open

  // Records `key` as mutated since the last committed delta baseline.
  // No-op until dirty tracking is armed (see SnapshotDelta above).
  void MarkDirty(int key) {
    if (dirty_tracking_) dirty_keys_[key] = dirty_epoch_;
  }

  // Runs the fragmentation heuristic after `items` more observed items;
  // calls Compact() when it trips.
  void MaybeCompact(int items);
  // Copies live pool/encoder gauges into stats_ (const via mutable: the
  // gauges are observability, not serving state).
  void RefreshMemoryStats() const;

  const KvecModel& model_;
  StreamServerConfig config_;
  // Declared before the members that allocate from it so it outlives them
  // (destruction runs bottom-up).
  std::unique_ptr<ShardPool> pool_;
  std::unique_ptr<OnlineClassifier> engine_;
  std::unique_ptr<KeyIndex> index_;
  int64_t position_ = 0;  // global items processed
  int window_items_ = 0;  // items in the current engine window
  int items_since_compaction_check_ = 0;
  mutable StreamServerStats stats_;

  // ---- Dirty-key tracking (incremental checkpoints). ----
  // Plain std containers, deliberately NOT pool-backed: the dirty map is
  // checkpoint bookkeeping, not serving state — Compact() must not copy
  // it between pools and a snapshot of it is never taken.
  bool dirty_tracking_ = false;
  int64_t dirty_epoch_ = 0;
  std::unordered_map<int, int64_t> dirty_keys_;  // key -> epoch of mutation
  // Baselines of the last committed snapshot: the engine item clock the
  // encoder tail starts from, and the window generation (a mismatch means
  // the engine was rebuilt since the base, so the delta carries the whole
  // young window from item 0).
  int base_engine_items_ = 0;
  int base_windows_started_ = 1;
  // Staged by StageDeltaBaseline, applied by CommitDeltaBaseline.
  bool pending_baseline_ = false;
  int64_t pending_epoch_ = 0;
  int pending_engine_items_ = 0;
  int pending_windows_started_ = 1;
};

}  // namespace kvec

