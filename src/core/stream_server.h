// Bounded-memory stream serving on top of OnlineClassifier.
//
// OnlineClassifier is exact but unbounded: its incremental-encoder caches
// grow with every stream item and its per-key states are never evicted. A
// long-running deployment (a router classifying flows for days) needs
// bounds. StreamServer adds three:
//
//   * window rotation — after `max_window_items` items the whole engine is
//     rebuilt, discarding the encoder caches. Keys still open are
//     force-classified first. Cross-window value correlations are lost;
//     that is the price of O(window) memory and it is measured by the
//     stream-server tests (the window should comfortably exceed the
//     value-correlation window, after which nothing is lost).
//   * idle timeout — a key that has not produced an item for
//     `idle_timeout` stream positions is force-classified and evicted
//     (flow ended without a FIN, user went away).
//   * capacity eviction — when more than `max_open_keys` keys are open,
//     the least recently active one is force-classified.
//
// Both evictions are driven by a last-seen index (an ordered set of
// (last_seen, key) pairs mirroring the open map), so capacity eviction is
// O(log open_keys) per item and an idle sweep is O(evicted), never a full
// scan of the open set.
//
// Every classification (policy halt or forced) is emitted as a
// StreamEvent, with the cause recorded, so downstream consumers see one
// verdict per key-value sequence.
//
// Threading: NOT thread-safe — one server serves one stream from one
// thread. For concurrent ingest wrap shards in ShardedStreamServer,
// which serialises same-shard callers on a per-shard mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/online.h"
#include "util/serialize.h"

namespace kvec {

// Checkpoint-container section ids used by the serving stack (see the
// container format in util/serialize.h). Stable across format versions:
// new state gets a new id, changed payload layout bumps the container
// version.
inline constexpr int32_t kCheckpointSectionStreamServer = 1;
inline constexpr int32_t kCheckpointSectionShardManifest = 2;
inline constexpr int32_t kCheckpointSectionShard = 3;

struct StreamServerConfig {
  // Engine rebuild period, in stream items. Should be much larger than the
  // model's value-correlation window so rotations rarely cut correlations.
  int max_window_items = 4096;
  // Evict a key once `idle_timeout` stream positions have passed since its
  // last item, i.e. when position - last_seen >= idle_timeout. A key last
  // seen at position p survives items p+1 .. p+idle_timeout-1 and is
  // evicted by the check at position p+idle_timeout.
  int idle_timeout = 512;
  // Idle keys are swept every `idle_check_interval` items, so eviction can
  // lag the deadline by up to idle_check_interval-1 positions. The sweep
  // walks the last-seen index oldest-first and is O(evicted), so 1 is an
  // acceptable setting; the default stays coarse for deployments that want
  // evictions batched.
  int idle_check_interval = 32;
  // Maximum concurrently open keys before LRU eviction.
  int max_open_keys = 1024;
};

struct StreamEvent {
  enum class Cause {
    kPolicyHalt,         // the ECTL policy halted the key
    kIdleTimeout,        // evicted after idle_timeout
    kCapacityEviction,   // evicted to respect max_open_keys
    kWindowRotation,     // force-classified at an engine rebuild
    kFlush,              // force-classified by Flush()
  };

  int key = 0;
  int predicted_label = -1;
  int observed_items = 0;
  double confidence = 0.0;
  Cause cause = Cause::kPolicyHalt;
};

struct StreamServerStats {
  int64_t items_processed = 0;
  int64_t sequences_classified = 0;
  // Per-cause verdict counters; they partition sequences_classified.
  int64_t policy_halts = 0;
  int64_t idle_timeouts = 0;
  int64_t capacity_evictions = 0;
  int64_t rotation_classifications = 0;
  int64_t flush_classifications = 0;
  int windows_started = 1;
  std::vector<int64_t> class_counts;  // predictions per class

  // ---- Transport-layer (submission/overload) counters. ----
  //
  // Maintained by ShardedStreamServer's ingest layer, not by the serving
  // loop: a bare StreamServer leaves them 0, and they are deliberately NOT
  // part of the checkpoint snapshot (they describe the life of a process,
  // not serving state — and the v1 golden layout stays byte-identical).
  // Within one server lifetime the overload invariant holds:
  //   items_submitted == items_processed + items_shed.
  int64_t items_submitted = 0;  // items offered to Observe/ObserveBatch/Submit
  int64_t batches_shed = 0;     // batches dropped by a shed overload policy
  int64_t items_shed = 0;       // items inside those dropped batches

  // Accumulates `other` into this view: counters and class_counts are
  // summed (class_counts widened as needed); windows_started adds up, so
  // start a merged view from windows_started = 0.
  void Merge(const StreamServerStats& other);
};

class StreamServer {
 public:
  // `model` must be trained and outlive the server.
  StreamServer(const KvecModel& model, const StreamServerConfig& config);

  // Feeds the next stream item; returns every classification event it
  // triggered (the item's own policy halt, plus any evictions/rotation).
  // Runs entirely under InferenceMode: no autograd tape is built.
  std::vector<StreamEvent> Observe(const Item& item);

  // Batched ingest: processes `items` in stream order and returns the
  // concatenation of the per-item event lists — the same StreamEvent
  // sequence (keys, labels, causes, order) that len(items) Observe calls
  // would have produced (pinned by core_batch_equivalence_test.cc). The
  // encoder runs each microbatch through blocked GEMMs, splitting only at
  // window-rotation boundaries; eviction bookkeeping stays per item.
  // Note the exactness rests on GemmNN and VecMat sharing the same
  // per-row accumulation kernel; should the GEMM layer ever reorder
  // per-row accumulation, batched embeddings may drift by ~1 ulp and a
  // halt probability sitting exactly on the 0.5 threshold could flip.
  std::vector<StreamEvent> ObserveBatch(const std::vector<Item>& items);

  // Serving-API alias for Observe.
  std::vector<StreamEvent> Push(const Item& item) { return Observe(item); }

  // Force-classifies all still-open keys (end of stream).
  std::vector<StreamEvent> Flush();

  const StreamServerStats& stats() const { return stats_; }
  int open_keys() const { return static_cast<int>(open_.size()); }

  // ---- Checkpoint / warm restart (docs/SERVING.md). ----
  //
  // Snapshot captures everything the serving loop owns — config, stream
  // clocks, stats, the open-key map — plus the engine (correlation index,
  // encoder K/V arena, per-key fusion states). Restoring into a server
  // built over the same model yields a server whose subsequent StreamEvent
  // sequence is identical to an uninterrupted run on the same input
  // (pinned by tests/core_checkpoint_replay_test.cc).
  //
  // Restore fails closed: on truncated, corrupted, or model-mismatched
  // bytes it returns false and the server is untouched (pinned by the
  // corruption-fuzz test). The recency index is rebuilt from the open map
  // rather than serialized. The snapshot must be the reader's final
  // content (it always is in a checkpoint section); trailing bytes are
  // treated as corruption.
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader);

  // Convenience wrappers around the checkpoint container: one
  // kCheckpointSectionStreamServer section framed with magic + version.
  std::string EncodeCheckpoint() const;
  bool RestoreCheckpoint(const std::string& bytes);
  bool SaveCheckpoint(const std::string& path) const;
  bool LoadCheckpoint(const std::string& path);

 private:
  struct OpenKey {
    int64_t last_seen = 0;  // global stream position of the latest item
  };

  // Emits a forced classification for `key` and drops it from the open set.
  void ForceClose(int key, StreamEvent::Cause cause,
                  std::vector<StreamEvent>* events);
  void RotateWindow(std::vector<StreamEvent>* events);
  void EvictIdle(std::vector<StreamEvent>* events);
  void RecordEvent(const StreamEvent& event);
  // Post-decision bookkeeping shared by Observe and ObserveBatch: advances
  // the clocks, emits/halts/evicts for one observed item.
  void Bookkeep(const Item& item, const OnlineDecision& decision,
                std::vector<StreamEvent>* events);

  using OpenKeyMap = std::map<int, OpenKey>;

  // Shared bodies of the four checkpoint entry points.
  Checkpoint BuildCheckpoint() const;
  bool RestoreFromCheckpoint(const Checkpoint& checkpoint);

  // Remove a key from open_ and by_last_seen_ together — the only place
  // the two structures' mirror invariant is maintained on the close path.
  void CloseKey(OpenKeyMap::iterator it);
  void CloseKey(int key);  // no-op if not open

  const KvecModel& model_;
  StreamServerConfig config_;
  std::unique_ptr<OnlineClassifier> engine_;
  OpenKeyMap open_;  // keys fed to the engine, not yet closed
  // Mirror of open_ ordered by recency: one (last_seen, key) entry per open
  // key. begin() is the LRU candidate; idle sweeps walk it oldest-first.
  std::set<std::pair<int64_t, int>> by_last_seen_;
  int64_t position_ = 0;  // global items processed
  int window_items_ = 0;  // items in the current engine window
  StreamServerStats stats_;
};

}  // namespace kvec

