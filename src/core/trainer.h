// Joint training of KVEC (paper §IV-E, Algorithm 1) and evaluation.
//
// Training: for every tangled sequence, generate an episode by streaming
// its items through the encoder + fusion cell while sampling Halt/Wait from
// the policy; assign ±1 rewards from the classifier's correctness; then
// minimise
//     l = l1 + α·l2 + β·l3
// where l1 is the classification cross-entropy, l2 the REINFORCE-with-
// baseline surrogate, and l3 the earliness pressure -Σ log P(Halt). θ (the
// encoder, fusion, policy and classifier) and θ_b (the baseline network)
// are updated by separate Adam optimizers, with θ_b regressed onto the
// observed cumulative rewards by MSE.
//
// Evaluation: deterministic halting (Halt iff π(s) > 0.5, forced at the end
// of a sequence); produces PredictionRecords plus optional instrumentation
// (internal/external attention scores for Fig. 10, halting positions for
// Fig. 11).
//
// Threading and determinism: a trainer drives its model single-threaded —
// one trainer per model, no concurrent Train/Evaluate on the same
// instance. The tensor kernels underneath may parallelise across rows via
// the global thread pool, but per-row accumulation order is fixed, so for
// a given config.seed the trained parameters and every evaluation are
// bit-identical regardless of KVEC_NUM_THREADS. Training cost is
// O(epochs · Σ_episodes T² · d) (full-episode encoder passes); Evaluate
// is one forward pass per episode.
#pragma once

#include <vector>

#include "core/model.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"

namespace kvec {

struct TrainEpochStats {
  double total_loss = 0.0;
  double classification_loss = 0.0;  // l1 (per-sequence mean)
  double policy_loss = 0.0;          // l2
  double earliness_loss = 0.0;       // l3
  double baseline_loss = 0.0;
  double train_accuracy = 0.0;
  double train_earliness = 0.0;
  int episodes = 0;
};

struct EvalOptions {
  bool collect_attention = false;
};

// Internal vs external attention mass of one halted sequence (Fig. 10):
// internal = attention weight put on same-key items, external = weight on
// items of other keys (reachable through value correlation).
struct AttentionPoint {
  double earliness = 0.0;
  double internal_score = 0.0;
  double external_score = 0.0;
};

// Where a sequence was halted (Fig. 11).
struct HaltingRecord {
  int key = 0;
  int halt_position = 0;     // n_k (1-based count of observed items)
  int sequence_length = 0;   // |S_k|
  int true_halt_position = 0;  // 0 when the dataset has no ground truth
};

struct EvaluationResult {
  std::vector<PredictionRecord> records;
  EvaluationSummary summary;
  std::vector<AttentionPoint> attention;
  std::vector<HaltingRecord> halts;
};

class KvecTrainer {
 public:
  explicit KvecTrainer(KvecModel* model);

  // One pass over `episodes` in random order, one update per episode.
  TrainEpochStats TrainEpoch(const std::vector<TangledSequence>& episodes);

  // config().epochs passes; returns per-epoch stats.
  std::vector<TrainEpochStats> Train(
      const std::vector<TangledSequence>& episodes);

  // Like Train, but evaluates the validation split after every epoch and
  // restores the parameters of the epoch with the best validation harmonic
  // mean before returning (early-stopping-style model selection over the
  // paper's 8:1:1 split). `best_epoch` (0-based, optional) reports which
  // epoch won.
  std::vector<TrainEpochStats> TrainWithValidation(
      const std::vector<TangledSequence>& train_episodes,
      const std::vector<TangledSequence>& validation_episodes,
      int* best_epoch = nullptr);

  EvaluationResult Evaluate(const std::vector<TangledSequence>& episodes,
                            const EvalOptions& options = {});

 private:
  KvecModel* model_;
  Adam main_optimizer_;
  Adam baseline_optimizer_;
  Rng rng_;
};

}  // namespace kvec

