#include "core/sharded_stream_server.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>

#include "util/check.h"
#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace kvec {

namespace {

// Wellons' lowbias32 integer mixer: adjacent key ids must land on
// different shards, so the trivial key % num_shards is not enough once
// callers assign keys in blocks (episode offsets, per-tenant ranges).
uint32_t MixKey(uint32_t key) {
  key ^= key >> 16;
  key *= 0x7feb352dU;
  key ^= key >> 15;
  key *= 0x846ca68bU;
  key ^= key >> 16;
  return key;
}

// Completion count for a fan-out of control tasks: the posting thread
// waits until every shard's worker ran its task. The count is fixed at
// construction (before any task can see the barrier), so only the
// decrement and the wait need the mutex.
class Barrier {
 public:
  explicit Barrier(int count) : remaining_(count) {}

  void Arrive() {
    MutexLock lock(mutex_);
    if (--remaining_ == 0) done_.NotifyAll();
  }
  void Wait() {
    MutexLock lock(mutex_);
    while (remaining_ != 0) done_.Wait(mutex_);
  }

 private:
  Mutex mutex_;
  CondVar done_;
  int remaining_ KVEC_GUARDED_BY(mutex_);
};

}  // namespace

ShardedStreamServer::ShardedStreamServer(
    const KvecModel& model, const ShardedStreamServerConfig& config)
    : model_(model), config_(config) {
  KVEC_CHECK_GT(config.num_shards, 0);
  KVEC_CHECK(config.worker_threads == 0 ||
             config.worker_threads == config.num_shards)
      << "worker_threads must be 0 (synchronous) or num_shards (one owned "
         "worker per shard), got "
      << config.worker_threads << " for " << config.num_shards << " shards";
  if (config.worker_threads > 0) {
    KVEC_CHECK_GT(config.queue_depth, 0);
  }
  shards_.reserve(config.num_shards);
  for (int s = 0; s < config.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->server = std::make_unique<StreamServer>(model, config.shard);
    if (config.worker_threads > 0) {
      shard->queue =
          std::make_unique<BoundedQueue<ShardTask>>(config.queue_depth);
    }
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard is constructed: a worker may
  // never touch another shard, but the loop captures `this`.
  if (config.worker_threads > 0) {
    for (int s = 0; s < config.num_shards; ++s) {
      Shard* shard = shards_[s].get();
      shard->worker = std::thread([this, shard, s]() { WorkerLoop(shard, s); });
    }
  }
}

ShardedStreamServer::~ShardedStreamServer() {
  if (!asynchronous()) return;
  // Close-then-join is the graceful quiesce: Pop keeps handing out already
  // accepted tasks until the queue is empty, so no accepted batch is lost.
  for (const auto& shard : shards_) shard->queue->Close();
  for (const auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

StreamServer& ShardedStreamServer::WorkerOwnedServer(Shard& shard) {
  // See the declaration for the ownership argument; every worker-side
  // access to shard state funnels through here so the escape from the
  // GUARDED_BY contract stays a single audited line.
  return *shard.server;
}

void ShardedStreamServer::InstallServer(Shard& shard,
                                        std::unique_ptr<StreamServer> server) {
  shard.server = std::move(server);
}

std::vector<StreamEvent> ShardedStreamServer::ObserveBatchLocked(
    Shard& shard, const std::vector<Item>& items) {
  return shard.server->ObserveBatch(items);
}

void ShardedStreamServer::WorkerLoop(Shard* shard, int shard_index) {
  ShardTask task;
  while (shard->queue->Pop(&task)) {
    // Re-fetched per task: a restore control task swaps the server out
    // (InstallServer), so a reference held across tasks would dangle.
    StreamServer& server = WorkerOwnedServer(*shard);
    if (task.fn) {
      task.fn(server);
      continue;
    }
    // Stall point: tests hold the worker here mid-stream to saturate its
    // queue deterministically (the verdict is irrelevant — not a failable
    // site).
    (void)KVEC_FAULT_POINT("shard_worker.batch");
    const std::vector<StreamEvent> events = server.ObserveBatch(task.items);
    if (config_.on_events) config_.on_events(shard_index, events);
  }
}

void ShardedStreamServer::RunOnAllShards(
    const std::function<void(int, StreamServer&)>& fn) const {
  const int num_shards = static_cast<int>(shards_.size());
  if (!asynchronous()) {
    for (int s = 0; s < num_shards; ++s) {
      Shard& shard = *shards_[s];
      MutexLock lock(shard.mutex);
      fn(s, *shard.server);
    }
    return;
  }
  Barrier barrier(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    ShardTask task;
    task.fn = [&fn, &barrier, s](StreamServer& server) {
      fn(s, server);
      barrier.Arrive();
    };
    // Control tasks always block for space and are never sheddable: a
    // saturated queue delays a query, it cannot lose one.
    const auto result = shards_[s]->queue->Push(
        std::move(task), OverloadPolicy::kBlock, /*sheddable=*/false,
        /*shed_out=*/nullptr);
    KVEC_CHECK(result == BoundedQueue<ShardTask>::PushResult::kAccepted)
        << "control task pushed into a closed shard queue";
  }
  barrier.Wait();
}

void ShardedStreamServer::RunOnShard(
    int shard_index, const std::function<void(StreamServer&)>& fn) const {
  Shard& shard = *shards_[shard_index];
  if (!asynchronous()) {
    MutexLock lock(shard.mutex);
    fn(*shard.server);
    return;
  }
  Barrier barrier(1);
  ShardTask task;
  task.fn = [&fn, &barrier](StreamServer& server) {
    fn(server);
    barrier.Arrive();
  };
  const auto result = shard.queue->Push(std::move(task), OverloadPolicy::kBlock,
                                        /*sheddable=*/false,
                                        /*shed_out=*/nullptr);
  KVEC_CHECK(result == BoundedQueue<ShardTask>::PushResult::kAccepted)
      << "control task pushed into a closed shard queue";
  barrier.Wait();
}

void ShardedStreamServer::CountShed(Shard* shard, int64_t batches,
                                    int64_t items) {
  shard->batches_shed.fetch_add(batches, std::memory_order_relaxed);
  shard->items_shed.fetch_add(items, std::memory_order_relaxed);
}

int ShardedStreamServer::ShardOf(int key) const {
  return static_cast<int>(MixKey(static_cast<uint32_t>(key)) %
                          static_cast<uint32_t>(shards_.size()));
}

std::vector<StreamEvent> ShardedStreamServer::Observe(const Item& item) {
  Shard& shard = *shards_[ShardOf(item.key)];
  shard.items_submitted.fetch_add(1, std::memory_order_relaxed);
  if (!asynchronous()) {
    MutexLock lock(shard.mutex);
    return shard.server->Observe(item);
  }
  std::vector<StreamEvent> events;
  Barrier barrier(1);
  ShardTask task;
  task.fn = [&events, &barrier, &item](StreamServer& server) {
    events = server.Observe(item);
    barrier.Arrive();
  };
  const auto result = shard.queue->Push(std::move(task), OverloadPolicy::kBlock,
                                        /*sheddable=*/false,
                                        /*shed_out=*/nullptr);
  KVEC_CHECK(result == BoundedQueue<ShardTask>::PushResult::kAccepted);
  barrier.Wait();
  return events;
}

std::vector<StreamEvent> ShardedStreamServer::ObserveBatch(
    const std::vector<Item>& items) {
  const int num_shards = static_cast<int>(shards_.size());
  if (num_shards == 1 && !asynchronous()) {
    // One shard, synchronous: no routing, no copies — hand the batch
    // straight through.
    Shard& shard = *shards_[0];
    shard.items_submitted.fetch_add(static_cast<int64_t>(items.size()),
                                    std::memory_order_relaxed);
    MutexLock lock(shard.mutex);
    return ObserveBatchLocked(shard, items);
  }
  // Route first: per-shard contiguous microbatches preserve arrival order
  // within a shard, which is all a shard's serving semantics depend on,
  // and let each shard drive its encoder through one GEMM per block
  // (StreamServer::ObserveBatch) instead of an item-at-a-time loop.
  std::vector<std::vector<Item>> routed(num_shards);
  for (const Item& item : items) {
    routed[ShardOf(item.key)].push_back(item);
  }
  for (int s = 0; s < num_shards; ++s) {
    shards_[s]->items_submitted.fetch_add(
        static_cast<int64_t>(routed[s].size()), std::memory_order_relaxed);
  }

  std::vector<std::vector<StreamEvent>> shard_events(num_shards);
  if (asynchronous()) {
    // Each sub-batch runs on its owning worker as a waited-on control
    // task: synchronous semantics (events returned, nothing shed) with
    // the workers providing the parallelism.
    int active_shards = 0;
    for (int s = 0; s < num_shards; ++s) {
      if (!routed[s].empty()) ++active_shards;
    }
    if (active_shards == 0) return {};
    Barrier barrier(active_shards);
    for (int s = 0; s < num_shards; ++s) {
      if (routed[s].empty()) continue;
      ShardTask task;
      task.fn = [&shard_events, &barrier, s,
                 batch = std::move(routed[s])](StreamServer& server) {
        shard_events[s] = server.ObserveBatch(batch);
        barrier.Arrive();
      };
      const auto result = shards_[s]->queue->Push(
          std::move(task), OverloadPolicy::kBlock, /*sheddable=*/false,
          /*shed_out=*/nullptr);
      KVEC_CHECK(result == BoundedQueue<ShardTask>::PushResult::kAccepted);
    }
    barrier.Wait();
  } else {
    auto serve_shard = [&](int s) {
      Shard& shard = *shards_[s];
      MutexLock lock(shard.mutex);
      shard_events[s] = ObserveBatchLocked(shard, routed[s]);
    };
    int active_shards = 0;
    int last_active = -1;
    for (int s = 0; s < num_shards; ++s) {
      if (!routed[s].empty()) {
        ++active_shards;
        last_active = s;
      }
    }
    if (active_shards <= 1) {
      // Entering ParallelFor would mark the thread as inside a parallel
      // region and force the tensor kernels under Observe to run serial;
      // with one busy shard there is nothing to fan out, so serve inline.
      if (active_shards == 1) serve_shard(last_active);
    } else {
      // Fan out one chunk per shard. Model inference inside Observe may
      // itself use ParallelFor; nested regions run inline, so this cannot
      // deadlock.
      ParallelFor(0, num_shards, /*grain=*/1, [&](int begin, int end) {
        for (int s = begin; s < end; ++s) {
          if (!routed[s].empty()) serve_shard(s);
        }
      });
    }
  }

  size_t total = 0;
  for (const auto& events : shard_events) total += events.size();
  std::vector<StreamEvent> merged;
  merged.reserve(total);
  for (const auto& events : shard_events) {
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

int64_t ShardedStreamServer::Submit(const std::vector<Item>& items) {
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<std::vector<Item>> routed(num_shards);
  for (const Item& item : items) {
    routed[ShardOf(item.key)].push_back(item);
  }
  int64_t shed_by_call = 0;
  for (int s = 0; s < num_shards; ++s) {
    if (routed[s].empty()) continue;
    Shard& shard = *shards_[s];
    const int64_t count = static_cast<int64_t>(routed[s].size());
    shard.items_submitted.fetch_add(count, std::memory_order_relaxed);
    if (!asynchronous()) {
      std::vector<StreamEvent> events;
      {
        MutexLock lock(shard.mutex);
        events = ObserveBatchLocked(shard, routed[s]);
      }
      if (config_.on_events) config_.on_events(s, events);
      continue;
    }
    ShardTask task;
    task.items = std::move(routed[s]);
    std::vector<ShardTask> shed;
    const auto result = shard.queue->Push(std::move(task),
                                          config_.overload_policy,
                                          /*sheddable=*/true, &shed);
    switch (result) {
      case BoundedQueue<ShardTask>::PushResult::kAccepted:
        break;
      case BoundedQueue<ShardTask>::PushResult::kShedNewest:
        CountShed(&shard, 1, count);
        shed_by_call += count;
        break;
      case BoundedQueue<ShardTask>::PushResult::kClosed:
        // Shutdown raced the producer; the batch was never accepted, so
        // account for it as shed rather than leaving it untracked.
        CountShed(&shard, 1, count);
        shed_by_call += count;
        break;
    }
    for (const ShardTask& evicted : shed) {
      const int64_t evicted_items =
          static_cast<int64_t>(evicted.items.size());
      CountShed(&shard, 1, evicted_items);
      shed_by_call += evicted_items;
    }
  }
  return shed_by_call;
}

void ShardedStreamServer::Drain() {
  if (!asynchronous()) return;
  // A no-op control task per shard: FIFO order means everything enqueued
  // before it — batches and queries alike — has been processed once it
  // runs.
  RunOnAllShards([](int, StreamServer&) {});
}

std::vector<StreamEvent> ShardedStreamServer::Flush() {
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<std::vector<StreamEvent>> shard_events(num_shards);
  RunOnAllShards([&shard_events](int s, StreamServer& server) {
    shard_events[s] = server.Flush();
  });
  std::vector<StreamEvent> merged;
  for (const auto& events : shard_events) {
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

StreamServerStats ShardedStreamServer::MergeTransportCounters(
    const Shard& shard, StreamServerStats stats) {
  stats.items_submitted =
      shard.items_submitted.load(std::memory_order_relaxed);
  stats.batches_shed = shard.batches_shed.load(std::memory_order_relaxed);
  stats.items_shed = shard.items_shed.load(std::memory_order_relaxed);
  return stats;
}

std::vector<StreamServerStats> ShardedStreamServer::SnapshotAllShardsLocked()
    const {
  // Coherent cross-shard snapshot: take EVERY shard mutex (in index
  // order — the only multi-mutex acquisition in this class, so no
  // ordering cycle exists), then copy. No shard can be mid-batch, and
  // no sharded ObserveBatch can be half-merged across the copies.
  // (Escapes -Wthread-safety — see the declaration — because the lock
  // set is sized at runtime; the acquire/release loops below are the
  // whole argument.)
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<StreamServerStats> per_shard(num_shards);
  for (int s = 0; s < num_shards; ++s) shards_[s]->mutex.Lock();
  for (int s = 0; s < num_shards; ++s) {
    per_shard[s] =
        MergeTransportCounters(*shards_[s], shards_[s]->server->stats());
  }
  for (int s = num_shards - 1; s >= 0; --s) shards_[s]->mutex.Unlock();
  return per_shard;
}

StreamServerStats ShardedStreamServer::stats() const {
  std::vector<StreamServerStats> per_shard;
  if (!asynchronous()) {
    per_shard = SnapshotAllShardsLocked();
  } else {
    // Each shard answers on its owning worker at a batch boundary, so a
    // shard's counters always partition (stats snapshots route through
    // the task queue, behind every batch enqueued before this call).
    per_shard.resize(shards_.size());
    RunOnAllShards([this, &per_shard](int s, StreamServer& server) {
      per_shard[s] = MergeTransportCounters(*shards_[s], server.stats());
    });
  }
  StreamServerStats merged;
  merged.windows_started = 0;
  for (const StreamServerStats& stats : per_shard) merged.Merge(stats);
  return merged;
}

StreamServerStats ShardedStreamServer::shard_stats(int shard) const {
  KVEC_CHECK_GE(shard, 0);
  KVEC_CHECK_LT(shard, static_cast<int>(shards_.size()));
  Shard& target = *shards_[shard];
  if (!asynchronous()) {
    MutexLock lock(target.mutex);
    return MergeTransportCounters(target, target.server->stats());
  }
  StreamServerStats stats;
  RunOnShard(shard, [&target, &stats](StreamServer& server) {
    stats = MergeTransportCounters(target, server.stats());
  });
  return stats;
}

int ShardedStreamServer::CompactAll() {
  int compacted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    bool ran = false;
    RunOnShard(static_cast<int>(s),
               [&ran](StreamServer& server) { ran = server.Compact(); });
    if (ran) ++compacted;
  }
  return compacted;
}

Checkpoint ShardedStreamServer::BuildCheckpoint() const {
  Checkpoint checkpoint;
  {
    BinaryWriter manifest;
    manifest.WriteInt32(static_cast<int32_t>(shards_.size()));
    checkpoint.sections.push_back(
        {kCheckpointSectionShardManifest, manifest.buffer()});
  }
  // Each shard snapshots on its owner (async: behind everything already
  // queued — drain-then-snapshot; sync: under its mutex), ONE SHARD AT A
  // TIME: while shard s serializes, every other shard keeps serving. The
  // original all-shard fan-out stalled the whole fleet for the duration
  // of the slowest serialization; now the pause per shard is just its own
  // snapshot. Cross-shard consistency is unchanged either way — it is the
  // caller's quiesce protocol, as documented.
  for (size_t s = 0; s < shards_.size(); ++s) {
    BinaryWriter writer;
    writer.WriteInt32(static_cast<int32_t>(s));
    RunOnShard(static_cast<int>(s),
               [&writer](StreamServer& server) { server.Snapshot(&writer); });
    checkpoint.sections.push_back({kCheckpointSectionShard, writer.buffer()});
  }
  return checkpoint;
}

bool ShardedStreamServer::StageFromCheckpoint(
    const Checkpoint& checkpoint,
    std::vector<std::unique_ptr<StreamServer>>* staged) {
  // Delta containers (version 2) never reach here; the chain loader
  // decodes them itself. A full restore must refuse them outright.
  if (checkpoint.version != kCheckpointFormatVersion) return false;
  const CheckpointSection* manifest =
      checkpoint.Find(kCheckpointSectionShardManifest);
  if (manifest == nullptr) return false;
  BinaryReader manifest_reader(manifest->payload);
  const int32_t num_shards = manifest_reader.ReadInt32();
  if (!manifest_reader.ok() ||
      num_shards != static_cast<int32_t>(shards_.size())) {
    return false;
  }

  // Stage every shard before swapping any in. Staging touches no live
  // shard state, so it runs on the calling thread in both modes.
  staged->clear();
  staged->resize(shards_.size());
  for (const CheckpointSection& section : checkpoint.sections) {
    if (section.id != kCheckpointSectionShard) continue;
    BinaryReader reader(section.payload);
    const int32_t shard = reader.ReadInt32();
    if (!reader.ok() || shard < 0 || shard >= num_shards ||
        (*staged)[shard] != nullptr) {
      return false;
    }
    (*staged)[shard] = std::make_unique<StreamServer>(model_, config_.shard);
    if (!(*staged)[shard]->Restore(&reader)) return false;
  }
  for (const auto& server : *staged) {
    if (server == nullptr) return false;  // a shard section is missing
  }
  return true;
}

void ShardedStreamServer::CommitStaged(
    std::vector<std::unique_ptr<StreamServer>>* staged) {
  // All-or-nothing commit. Re-baseline the transport counters to the
  // restored items_processed so the overload invariant (submitted ==
  // processed + shed) holds for the life of the restored server.
  std::vector<int64_t> processed(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    processed[s] = (*staged)[s]->stats().items_processed;
  }
  RunOnAllShards([this, staged, &processed](int s, StreamServer&) {
    // InstallServer is ownership-transfer point 2: this callback runs
    // under the shard mutex (sync) or on the owning worker (async).
    InstallServer(*shards_[s], std::move((*staged)[s]));
    shards_[s]->items_submitted.store(processed[s], std::memory_order_relaxed);
    shards_[s]->batches_shed.store(0, std::memory_order_relaxed);
    shards_[s]->items_shed.store(0, std::memory_order_relaxed);
  });
}

bool ShardedStreamServer::RestoreFromCheckpoint(const Checkpoint& checkpoint) {
  std::vector<std::unique_ptr<StreamServer>> staged;
  if (!StageFromCheckpoint(checkpoint, &staged)) return false;
  CommitStaged(&staged);
  return true;
}

std::string ShardedStreamServer::EncodeCheckpoint() const {
  return CheckpointEncode(BuildCheckpoint());
}

bool ShardedStreamServer::RestoreCheckpoint(const std::string& bytes) {
  Checkpoint checkpoint;
  return CheckpointDecode(bytes, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

bool ShardedStreamServer::SaveCheckpoint(const std::string& path) const {
  return CheckpointSave(path, BuildCheckpoint());
}

bool ShardedStreamServer::LoadCheckpoint(const std::string& path) {
  Checkpoint checkpoint;
  return CheckpointLoad(path, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

std::string ShardedStreamServer::DeltaPath(const std::string& base_path,
                                           int64_t seq) {
  return base_path + ".delta." + std::to_string(seq);
}

bool ShardedStreamServer::CheckpointIncremental(
    const std::string& base_path, int rebase_every,
    IncrementalCheckpointState* state) {
  const int num_shards = static_cast<int>(shards_.size());
  const bool rebase =
      state->base_fingerprint == 0 ||
      (rebase_every > 0 && state->deltas_written >= rebase_every);

  if (rebase) {
    // Full base. Snapshot and baseline-staging happen in ONE control task
    // per shard, so the staged dirty-clear is atomic with the bytes.
    Checkpoint checkpoint;
    {
      BinaryWriter manifest;
      manifest.WriteInt32(num_shards);
      checkpoint.sections.push_back(
          {kCheckpointSectionShardManifest, manifest.buffer()});
    }
    for (int s = 0; s < num_shards; ++s) {
      BinaryWriter writer;
      writer.WriteInt32(s);
      RunOnShard(s, [&writer](StreamServer& server) {
        server.Snapshot(&writer);
        server.StageDeltaBaseline();
      });
      checkpoint.sections.push_back(
          {kCheckpointSectionShard, writer.buffer()});
    }
    // Unlink the stale chain newest-first BEFORE replacing the base:
    // every crash point along the way leaves a loadable chain (old base
    // plus a consecutive delta prefix, then the old base alone, then —
    // after the atomic rename — the new base alone).
    for (int64_t seq = state->deltas_written; seq >= 1; --seq) {
      std::remove(DeltaPath(base_path, seq).c_str());
    }
    const std::string bytes = CheckpointEncode(checkpoint);
    // A failed base write leaves the old base on disk (loadable) but the
    // old deltas already unlinked — zeroing the fingerprint forces the
    // next call back into this branch instead of appending deltas to a
    // chain whose middle links are gone. The dirty baseline stays
    // staged-only, so no churn is lost either way.
    if (KVEC_FAULT_POINT("checkpoint.save") ||
        !AtomicWriteFile(base_path, bytes)) {
      state->base_fingerprint = 0;
      return false;
    }
    state->base_fingerprint = CheckpointFingerprint(bytes);
    state->prev_fingerprint = state->base_fingerprint;
    state->deltas_written = 0;
    RunOnAllShards(
        [](int, StreamServer& server) { server.CommitDeltaBaseline(); });
    return true;
  }

  // Delta link. SnapshotDelta stages each shard's dirty-clear itself.
  Checkpoint delta;
  delta.version = kCheckpointDeltaFormatVersion;
  const int64_t seq = state->deltas_written + 1;
  {
    BinaryWriter manifest;
    manifest.WriteInt64(static_cast<int64_t>(state->base_fingerprint));
    manifest.WriteInt64(static_cast<int64_t>(state->prev_fingerprint));
    manifest.WriteInt64(seq);
    manifest.WriteInt32(num_shards);
    delta.sections.push_back(
        {kCheckpointSectionDeltaManifest, manifest.buffer()});
  }
  for (int s = 0; s < num_shards; ++s) {
    BinaryWriter writer;
    writer.WriteInt32(s);
    RunOnShard(s, [&writer](StreamServer& server) {
      server.SnapshotDelta(&writer);
    });
    delta.sections.push_back({kCheckpointSectionShardDelta, writer.buffer()});
  }
  const std::string bytes = CheckpointEncode(delta);
  // Failed delta write: no baseline commit, so every dirty bit survives
  // and the next delta re-carries this one's churn; the chain on disk is
  // untouched and stays loadable. Tests force this path here.
  if (KVEC_FAULT_POINT("checkpoint.delta")) return false;
  if (!AtomicWriteFile(DeltaPath(base_path, seq), bytes)) return false;
  state->prev_fingerprint = CheckpointFingerprint(bytes);
  state->deltas_written = seq;
  RunOnAllShards(
      [](int, StreamServer& server) { server.CommitDeltaBaseline(); });
  return true;
}

namespace {

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

bool ShardedStreamServer::RestoreFromCheckpointChain(
    const std::string& base_path, IncrementalCheckpointState* state) {
  std::string base_bytes;
  if (!ReadFileBytes(base_path, &base_bytes)) return false;
  Checkpoint base;
  if (!CheckpointDecode(base_bytes, &base)) return false;
  // The chain root must be a full checkpoint; a delta file at the base
  // path is a mix-up, not a base.
  if (base.version != kCheckpointFormatVersion) return false;
  std::vector<std::unique_ptr<StreamServer>> staged;
  if (!StageFromCheckpoint(base, &staged)) return false;

  const uint64_t base_fp = CheckpointFingerprint(base_bytes);
  uint64_t prev_fp = base_fp;
  int64_t seq = 1;
  for (;; ++seq) {
    std::string delta_bytes;
    if (!ReadFileBytes(DeltaPath(base_path, seq), &delta_bytes)) {
      break;  // end of chain
    }
    Checkpoint delta;
    if (!CheckpointDecode(delta_bytes, &delta)) return false;
    if (delta.version != kCheckpointDeltaFormatVersion) return false;
    const CheckpointSection* manifest =
        delta.Find(kCheckpointSectionDeltaManifest);
    if (manifest == nullptr) return false;
    BinaryReader manifest_reader(manifest->payload);
    const uint64_t stored_base =
        static_cast<uint64_t>(manifest_reader.ReadInt64());
    const uint64_t stored_prev =
        static_cast<uint64_t>(manifest_reader.ReadInt64());
    const int64_t stored_seq = manifest_reader.ReadInt64();
    const int32_t num_shards = manifest_reader.ReadInt32();
    // Linkage: cut against THIS base, directly after THIS link, at THIS
    // position. Anything else — a delta from another chain, a reordered
    // or re-used link — fails the whole load.
    if (!manifest_reader.ok() || stored_base != base_fp ||
        stored_prev != prev_fp || stored_seq != seq ||
        num_shards != static_cast<int32_t>(shards_.size())) {
      return false;
    }
    std::vector<char> applied(shards_.size(), 0);
    for (const CheckpointSection& section : delta.sections) {
      if (section.id != kCheckpointSectionShardDelta) continue;
      BinaryReader reader(section.payload);
      const int32_t shard = reader.ReadInt32();
      if (!reader.ok() || shard < 0 || shard >= num_shards ||
          applied[shard] != 0) {
        return false;
      }
      if (!staged[shard]->ApplyDelta(&reader)) return false;
      applied[shard] = 1;
    }
    for (char a : applied) {
      if (a == 0) return false;  // a shard's delta section is missing
    }
    prev_fp = CheckpointFingerprint(delta_bytes);
  }

  CommitStaged(&staged);
  if (state != nullptr) {
    // The caller intends to keep appending to this chain: re-arm dirty
    // tracking at the restored state (stage+commit in one control task
    // per shard = empty dirty set, baselines = now). Without `state` the
    // load is a plain warm restart and tracking stays disarmed — a dirty
    // map on a server that never checkpoints again would only grow.
    RunOnAllShards([](int, StreamServer& server) {
      server.StageDeltaBaseline();
      server.CommitDeltaBaseline();
    });
    state->base_fingerprint = base_fp;
    state->prev_fingerprint = prev_fp;
    state->deltas_written = seq - 1;
  }
  return true;
}

int ShardedStreamServer::open_keys() const {
  int total = 0;
  if (!asynchronous()) {
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mutex);
      total += shard.server->open_keys();
    }
    return total;
  }
  Mutex merge_mutex;
  RunOnAllShards([&total, &merge_mutex](int, StreamServer& server) {
    const int keys = server.open_keys();
    MutexLock lock(merge_mutex);
    total += keys;
  });
  return total;
}

}  // namespace kvec
