#include "core/sharded_stream_server.h"

#include <cstdint>
#include <mutex>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"

namespace kvec {

namespace {

// Wellons' lowbias32 integer mixer: adjacent key ids must land on
// different shards, so the trivial key % num_shards is not enough once
// callers assign keys in blocks (episode offsets, per-tenant ranges).
uint32_t MixKey(uint32_t key) {
  key ^= key >> 16;
  key *= 0x7feb352dU;
  key ^= key >> 15;
  key *= 0x846ca68bU;
  key ^= key >> 16;
  return key;
}

}  // namespace

ShardedStreamServer::ShardedStreamServer(
    const KvecModel& model, const ShardedStreamServerConfig& config)
    : model_(model), config_(config) {
  KVEC_CHECK_GT(config.num_shards, 0);
  shards_.reserve(config.num_shards);
  for (int s = 0; s < config.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->server = std::make_unique<StreamServer>(model, config.shard);
    shards_.push_back(std::move(shard));
  }
}

int ShardedStreamServer::ShardOf(int key) const {
  return static_cast<int>(MixKey(static_cast<uint32_t>(key)) %
                          static_cast<uint32_t>(shards_.size()));
}

std::vector<StreamEvent> ShardedStreamServer::Observe(const Item& item) {
  Shard& shard = *shards_[ShardOf(item.key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.server->Observe(item);
}

std::vector<StreamEvent> ShardedStreamServer::ObserveBatch(
    const std::vector<Item>& items) {
  const int num_shards = static_cast<int>(shards_.size());
  if (num_shards == 1) {
    // One shard: no routing, no copies — hand the batch straight through.
    Shard& shard = *shards_[0];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.server->ObserveBatch(items);
  }
  // Route first: per-shard contiguous microbatches preserve arrival order
  // within a shard, which is all a shard's serving semantics depend on,
  // and let each shard drive its encoder through one GEMM per block
  // (StreamServer::ObserveBatch) instead of an item-at-a-time loop.
  std::vector<std::vector<Item>> routed(num_shards);
  for (const Item& item : items) {
    routed[ShardOf(item.key)].push_back(item);
  }

  std::vector<std::vector<StreamEvent>> shard_events(num_shards);
  auto serve_shard = [&](int s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard_events[s] = shard.server->ObserveBatch(routed[s]);
  };
  int active_shards = 0;
  int last_active = -1;
  for (int s = 0; s < num_shards; ++s) {
    if (!routed[s].empty()) {
      ++active_shards;
      last_active = s;
    }
  }
  if (active_shards <= 1) {
    // Entering ParallelFor would mark the thread as inside a parallel
    // region and force the tensor kernels under Observe to run serial;
    // with one busy shard there is nothing to fan out, so serve inline.
    if (active_shards == 1) serve_shard(last_active);
  } else {
    // Fan out one chunk per shard. Model inference inside Observe may
    // itself use ParallelFor; nested regions run inline, so this cannot
    // deadlock.
    ParallelFor(0, num_shards, /*grain=*/1, [&](int begin, int end) {
      for (int s = begin; s < end; ++s) {
        if (!routed[s].empty()) serve_shard(s);
      }
    });
  }

  size_t total = 0;
  for (const auto& events : shard_events) total += events.size();
  std::vector<StreamEvent> merged;
  merged.reserve(total);
  for (const auto& events : shard_events) {
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

std::vector<StreamEvent> ShardedStreamServer::Flush() {
  std::vector<StreamEvent> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    std::vector<StreamEvent> events = shard->server->Flush();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

StreamServerStats ShardedStreamServer::stats() const {
  StreamServerStats merged;
  merged.windows_started = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const StreamServerStats& s = shard->server->stats();
    merged.items_processed += s.items_processed;
    merged.sequences_classified += s.sequences_classified;
    merged.policy_halts += s.policy_halts;
    merged.idle_timeouts += s.idle_timeouts;
    merged.capacity_evictions += s.capacity_evictions;
    merged.rotation_classifications += s.rotation_classifications;
    merged.flush_classifications += s.flush_classifications;
    merged.windows_started += s.windows_started;
    if (merged.class_counts.size() < s.class_counts.size()) {
      merged.class_counts.resize(s.class_counts.size(), 0);
    }
    for (size_t c = 0; c < s.class_counts.size(); ++c) {
      merged.class_counts[c] += s.class_counts[c];
    }
  }
  return merged;
}

StreamServerStats ShardedStreamServer::shard_stats(int shard) const {
  KVEC_CHECK_GE(shard, 0);
  KVEC_CHECK_LT(shard, static_cast<int>(shards_.size()));
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->server->stats();
}

Checkpoint ShardedStreamServer::BuildCheckpoint() const {
  Checkpoint checkpoint;
  {
    BinaryWriter manifest;
    manifest.WriteInt32(static_cast<int32_t>(shards_.size()));
    checkpoint.sections.push_back(
        {kCheckpointSectionShardManifest, manifest.buffer()});
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    BinaryWriter writer;
    writer.WriteInt32(static_cast<int32_t>(s));
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    shards_[s]->server->Snapshot(&writer);
    checkpoint.sections.push_back({kCheckpointSectionShard, writer.buffer()});
  }
  return checkpoint;
}

bool ShardedStreamServer::RestoreFromCheckpoint(const Checkpoint& checkpoint) {
  const CheckpointSection* manifest =
      checkpoint.Find(kCheckpointSectionShardManifest);
  if (manifest == nullptr) return false;
  BinaryReader manifest_reader(manifest->payload);
  const int32_t num_shards = manifest_reader.ReadInt32();
  if (!manifest_reader.ok() ||
      num_shards != static_cast<int32_t>(shards_.size())) {
    return false;
  }

  // Stage every shard before swapping any in.
  std::vector<std::unique_ptr<StreamServer>> staged(shards_.size());
  for (const CheckpointSection& section : checkpoint.sections) {
    if (section.id != kCheckpointSectionShard) continue;
    BinaryReader reader(section.payload);
    const int32_t shard = reader.ReadInt32();
    if (!reader.ok() || shard < 0 || shard >= num_shards ||
        staged[shard] != nullptr) {
      return false;
    }
    staged[shard] = std::make_unique<StreamServer>(model_, config_.shard);
    if (!staged[shard]->Restore(&reader)) return false;
  }
  for (const auto& server : staged) {
    if (server == nullptr) return false;  // a shard section is missing
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    shards_[s]->server = std::move(staged[s]);
  }
  return true;
}

std::string ShardedStreamServer::EncodeCheckpoint() const {
  return CheckpointEncode(BuildCheckpoint());
}

bool ShardedStreamServer::RestoreCheckpoint(const std::string& bytes) {
  Checkpoint checkpoint;
  return CheckpointDecode(bytes, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

bool ShardedStreamServer::SaveCheckpoint(const std::string& path) const {
  return CheckpointSave(path, BuildCheckpoint());
}

bool ShardedStreamServer::LoadCheckpoint(const std::string& path) {
  Checkpoint checkpoint;
  return CheckpointLoad(path, &checkpoint) &&
         RestoreFromCheckpoint(checkpoint);
}

int ShardedStreamServer::open_keys() const {
  int total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->server->open_keys();
  }
  return total;
}

}  // namespace kvec
