// The KVRL encoder (paper §IV-B): input embedding followed by stacked
// correlation-masked attention blocks, producing the per-item embeddings
// E(t)_e that the fusion cell consumes.
//
// Because the dynamic mask matrix is causal (item i only attends to j ≤ i),
// encoding a whole episode once is equivalent to re-encoding after every
// arrival; see DESIGN.md §4.1. `IncrementalEncoder` exploits this at
// inference time: it appends one row per arriving item in O(t·d) instead of
// recomputing the full O(t²·d) pass, and is verified to match the batch
// encoder bit-for-bit-ish (1e-4) in tests.
//
// Threading: KvrlEncoder::Forward is a const read — concurrent calls over
// a frozen encoder are safe (each gets its own tape). IncrementalEncoder
// is stateful and NOT thread-safe: one instance per serving engine, which
// is how OnlineClassifier and each ShardedStreamServer shard use it.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/correlation.h"
#include "core/input_embedding.h"
#include "nn/attention.h"
#include "nn/module.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace kvec {

struct EncodeResult {
  Tensor embeddings;                      // E(T): [T, d]
  std::vector<Tensor> attention_weights;  // one [T,T] per block
  EpisodeMask mask;
};

class KvrlEncoder : public Module {
 public:
  KvrlEncoder(const KvecConfig& config, Rng& rng);

  EncodeResult Forward(const TangledSequence& episode,
                       const EpisodeIndex& index, Rng& rng,
                       bool training) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const InputEmbedding& input_embedding() const { return input_; }
  const std::vector<AttentionBlock>& blocks() const { return blocks_; }
  const KvecConfig& config() const { return config_; }

 private:
  KvecConfig config_;
  InputEmbedding input_;
  std::vector<AttentionBlock> blocks_;
};

// Streaming forward pass over a frozen KvrlEncoder. No gradients, no
// dropout; caches per-block keys/values and computes only the new row(s)
// for each arriving item or microbatch.
//
// Memory layout: all cached K/V panels live in ONE contiguous arena drawn
// from BufferPool and grown geometrically, laid out SoA head-major —
// for block b and head h the keys of items 0..t form one contiguous
// [t, head_dim] panel. The attention score loop over an item's visible set
// therefore gathers contiguous head_dim-long rows (kernels::Dot on
// sequential memory) instead of striding across a [t, d] row-major matrix,
// and window rotation returns the whole arena to the pool in one release.
// (The seed implementation kept three std::vectors per block — including a
// block-outputs cache that nothing ever read — each reallocating
// independently as the window grew.)
class IncrementalEncoder {
 public:
  explicit IncrementalEncoder(const KvrlEncoder& encoder);
  ~IncrementalEncoder();

  IncrementalEncoder(const IncrementalEncoder&) = delete;
  IncrementalEncoder& operator=(const IncrementalEncoder&) = delete;

  // Appends the next stream item. `position_in_key` is its 0-based index
  // within its key sequence; `visible` lists the earlier stream positions
  // it may attend to (from CorrelationTracker::ObserveItem). Returns the
  // final-block embedding row E(t)_e (length d).
  std::vector<float> AppendItem(const Item& item, int position_in_key,
                                const std::vector<int>& visible);

  // Cross-item microbatch: appends `batch` consecutive stream items at
  // once. items[i] arrives at stream position num_items() + i with
  // visibility `visibles[i]` (which may reference earlier items of the
  // same batch — their K/V rows are cached before any attention runs).
  // The Q/K/V/FFN projections run as one [batch, d] GemmNN per weight
  // instead of `batch` row-vector VecMats; only the attention gather and
  // the layer norms stay per-row. Writes the final-block rows to `rows`
  // ([batch, d], row-major). Equivalent to `batch` AppendItem calls up to
  // GEMM summation order (≤1e-5; pinned by core_batch_equivalence_test).
  void AppendBatch(const Item* items, const int* positions_in_key,
                   const std::vector<int>* visibles, int batch,
                   std::vector<float>* rows);

  int num_items() const { return num_items_; }

  // Serving-state checkpointing. Snapshot re-serialises the arena as one
  // [num_items, head_dim] float vector per (block, head, K/V) panel — the
  // SoA layout is an implementation detail the byte stream does not
  // depend on. Restore validates the geometry against the frozen encoder,
  // stages every panel, and only then touches the arena, so a failed
  // restore (truncation, corruption, encoder mismatch) returns false with
  // *this untouched.
  // When `expected_items` is non-negative the stream's item count must
  // match it (callers cross-check against their own clock so a checkpoint
  // with internally inconsistent sections is rejected before commit).
  void Snapshot(BinaryWriter* writer) const;
  bool Restore(BinaryReader* reader, int expected_items = -1);

  // Delta checkpointing (docs/SERVING.md "Incremental checkpoints"). The
  // K/V cache is append-only within a window — row t is written once when
  // item t arrives and never rewritten — so the rows in [base_items,
  // num_items()) are exactly what changed since a snapshot taken at
  // base_items. SnapshotTail serialises only that suffix (plus the
  // geometry header, so corrupted deltas still fail closed on mismatch).
  // RestoreTail requires the receiver to sit exactly at base_items and,
  // when `expected_items` is non-negative, the restored count to match it;
  // panels are staged before the arena is touched, same contract as
  // Restore.
  void SnapshotTail(BinaryWriter* writer, int base_items) const;
  bool RestoreTail(BinaryReader* reader, int expected_items = -1);

  // Repacks the K/V arena into the smallest geometric capacity that holds
  // the live items, returning the slack to BufferPool (shard compaction).
  // A no-op when the arena is already tight.
  void ShrinkToFit();

  // Rewinds the batch scratch arena (called after a drained microbatch;
  // AppendBatch also resets defensively on entry).
  void ResetScratch() { scratch_.Reset(); }

  // ---- Memory accounting ----
  // Bytes held by the K/V arena plus the batch scratch arena.
  size_t resident_bytes() const {
    return arena_.capacity() * sizeof(float) + scratch_.reserved_bytes();
  }
  size_t scratch_high_water() const { return scratch_.high_water(); }

 private:
  // A BufferPool-backed grow-only scratch buffer: the q/k/v/attended/hidden
  // scratch of the seed implementation was reallocated on every AppendItem
  // call; these persist per engine and return their storage to the pool on
  // destruction (so a rotated-in engine reuses the old engine's buffers).
  class PooledBuffer {
   public:
    PooledBuffer() = default;
    ~PooledBuffer();
    PooledBuffer(const PooledBuffer&) = delete;
    PooledBuffer& operator=(const PooledBuffer&) = delete;

    // Grow-only; existing contents are NOT preserved across growth.
    float* Ensure(size_t n);
    float* data() { return buffer_.data(); }
    std::vector<float>& vec() { return buffer_; }

   private:
    std::vector<float> buffer_;
  };

  // y = x W (+ b); row vector times weight matrix.
  static void LinearRow(const std::vector<float>& x, const Tensor& weight,
                        const Tensor& bias, std::vector<float>* y);
  static void LayerNormRow(const Tensor& gamma, const Tensor& beta,
                           float* x, int n);

  // Arena geometry. Panels are per (block, head) for K and V:
  //   K(b,h) = arena + b·2·C·d + h·C·head_dim
  //   V(b,h) = arena + b·2·C·d + C·d + h·C·head_dim
  // where C = capacity_ (items). head_dim·num_heads == d.
  float* KeyPanel(int block, int head);
  float* ValuePanel(int block, int head);
  // Grows the arena (geometrically) to hold at least `min_items` cached
  // items, repacking the live panels into the new layout.
  void EnsureCapacity(int min_items);
  // Moves the live panels into a fresh arena of `new_capacity` items
  // (either direction: growth or shrink-to-fit).
  void RepackArena(int new_capacity);
  // Scatters one item's k/v rows (length d each) into the head panels.
  void ScatterKv(int block, int t, const float* k, const float* v);
  // Masked attention for one query row against the cached panels of
  // `block`; writes the concatenated head outputs (length d) to `out`.
  void AttendRow(int block, const MaskedSelfAttention& attention,
                 const float* q, const std::vector<int>& targets, float* out);

  const KvrlEncoder& encoder_;
  int dim_;
  int head_dim_;
  int num_heads_;
  int num_items_ = 0;
  int capacity_ = 0;           // cached items the arena can hold
  std::vector<float> arena_;   // pooled; see layout above

  // Single-row scratch (AppendItem).
  PooledBuffer x_, q_, k_, v_, attended_, mixed_, h_, hidden_, f_;
  // Batched scratch (AppendBatch): all [batch, ·] panels come from this
  // monotonic arena, reset at the top of every batch — per-microbatch
  // scratch costs one pointer bump per panel instead of nine BufferPool
  // draws (and plateaus at the largest batch seen).
  ScratchArena scratch_;
  std::vector<float> scores_;
  std::vector<int> targets_;
};

}  // namespace kvec

