// The KVRL encoder (paper §IV-B): input embedding followed by stacked
// correlation-masked attention blocks, producing the per-item embeddings
// E(t)_e that the fusion cell consumes.
//
// Because the dynamic mask matrix is causal (item i only attends to j ≤ i),
// encoding a whole episode once is equivalent to re-encoding after every
// arrival; see DESIGN.md §4.1. `IncrementalEncoder` exploits this at
// inference time: it appends one row per arriving item in O(t·d) instead of
// recomputing the full O(t²·d) pass, and is verified to match the batch
// encoder bit-for-bit-ish (1e-4) in tests.
#ifndef KVEC_CORE_ENCODER_H_
#define KVEC_CORE_ENCODER_H_

#include <vector>

#include "core/config.h"
#include "core/correlation.h"
#include "core/input_embedding.h"
#include "nn/attention.h"
#include "nn/module.h"
#include "util/rng.h"

namespace kvec {

struct EncodeResult {
  Tensor embeddings;                      // E(T): [T, d]
  std::vector<Tensor> attention_weights;  // one [T,T] per block
  EpisodeMask mask;
};

class KvrlEncoder : public Module {
 public:
  KvrlEncoder(const KvecConfig& config, Rng& rng);

  EncodeResult Forward(const TangledSequence& episode,
                       const EpisodeIndex& index, Rng& rng,
                       bool training) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const InputEmbedding& input_embedding() const { return input_; }
  const std::vector<AttentionBlock>& blocks() const { return blocks_; }
  const KvecConfig& config() const { return config_; }

 private:
  KvecConfig config_;
  InputEmbedding input_;
  std::vector<AttentionBlock> blocks_;
};

// Streaming forward pass over a frozen KvrlEncoder. No gradients, no
// dropout; caches per-block keys/values/outputs and computes only the new
// row for each arriving item.
class IncrementalEncoder {
 public:
  explicit IncrementalEncoder(const KvrlEncoder& encoder);

  // Appends the next stream item. `position_in_key` is its 0-based index
  // within its key sequence; `visible` lists the earlier stream positions
  // it may attend to (from CorrelationTracker::ObserveItem). Returns the
  // final-block embedding row E(t)_e (length d).
  std::vector<float> AppendItem(const Item& item, int position_in_key,
                                const std::vector<int>& visible);

  int num_items() const { return num_items_; }

 private:
  struct BlockCache {
    std::vector<float> keys;     // [t, d] flattened
    std::vector<float> values;   // [t, d] flattened
    std::vector<float> outputs;  // [t, d] flattened block outputs
  };

  // y = x W (+ b); row vector times weight matrix.
  static void LinearRow(const std::vector<float>& x, const Tensor& weight,
                        const Tensor& bias, std::vector<float>* y);
  static void LayerNormRow(const Tensor& gamma, const Tensor& beta,
                           std::vector<float>* x);

  const KvrlEncoder& encoder_;
  int dim_;
  int num_items_ = 0;
  std::vector<BlockCache> caches_;  // one per block
};

}  // namespace kvec

#endif  // KVEC_CORE_ENCODER_H_
