#include "core/model.h"

#include "util/serialize.h"

namespace kvec {

KvecModel::KvecModel(const KvecConfig& config)
    : config_(config),
      init_rng_(config.seed),
      encoder_(config, init_rng_),
      fusion_(config, init_rng_),
      policy_(fusion_.output_dim(), init_rng_),
      baseline_(fusion_.output_dim(), config.baseline_hidden_dim, init_rng_),
      classifier_(fusion_.output_dim(), config.spec.num_classes,
                  init_rng_) {}

void KvecModel::CollectParameters(std::vector<Tensor>* out) {
  encoder_.CollectParameters(out);
  fusion_.CollectParameters(out);
  policy_.CollectParameters(out);
  classifier_.CollectParameters(out);
  baseline_.CollectParameters(out);
}

std::vector<Tensor> KvecModel::MainParameters() {
  std::vector<Tensor> params;
  encoder_.CollectParameters(&params);
  fusion_.CollectParameters(&params);
  policy_.CollectParameters(&params);
  classifier_.CollectParameters(&params);
  return params;
}

std::vector<Tensor> KvecModel::BaselineParameters() {
  std::vector<Tensor> params;
  baseline_.CollectParameters(&params);
  return params;
}

bool KvecModel::SaveToFile(const std::string& path) {
  BinaryWriter writer;
  writer.WriteString("kvec-model-v1");
  SaveParameters(&writer);
  return writer.SaveToFile(path);
}

bool KvecModel::LoadFromFile(const std::string& path) {
  BinaryReader reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return false;
  if (reader.ReadString() != "kvec-model-v1") return false;
  return LoadParameters(&reader);
}

}  // namespace kvec
