// Embedding fusion (paper §IV-B, "Embedding Fusion"): folds the per-item
// attention embedding E(t)_e into the running sequence representation
// s(t)_k.
//
// The paper argues that parameter-free fusion (addition, averaging,
// concatenation) aggregates noise and proposes an LSTM-style multi-gate
// cell instead. This module implements the gated cell *and* the
// parameter-free alternatives so the claim is ablatable (ext_fusion bench):
//
//   kLstm  s_t = LstmFusionCell(s_{t-1}, E_t)        (the paper's choice)
//   kSum   s_t = s_{t-1} + E_t
//   kMean  s_t = (1/t) Σ_{i<=t} E_i
//   kLast  s_t = E_t                                 (no history at all)
//
// The parameter-free modes output embed_dim-wide representations; the
// gated mode outputs state_dim. KvecModel sizes its heads from
// `output_dim()`, so both work transparently.
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/lstm_cell.h"
#include "nn/module.h"
#include "util/rng.h"

namespace kvec {

// Running fusion state of one key-value sequence.
struct FusionState {
  Tensor hidden;  // s_t, the representation consumed by the heads
  Tensor cell;    // mode memory: LSTM cell (kLstm) / running sum (kMean)
  int count = 0;  // items fused so far

  bool defined() const { return hidden.defined(); }

  // Cuts the autograd graph (streaming inference / evaluation).
  void DetachInPlace();
};

class EmbeddingFusion : public Module {
 public:
  EmbeddingFusion(const KvecConfig& config, Rng& rng);

  // All-zero starting state.
  FusionState InitialState() const;

  // One fusion step; `item_embedding` is E(t)_e ([1, embed_dim]).
  FusionState Step(const FusionState& previous,
                   const Tensor& item_embedding) const;

  // Width of `hidden`: state_dim for kLstm, embed_dim otherwise.
  int output_dim() const;

  KvecConfig::FusionKind kind() const { return kind_; }
  // The gated cell; nullptr unless kind() == kLstm.
  const LstmFusionCell* lstm() const { return lstm_.get(); }

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  KvecConfig::FusionKind kind_;
  int embed_dim_;
  int state_dim_;
  std::unique_ptr<LstmFusionCell> lstm_;
};

}  // namespace kvec

