// Uniform "method" abstraction over KVEC and the four baselines, used by
// the figure-reproducing benchmark harness.
//
// Every method exposes the hyper-parameter grid of Table II that traces its
// earliness-accuracy curve (β for KVEC, λ for (SRN-)EARLIEST, τ for
// SRN-Fixed, µ for SRN-Confidence) and a `run` function that trains a fresh
// model at one grid point and evaluates it on the test split.
//
// Every `run` is deterministic for a fixed (dataset, hyper,
// MethodRunOptions::seed) triple and owns all of its state — no two runs
// share anything, so callers may execute grid points in any order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/presets.h"
#include "data/types.h"

namespace kvec {

// Model/training sizes used by the harness, derived from the experiment
// scale (single-core budget; see DESIGN.md §1).
struct MethodRunOptions {
  int epochs = 8;
  int embed_dim = 24;
  int state_dim = 32;
  int num_blocks = 2;
  int ffn_hidden_dim = 48;
  float learning_rate = 3e-3f;
  uint64_t seed = 7;

  static MethodRunOptions ForScale(ExperimentScale scale);
};

struct MethodSpec {
  std::string name;
  std::string hyper_name;  // "beta", "lambda", "tau", "mu"
  std::vector<double> grid;
  std::function<EvaluationResult(const Dataset&, double hyper,
                                 const MethodRunOptions&)>
      run;
};

MethodSpec KvecMethod();
MethodSpec EarliestMethod();
MethodSpec SrnEarliestMethod();
MethodSpec SrnFixedMethod();
MethodSpec SrnConfidenceMethod();

// Classical (non-deep) references beyond the paper's baseline set, from the
// two Related-Work families the paper does not evaluate: the prefix-based
// stability rule (stability δ grid) and feature-based indicator matching
// (precision µ grid). Used by the ext_method_comparison bench.
MethodSpec PrefixEctsMethod();
MethodSpec IndicatorMatcherMethod();

// All five, KVEC first (the order used in the figures).
std::vector<MethodSpec> AllMethods();

// AllMethods plus the two classical references (7 methods).
std::vector<MethodSpec> AllMethodsExtended();

}  // namespace kvec

