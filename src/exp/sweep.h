// Hyper-parameter sweeps producing performance-vs-earliness curves
// (Figures 3–7) and their tabular (de)serialisation.
//
// Cost contract: RunMethodSweep trains one FRESH model per grid value —
// a full sweep is |grid| independent trainings, which at full scale is
// the expensive part of reproducing the figures (cache results via
// exp/cache.h, or drive it through `kvec sweep --cache`). Deterministic
// for fixed MethodRunOptions::seed. The functions share no mutable
// state, so concurrent sweeps of different methods/datasets from
// different threads are safe; a single sweep runs sequentially.
#pragma once

#include <string>
#include <vector>

#include "exp/method.h"
#include "util/table.h"

namespace kvec {

// One (method, hyper-parameter) evaluation on a dataset's test split.
struct SweepPoint {
  std::string method;
  double hyper = 0.0;
  double earliness = 0.0;
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double harmonic_mean = 0.0;
};

// Trains/evaluates `method` at every grid value. Points are sorted by
// earliness.
std::vector<SweepPoint> RunMethodSweep(const MethodSpec& method,
                                       const Dataset& dataset,
                                       const MethodRunOptions& options);

// All methods on one dataset.
std::vector<SweepPoint> RunAllMethodSweeps(const Dataset& dataset,
                                           const MethodRunOptions& options);

Table SweepToTable(const std::vector<SweepPoint>& points);
bool SweepFromTable(const Table& table, std::vector<SweepPoint>* points);

// The points of one method, sorted by earliness.
std::vector<SweepPoint> PointsOfMethod(const std::vector<SweepPoint>& all,
                                       const std::string& method);

// Linear interpolation of `metric` at `earliness` along one method's curve
// (points must be sorted by earliness, e.g. from PointsOfMethod). Clamps to
// the endpoints outside the observed earliness range. This is how the
// paper's same-earliness comparisons ("KVEC improves accuracy by X% under
// the same prediction earliness") are computed from the sweeps.
double InterpolateMetric(const std::vector<SweepPoint>& method_points,
                         double earliness, double SweepPoint::*metric);

}  // namespace kvec

