#include "exp/cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace kvec {

SweepCache::SweepCache(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
}

SweepCache SweepCache::Default() { return SweepCache("kvec_bench_cache"); }

bool SweepCache::FreshRunRequested() {
  const char* env = std::getenv("KVEC_BENCH_FRESH");
  return env != nullptr && std::string(env) == "1";
}

std::string SweepCache::PathFor(const std::string& key) const {
  std::string sanitized;
  for (char c : key) {
    sanitized += (std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                  c == '-' || c == '_')
                     ? c
                     : '_';
  }
  return directory_ + "/" + sanitized + ".csv";
}

bool SweepCache::Load(const std::string& key,
                      std::vector<SweepPoint>* points) const {
  if (FreshRunRequested()) return false;
  std::ifstream in(PathFor(key));
  if (!in) return false;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  Table table({"placeholder"});
  if (!Table::FromCsv(contents, &table)) return false;
  return SweepFromTable(table, points);
}

void SweepCache::Store(const std::string& key,
                       const std::vector<SweepPoint>& points) const {
  std::ofstream out(PathFor(key));
  KVEC_CHECK(static_cast<bool>(out))
      << "cannot write sweep cache " << PathFor(key);
  out << SweepToTable(points).ToCsv();
}

std::vector<SweepPoint> SweepCache::LoadOrCompute(
    const std::string& key,
    const std::function<std::vector<SweepPoint>()>& compute) const {
  std::vector<SweepPoint> points;
  if (Load(key, &points)) return points;
  points = compute();
  Store(key, points);
  return points;
}

}  // namespace kvec
