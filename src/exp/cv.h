// K-fold cross-validation over episodes (the paper evaluates with five-fold
// cross-validation and reports averages, §V-A.4).
//
// Folds are formed over whole episodes, which keeps them key-disjoint: every
// episode owns its keys, so no key ever appears in both the training and
// test side of a fold — the paper's leakage guarantee.
//
// Cost: CrossValidate trains `num_folds` fresh models at the given grid
// value (sequentially; deterministic for a fixed fold seed + options
// seed), so a five-fold run costs 5× one RunMethodSweep grid point.
#pragma once

#include <vector>

#include "data/types.h"
#include "exp/method.h"
#include "metrics/metrics.h"

namespace kvec {

// Mean and (population) standard deviation of each metric over folds.
struct CrossValidationSummary {
  EvaluationSummary mean;
  EvaluationSummary stddev;
  int folds = 0;
};

// The episodes of one fold: test = the held-out chunk, train = the rest
// minus a validation tail carved from the training side.
struct Fold {
  std::vector<TangledSequence> train;
  std::vector<TangledSequence> validation;
  std::vector<TangledSequence> test;
};

// Splits `episodes` into `num_folds` folds after a seeded shuffle. Fold i's
// test set is the i-th chunk; `validation_fraction` of the remaining
// episodes (at least one when the fraction is positive) become the
// validation split. Requires num_folds >= 2 and enough episodes for one per
// fold.
std::vector<Fold> MakeFolds(const std::vector<TangledSequence>& episodes,
                            int num_folds, uint64_t seed,
                            double validation_fraction = 0.1);

// Runs `method` at one grid value on every fold of `dataset` (all three
// splits pooled, then re-folded) and aggregates the per-fold summaries.
CrossValidationSummary CrossValidate(const MethodSpec& method, double hyper,
                                     const Dataset& dataset, int num_folds,
                                     const MethodRunOptions& options,
                                     uint64_t seed = 20240405);

// Aggregates summaries from folds evaluated elsewhere.
CrossValidationSummary AggregateSummaries(
    const std::vector<EvaluationSummary>& summaries);

}  // namespace kvec

