// On-disk cache of sweep results.
//
// Figures 3–7 are projections of one training sweep; the first figure
// binary to run performs the (expensive) training and stores the points as
// CSV, subsequent binaries reload them. KVEC_BENCH_FRESH=1 bypasses the
// cache.
//
// Concurrency contract: one CSV file per key, written whole — concurrent
// Store calls for the SAME key are last-writer-wins (both writers hold a
// complete, valid result, so either outcome is correct); there is no
// cross-process locking. Load of a malformed/partial file fails cleanly
// and the caller recomputes. Keys are sanitised into filenames, so any
// printable key is safe.
#pragma once

#include <string>
#include <vector>

#include "exp/sweep.h"

namespace kvec {

class SweepCache {
 public:
  // `directory` is created if missing.
  explicit SweepCache(std::string directory);

  // Default cache next to the binary: ./kvec_bench_cache.
  static SweepCache Default();

  bool Load(const std::string& key, std::vector<SweepPoint>* points) const;
  void Store(const std::string& key,
             const std::vector<SweepPoint>& points) const;

  // True when KVEC_BENCH_FRESH=1 (cache reads disabled).
  static bool FreshRunRequested();

  // Loads from the cache or runs `compute` and stores the result.
  std::vector<SweepPoint> LoadOrCompute(
      const std::string& key,
      const std::function<std::vector<SweepPoint>()>& compute) const;

 private:
  std::string PathFor(const std::string& key) const;
  std::string directory_;
};

}  // namespace kvec

