#include "exp/cv.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace kvec {
namespace {

// Accumulates `value(summary)` into mean/stddev fields via two passes.
template <typename Getter, typename Setter>
void Aggregate(const std::vector<EvaluationSummary>& summaries, Getter get,
               Setter set, EvaluationSummary* mean,
               EvaluationSummary* stddev) {
  double sum = 0.0;
  for (const EvaluationSummary& summary : summaries) sum += get(summary);
  const double avg = sum / static_cast<double>(summaries.size());
  double variance = 0.0;
  for (const EvaluationSummary& summary : summaries) {
    const double d = get(summary) - avg;
    variance += d * d;
  }
  variance /= static_cast<double>(summaries.size());
  set(mean, avg);
  set(stddev, std::sqrt(variance));
}

}  // namespace

std::vector<Fold> MakeFolds(const std::vector<TangledSequence>& episodes,
                            int num_folds, uint64_t seed,
                            double validation_fraction) {
  KVEC_CHECK_GE(num_folds, 2);
  KVEC_CHECK_GE(static_cast<int>(episodes.size()), num_folds)
      << "need at least one episode per fold";
  KVEC_CHECK(validation_fraction >= 0.0 && validation_fraction < 1.0);

  std::vector<int> order(episodes.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);

  const int total = static_cast<int>(episodes.size());
  std::vector<Fold> folds(num_folds);
  for (int f = 0; f < num_folds; ++f) {
    // Chunk bounds [begin, end) of fold f's test episodes.
    const int begin = static_cast<int>(
        static_cast<int64_t>(total) * f / num_folds);
    const int end = static_cast<int>(
        static_cast<int64_t>(total) * (f + 1) / num_folds);
    std::vector<TangledSequence> rest;
    for (int i = 0; i < total; ++i) {
      const TangledSequence& episode = episodes[order[i]];
      if (i >= begin && i < end) {
        folds[f].test.push_back(episode);
      } else {
        rest.push_back(episode);
      }
    }
    int validation_count = 0;
    if (validation_fraction > 0.0 && rest.size() > 1) {
      validation_count = std::max(
          1, static_cast<int>(rest.size() * validation_fraction));
      validation_count = std::min(validation_count,
                                  static_cast<int>(rest.size()) - 1);
    }
    folds[f].validation.assign(rest.end() - validation_count, rest.end());
    folds[f].train.assign(rest.begin(), rest.end() - validation_count);
  }
  return folds;
}

CrossValidationSummary AggregateSummaries(
    const std::vector<EvaluationSummary>& summaries) {
  KVEC_CHECK(!summaries.empty());
  CrossValidationSummary result;
  result.folds = static_cast<int>(summaries.size());
  auto field = [&](auto member) {
    Aggregate(
        summaries, [member](const EvaluationSummary& s) { return s.*member; },
        [member](EvaluationSummary* s, double v) { s->*member = v; },
        &result.mean, &result.stddev);
  };
  field(&EvaluationSummary::earliness);
  field(&EvaluationSummary::accuracy);
  field(&EvaluationSummary::macro_precision);
  field(&EvaluationSummary::macro_recall);
  field(&EvaluationSummary::macro_f1);
  field(&EvaluationSummary::harmonic_mean);
  int sequences = 0;
  for (const EvaluationSummary& summary : summaries) {
    sequences += summary.num_sequences;
  }
  result.mean.num_sequences = sequences / result.folds;
  return result;
}

CrossValidationSummary CrossValidate(const MethodSpec& method, double hyper,
                                     const Dataset& dataset, int num_folds,
                                     const MethodRunOptions& options,
                                     uint64_t seed) {
  // Pool every episode, then re-fold; the original 8:1:1 split is just one
  // particular fold assignment.
  std::vector<TangledSequence> pool = dataset.train;
  pool.insert(pool.end(), dataset.validation.begin(),
              dataset.validation.end());
  pool.insert(pool.end(), dataset.test.begin(), dataset.test.end());

  std::vector<EvaluationSummary> summaries;
  summaries.reserve(num_folds);
  for (const Fold& fold : MakeFolds(pool, num_folds, seed)) {
    Dataset fold_dataset;
    fold_dataset.spec = dataset.spec;
    fold_dataset.train = fold.train;
    fold_dataset.validation = fold.validation;
    fold_dataset.test = fold.test;
    summaries.push_back(
        method.run(fold_dataset, hyper, options).summary);
  }
  return AggregateSummaries(summaries);
}

}  // namespace kvec
