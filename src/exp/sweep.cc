#include "exp/sweep.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace kvec {

std::vector<SweepPoint> RunMethodSweep(const MethodSpec& method,
                                       const Dataset& dataset,
                                       const MethodRunOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(method.grid.size());
  for (double hyper : method.grid) {
    EvaluationResult result = method.run(dataset, hyper, options);
    SweepPoint point;
    point.method = method.name;
    point.hyper = hyper;
    point.earliness = result.summary.earliness;
    point.accuracy = result.summary.accuracy;
    point.precision = result.summary.macro_precision;
    point.recall = result.summary.macro_recall;
    point.f1 = result.summary.macro_f1;
    point.harmonic_mean = result.summary.harmonic_mean;
    points.push_back(point);
  }
  std::sort(points.begin(), points.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.earliness < b.earliness;
            });
  return points;
}

std::vector<SweepPoint> RunAllMethodSweeps(const Dataset& dataset,
                                           const MethodRunOptions& options) {
  std::vector<SweepPoint> all;
  for (const MethodSpec& method : AllMethods()) {
    std::vector<SweepPoint> points =
        RunMethodSweep(method, dataset, options);
    all.insert(all.end(), points.begin(), points.end());
  }
  return all;
}

Table SweepToTable(const std::vector<SweepPoint>& points) {
  Table table({"method", "hyper", "earliness", "accuracy", "precision",
               "recall", "f1", "hm"});
  for (const SweepPoint& point : points) {
    table.AddRow({point.method, Table::FormatDouble(point.hyper, 6),
                  Table::FormatDouble(point.earliness, 6),
                  Table::FormatDouble(point.accuracy, 6),
                  Table::FormatDouble(point.precision, 6),
                  Table::FormatDouble(point.recall, 6),
                  Table::FormatDouble(point.f1, 6),
                  Table::FormatDouble(point.harmonic_mean, 6)});
  }
  return table;
}

bool SweepFromTable(const Table& table, std::vector<SweepPoint>* points) {
  if (table.columns().size() != 8 || table.columns()[0] != "method") {
    return false;
  }
  points->clear();
  for (const auto& row : table.rows()) {
    SweepPoint point;
    point.method = row[0];
    point.hyper = std::atof(row[1].c_str());
    point.earliness = std::atof(row[2].c_str());
    point.accuracy = std::atof(row[3].c_str());
    point.precision = std::atof(row[4].c_str());
    point.recall = std::atof(row[5].c_str());
    point.f1 = std::atof(row[6].c_str());
    point.harmonic_mean = std::atof(row[7].c_str());
    points->push_back(point);
  }
  return true;
}

std::vector<SweepPoint> PointsOfMethod(const std::vector<SweepPoint>& all,
                                       const std::string& method) {
  std::vector<SweepPoint> points;
  for (const SweepPoint& point : all) {
    if (point.method == method) points.push_back(point);
  }
  std::sort(points.begin(), points.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.earliness < b.earliness;
            });
  return points;
}

double InterpolateMetric(const std::vector<SweepPoint>& method_points,
                         double earliness, double SweepPoint::*metric) {
  KVEC_CHECK(!method_points.empty());
  if (earliness <= method_points.front().earliness) {
    return method_points.front().*metric;
  }
  if (earliness >= method_points.back().earliness) {
    return method_points.back().*metric;
  }
  for (size_t i = 1; i < method_points.size(); ++i) {
    const SweepPoint& lo = method_points[i - 1];
    const SweepPoint& hi = method_points[i];
    if (earliness > hi.earliness) continue;
    const double span = hi.earliness - lo.earliness;
    if (span <= 0.0) return hi.*metric;  // duplicate earliness
    const double t = (earliness - lo.earliness) / span;
    return lo.*metric + t * (hi.*metric - lo.*metric);
  }
  return method_points.back().*metric;  // unreachable
}

}  // namespace kvec
