#include "exp/method.h"

#include "baselines/baseline_model.h"
#include "baselines/baseline_trainer.h"
#include "baselines/indicator_matcher.h"
#include "baselines/prefix_ects.h"
#include "core/model.h"

namespace kvec {
namespace {

KvecConfig BaseConfig(const Dataset& dataset,
                      const MethodRunOptions& options) {
  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  config.embed_dim = options.embed_dim;
  config.state_dim = options.state_dim;
  config.num_blocks = options.num_blocks;
  config.ffn_hidden_dim = options.ffn_hidden_dim;
  config.learning_rate = options.learning_rate;
  config.baseline_learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  return config;
}

EvaluationResult RunBaseline(const Dataset& dataset, BaselineConfig config) {
  BaselineModel model(config);
  BaselineTrainer trainer(&model);
  trainer.Train(dataset.train);
  return trainer.Evaluate(dataset.test);
}

}  // namespace

MethodRunOptions MethodRunOptions::ForScale(ExperimentScale scale) {
  MethodRunOptions options;
  switch (scale) {
    case ExperimentScale::kTiny:
      options.epochs = 6;
      options.embed_dim = 16;
      options.state_dim = 24;
      options.num_blocks = 1;
      options.ffn_hidden_dim = 32;
      break;
    case ExperimentScale::kSmall:
      options.epochs = 12;
      options.embed_dim = 24;
      options.state_dim = 32;
      options.num_blocks = 2;
      options.ffn_hidden_dim = 48;
      break;
    case ExperimentScale::kFull:
      options.epochs = 16;
      options.embed_dim = 32;
      options.state_dim = 48;
      options.num_blocks = 2;
      options.ffn_hidden_dim = 64;
      break;
  }
  return options;
}

MethodSpec KvecMethod() {
  MethodSpec spec;
  spec.name = "KVEC";
  spec.hyper_name = "beta";
  // Paper §V-C: freeze alpha at 0.1 and sweep beta to trace the curve;
  // negative beta discourages halting (later classification).
  spec.grid = {-2e-2, 0.0, 2e-3, 1e-2, 5e-2, 2e-1};
  spec.run = [](const Dataset& dataset, double hyper,
                const MethodRunOptions& options) {
    KvecConfig config = BaseConfig(dataset, options);
    config.alpha = 0.1f;
    config.beta = static_cast<float>(hyper);
    KvecModel model(config);
    KvecTrainer trainer(&model);
    trainer.Train(dataset.train);
    return trainer.Evaluate(dataset.test);
  };
  return spec;
}

namespace {

MethodSpec PolicyBaselineMethod(const std::string& name,
                                RepresentationKind representation) {
  MethodSpec spec;
  spec.name = name;
  spec.hyper_name = "lambda";
  spec.grid = {-2e-2, 0.0, 2e-3, 1e-2, 5e-2, 2e-1};
  spec.run = [representation](const Dataset& dataset, double hyper,
                              const MethodRunOptions& options) {
    BaselineConfig config;
    config.name = representation == RepresentationKind::kLstm
                      ? "EARLIEST"
                      : "SRN-EARLIEST";
    config.representation = representation;
    config.halting = HaltingKind::kPolicy;
    config.base = BaseConfig(dataset, options);
    config.base.alpha = 0.1f;
    config.base.beta = static_cast<float>(hyper);
    return RunBaseline(dataset, config);
  };
  return spec;
}

}  // namespace

MethodSpec EarliestMethod() {
  return PolicyBaselineMethod("EARLIEST", RepresentationKind::kLstm);
}

MethodSpec SrnEarliestMethod() {
  return PolicyBaselineMethod("SRN-EARLIEST",
                              RepresentationKind::kTransformer);
}

MethodSpec SrnFixedMethod() {
  MethodSpec spec;
  spec.name = "SRN-Fixed";
  spec.hyper_name = "tau";
  spec.grid = {1, 2, 4, 8, 16, 32};
  spec.run = [](const Dataset& dataset, double hyper,
                const MethodRunOptions& options) {
    BaselineConfig config;
    config.name = "SRN-Fixed";
    config.representation = RepresentationKind::kTransformer;
    config.halting = HaltingKind::kFixed;
    config.fixed_halt_step = static_cast<int>(hyper);
    config.base = BaseConfig(dataset, options);
    return RunBaseline(dataset, config);
  };
  return spec;
}

MethodSpec SrnConfidenceMethod() {
  MethodSpec spec;
  spec.name = "SRN-Confidence";
  spec.hyper_name = "mu";
  spec.grid = {0.5, 0.7, 0.8, 0.9, 0.95, 0.99};
  spec.run = [](const Dataset& dataset, double hyper,
                const MethodRunOptions& options) {
    BaselineConfig config;
    config.name = "SRN-Confidence";
    config.representation = RepresentationKind::kTransformer;
    config.halting = HaltingKind::kConfidence;
    config.confidence_threshold = static_cast<float>(hyper);
    config.base = BaseConfig(dataset, options);
    return RunBaseline(dataset, config);
  };
  return spec;
}

std::vector<MethodSpec> AllMethods() {
  return {KvecMethod(), SrnEarliestMethod(), SrnConfidenceMethod(),
          SrnFixedMethod(), EarliestMethod()};
}

MethodSpec PrefixEctsMethod() {
  MethodSpec spec;
  spec.name = "Prefix-ECTS";
  spec.hyper_name = "stability";
  spec.grid = {1, 2, 3, 5, 8, 12};
  spec.run = [](const Dataset& dataset, double hyper,
                const MethodRunOptions& options) {
    PrefixEctsConfig config;
    config.stability = static_cast<int>(hyper);
    config.seed = options.seed;
    PrefixEcts model(dataset.spec, config);
    model.Fit(dataset.train);
    return model.Evaluate(dataset.test);
  };
  return spec;
}

MethodSpec IndicatorMatcherMethod() {
  MethodSpec spec;
  spec.name = "Indicator";
  spec.hyper_name = "precision";
  spec.grid = {0.5, 0.6, 0.7, 0.8, 0.9, 0.97};
  spec.run = [](const Dataset& dataset, double hyper,
                const MethodRunOptions& options) {
    IndicatorMatcherConfig config;
    config.precision_threshold = static_cast<float>(hyper);
    IndicatorMatcher model(dataset.spec, config);
    model.Fit(dataset.train);
    return model.Evaluate(dataset.test);
  };
  return spec;
}

std::vector<MethodSpec> AllMethodsExtended() {
  std::vector<MethodSpec> methods = AllMethods();
  methods.push_back(PrefixEctsMethod());
  methods.push_back(IndicatorMatcherMethod());
  return methods;
}

}  // namespace kvec
