// Minimal binary serialisation for model and serving-state checkpoints.
//
// Format: little-endian, length-prefixed. Writers/readers are symmetric and
// every value carries a magic tag per kind, so truncated or mismatched
// bytes fail loudly instead of producing garbage parameters.
//
// BinaryReader fails CLOSED: any read past the end of the buffer, any tag
// mismatch, and any implausible length prefix (negative, or larger than the
// bytes actually remaining) flips ok() to false and returns a zero/empty
// value. Once failed, every later read also fails and the buffer position
// stops advancing — callers can run a whole restore sequence and check
// ok() once at the end, and corrupted input can never trigger an abort, an
// oversized allocation, or an out-of-bounds copy. (Earlier revisions
// aborted via KVEC_CHECK and trusted length prefixes, which made every
// caller responsible for pre-validating untrusted bytes.)
//
// On top of the value layer sits the checkpoint container used for serving
// state (StreamServer / ShardedStreamServer): a magic number, a format
// version, and length-prefixed sections keyed by an integer id. Readers
// skip sections whose id they do not recognise, so a version bump is only
// needed when an existing section's payload layout changes.
//
// Two container versions exist today:
//   * version 1 — full checkpoints (the complete serving state; the layout
//     pinned byte-for-byte by tests/data/stream_server_v1.ckpt).
//   * version 2 — delta checkpoints (docs/SERVING.md "Incremental
//     checkpoints"): a chain manifest carrying the base checkpoint's
//     fingerprint plus one dirty-key delta section per shard. Deltas never
//     stand alone; they are applied on top of a restored version-1 base in
//     chain order, with fingerprint linkage validated link by link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kvec {

class BinaryWriter {
 public:
  void WriteInt32(int32_t value);
  void WriteInt64(int64_t value);
  void WriteFloat(float value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteFloatVector(const std::vector<float>& values);
  // Same wire format as WriteFloatVector, straight from a raw buffer (no
  // intermediate std::vector copy; used by the encoder arena snapshot).
  void WriteFloats(const float* values, size_t count);
  void WriteIntVector(const std::vector<int>& values);
  // Same wire format as WriteIntVector, straight from a raw buffer (used by
  // the pmr-backed per-key state, whose vectors are not std::vector).
  void WriteInts(const int* values, size_t count);

  const std::string& buffer() const { return buffer_; }

  // Writes the buffer to `path`. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

 private:
  void Append(const void* data, size_t size);
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string buffer);

  // Creates a reader over the contents of `path`; `ok()` reports whether the
  // file could be read.
  static BinaryReader FromFile(const std::string& path);

  // All reads fail closed: on truncation, tag mismatch, or a bad length
  // prefix they set ok() to false and return 0 / an empty value.
  int32_t ReadInt32();
  int64_t ReadInt64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int> ReadIntVector();

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == buffer_.size(); }
  // Bytes not yet consumed. Restore loops bound their element counts by
  // this so a corrupted count can never spin a near-empty reader.
  size_t remaining() const { return buffer_.size() - position_; }

 private:
  // Returns false (and fails the reader) instead of reading past the end.
  bool Consume(void* data, size_t size);
  // Reads and validates the tag of one value.
  bool ConsumeTag(int32_t expected);
  // Reads a length prefix and validates 0 <= size and size * elem_size <=
  // remaining(); on failure fails the reader and returns false.
  bool ConsumeSize(size_t elem_size, int64_t* size);
  void Fail() { ok_ = false; }

  std::string buffer_;
  size_t position_ = 0;
  bool ok_ = true;
};

// ---- Checkpoint container ------------------------------------------------
//
// Layout (all raw little-endian, no per-value tags at the frame level):
//   uint32  magic          'KVCP'
//   int32   format version
//   int32   section count
//   per section:
//     int32 id
//     int64 payload length in bytes
//     byte* payload
//
// Payloads are opaque to the container (by convention they are BinaryWriter
// value streams). Unknown section ids are preserved by decode; consumers
// skip what they do not recognise.

inline constexpr uint32_t kCheckpointMagic = 0x4b564350u;  // "PCVK" on disk
// Version 1: full checkpoints. Pinned byte-for-byte by the v1 golden; a
// `Checkpoint` defaults to this so the full path can never silently drift.
inline constexpr int32_t kCheckpointFormatVersion = 1;
// Version 2: delta checkpoints (chain manifest + per-shard dirty-key
// deltas). Only `ShardedStreamServer::CheckpointIncremental` emits these.
inline constexpr int32_t kCheckpointDeltaFormatVersion = 2;
// Highest version CheckpointDecode accepts.
inline constexpr int32_t kCheckpointMaxFormatVersion = kCheckpointDeltaFormatVersion;

// ---- Section-id registry -------------------------------------------------
//
// Every section id in the checkpoint container namespace is defined here and
// nowhere else (enforced by the `section-id` lint rule), so two subsystems
// can never collide on an id without the clash being visible in one file.
//
// Serving state (full checkpoints, version 1):
inline constexpr int32_t kCheckpointSectionStreamServer = 1;
inline constexpr int32_t kCheckpointSectionShardManifest = 2;
inline constexpr int32_t kCheckpointSectionShard = 3;
// Delta chains (version 2):
inline constexpr int32_t kCheckpointSectionDeltaManifest = 4;
inline constexpr int32_t kCheckpointSectionShardDelta = 5;
// Model bundles (src/cli/model_io.h owns the payload layouts):
inline constexpr int32_t kCheckpointSectionModelConfig = 16;
inline constexpr int32_t kCheckpointSectionModelParams = 17;

struct CheckpointSection {
  int32_t id = 0;
  std::string payload;
};

struct Checkpoint {
  int32_t version = kCheckpointFormatVersion;
  std::vector<CheckpointSection> sections;

  // First section with this id, or nullptr.
  const CheckpointSection* Find(int32_t id) const;
};

// Frames `checkpoint` into a byte string (always succeeds).
std::string CheckpointEncode(const Checkpoint& checkpoint);

// Parses `bytes`; returns false (leaving `*out` unspecified) on a bad
// magic, an unknown future version, a malformed frame, or truncation.
// Never aborts and never allocates more than `bytes.size()` payload.
bool CheckpointDecode(const std::string& bytes, Checkpoint* out);

// File entry points: Save frames + writes, Load reads + parses.
bool CheckpointSave(const std::string& path, const Checkpoint& checkpoint);
bool CheckpointLoad(const std::string& path, Checkpoint* out);

// FNV-1a 64 over the encoded bytes. Delta-chain manifests embed the base
// checkpoint's fingerprint (and the previous link's) so a delta can never be
// applied to a base it was not cut against. Not cryptographic — this guards
// against operational mix-ups and reordering, not adversaries.
uint64_t CheckpointFingerprint(const std::string& bytes);

// Writes `bytes` to `path` via a sibling ".tmp" file + rename, so a crash
// mid-write leaves either the old file or the complete new one on disk,
// never a torn one. Delta-chain writes go through this.
bool AtomicWriteFile(const std::string& path, const std::string& bytes);

}  // namespace kvec

