// Minimal binary serialisation for model checkpoints.
//
// Format: little-endian, length-prefixed. Writers/readers are symmetric and
// validated by a magic tag per value kind so that truncated or mismatched
// files fail loudly instead of producing garbage parameters.
#ifndef KVEC_UTIL_SERIALIZE_H_
#define KVEC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kvec {

class BinaryWriter {
 public:
  void WriteInt32(int32_t value);
  void WriteInt64(int64_t value);
  void WriteFloat(float value);
  void WriteString(const std::string& value);
  void WriteFloatVector(const std::vector<float>& values);
  void WriteIntVector(const std::vector<int>& values);

  const std::string& buffer() const { return buffer_; }

  // Writes the buffer to `path`. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

 private:
  void Append(const void* data, size_t size);
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string buffer);

  // Creates a reader over the contents of `path`; `ok()` reports whether the
  // file could be read.
  static BinaryReader FromFile(const std::string& path);

  int32_t ReadInt32();
  int64_t ReadInt64();
  float ReadFloat();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int> ReadIntVector();

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == buffer_.size(); }

 private:
  void Consume(void* data, size_t size);

  std::string buffer_;
  size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace kvec

#endif  // KVEC_UTIL_SERIALIZE_H_
