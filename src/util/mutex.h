// Annotated mutex / condition-variable wrappers for Thread Safety Analysis.
//
// libstdc++ ships std::mutex without capability attributes, so Clang's
// -Wthread-safety cannot see through it. These wrappers are the thinnest
// possible annotated shims over the standard primitives — zero added
// state, every method a direct forward — so the lock discipline of the
// serving stack (util/bounded_queue.h, util/thread_pool.h,
// core/sharded_stream_server.h, tensor/buffer_pool.h) is machine-checked
// while the generated code stays exactly what std::mutex produces.
//
//   Mutex mu;
//   int value KVEC_GUARDED_BY(mu);
//   {
//     MutexLock lock(mu);        // scoped acquire, analysis-visible
//     value = 7;                 // OK
//     while (value == 7) cv.Wait(mu);   // releases+reacquires mu
//   }
//   value = 8;                   // clang error: mu not held
//
// CondVar::Wait keeps std::condition_variable underneath (not the slower
// condition_variable_any) by adopting the wrapped std::mutex for the wait
// and releasing it back unlocked-tracking-free afterwards: the caller
// holds the capability before and after, which is exactly what the
// KVEC_REQUIRES contract states.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace kvec {

class CondVar;

// A std::mutex the analysis can see. Prefer MutexLock for scoped holds;
// Lock/Unlock exist for the rare hand-over-hand or conditional patterns.
class KVEC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KVEC_ACQUIRE() { mu_.lock(); }
  void Unlock() KVEC_RELEASE() { mu_.unlock(); }
  bool TryLock() KVEC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped hold of a Mutex.
class KVEC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KVEC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KVEC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. Wait requires the capability: the
// caller holds `mu` on entry and on return (the wait releases it only
// while blocked, which the analysis need not model — no guarded state is
// touched in between). Use the bare Wait in a caller-side predicate loop:
//
//   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` and blocks; `mu` is reacquired before
  // returning. Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex& mu) KVEC_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the unique_lock's ownership claim without unlocking —
    // the caller still holds the capability, as annotated.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kvec
