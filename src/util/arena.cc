#include "util/arena.h"

#include <cstdint>

namespace kvec {

ShardPool::ShardPool()
    // kvec-lint: allow-next(pool-discipline) wiring the sanctioned primitives
    : upstream_counter_(std::pmr::new_delete_resource()),
      pool_(&upstream_counter_),
      request_counter_(&pool_) {}

ShardPool::~ShardPool() = default;

void* ScratchArena::Alloc(size_t bytes, size_t alignment) {
  if (alignment < 1) alignment = 1;
  size_t aligned = (cursor_ + alignment - 1) & ~(alignment - 1);
  if (aligned + bytes <= main_.size()) {
    cursor_ = aligned + bytes;
    used_ = cursor_;
    if (used_ > high_water_) high_water_ = used_;
    return main_.data() + aligned;
  }
  // Overflow: serve from a dedicated block; Reset() folds the demand back
  // into the main block so this path only runs while the arena warms up
  // (or when a batch outgrows every previous one).
  overflow_.emplace_back(bytes + alignment);
  used_ += bytes + alignment;
  if (used_ > high_water_) high_water_ = used_;
  char* base = overflow_.back().data();
  auto addr = reinterpret_cast<uintptr_t>(base);
  uintptr_t shift = (alignment - addr % alignment) % alignment;
  return base + shift;
}

void ScratchArena::Reset() {
  if (!overflow_.empty() || high_water_ > main_.size()) {
    overflow_.clear();
    // Round up so repeated slightly-growing batches don't re-grow every
    // cycle; the arena plateaus at the largest microbatch seen.
    size_t want = high_water_ + high_water_ / 4 + kAlignment;
    if (want > main_.size()) main_.resize(want);
  }
  cursor_ = 0;
  used_ = 0;
}

size_t ScratchArena::reserved_bytes() const {
  size_t total = main_.size();
  for (const std::vector<char>& block : overflow_) total += block.size();
  return total;
}

}  // namespace kvec
