#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace kvec {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

int Rng::NextInt(int n) {
  KVEC_CHECK_GT(n, 0);
  return static_cast<int>(NextUint64() % static_cast<uint64_t>(n));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextCategorical(const std::vector<double>& weights) {
  KVEC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    KVEC_CHECK_GE(w, 0.0);
    total += w;
  }
  KVEC_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::NextPoisson(double mean) {
  KVEC_CHECK_GE(mean, 0.0);
  // Knuth's algorithm; fine for the small means used by the generators.
  double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

int Rng::NextGeometric(double p) {
  KVEC_CHECK_GT(p, 0.0);
  KVEC_CHECK_LE(p, 1.0);
  int trials = 1;
  while (!NextBernoulli(p)) ++trials;
  return trials;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace kvec
