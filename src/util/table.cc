#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace kvec {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

// Parses one CSV line into fields; handles quoted fields.
std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  KVEC_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  KVEC_CHECK_EQ(row.size(), columns_.size())
      << "row width does not match header width";
  rows_.push_back(std::move(row));
}

std::string Table::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i] << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(columns_);
  out << "|";
  for (size_t width : widths) out << std::string(width + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << CsvEscape(row[i]);
    }
    out << "\n";
  };
  emit_row(columns_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::FromCsv(const std::string& csv, Table* table) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return false;
  Table parsed(ParseCsvLine(line));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != parsed.columns().size()) return false;
    parsed.AddRow(std::move(fields));
  }
  *table = std::move(parsed);
  return true;
}

}  // namespace kvec
