#include "util/bounded_queue.h"

namespace kvec {

bool ParseOverloadPolicy(const std::string& text, OverloadPolicy* policy) {
  if (text == "block") {
    *policy = OverloadPolicy::kBlock;
    return true;
  }
  if (text == "shed-newest") {
    *policy = OverloadPolicy::kShedNewest;
    return true;
  }
  if (text == "shed-oldest") {
    *policy = OverloadPolicy::kShedOldest;
    return true;
  }
  return false;
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedNewest:
      return "shed-newest";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

}  // namespace kvec
