#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace kvec {
namespace internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << file << ":" << line << ": check failed: " << condition << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace kvec
