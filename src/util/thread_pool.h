// A small persistent thread pool with a blocking ParallelFor primitive.
//
// The tensor kernels parallelise over independent row blocks (matmul C-row
// panels, softmax/layernorm rows, large elementwise spans). All of those
// shapes reduce to "run fn(begin, end) over disjoint chunks of [0, n)", so
// that is the whole API:
//
//   ParallelFor(0, rows, /*grain=*/8, [&](int r0, int r1) {
//     for (int r = r0; r < r1; ++r) ...;
//   });
//
// Semantics:
//  * Blocking: ParallelFor returns only after every chunk ran. The calling
//    thread participates, so a 1-thread pool degenerates to an inline loop
//    with no synchronisation cost.
//  * Nested calls run inline (no re-entrant scheduling); kernels can call
//    ParallelFor without worrying about being inside another region.
//  * The pool is lazily created on first use with
//    ThreadPool::DefaultThreadCount() workers: $KVEC_NUM_THREADS if set,
//    else std::thread::hardware_concurrency(). ThreadPool::SetGlobalThreads
//    resizes it at runtime (e.g., to pin serving to one core).
//
// The chunk queue and shutdown flag are KVEC_GUARDED_BY the pool mutex
// (util/mutex.h), so the scheduler's lock discipline is enforced by clang
// -Wthread-safety, not just by review.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {

class ThreadPool {
 public:
  // `num_threads` counts the caller too: a pool of n spawns n-1 workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(chunk_begin, chunk_end) over disjoint chunks of [begin, end),
  // each at least `grain` long (except possibly the last). Blocks until all
  // chunks completed. Runs inline when the range is a single chunk, the
  // pool has one thread, or the caller is already inside a ParallelFor.
  void ParallelFor(int begin, int end, int grain,
                   const std::function<void(int, int)>& fn);

  // The process-wide pool used by the tensor kernels. Shared ownership:
  // callers hold the pool alive across their ParallelFor even if
  // SetGlobalThreads concurrently swaps in a replacement (the old pool is
  // destroyed — joining its workers — when the last in-flight user drops
  // its reference).
  static std::shared_ptr<ThreadPool> GlobalShared();
  // Replaces the global pool with one of `num_threads` threads (>= 1).
  static void SetGlobalThreads(int num_threads);
  // $KVEC_NUM_THREADS if set and valid, else hardware_concurrency().
  static int DefaultThreadCount();

 private:
  struct Region;
  struct Chunk {
    std::shared_ptr<Region> region;
    int begin = 0;
    int end = 0;
  };

  void WorkerLoop();
  static void RunChunk(const Chunk& chunk);

  int num_threads_;
  std::vector<std::thread> workers_;

  mutable Mutex mutex_;
  CondVar wake_;  // signalled when chunks arrive or shutdown begins
  std::deque<Chunk> queue_ KVEC_GUARDED_BY(mutex_);
  bool shutdown_ KVEC_GUARDED_BY(mutex_) = false;
};

// Convenience wrapper over the global pool.
inline void ParallelFor(int begin, int end, int grain,
                        const std::function<void(int, int)>& fn) {
  ThreadPool::GlobalShared()->ParallelFor(begin, end, grain, fn);
}

// The dispatch pattern every parallel kernel shares: run fn(0, n) inline
// when the job is below `work_threshold` units of work (or the pool is
// single-threaded), otherwise split [0, n) with the given grain. Templated
// so the inline fast path — tiny serving-path tensors — never constructs a
// std::function or touches the pool registry.
template <typename Fn>
void ParallelForThreshold(long long work, long long work_threshold, int n,
                          int grain, Fn&& fn) {
  if (work < work_threshold || n <= grain) {
    fn(0, n);
    return;
  }
  auto pool = ThreadPool::GlobalShared();
  if (pool->num_threads() == 1) {
    fn(0, n);
    return;
  }
  pool->ParallelFor(0, n, grain, fn);
}

}  // namespace kvec
