// Deterministic fault injection for the concurrent serving path.
//
// Concurrency bugs hide in interleavings that free-running tests almost
// never produce: a worker stalled mid-batch while its queue saturates, a
// producer delayed between routing and pushing, a checkpoint write failing
// halfway through shutdown. This layer lets tests *force* those states.
//
// A call site names a point:
//
//   if (KVEC_FAULT_POINT("checkpoint.save")) return false;   // failable
//   KVEC_FAULT_POINT("shard_worker.batch");                  // stall hook
//
// and a test arms a hook by name:
//
//   FaultInjection::Arm("shard_worker.batch", [&](const char*) {
//     latch.Wait();   // hold the worker here while the test fills queues
//     return false;   // no failure injected, just the stall
//   });
//
// A hook returns true to make a *failable* point report failure (the call
// site decides what failure means — e.g. CheckpointSave returns false);
// stall/delay hooks block inside the hook and return false. Hooks run on
// the thread that hit the point, outside the registry lock, so a hook may
// block indefinitely without wedging Arm/Disarm on other threads.
//
// Cost when nothing is armed: one relaxed atomic load. Define
// KVEC_NO_FAULT_INJECTION to compile every point out entirely for
// zero-cost release builds; the default build keeps them so the stock
// test suite (and TSan CI job) can exercise the overload paths.
#pragma once

#include <functional>
#include <string>

namespace kvec {

class FaultInjection {
 public:
  // Receives the point name; returns true to inject failure there.
  using Hook = std::function<bool(const char* point)>;

  // Installs `hook` for `point`, replacing any existing hook. Arming while
  // other threads are mid-flight is safe; they pick the hook up on their
  // next point crossing.
  static void Arm(const std::string& point, Hook hook);
  static void Disarm(const std::string& point);
  // Tests should DisarmAll() in teardown so points never leak across tests.
  static void DisarmAll();

  // How many times an armed hook at `point` has fired (0 if never armed).
  static int64_t FireCount(const std::string& point);

  // Fast guard: false unless at least one hook is armed anywhere.
  static bool ArmedAny();
  // Slow path: looks up `point`, fires its hook if armed. Returns the
  // hook's verdict (true = inject failure), false when unarmed.
  static bool Fire(const char* point);
};

#ifdef KVEC_NO_FAULT_INJECTION
#define KVEC_FAULT_POINT(point) (false)
#else
// Evaluates to true when an armed hook asks the call site to fail.
#define KVEC_FAULT_POINT(point)         \
  (::kvec::FaultInjection::ArmedAny() && \
   ::kvec::FaultInjection::Fire(point))
#endif

}  // namespace kvec

