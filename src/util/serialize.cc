#include "util/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault_injection.h"

namespace kvec {
namespace {

// Tags guard against reading a value as the wrong kind.
constexpr int32_t kTagInt32 = 0x4b561001;
constexpr int32_t kTagInt64 = 0x4b561002;
constexpr int32_t kTagFloat = 0x4b561003;
constexpr int32_t kTagString = 0x4b561004;
constexpr int32_t kTagFloatVec = 0x4b561005;
constexpr int32_t kTagIntVec = 0x4b561006;
constexpr int32_t kTagDouble = 0x4b561007;

}  // namespace

void BinaryWriter::Append(const void* data, size_t size) {
  if (size == 0) return;  // empty containers hand over a null data()
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::WriteInt32(int32_t value) {
  Append(&kTagInt32, sizeof(kTagInt32));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteInt64(int64_t value) {
  Append(&kTagInt64, sizeof(kTagInt64));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteFloat(float value) {
  Append(&kTagFloat, sizeof(kTagFloat));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteDouble(double value) {
  Append(&kTagDouble, sizeof(kTagDouble));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteString(const std::string& value) {
  Append(&kTagString, sizeof(kTagString));
  int64_t size = static_cast<int64_t>(value.size());
  Append(&size, sizeof(size));
  Append(value.data(), value.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& values) {
  WriteFloats(values.data(), values.size());
}

void BinaryWriter::WriteFloats(const float* values, size_t count) {
  Append(&kTagFloatVec, sizeof(kTagFloatVec));
  int64_t size = static_cast<int64_t>(count);
  Append(&size, sizeof(size));
  Append(values, count * sizeof(float));
}

void BinaryWriter::WriteIntVector(const std::vector<int>& values) {
  WriteInts(values.data(), values.size());
}
void BinaryWriter::WriteInts(const int* values, size_t count) {
  Append(&kTagIntVec, sizeof(kTagIntVec));
  int64_t size = static_cast<int64_t>(count);
  Append(&size, sizeof(size));
  Append(values, count * sizeof(int));
}

bool BinaryWriter::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

BinaryReader::BinaryReader(std::string buffer) : buffer_(std::move(buffer)) {}

BinaryReader BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    BinaryReader reader{std::string()};
    reader.ok_ = false;
    return reader;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return BinaryReader(std::move(contents));
}

bool BinaryReader::Consume(void* data, size_t size) {
  if (!ok_) return false;
  if (size > buffer_.size() - position_) {
    Fail();
    return false;
  }
  if (size == 0) return true;  // empty containers hand over a null data()
  std::memcpy(data, buffer_.data() + position_, size);
  position_ += size;
  return true;
}

bool BinaryReader::ConsumeTag(int32_t expected) {
  int32_t tag = 0;
  if (!Consume(&tag, sizeof(tag))) return false;
  if (tag != expected) {
    Fail();
    return false;
  }
  return true;
}

bool BinaryReader::ConsumeSize(size_t elem_size, int64_t* size) {
  if (!Consume(size, sizeof(*size))) return false;
  if (*size < 0 ||
      static_cast<uint64_t>(*size) > remaining() / elem_size) {
    // A corrupted prefix must fail before it drives an allocation.
    Fail();
    return false;
  }
  return true;
}

int32_t BinaryReader::ReadInt32() {
  if (!ConsumeTag(kTagInt32)) return 0;
  int32_t value = 0;
  Consume(&value, sizeof(value));
  return ok_ ? value : 0;
}

int64_t BinaryReader::ReadInt64() {
  if (!ConsumeTag(kTagInt64)) return 0;
  int64_t value = 0;
  Consume(&value, sizeof(value));
  return ok_ ? value : 0;
}

float BinaryReader::ReadFloat() {
  if (!ConsumeTag(kTagFloat)) return 0.0f;
  float value = 0.0f;
  Consume(&value, sizeof(value));
  return ok_ ? value : 0.0f;
}

double BinaryReader::ReadDouble() {
  if (!ConsumeTag(kTagDouble)) return 0.0;
  double value = 0.0;
  Consume(&value, sizeof(value));
  return ok_ ? value : 0.0;
}

std::string BinaryReader::ReadString() {
  if (!ConsumeTag(kTagString)) return std::string();
  int64_t size = 0;
  if (!ConsumeSize(1, &size)) return std::string();
  std::string value(static_cast<size_t>(size), '\0');
  if (!Consume(value.data(), value.size())) return std::string();
  return value;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  if (!ConsumeTag(kTagFloatVec)) return {};
  int64_t size = 0;
  if (!ConsumeSize(sizeof(float), &size)) return {};
  std::vector<float> values(static_cast<size_t>(size));
  if (!Consume(values.data(), values.size() * sizeof(float))) return {};
  return values;
}

std::vector<int> BinaryReader::ReadIntVector() {
  if (!ConsumeTag(kTagIntVec)) return {};
  int64_t size = 0;
  if (!ConsumeSize(sizeof(int), &size)) return {};
  std::vector<int> values(static_cast<size_t>(size));
  if (!Consume(values.data(), values.size() * sizeof(int))) return {};
  return values;
}

// ---- Checkpoint container ------------------------------------------------

namespace {

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

// Raw little-endian frame parser with explicit bounds checks (the frame
// deliberately avoids the tagged value layer so its layout is fixed and
// documented in serialize.h).
class FrameReader {
 public:
  explicit FrameReader(const std::string& bytes) : bytes_(bytes) {}

  bool Read(void* data, size_t size) {
    if (size > bytes_.size() - position_) return false;
    std::memcpy(data, bytes_.data() + position_, size);
    position_ += size;
    return true;
  }

  bool ReadPayload(int64_t size, std::string* out) {
    if (size < 0 ||
        static_cast<uint64_t>(size) > bytes_.size() - position_) {
      return false;
    }
    out->assign(bytes_.data() + position_, static_cast<size_t>(size));
    position_ += static_cast<size_t>(size);
    return true;
  }

  size_t remaining() const { return bytes_.size() - position_; }

 private:
  const std::string& bytes_;
  size_t position_ = 0;
};

}  // namespace

const CheckpointSection* Checkpoint::Find(int32_t id) const {
  for (const CheckpointSection& section : sections) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

std::string CheckpointEncode(const Checkpoint& checkpoint) {
  std::string out;
  AppendRaw(&out, &kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendRaw(&out, &checkpoint.version, sizeof(checkpoint.version));
  const int32_t count = static_cast<int32_t>(checkpoint.sections.size());
  AppendRaw(&out, &count, sizeof(count));
  for (const CheckpointSection& section : checkpoint.sections) {
    AppendRaw(&out, &section.id, sizeof(section.id));
    const int64_t length = static_cast<int64_t>(section.payload.size());
    AppendRaw(&out, &length, sizeof(length));
    out.append(section.payload);
  }
  return out;
}

bool CheckpointDecode(const std::string& bytes, Checkpoint* out) {
  FrameReader frame(bytes);
  uint32_t magic = 0;
  if (!frame.Read(&magic, sizeof(magic)) || magic != kCheckpointMagic) {
    return false;
  }
  int32_t version = 0;
  if (!frame.Read(&version, sizeof(version))) return false;
  // Future versions are unreadable by design: the writer bumps the version
  // exactly when an existing payload layout changes.
  if (version < 1 || version > kCheckpointMaxFormatVersion) return false;
  int32_t count = 0;
  if (!frame.Read(&count, sizeof(count))) return false;
  // Each section costs at least its 12-byte header: a corrupted count
  // cannot demand more sections than the remaining bytes could hold.
  constexpr size_t kSectionHeaderBytes =
      sizeof(int32_t) + sizeof(int64_t);
  if (count < 0 ||
      static_cast<uint64_t>(count) > frame.remaining() / kSectionHeaderBytes) {
    return false;
  }
  Checkpoint checkpoint;
  checkpoint.version = version;
  checkpoint.sections.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    CheckpointSection section;
    int64_t length = 0;
    if (!frame.Read(&section.id, sizeof(section.id)) ||
        !frame.Read(&length, sizeof(length)) ||
        !frame.ReadPayload(length, &section.payload)) {
      return false;
    }
    checkpoint.sections.push_back(std::move(section));
  }
  if (frame.remaining() != 0) return false;  // trailing garbage
  *out = std::move(checkpoint);
  return true;
}

bool CheckpointSave(const std::string& path, const Checkpoint& checkpoint) {
  // Tests force the disk-full / yanked-volume shape here; callers must
  // treat a false as "no checkpoint exists at `path`".
  if (KVEC_FAULT_POINT("checkpoint.save")) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string bytes = CheckpointEncode(checkpoint);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool CheckpointLoad(const std::string& path, Checkpoint* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return CheckpointDecode(contents, out);
}

uint64_t CheckpointFingerprint(const std::string& bytes) {
  // FNV-1a 64. Stable across platforms (byte-wise, no alignment games).
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace kvec
