#include "util/serialize.h"

#include <cstring>
#include <fstream>

#include "util/check.h"

namespace kvec {
namespace {

// Tags guard against reading a value as the wrong kind.
constexpr int32_t kTagInt32 = 0x4b561001;
constexpr int32_t kTagInt64 = 0x4b561002;
constexpr int32_t kTagFloat = 0x4b561003;
constexpr int32_t kTagString = 0x4b561004;
constexpr int32_t kTagFloatVec = 0x4b561005;
constexpr int32_t kTagIntVec = 0x4b561006;

}  // namespace

void BinaryWriter::Append(const void* data, size_t size) {
  if (size == 0) return;  // empty containers hand over a null data()
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::WriteInt32(int32_t value) {
  Append(&kTagInt32, sizeof(kTagInt32));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteInt64(int64_t value) {
  Append(&kTagInt64, sizeof(kTagInt64));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteFloat(float value) {
  Append(&kTagFloat, sizeof(kTagFloat));
  Append(&value, sizeof(value));
}

void BinaryWriter::WriteString(const std::string& value) {
  Append(&kTagString, sizeof(kTagString));
  int64_t size = static_cast<int64_t>(value.size());
  Append(&size, sizeof(size));
  Append(value.data(), value.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& values) {
  Append(&kTagFloatVec, sizeof(kTagFloatVec));
  int64_t size = static_cast<int64_t>(values.size());
  Append(&size, sizeof(size));
  Append(values.data(), values.size() * sizeof(float));
}

void BinaryWriter::WriteIntVector(const std::vector<int>& values) {
  Append(&kTagIntVec, sizeof(kTagIntVec));
  int64_t size = static_cast<int64_t>(values.size());
  Append(&size, sizeof(size));
  Append(values.data(), values.size() * sizeof(int));
}

bool BinaryWriter::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

BinaryReader::BinaryReader(std::string buffer) : buffer_(std::move(buffer)) {}

BinaryReader BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    BinaryReader reader{std::string()};
    reader.ok_ = false;
    return reader;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return BinaryReader(std::move(contents));
}

void BinaryReader::Consume(void* data, size_t size) {
  KVEC_CHECK(ok_) << "read from a failed reader";
  KVEC_CHECK_LE(position_ + size, buffer_.size()) << "truncated buffer";
  if (size == 0) return;  // empty containers hand over a null data()
  std::memcpy(data, buffer_.data() + position_, size);
  position_ += size;
}

int32_t BinaryReader::ReadInt32() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagInt32) << "type mismatch reading int32";
  int32_t value = 0;
  Consume(&value, sizeof(value));
  return value;
}

int64_t BinaryReader::ReadInt64() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagInt64) << "type mismatch reading int64";
  int64_t value = 0;
  Consume(&value, sizeof(value));
  return value;
}

float BinaryReader::ReadFloat() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagFloat) << "type mismatch reading float";
  float value = 0;
  Consume(&value, sizeof(value));
  return value;
}

std::string BinaryReader::ReadString() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagString) << "type mismatch reading string";
  int64_t size = 0;
  Consume(&size, sizeof(size));
  KVEC_CHECK_GE(size, 0);
  std::string value(static_cast<size_t>(size), '\0');
  Consume(value.data(), value.size());
  return value;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagFloatVec) << "type mismatch reading float vector";
  int64_t size = 0;
  Consume(&size, sizeof(size));
  KVEC_CHECK_GE(size, 0);
  std::vector<float> values(static_cast<size_t>(size));
  Consume(values.data(), values.size() * sizeof(float));
  return values;
}

std::vector<int> BinaryReader::ReadIntVector() {
  int32_t tag = 0;
  Consume(&tag, sizeof(tag));
  KVEC_CHECK_EQ(tag, kTagIntVec) << "type mismatch reading int vector";
  int64_t size = 0;
  Consume(&size, sizeof(size));
  KVEC_CHECK_GE(size, 0);
  std::vector<int> values(static_cast<size_t>(size));
  Consume(values.data(), values.size() * sizeof(int));
  return values;
}

}  // namespace kvec
