// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (parameter init, dropout, action
// sampling, data generation) draw from an explicitly threaded `Rng` so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded through splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace kvec {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal (Box-Muller).
  double NextGaussian();

  // Uniform integer in [0, n). Requires n > 0.
  int NextInt(int n);

  // Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  // Index sampled proportionally to the (non-negative) weights.
  int NextCategorical(const std::vector<double>& weights);

  // Poisson-distributed count with the given mean (mean < ~50 expected).
  int NextPoisson(double mean);

  // Geometric number of trials until first success (>= 1), success prob p.
  int NextGeometric(double p);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int i = static_cast<int>(values.size()) - 1; i > 0; --i) {
      int j = NextInt(i + 1);
      std::swap(values[i], values[j]);
    }
  }

  // A new generator with a stream derived from this one; used to give
  // independent substreams to data generation vs. model init.
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kvec

