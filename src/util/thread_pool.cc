#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

#include "util/check.h"

namespace kvec {
namespace {

// True while the current thread is executing chunks of some region; nested
// ParallelFor calls then run inline instead of deadlocking on the pool.
thread_local bool t_inside_parallel_region = false;

}  // namespace

// Shared completion state of one ParallelFor invocation. Every queued chunk
// holds a shared_ptr to it, so a worker finishing the last chunk can still
// safely signal `done` after the caller's stack frame became invalid.
struct ThreadPool::Region {
  const std::function<void(int, int)>* fn = nullptr;  // outlives the region
  std::atomic<int> remaining{0};
  Mutex mutex;   // pairs `done` with the remaining==0 transition
  CondVar done;  // signalled by the worker that finishes the last chunk
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunk(const Chunk& chunk) {
  t_inside_parallel_region = true;
  (*chunk.region->fn)(chunk.begin, chunk.end);
  t_inside_parallel_region = false;
  if (chunk.region->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Region& region = *chunk.region;
    MutexLock lock(region.mutex);
    region.done.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Chunk chunk;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) wake_.Wait(mutex_);
      if (shutdown_ && queue_.empty()) return;
      chunk = std::move(queue_.front());
      queue_.pop_front();
    }
    RunChunk(chunk);
  }
}

void ThreadPool::ParallelFor(int begin, int end, int grain,
                             const std::function<void(int, int)>& fn) {
  if (end <= begin) return;
  grain = std::max(1, grain);
  const int n = end - begin;
  const int num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1 || num_threads_ == 1 || t_inside_parallel_region) {
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    fn(begin, end);
    t_inside_parallel_region = was_inside;
    return;
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->remaining.store(num_chunks, std::memory_order_relaxed);

  {
    MutexLock lock(mutex_);
    for (int c = 0; c < num_chunks; ++c) {
      const int chunk_begin = begin + c * grain;
      queue_.push_back({region, chunk_begin, std::min(chunk_begin + grain, end)});
    }
  }
  wake_.NotifyAll();

  // The caller works too — but only on its own region's chunks, so a small
  // latency-critical ParallelFor never inherits the tail of a large
  // concurrent one queued ahead of it (workers still drain FIFO).
  for (;;) {
    Chunk chunk;
    {
      MutexLock lock(mutex_);
      auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&region](const Chunk& c) { return c.region == region; });
      if (it == queue_.end()) break;
      chunk = std::move(*it);
      queue_.erase(it);
    }
    RunChunk(chunk);
  }
  {
    Region& r = *region;
    MutexLock lock(r.mutex);
    while (r.remaining.load(std::memory_order_acquire) != 0) {
      r.done.Wait(r.mutex);
    }
  }
}

namespace {

std::shared_ptr<ThreadPool>& GlobalPoolSlot() {
  // Leaked on purpose: tensor kernels may run during static teardown; the
  // pool object must outlive every user. A replaced pool is destroyed
  // (workers joined) when its last in-flight user drops the shared_ptr.
  // kvec-lint: allow-next(naked-new) leaked teardown-safe singleton
  static auto* slot = new std::shared_ptr<ThreadPool>();
  return *slot;
}

std::mutex& GlobalPoolMutex() {
  // A raw std::mutex (not kvec::Mutex): a function-local static cannot be
  // named in a capability expression, so annotating it buys no checking.
  // kvec-lint: allow-next(naked-new) leaked teardown-safe singleton
  static auto* mutex = new std::mutex();
  return *mutex;
}

}  // namespace

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("KVEC_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::shared_ptr<ThreadPool> ThreadPool::GlobalShared() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (slot == nullptr) {
    slot = std::make_shared<ThreadPool>(DefaultThreadCount());
  }
  return slot;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  KVEC_CHECK_GE(num_threads, 1);
  std::shared_ptr<ThreadPool> replaced;
  {
    std::lock_guard<std::mutex> lock(GlobalPoolMutex());
    replaced = std::move(GlobalPoolSlot());
    GlobalPoolSlot() = std::make_shared<ThreadPool>(num_threads);
  }
  // `replaced` (if any) is destroyed here, outside the registry lock, once
  // in-flight users have dropped their references.
}

}  // namespace kvec
