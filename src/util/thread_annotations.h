// Clang Thread Safety Analysis annotations (no-ops off clang).
//
// These macros make the repo's lock discipline machine-checked: a field
// tagged KVEC_GUARDED_BY(mu) cannot be touched without holding `mu`, a
// function tagged KVEC_REQUIRES(mu) cannot be called without it, and a
// clang build with -Wthread-safety -Werror (the CI `lint` job, or
// scripts/run_static_analysis.sh locally) fails on any violation. Under
// GCC — the default build — every macro expands to nothing, so the
// annotations cost zero and the portable build proves they are inert.
//
// libstdc++'s std::mutex carries no capability attribute, so raw
// std::mutex members are invisible to the analysis. Lock-protected code
// uses the annotated wrappers in util/mutex.h (kvec::Mutex, kvec::MutexLock,
// kvec::CondVar) instead; the conventions — when GUARDED_BY applies, when
// worker-thread ownership replaces a lock, and the policy for
// KVEC_NO_THREAD_SAFETY_ANALYSIS — are documented in
// docs/STATIC_ANALYSIS.md.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define KVEC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KVEC_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// Declares a type to be a capability (a lock). kvec::Mutex is the one
// capability type in this repo.
#define KVEC_CAPABILITY(name) KVEC_THREAD_ANNOTATION(capability(name))

// Declares an RAII type whose constructor acquires a capability and whose
// destructor releases it (kvec::MutexLock).
#define KVEC_SCOPED_CAPABILITY KVEC_THREAD_ANNOTATION(scoped_lockable)

// Field annotation: reads and writes require holding `x`.
#define KVEC_GUARDED_BY(x) KVEC_THREAD_ANNOTATION(guarded_by(x))

// Field annotation for pointers: the *pointee* is protected by `x` (the
// pointer itself may be read freely).
#define KVEC_PT_GUARDED_BY(x) KVEC_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotation: the caller must hold the listed capabilities.
#define KVEC_REQUIRES(...) \
  KVEC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function annotation: the caller must NOT hold the listed capabilities
// (the function acquires them itself; catches self-deadlock).
#define KVEC_EXCLUDES(...) KVEC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function annotations: the function acquires / releases the capability
// (used on kvec::Mutex itself and on lock-transferring helpers).
#define KVEC_ACQUIRE(...) \
  KVEC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KVEC_RELEASE(...) \
  KVEC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KVEC_TRY_ACQUIRE(...) \
  KVEC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function annotation: the returned reference is the given capability
// (lets accessors expose a member mutex without losing analysis).
#define KVEC_RETURN_CAPABILITY(x) KVEC_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Policy
// (docs/STATIC_ANALYSIS.md): allowed ONLY where the safety argument is
// ownership or ordering the analysis cannot express — each use carries a
// justification comment naming the happens-before edge that makes it safe.
#define KVEC_NO_THREAD_SAFETY_ANALYSIS \
  KVEC_THREAD_ANNOTATION(no_thread_safety_analysis)
