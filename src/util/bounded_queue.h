// A bounded multi-producer task queue with explicit overload policies.
//
// The shard-owned-worker serving model (core/sharded_stream_server.h) puts
// a queue between producers (callers submitting item batches) and one
// consumer (the shard's worker thread). The queue is where overload becomes
// a *defined* condition instead of an accident: when it is full, the
// configured OverloadPolicy decides whether the producer waits, the new
// batch is dropped, or the oldest queued batch is dropped — and every drop
// is counted by the caller via the entries this API hands back, never
// silent.
//
// Entries carry a `sheddable` bit. Only sheddable entries participate in
// shedding; control entries (stats snapshots, checkpoint tasks, drain
// barriers) are pushed with OverloadPolicy::kBlock and can neither be
// rejected nor evicted, so a saturated queue delays queries but never
// loses them.
//
// Implementation is a mutex + two condition variables over a deque:
// deliberately boring, so the concurrency story is auditable, clean under
// ThreadSanitizer, AND machine-checked — the mutex is an annotated
// kvec::Mutex (util/mutex.h) and every deque/flag access is
// KVEC_GUARDED_BY it, so a clang -Wthread-safety build rejects any future
// path that touches queue state outside the lock. The push path fires the
// "bounded_queue.push" fault-injection point (util/fault_injection.h)
// before taking the lock, letting tests widen producer/consumer races
// deterministically.
#pragma once

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {

// What a full queue does to a new sheddable entry.
enum class OverloadPolicy {
  kBlock,       // producer waits for space (backpressure)
  kShedNewest,  // reject the incoming entry
  kShedOldest,  // evict the oldest sheddable entry, accept the new one
};

// "block" | "shed-newest" | "shed-oldest" (the CLI flag spellings).
bool ParseOverloadPolicy(const std::string& text, OverloadPolicy* policy);
const char* OverloadPolicyName(OverloadPolicy policy);

template <typename T>
class BoundedQueue {
 public:
  enum class PushResult {
    kAccepted,    // entry is in the queue
    kShedNewest,  // full under kShedNewest: entry was rejected
    kClosed,      // Close() already ran; entry was rejected
  };

  explicit BoundedQueue(int capacity) : capacity_(capacity) {
    KVEC_CHECK_GT(capacity, 0);
  }

  // Pushes `value` under `policy`. `sheddable` marks entries a kShedOldest
  // push may evict (and a kShedNewest full queue may reject); control
  // entries pass false and should use kBlock. Entries evicted by
  // kShedOldest are appended to `shed_out` (may be null only if the caller
  // can prove no eviction happens) so the producer can account for every
  // dropped payload. Thread-safe.
  PushResult Push(T value, OverloadPolicy policy, bool sheddable,
                  std::vector<T>* shed_out) KVEC_EXCLUDES(mutex_) {
    // Delay point: tests widen the route-to-enqueue window here (not a
    // failable site, so the verdict is ignored).
    (void)KVEC_FAULT_POINT("bounded_queue.push");
    PushResult result;
    {
      MutexLock lock(mutex_);
      result = PushLocked(std::move(value), policy, sheddable, shed_out);
    }
    // Outside the lock, so a woken consumer never immediately blocks on
    // the mutex the notifier still holds. Notifying on the (rare)
    // evict-and-replace accept too is harmless: the queue was full, so no
    // consumer can be parked on not_empty_.
    if (result == PushResult::kAccepted) not_empty_.NotifyOne();
    return result;
  }

  // Blocks until an entry is available or the queue is closed *and* empty.
  // Returns false only in the latter case: a closed queue still drains, so
  // shutdown never loses accepted work.
  bool Pop(T* out) KVEC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && entries_.empty()) not_empty_.Wait(mutex_);
      if (entries_.empty()) return false;
      *out = std::move(entries_.front().value);
      entries_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  // After Close, pushes fail with kClosed and Pop drains what was already
  // accepted, then returns false. Idempotent.
  void Close() KVEC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t size() const KVEC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_.size();
  }

  int capacity() const { return static_cast<int>(capacity_); }

 private:
  struct Entry {
    T value;
    bool sheddable = false;
  };

  // The overload-policy state machine, under the lock. Factored out so the
  // lock/notify choreography above stays flat — and so the KVEC_REQUIRES
  // contract pins it: compile with clang -Wthread-safety and this body is
  // rejected unless every caller holds mutex_.
  PushResult PushLocked(T value, OverloadPolicy policy, bool sheddable,
                        std::vector<T>* shed_out) KVEC_REQUIRES(mutex_) {
    if (closed_) return PushResult::kClosed;
    if (entries_.size() >= capacity_) {
      if (sheddable && policy == OverloadPolicy::kShedNewest) {
        return PushResult::kShedNewest;
      }
      if (sheddable && policy == OverloadPolicy::kShedOldest) {
        // Evict the oldest sheddable entry. If every queued entry is a
        // control task (possible only under pathological queue depths),
        // fall through to blocking: control tasks are never shed.
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->sheddable) {
            shed_out->push_back(std::move(it->value));
            entries_.erase(it);
            entries_.push_back({std::move(value), sheddable});
            return PushResult::kAccepted;
          }
        }
      }
      while (!closed_ && entries_.size() >= capacity_) not_full_.Wait(mutex_);
      if (closed_) return PushResult::kClosed;
    }
    entries_.push_back({std::move(value), sheddable});
    return PushResult::kAccepted;
  }

  mutable Mutex mutex_;
  CondVar not_empty_;  // signalled by Push
  CondVar not_full_;   // signalled by Pop / Close
  std::deque<Entry> entries_ KVEC_GUARDED_BY(mutex_);
  const size_t capacity_;  // immutable after construction: no guard needed
  bool closed_ KVEC_GUARDED_BY(mutex_) = false;
};

}  // namespace kvec
